"""Trend reports and the perf-trajectory regression detector.

Point-in-time bench gates (hard floors inside ``benchmarks/bench_*.py``)
catch cliffs; this module catches **slopes** — the slow erosion where each
commit is individually within tolerance but the trajectory is down.  Two
rules per metric series:

* ``relative_drop`` — the latest value against the median of the
  preceding window.  Medians resist one noisy CI run polluting the
  baseline; the latest value alone is what the commit under test did.
* ``rolling_median`` — the median of the most recent few runs against the
  median of the window before them.  A single bad run can't trip it, but
  a sustained slump (every recent run a little worse) can, even when no
  individual run clears the relative-drop bar.

Both are direction-aware via the metric's ``direction`` and scaled by its
``max_relative_drop`` threshold; near-zero baselines are skipped because
relative change against ~0 is meaningless.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import Sequence

from repro.metrics.registry import METRICS, Metric
from repro.metrics.store import HistoryFrame, Sample

#: Baselines smaller than this (in absolute value) are not judged — a
#: relative drop against ~0 is numerically meaningless.
MIN_BASELINE = 1e-9

#: Sparkline glyph ramp (low → high).
_SPARK = "▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class Finding:
    """One rule's verdict on one metric series."""

    metric: str
    rule: str
    regressed: bool
    latest: float
    baseline: float
    change: float  # signed relative change, positive = bad direction
    threshold: float
    detail: str

    def format(self) -> str:
        flag = "FAIL" if self.regressed else "ok"
        return (
            f"[{flag:>4}] {self.metric:<28} {self.rule:<14} "
            f"latest={self.latest:.4g} baseline={self.baseline:.4g} "
            f"change={self.change:+.1%} (limit {self.threshold:.0%}) "
            f"{self.detail}"
        )


def _badness(metric: Metric, latest: float, baseline: float) -> float | None:
    """Signed relative change where positive means "got worse".

    None when the baseline is too close to zero to judge.
    """
    if abs(baseline) < MIN_BASELINE:
        return None
    change = (latest - baseline) / abs(baseline)
    return -change if metric.direction == "up" else change


def relative_drop(
    metric: Metric, values: Sequence[float], *, window: int = 5
) -> Finding | None:
    """Latest value vs the median of the preceding ``window`` runs.

    Needs at least two points (one baseline run plus the latest); with
    fewer there is no trajectory to judge yet.
    """
    if len(values) < 2:
        return None
    baseline_values = list(values[:-1])[-window:]
    baseline = median(baseline_values)
    latest = values[-1]
    badness = _badness(metric, latest, baseline)
    if badness is None:
        return None
    return Finding(
        metric=metric.name,
        rule="relative_drop",
        regressed=badness > metric.max_relative_drop,
        latest=latest,
        baseline=baseline,
        change=badness,
        threshold=metric.max_relative_drop,
        detail=f"vs median of last {len(baseline_values)}",
    )


def rolling_median(
    metric: Metric,
    values: Sequence[float],
    *,
    recent: int = 3,
    window: int = 5,
) -> Finding | None:
    """Median of the last ``recent`` runs vs the median of the ``window``
    runs before them — the sustained-slump detector.

    Needs ``recent + 2`` points so the prior window holds at least two
    runs; below that the relative-drop rule is the only judge.
    """
    if len(values) < recent + 2:
        return None
    recent_values = list(values[-recent:])
    prior_values = list(values[:-recent])[-window:]
    latest = median(recent_values)
    baseline = median(prior_values)
    badness = _badness(metric, latest, baseline)
    if badness is None:
        return None
    return Finding(
        metric=metric.name,
        rule="rolling_median",
        regressed=badness > metric.max_relative_drop,
        latest=latest,
        baseline=baseline,
        change=badness,
        threshold=metric.max_relative_drop,
        detail=f"median of last {recent} vs prior {len(prior_values)}",
    )


def detect_regressions(
    frame: HistoryFrame,
    *,
    window: int = 5,
    recent: int = 3,
    metrics: Sequence[str] | None = None,
) -> list[Finding]:
    """Run both rules over every metric series in the history.

    Args:
        frame: loaded history.
        window: baseline window size for both rules.
        recent: recent-median width for the rolling rule.
        metrics: restrict to these metric names (default: all registered).

    Returns every finding (passing and failing) so reports can show the
    full scoreboard; callers gate on ``any(f.regressed ...)``.
    """
    findings: list[Finding] = []
    names = list(metrics) if metrics is not None else frame.metric_names()
    for name in names:
        metric = METRICS.get(name)
        if metric is None:
            continue
        values = [value for _, value in frame.series(name)]
        for rule in (
            relative_drop(metric, values, window=window),
            rolling_median(metric, values, recent=recent, window=window),
        ):
            if rule is not None:
                findings.append(rule)
    return findings


# ----------------------------------------------------------------------
# Trend report rendering
# ----------------------------------------------------------------------
def sparkline(values: Sequence[float]) -> str:
    """A unicode sparkline of the series (flat series render mid-ramp)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi - lo < MIN_BASELINE:
        return _SPARK[3] * len(values)
    scale = (len(_SPARK) - 1) / (hi - lo)
    return "".join(_SPARK[int((v - lo) * scale)] for v in values)


def _series_row(
    metric: Metric, points: list[tuple[Sample, float]], max_points: int
) -> str:
    values = [value for _, value in points][-max_points:]
    latest = values[-1]
    lo, hi = min(values), max(values)
    arrow = "↑" if metric.direction == "up" else "↓"
    return (
        f"{metric.name:<28} {arrow} "
        f"{sparkline(values):<{max_points}} "
        f"n={len(points):<3} latest={latest:<10.4g} "
        f"min={lo:<10.4g} max={hi:<10.4g} [{metric.unit}]"
    )


def format_trend_report(
    frame: HistoryFrame,
    *,
    window: int = 5,
    recent: int = 3,
    max_points: int = 24,
) -> str:
    """The full text trend report: series table plus rule scoreboard."""
    lines = [
        f"perf trajectory over {len(frame)} samples "
        f"({len(frame.metric_names())} metrics, kinds: "
        f"{', '.join(frame.kinds()) or 'none'})",
        "",
    ]
    for name in frame.metric_names():
        metric = METRICS.get(name)
        if metric is None:
            continue
        points = frame.series(name)
        if points:
            lines.append(_series_row(metric, points, max_points))
    findings = detect_regressions(frame, window=window, recent=recent)
    if findings:
        lines.append("")
        lines.extend(finding.format() for finding in findings)
    regressed = [f for f in findings if f.regressed]
    lines.append("")
    if regressed:
        lines.append(
            f"REGRESSIONS: {len(regressed)} rule(s) tripped across "
            f"{len({f.metric for f in regressed})} metric(s)"
        )
    else:
        lines.append("no trajectory regressions detected")
    return "\n".join(lines)
