"""CPLEX-LP-format writer and reader for :class:`LinearProgram`.

The LP text format is the lingua franca for exchanging small programs with
external solvers (Gurobi, CPLEX, HiGHS, glpsol) and for eyeballing a
formulation while debugging.  Supported subset: objective sense, linear
constraints (``<= / >= / =``), bounds (including ``free``), and a
``General`` section for integer variables — exactly what
:class:`LinearProgram` models.

Round trip: ``parse_lp_format(write_lp_format(lp))`` reconstructs an
equivalent program (same optimum, same variable names/order).
"""

from __future__ import annotations

import math
import re

from repro.solver.problem import LinearProgram, Sense

_SENSE_TO_TEXT = {Sense.LE: "<=", Sense.GE: ">=", Sense.EQ: "="}
_TEXT_TO_SENSE = {"<=": Sense.LE, ">=": Sense.GE, "=": Sense.EQ, "=<": Sense.LE, "=>": Sense.GE}

#: LP-format identifiers must avoid operator characters; this library's
#: auto-generated names (``x[10,1,3]``) are sanitized on write.
_NAME_SANITIZER = re.compile(r"[^A-Za-z0-9_.]")


def _sanitize(name: str) -> str:
    return _NAME_SANITIZER.sub("_", name)


def _format_terms(coefficients: dict[int, float], names: list[str]) -> str:
    parts: list[str] = []
    for index in sorted(coefficients):
        coeff = coefficients[index]
        sign = "-" if coeff < 0 else "+"
        magnitude = abs(coeff)
        if parts:
            parts.append(f"{sign} {magnitude:.12g} {names[index]}")
        else:
            lead = "- " if sign == "-" else ""
            parts.append(f"{lead}{magnitude:.12g} {names[index]}")
    return " ".join(parts) if parts else "0"


def write_lp_format(lp: LinearProgram) -> str:
    """Serialize ``lp`` to CPLEX LP text."""
    names = [_sanitize(v.name) for v in lp.variables]
    if len(set(names)) != len(names):
        # Sanitation collisions: fall back to positional names.
        names = [f"x{i}" for i in range(len(names))]

    lines: list[str] = []
    lines.append("Maximize" if lp.maximize else "Minimize")
    objective = {
        v.index: v.objective for v in lp.variables if v.objective != 0.0
    }
    lines.append(f" obj: {_format_terms(objective, names)}")
    lines.append("Subject To")
    for i, constraint in enumerate(lp.constraints):
        row_name = _sanitize(constraint.name) or f"c{i}"
        lines.append(
            f" {row_name}: {_format_terms(constraint.coefficients, names)} "
            f"{_SENSE_TO_TEXT[constraint.sense]} {constraint.rhs:.12g}"
        )
    lines.append("Bounds")
    for variable, name in zip(lp.variables, names):
        lower, upper = variable.lower, variable.upper
        if lower == 0.0 and upper == math.inf:
            continue  # LP-format default
        if lower == -math.inf and upper == math.inf:
            lines.append(f" {name} free")
        elif upper == math.inf:
            lines.append(f" {lower:.12g} <= {name}")
        elif lower == -math.inf:
            lines.append(f" -inf <= {name} <= {upper:.12g}")
        else:
            lines.append(f" {lower:.12g} <= {name} <= {upper:.12g}")
    integers = [name for variable, name in zip(lp.variables, names) if variable.is_integer]
    if integers:
        lines.append("General")
        lines.append(" " + " ".join(integers))
    lines.append("End")
    return "\n".join(lines) + "\n"


class LPFormatError(ValueError):
    """The LP text could not be parsed."""


_TERM = re.compile(r"([+-]?\s*\d*\.?\d*(?:[eE][+-]?\d+)?)\s*([A-Za-z_][A-Za-z0-9_.]*)")
_RELATION = re.compile(r"(<=|>=|=<|=>|=)")


def _parse_terms(text: str) -> dict[str, float]:
    """Parse ``3 x + 2.5 y - z`` into name -> coefficient."""
    terms: dict[str, float] = {}
    for raw_coeff, name in _TERM.findall(text):
        raw = raw_coeff.replace(" ", "")
        if raw in ("", "+"):
            coeff = 1.0
        elif raw == "-":
            coeff = -1.0
        else:
            coeff = float(raw)
        terms[name] = terms.get(name, 0.0) + coeff
    return terms


def parse_lp_format(text: str) -> LinearProgram:
    """Parse LP text written by :func:`write_lp_format`.

    Raises:
        LPFormatError: on unknown sections or malformed rows.
    """
    lines = [line.strip() for line in text.splitlines()]
    lines = [line for line in lines if line and not line.startswith(("\\", "//"))]
    if not lines:
        raise LPFormatError("empty LP text")

    section = None
    maximize = True
    objective_text: list[str] = []
    constraint_rows: list[tuple[str, str]] = []
    bound_rows: list[str] = []
    integer_names: set[str] = set()

    section_map = {
        "maximize": "objective",
        "maximise": "objective",
        "max": "objective",
        "minimize": "objective",
        "minimise": "objective",
        "min": "objective",
        "subject to": "constraints",
        "such that": "constraints",
        "st": "constraints",
        "s.t.": "constraints",
        "bounds": "bounds",
        "general": "general",
        "generals": "general",
        "integer": "general",
        "binary": "binary",
        "end": "end",
    }

    for line in lines:
        lowered = line.lower()
        if lowered in section_map:
            section = section_map[lowered]
            if lowered in ("minimize", "minimise", "min"):
                maximize = False
            if section == "end":
                break
            continue
        if section == "objective":
            objective_text.append(line)
        elif section == "constraints":
            if ":" in line:
                name, _, body = line.partition(":")
                constraint_rows.append((name.strip(), body.strip()))
            else:
                constraint_rows.append((f"c{len(constraint_rows)}", line))
        elif section == "bounds":
            bound_rows.append(line)
        elif section in ("general", "binary"):
            integer_names.update(line.split())
        else:
            raise LPFormatError(f"content outside any section: {line!r}")

    objective_body = " ".join(objective_text)
    if ":" in objective_body:
        objective_body = objective_body.partition(":")[2]
    objective_terms = _parse_terms(objective_body)

    # Collect every variable name in order of first appearance.
    order: list[str] = []
    seen: set[str] = set()

    def note(name: str) -> None:
        if name not in seen:
            seen.add(name)
            order.append(name)

    for name in objective_terms:
        note(name)
    parsed_rows: list[tuple[str, dict[str, float], Sense, float]] = []
    for row_name, body in constraint_rows:
        match = _RELATION.search(body)
        if not match:
            raise LPFormatError(f"constraint without relation: {body!r}")
        lhs, rhs = body[: match.start()], body[match.end() :]
        sense = _TEXT_TO_SENSE[match.group(1)]
        terms = _parse_terms(lhs)
        for name in terms:
            note(name)
        try:
            rhs_value = float(rhs)
        except ValueError as error:
            raise LPFormatError(f"non-numeric rhs in {body!r}") from error
        parsed_rows.append((row_name, terms, sense, rhs_value))

    bounds: dict[str, tuple[float, float]] = {}
    for line in bound_rows:
        if line.lower().endswith(" free"):
            name = line[: -len(" free")].strip()
            note(name)
            bounds[name] = (-math.inf, math.inf)
            continue
        pieces = _RELATION.split(line)
        if len(pieces) == 5:  # lower <= name <= upper
            lower, name, upper = pieces[0].strip(), pieces[2].strip(), pieces[4].strip()
            note(name)
            bounds[name] = (
                -math.inf if lower in ("-inf", "-infinity") else float(lower),
                math.inf if upper in ("inf", "+inf", "infinity") else float(upper),
            )
        elif len(pieces) == 3:  # lower <= name   (or name >= lower etc.)
            left, relation, right = pieces[0].strip(), pieces[1], pieces[2].strip()
            sense = _TEXT_TO_SENSE[relation]
            if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.]*", left):
                name, value = left, float(right)
                note(name)
                low, high = bounds.get(name, (0.0, math.inf))
                if sense is Sense.LE:
                    bounds[name] = (low, value)
                elif sense is Sense.GE:
                    bounds[name] = (value, high)
                else:
                    bounds[name] = (value, value)
            else:
                value, name = float(left), right
                note(name)
                low, high = bounds.get(name, (0.0, math.inf))
                if sense is Sense.LE:  # value <= name
                    bounds[name] = (value, high)
                elif sense is Sense.GE:
                    bounds[name] = (low, value)
                else:
                    bounds[name] = (value, value)
        else:
            raise LPFormatError(f"unparseable bound line: {line!r}")
    for name in integer_names:
        note(name)

    lp = LinearProgram(maximize=maximize)
    index_of: dict[str, int] = {}
    for name in order:
        lower, upper = bounds.get(name, (0.0, math.inf))
        index_of[name] = lp.add_variable(
            name,
            lower=lower,
            upper=upper,
            objective=objective_terms.get(name, 0.0),
            is_integer=name in integer_names,
        )
    for row_name, terms, sense, rhs_value in parsed_rows:
        lp.add_constraint(
            {index_of[name]: coeff for name, coeff in terms.items()},
            sense,
            rhs_value,
            name=row_name,
        )
    return lp
