"""Admission-control policies: pure partitions of a tick's arrivals."""

import pytest

from repro.model import User
from repro.service import (
    AdmitAll,
    DeadlineQueue,
    DegradeOnOverload,
    RejectOnOverload,
)
from repro.service.requests import ArrivalRequest


def arrival(user_id, timestamp):
    return ArrivalRequest(
        timestamp=timestamp, user=User(user_id=user_id, capacity=1, bids=(1,))
    )


def ids(bucket):
    return [request.user.user_id for request in bucket]


class TestAdmitAll:
    def test_everything_served(self):
        batch = [arrival(i, float(i)) for i in range(5)]
        decision = AdmitAll().decide(batch, now=10.0)
        assert ids(decision.serve) == [0, 1, 2, 3, 4]
        assert not (decision.degrade or decision.requeue or decision.reject)


class TestOverloadPolicies:
    def test_max_serve_must_be_positive(self):
        for policy in (RejectOnOverload, DegradeOnOverload):
            with pytest.raises(ValueError):
                policy(0)
        with pytest.raises(ValueError):
            DeadlineQueue(0, deadline=1.0)
        with pytest.raises(ValueError):
            DeadlineQueue(1, deadline=0.0)

    def test_reject_overflow(self):
        batch = [arrival(i, float(i)) for i in range(4)]
        decision = RejectOnOverload(2).decide(batch, now=5.0)
        assert ids(decision.serve) == [0, 1]
        assert ids(decision.reject) == [2, 3]

    def test_degrade_overflow(self):
        batch = [arrival(i, float(i)) for i in range(4)]
        decision = DegradeOnOverload(3).decide(batch, now=5.0)
        assert ids(decision.serve) == [0, 1, 2]
        assert ids(decision.degrade) == [3]

    def test_oldest_first_priority(self):
        # Callers pass queued-then-new arrivals; the head of the list gets
        # the serve slots, so queued arrivals outrank newer ones.
        queued = arrival(7, 0.0)
        fresh = arrival(8, 2.0)
        decision = RejectOnOverload(1).decide([queued, fresh], now=2.0)
        assert ids(decision.serve) == [7]
        assert ids(decision.reject) == [8]


class TestDeadlineQueue:
    def test_overflow_requeues_until_deadline(self):
        policy = DeadlineQueue(1, deadline=1.0)
        batch = [arrival(0, 0.0), arrival(1, 0.2), arrival(2, 0.4)]
        decision = policy.decide(batch, now=0.5)
        assert ids(decision.serve) == [0]
        assert ids(decision.requeue) == [1, 2]
        assert decision.expire == []

    def test_past_deadline_expires(self):
        policy = DeadlineQueue(1, deadline=1.0)
        stale = arrival(1, 0.0)
        held = arrival(2, 1.5)
        decision = policy.decide([arrival(0, 0.0), stale, held], now=2.0)
        assert ids(decision.expire) == [1]
        assert ids(decision.requeue) == [2]

    def test_age_exactly_at_deadline_still_queues(self):
        policy = DeadlineQueue(1, deadline=1.0)
        decision = policy.decide([arrival(0, 0.0), arrival(1, 1.0)], now=2.0)
        assert ids(decision.requeue) == [1]
