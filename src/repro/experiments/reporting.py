"""Plain-text reports in the shape of the paper's figures and tables."""

from __future__ import annotations

from collections.abc import Mapping

from repro.experiments.runner import AlgorithmStats
from repro.experiments.sweeps import SweepResult

#: Paper's Table II column order.
TABLE2_ORDER = ["lp-packing", "random-u", "random-v", "gg"]


def _format_value(value: float) -> str:
    return f"{value:10.2f}"


def format_sweep_table(result: SweepResult, title: str = "") -> str:
    """Render a sweep as a fixed-width table: one row per algorithm.

    Mirrors a Fig. 1 panel: the x-axis grid across the columns, one utility
    series per algorithm.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"(reps={result.repetitions}, varying {result.label}, "
        f"mean utility per grid point)"
    )
    header = f"{result.label:>12s}" + "".join(
        f"{str(value):>11s}" for value in result.values
    )
    lines.append(header)
    for algorithm in result.algorithms():
        row = f"{algorithm:>12s}"
        for value in result.series(algorithm):
            row += " " + _format_value(value)
        lines.append(row)
    return "\n".join(lines)


def format_utility_table(
    stats: Mapping[str, AlgorithmStats],
    title: str = "",
    order: list[str] | None = None,
) -> str:
    """Render fixed-instance results in the paper's Table II layout.

    Header names and value cells share one column width (12, grown to fit
    the longest algorithm name), so every value's right edge lines up under
    its algorithm name.  (The cells used to render 11 wide under 12-wide
    headers — a 10-char value plus one space — drifting the columns right
    by one character per algorithm.)
    """
    if order is None:
        order = [name for name in TABLE2_ORDER if name in stats]
        order += [name for name in stats if name not in order]
    width = max([12, *(len(name) for name in order)])
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("Algorithm " + "".join(f"{name:>{width}s}" for name in order))
    lines.append(
        "Utility   "
        + "".join(f"{stats[name].mean_utility:>{width}.2f}" for name in order)
    )
    lines.append(
        "Std       "
        + "".join(f"{stats[name].std_utility:>{width}.2f}" for name in order)
    )
    lines.append(
        "Pairs     "
        + "".join(f"{stats[name].mean_pairs:>{width}.1f}" for name in order)
    )
    lines.append(
        "Time (s)  "
        + "".join(f"{stats[name].mean_runtime:>{width}.3f}" for name in order)
    )
    return "\n".join(lines)


def format_ranking(stats: Mapping[str, AlgorithmStats]) -> str:
    """One line: algorithms by decreasing mean utility."""
    ranked = sorted(stats.values(), key=lambda s: -s.mean_utility)
    return " > ".join(f"{s.algorithm} ({s.mean_utility:.2f})" for s in ranked)


def format_serve_table(report) -> str:
    """Render a :class:`~repro.service.report.ServeReport` tick by tick.

    One row per tick (batch shape, admission outcomes, utility, audits)
    plus a footer with the latency SLO numbers and session totals.
    """
    lines = [
        (
            f"serve: online={report.online_algorithm} "
            f"admission={report.admission_policy} "
            f"defrag={report.defrag_schedule} "
            f"oracle={report.oracle_algorithm}"
        ),
        (
            f"bootstrap: utility={report.initial_utility:.2f} "
            f"({report.initial_seconds * 1e3:.0f} ms)"
        ),
        (
            f"{'tick':>4} {'t':>8} {'batch':>5} {'arr':>4} {'acc':>4} "
            f"{'emp':>4} {'deg':>4} {'rej':>4} {'exp':>4} {'que':>4} "
            f"{'|U|':>6} {'|V|':>5} {'pairs':>6} {'utility':>10} "
            f"{'oracle':>10} {'dfg':>3} {'ms':>7} {'ok':>2}"
        ),
    ]
    for record in report.records:
        oracle = (
            f"{record.oracle_utility:>10.2f}"
            if record.oracle_utility is not None
            else f"{'-':>10}"
        )
        defrag = "sup" if (
            record.defrag_moves is not None
            and record.defrag_moves.get("superseded")
        ) else ("yes" if record.defrag else "-")
        lines.append(
            f"{record.tick:>4} {record.decision_time:>8.2f} "
            f"{record.batch_size:>5} {record.arrivals:>4} "
            f"{record.accepted:>4} {record.empty:>4} {record.degraded:>4} "
            f"{record.rejected:>4} {record.expired:>4} {record.requeued:>4} "
            f"{record.num_users:>6} {record.num_events:>5} "
            f"{record.num_pairs:>6} {record.utility:>10.2f} {oracle} "
            f"{defrag:>3} {record.seconds * 1e3:>7.1f} "
            f"{'y' if record.feasible else 'N':>2}"
        )
    p50 = report.p50_latency
    p99 = report.p99_latency
    aps = report.arrivals_per_second
    lines.append(
        "latency: "
        + (f"p50={p50 * 1e3:.2f} ms " if p50 is not None else "p50=- ")
        + (f"p99={p99 * 1e3:.2f} ms " if p99 is not None else "p99=- ")
        + (f"throughput={aps:.1f} arrivals/s" if aps is not None else "")
    )
    counts = report.outcome_counts()
    lines.append(
        "outcomes: "
        + " ".join(f"{key}={value}" for key, value in counts.items())
        + f" requeues={report.total_requeues}"
    )
    lines.append(
        f"defrag: ran={report.defrag_count} "
        f"superseded={report.superseded_defrags} "
        f"switching_pairs={report.switching_pairs_total} "
        f"switching_spend={report.switching_spend_total:.2f}"
    )
    lines.append(
        f"final utility: {report.final_utility:.2f} "
        f"(feasible={report.all_feasible})"
    )
    return "\n".join(lines)


def sweep_to_csv(result: SweepResult) -> str:
    """CSV export of a sweep (one row per algorithm/value pair)."""
    lines = ["parameter,value,algorithm,mean_utility,std_utility,mean_runtime_s"]
    for value, point in zip(result.values, result.stats):
        for name, stat in point.items():
            lines.append(
                f"{result.parameter},{value},{name},"
                f"{stat.mean_utility:.6f},{stat.std_utility:.6f},"
                f"{stat.mean_runtime:.6f}"
            )
    return "\n".join(lines)
