"""Serving reports: latency SLOs, throughput and admission accounting.

The synchronous simulator reports utility retention; a serving loop is
additionally judged on *answers*: how fast each arrival got one
(p50/p99 latency), how many per second the loop sustains, and what
admission control did under burst (rejections, degrades, requeues,
expiries).  :class:`ServeReport` carries all of it —

* one :class:`ArrivalRecord` per answered arrival (latency samples ride
  here), and
* one :class:`ServeTickRecord` per tick (batch shape, pipeline moves,
  utility, audits, switching-cost spend),

sharing the :func:`repro.experiments.persistence.report_to_dict` envelope
with the replay/simulation reports, so CI artifacts aggregate uniformly.

Latency is *measurement* time (monotonic) and varies run to run; every
decision-derived field is deterministic under a fixed seed and virtual
clock.  :meth:`ServeReport.determinism_fingerprint` projects out exactly
the decision-derived fields, so the reproducibility gate in
``bench_serve.py`` can compare two runs without tripping on timing noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.experiments.persistence import report_to_dict


@dataclass
class ArrivalRecord:
    """One answered arrival (see :class:`~repro.service.requests.ServeResponse`)."""

    user_id: int
    tick: int
    outcome: str
    events: tuple[int, ...]
    latency_seconds: float
    timestamp: float
    requeues: int = 0


@dataclass
class ServeTickRecord:
    """Measurements of one served tick.

    Attributes:
        tick: tick number (0-based).
        decision_time: virtual/decision time at which the batch flushed.
        batch_size: requests in the flushed batch (churn + arrivals).
        operations: the coalesced tick delta's operation counts.
        arrivals: arrivals answered this tick (including expiries).
        accepted / degraded / rejected / expired / empty: admission
            outcome counts among them.
        requeued: arrivals pushed to a later tick (not yet answered).
        num_users / num_events / num_pairs: platform sizes after the tick.
        repair_moves: targeted-repair move counts (None: superseded before
            repair ran — does not happen under cooperative supersession).
        defrag: whether the defragmentation pass started this tick.
        defrag_moves: its accumulated move counts (``superseded: True``
            when a newer churn batch cut it short at a pass boundary).
        switching_pairs / switching_spend: revocation accounting of the
            tick's defrag (0 when no penalty is configured).
        utility: arrangement utility at the end of the tick's pipeline.
        oracle_utility: full re-solve utility (None off-cadence).
        seconds: monotonic time of the admission + serve stage (the
            background pipeline is excluded — it overlaps the next tick).
        feasible: full Definition 4 audit of the end-of-tick arrangement.
        parity_mismatches: index arrays differing from a fresh build (None
            when the parity check is off; empty list = bit-identical).
    """

    tick: int
    decision_time: float
    batch_size: int
    operations: dict
    arrivals: int
    accepted: int
    degraded: int
    rejected: int
    expired: int
    empty: int
    requeued: int
    num_users: int
    num_events: int
    num_pairs: int
    repair_moves: dict | None
    defrag: bool
    defrag_moves: dict | None
    switching_pairs: int
    switching_spend: float
    utility: float
    oracle_utility: float | None
    seconds: float
    feasible: bool
    parity_mismatches: list[str] | None


@dataclass
class ServeReport:
    """All tick and arrival records of one serving session."""

    #: :class:`~repro.experiments.persistence.ReportEnvelope` discriminator.
    envelope_kind: ClassVar[str] = "serve"

    online_algorithm: str
    admission_policy: str
    defrag_schedule: str
    oracle_algorithm: str
    switching_penalty: float
    initial_utility: float
    initial_seconds: float
    records: list[ServeTickRecord] = field(default_factory=list)
    arrivals: list[ArrivalRecord] = field(default_factory=list)
    wall_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Latency / throughput aggregates (measurement time)
    # ------------------------------------------------------------------
    def latency_quantile(self, q: float) -> float | None:
        """Latency quantile in seconds over all answered arrivals."""
        if not self.arrivals:
            return None
        samples = [record.latency_seconds for record in self.arrivals]
        return float(np.quantile(samples, q))

    @property
    def p50_latency(self) -> float | None:
        return self.latency_quantile(0.5)

    @property
    def p99_latency(self) -> float | None:
        return self.latency_quantile(0.99)

    @property
    def arrivals_per_second(self) -> float | None:
        """Answered arrivals over the session's monotonic wall time."""
        if not self.arrivals or self.wall_seconds <= 0.0:
            return None
        return len(self.arrivals) / self.wall_seconds

    # ------------------------------------------------------------------
    # Admission accounting (decision-derived, deterministic)
    # ------------------------------------------------------------------
    def outcome_counts(self) -> dict[str, int]:
        counts = {
            "accepted": 0,
            "empty": 0,
            "degraded": 0,
            "rejected": 0,
            "expired": 0,
        }
        for record in self.arrivals:
            counts[record.outcome] = counts.get(record.outcome, 0) + 1
        return counts

    @property
    def all_answered(self) -> bool:
        """Every arrival carries exactly one terminal outcome record."""
        return all(record.outcome in (
            "accepted",
            "empty",
            "degraded",
            "rejected",
            "expired",
        ) for record in self.arrivals)

    @property
    def total_requeues(self) -> int:
        return sum(record.requeues for record in self.arrivals)

    @property
    def switching_spend_total(self) -> float:
        return sum(record.switching_spend for record in self.records)

    @property
    def switching_pairs_total(self) -> int:
        return sum(record.switching_pairs for record in self.records)

    @property
    def defrag_count(self) -> int:
        return sum(1 for record in self.records if record.defrag)

    @property
    def superseded_defrags(self) -> int:
        return sum(
            1
            for record in self.records
            if record.defrag_moves is not None
            and record.defrag_moves.get("superseded")
        )

    @property
    def all_feasible(self) -> bool:
        return all(record.feasible for record in self.records)

    @property
    def all_parity(self) -> bool:
        return all(
            not record.parity_mismatches
            for record in self.records
            if record.parity_mismatches is not None
        )

    @property
    def final_utility(self) -> float:
        if not self.records:
            return self.initial_utility
        return self.records[-1].utility

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def determinism_fingerprint(self) -> dict:
        """Decision-derived projection for bit-reproducibility checks.

        Excludes every monotonic measurement (latencies, tick seconds,
        wall time); two fixed-seed virtual-clock runs must compare equal
        on this projection.
        """
        return {
            "ticks": [
                {
                    "tick": record.tick,
                    "decision_time": record.decision_time,
                    "batch_size": record.batch_size,
                    "operations": record.operations,
                    "outcomes": [
                        record.accepted,
                        record.degraded,
                        record.rejected,
                        record.expired,
                        record.empty,
                        record.requeued,
                    ],
                    "utility": record.utility,
                    "defrag": record.defrag,
                    "switching_pairs": record.switching_pairs,
                    "switching_spend": record.switching_spend,
                }
                for record in self.records
            ],
            "arrivals": [
                {
                    "user_id": record.user_id,
                    "tick": record.tick,
                    "outcome": record.outcome,
                    "events": list(record.events),
                    "requeues": record.requeues,
                }
                for record in self.arrivals
            ],
        }

    def to_dict(self) -> dict:
        """JSON-ready snapshot (the serve bench / soak artifact)."""
        summary = {
            "online_algorithm": self.online_algorithm,
            "admission_policy": self.admission_policy,
            "defrag_schedule": self.defrag_schedule,
            "oracle_algorithm": self.oracle_algorithm,
            "switching_penalty": self.switching_penalty,
            "initial_utility": self.initial_utility,
            "initial_seconds": self.initial_seconds,
            "wall_seconds": self.wall_seconds,
            "p50_latency": self.p50_latency,
            "p99_latency": self.p99_latency,
            "arrivals_per_second": self.arrivals_per_second,
            "outcome_counts": self.outcome_counts(),
            "total_requeues": self.total_requeues,
            "switching_pairs_total": self.switching_pairs_total,
            "switching_spend_total": self.switching_spend_total,
            "defrag_count": self.defrag_count,
            "superseded_defrags": self.superseded_defrags,
            "final_utility": self.final_utility,
            "all_feasible": self.all_feasible,
            "all_parity": self.all_parity,
            "arrivals": [
                {
                    "user_id": record.user_id,
                    "tick": record.tick,
                    "outcome": record.outcome,
                    "events": list(record.events),
                    "latency_seconds": record.latency_seconds,
                    "timestamp": record.timestamp,
                    "requeues": record.requeues,
                }
                for record in self.arrivals
            ],
        }
        records = [
            {
                "tick": record.tick,
                "decision_time": record.decision_time,
                "batch_size": record.batch_size,
                "operations": record.operations,
                "arrivals": record.arrivals,
                "accepted": record.accepted,
                "degraded": record.degraded,
                "rejected": record.rejected,
                "expired": record.expired,
                "empty": record.empty,
                "requeued": record.requeued,
                "num_users": record.num_users,
                "num_events": record.num_events,
                "num_pairs": record.num_pairs,
                "repair_moves": record.repair_moves,
                "defrag": record.defrag,
                "defrag_moves": record.defrag_moves,
                "switching_pairs": record.switching_pairs,
                "switching_spend": record.switching_spend,
                "utility": record.utility,
                "oracle_utility": record.oracle_utility,
                "seconds": record.seconds,
                "feasible": record.feasible,
                "parity_mismatches": record.parity_mismatches,
            }
            for record in self.records
        ]
        return report_to_dict("serve", summary, records, records_key="ticks")
