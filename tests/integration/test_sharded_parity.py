"""Sharded vs dense index parity: identical bits, identical decisions.

The tentpole guarantee of the sharded index: under a fixed seed, every
algorithm makes the same decisions on a :class:`ShardedInstanceIndex` as on
the dense :class:`InstanceIndex`, for every shard size — and churn deltas
patch the sharded index to the same bits a from-scratch build produces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GGGreedy, LocalSearch, LPPacking, RandomU, RandomV
from repro.datagen import (
    ChurnConfig,
    SyntheticConfig,
    generate_churn_trace,
    generate_synthetic,
)
from repro.experiments.replay import (
    fresh_index_like,
    index_parity_mismatches,
    replay_trace,
)
from repro.model import InstanceIndex, ShardedInstanceIndex
from repro.model.delta import apply_delta

CONFIG = SyntheticConfig(num_users=240, num_events=40)
SHARD_SIZES = (1, 7, None)  # None -> one shard covering all users


def _pair(seed: int, shard_size: int | None):
    dense = generate_synthetic(CONFIG, seed=seed)
    dense.configure_index(sharded=False)
    sharded = generate_synthetic(CONFIG, seed=seed)
    size = CONFIG.num_users if shard_size is None else shard_size
    sharded.configure_index(sharded=True, shard_size=size)
    return dense, sharded


@pytest.mark.parametrize("shard_size", SHARD_SIZES)
def test_index_arrays_bit_identical(shard_size):
    dense, sharded = _pair(3, shard_size)
    di, si = dense.index, sharded.index
    assert isinstance(di, InstanceIndex)
    assert isinstance(si, ShardedInstanceIndex)
    for name in ShardedInstanceIndex.PARITY_ARRAYS:
        a, b = getattr(di, name), getattr(si, name)
        assert a.dtype == b.dtype, name
        assert np.array_equal(a, b), name
    assert di.user_pos == si.user_pos
    assert di.event_pos == si.event_pos


@pytest.mark.parametrize("shard_size", SHARD_SIZES)
def test_shard_slabs_match_dense_rows(shard_size):
    dense, sharded = _pair(4, shard_size)
    di, si = dense.index, sharded.index
    covered = 0
    for shard in si.iter_shards():
        assert np.array_equal(shard.W, di.W[shard.start : shard.stop])
        assert np.array_equal(shard.SI, di.SI[shard.start : shard.stop])
        assert np.array_equal(shard.bid_mask, di.bid_mask[shard.start : shard.stop])
        np.testing.assert_array_equal(
            shard.bid_indptr[-1] - shard.bid_indptr[0],
            di.bid_indptr[shard.stop] - di.bid_indptr[shard.start],
        )
        covered += shard.num_users
    assert covered == si.num_users


@pytest.mark.parametrize("shard_size", SHARD_SIZES)
@pytest.mark.parametrize(
    "factory",
    [
        lambda: GGGreedy(),
        lambda: LocalSearch(GGGreedy()),
        lambda: LPPacking(alpha=1.0, lp_backend="revised-simplex"),
        lambda: RandomU(),
        lambda: RandomV(),
    ],
    ids=["gg", "gg+ls", "lp-packing", "random-u", "random-v"],
)
def test_fixed_seed_arrangements_identical(shard_size, factory):
    dense, sharded = _pair(5, shard_size)
    a = factory().solve(dense, seed=11)
    b = factory().solve(sharded, seed=11)
    assert a.arrangement.pairs == b.arrangement.pairs
    assert a.utility == b.utility


def _trace(instance, seed):
    config = ChurnConfig(
        num_batches=4,
        user_arrival_rate=8.0,
        user_departure_rate=8.0,
        rebid_rate=15.0,
        event_open_rate=1.0,
        event_close_rate=1.0,
        conflict_toggle_rate=1.0,
        burst_every=2,
        base=CONFIG,
    )
    return generate_churn_trace(instance, config, seed=seed)


@pytest.mark.parametrize("shard_size", SHARD_SIZES)
def test_churn_deltas_patch_sharded_index_bit_identical(shard_size):
    _dense, sharded = _pair(6, shard_size)
    trace = _trace(sharded, seed=7)
    instance = trace.initial
    for delta in trace.deltas:
        result = apply_delta(instance, delta)
        patched = result.instance.index
        assert isinstance(patched, ShardedInstanceIndex)
        assert patched.shard_size == instance.index.shard_size
        fresh = fresh_index_like(patched, result.instance)
        assert index_parity_mismatches(patched, fresh) == []
        instance = result.instance


def test_replay_identical_across_implementations():
    dense, sharded = _pair(8, 7)
    dense_report = replay_trace(_trace(dense, seed=9), seed=1, check_parity=True)
    sharded_report = replay_trace(_trace(sharded, seed=9), seed=1, check_parity=True)
    assert dense_report.all_parity and sharded_report.all_parity
    assert dense_report.all_feasible and sharded_report.all_feasible
    for a, b in zip(dense_report.records, sharded_report.records):
        assert a.incremental_utility == b.incremental_utility
        assert a.full_utility == b.full_utility
        assert a.num_pairs == b.num_pairs
