"""Unit tests for Event and User entities."""

import numpy as np
import pytest

from repro.model import Event, User


class TestEvent:
    def test_minimal_event(self):
        e = Event(event_id=1, capacity=10)
        assert e.event_id == 1
        assert e.capacity == 10
        assert e.attributes.size == 0
        assert e.start_time is None
        assert e.end_time is None

    def test_negative_capacity_raises(self):
        with pytest.raises(ValueError, match="capacity"):
            Event(event_id=1, capacity=-1)

    def test_zero_capacity_allowed(self):
        assert Event(event_id=1, capacity=0).capacity == 0

    def test_attributes_coerced_to_float_array(self):
        e = Event(event_id=1, capacity=5, attributes=[1, 2, 3])
        assert e.attributes.dtype == float
        assert e.attributes == pytest.approx([1.0, 2.0, 3.0])

    def test_non_vector_attributes_raise(self):
        with pytest.raises(ValueError, match="1-D"):
            Event(event_id=1, capacity=5, attributes=[[1, 2], [3, 4]])

    def test_temporal_attributes(self):
        e = Event(event_id=1, capacity=5, start_time=10.0, duration=2.5)
        assert e.end_time == pytest.approx(12.5)

    def test_start_without_duration_raises(self):
        with pytest.raises(ValueError, match="together"):
            Event(event_id=1, capacity=5, start_time=10.0)

    def test_duration_without_start_raises(self):
        with pytest.raises(ValueError, match="together"):
            Event(event_id=1, capacity=5, duration=1.0)

    def test_nonpositive_duration_raises(self):
        with pytest.raises(ValueError, match="duration"):
            Event(event_id=1, capacity=5, start_time=0.0, duration=0.0)

    def test_categories_frozen(self):
        e = Event(event_id=1, capacity=5, categories={"tech", "social"})
        assert e.categories == frozenset({"tech", "social"})

    def test_equality_includes_attributes(self):
        e1 = Event(event_id=1, capacity=5, attributes=[1.0])
        e2 = Event(event_id=1, capacity=5, attributes=[1.0])
        e3 = Event(event_id=1, capacity=5, attributes=[2.0])
        assert e1 == e2
        assert e1 != e3

    def test_hashable_by_id(self):
        e1 = Event(event_id=1, capacity=5)
        e2 = Event(event_id=1, capacity=9)
        assert hash(e1) == hash(e2)
        assert len({e1, Event(event_id=2, capacity=5)}) == 2


class TestUser:
    def test_minimal_user(self):
        u = User(user_id=7, capacity=3)
        assert u.user_id == 7
        assert u.bids == ()
        assert u.bid_set == frozenset()

    def test_negative_capacity_raises(self):
        with pytest.raises(ValueError, match="capacity"):
            User(user_id=1, capacity=-2)

    def test_bids_normalized_to_int_tuple(self):
        u = User(user_id=1, capacity=2, bids=[np.int64(3), 5])
        assert u.bids == (3, 5)
        assert all(isinstance(b, int) for b in u.bids)

    def test_duplicate_bids_raise(self):
        with pytest.raises(ValueError, match="duplicate"):
            User(user_id=1, capacity=2, bids=(3, 3))

    def test_bid_set_membership(self):
        u = User(user_id=1, capacity=2, bids=(3, 5))
        assert 3 in u.bid_set
        assert 4 not in u.bid_set

    def test_equality_and_hash(self):
        u1 = User(user_id=1, capacity=2, bids=(3,))
        u2 = User(user_id=1, capacity=2, bids=(3,))
        assert u1 == u2
        assert hash(u1) == hash(u2)
        assert u1 != User(user_id=1, capacity=2, bids=(4,))

    def test_equality_against_other_types(self):
        assert User(user_id=1, capacity=1) != "user"
        assert Event(event_id=1, capacity=1) != "event"
