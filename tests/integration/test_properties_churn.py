"""Randomized property tests: local search, online algorithms, churn repair.

Every property is checked over a battery of random instances/seeds:

* local-search ``improve`` only ever emits Definition-4-feasible
  arrangements, and utility is non-decreasing across every accepted move
  (verified pass by pass — each pass accepts a batch of moves);
* both online algorithms emit feasible arrangements under arbitrary
  arrival randomness;
* churn repair never leaves a violated pair behind, on steady and on
  adversarial-burst traces, and the delta-maintained index stays
  bit-identical to a from-scratch rebuild along the whole chain.
"""

import numpy as np
import pytest

from repro.core import (
    GGGreedy,
    OnlineGreedy,
    OnlineRandom,
    RandomU,
    apply_with_repair,
    improve,
)
from repro.datagen import ChurnConfig, generate_churn_trace
from repro.experiments import index_parity_mismatches
from repro.model import InstanceIndex
from tests.util import random_instance

SEEDS = range(6)


class TestLocalSearchProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_feasible_and_monotone_per_pass(self, seed):
        """Each single pass accepts a batch of moves; utility must never
        decrease across passes and feasibility must hold after each."""
        instance = random_instance(
            seed=seed, num_users=30, num_events=10, conflict_probability=0.4
        )
        arrangement = RandomU(seed=seed).solve(instance, seed=seed).arrangement
        utility = arrangement.utility()
        for _ in range(10):
            moves = improve(instance, arrangement, max_passes=1)
            assert arrangement.is_feasible(), arrangement.violations()[:3]
            new_utility = arrangement.utility()
            assert new_utility >= utility - 1e-12
            moved = moves["adds"] + moves["upgrades"] + moves["evictions"]
            if moved == 0:
                break
            # Accepted moves must each gain at least the minimum margin.
            assert new_utility > utility
            utility = new_utility

    @pytest.mark.parametrize("seed", SEEDS)
    def test_scoped_improve_feasible_and_monotone(self, seed):
        instance = random_instance(seed=seed, num_users=24, num_events=8)
        arrangement = GGGreedy().solve(instance, seed=seed).arrangement
        rng = np.random.default_rng(seed)
        users = rng.choice(
            instance.num_users, size=instance.num_users // 2, replace=False
        )
        events = rng.choice(
            instance.num_events, size=instance.num_events // 2, replace=False
        )
        before = arrangement.utility()
        improve(
            instance,
            arrangement,
            user_positions=users.tolist(),
            event_positions=events.tolist(),
            refill_events=True,
        )
        assert arrangement.is_feasible()
        assert arrangement.utility() >= before - 1e-12


class TestOnlineProperties:
    @pytest.mark.parametrize("algorithm_class", [OnlineGreedy, OnlineRandom])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_always_feasible(self, algorithm_class, seed):
        instance = random_instance(
            seed=seed,
            num_users=25,
            num_events=8,
            max_event_capacity=2,
            conflict_probability=0.5,
        )
        result = algorithm_class().solve(instance, seed=seed)
        assert result.arrangement.is_feasible(), (
            result.arrangement.violations()[:3]
        )
        assert result.utility >= 0.0


class TestChurnRepairProperties:
    @staticmethod
    def _config(burst: bool) -> ChurnConfig:
        return ChurnConfig(
            num_batches=6,
            user_arrival_rate=4.0,
            user_departure_rate=4.0,
            rebid_rate=6.0,
            event_open_rate=1.0,
            event_close_rate=1.0,
            conflict_toggle_rate=1.5,
            burst_every=3 if burst else 0,
            burst_user_multiplier=8.0,
            burst_event_close_fraction=0.4,
        )

    @pytest.mark.parametrize("burst", [False, True], ids=["steady", "burst"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_repair_never_leaves_violations_and_index_stays_exact(
        self, seed, burst
    ):
        instance = random_instance(
            seed=seed, num_users=30, num_events=10, conflict_probability=0.4
        )
        trace = generate_churn_trace(
            instance, self._config(burst), seed=seed + 50
        )
        arrangement = GGGreedy().solve(instance, seed=seed).arrangement
        current = instance
        for batch, delta in enumerate(trace.deltas):
            result, _moves = apply_with_repair(current, delta, arrangement)
            repaired = result.arrangement
            assert repaired.violations() == [], f"batch {batch} (seed {seed})"
            assert repaired.is_feasible()
            mismatches = index_parity_mismatches(
                result.instance.index, InstanceIndex(result.instance)
            )
            assert mismatches == [], f"batch {batch} (seed {seed}): {mismatches}"
            current, arrangement = result.instance, repaired

    @pytest.mark.parametrize("seed", SEEDS)
    def test_carryover_alone_is_feasible(self, seed):
        """Even before repair, the carried arrangement must be feasible."""
        from repro.model import apply_delta

        instance = random_instance(seed=seed, num_users=30, num_events=10)
        trace = generate_churn_trace(instance, self._config(True), seed=seed)
        arrangement = GGGreedy().solve(instance, seed=seed).arrangement
        current = instance
        for delta in trace.deltas:
            result = apply_delta(current, delta, arrangement)
            assert result.arrangement.violations() == []
            current, arrangement = result.instance, result.arrangement
