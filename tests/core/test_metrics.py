"""Unit tests for arrangement quality metrics."""

import pytest

from repro.core import (
    GGGreedy,
    event_fill_rates,
    interaction_lift,
    jain_fairness,
    mean_fill_rate,
    summarize,
    user_coverage,
    user_utilities,
)
from repro.core.metrics import event_social_cohesion
from repro.datagen import SyntheticConfig, generate_synthetic
from repro.model import Arrangement, Event, IGEPAInstance, MatrixConflict, TabulatedInterest, User
from repro.social import Graph
from tests.util import tiny_instance


@pytest.fixture
def instance():
    return tiny_instance()


class TestFillRates:
    def test_per_event_rates(self, instance):
        arrangement = Arrangement.from_pairs(instance, [(1, 10), (1, 11)])
        rates = event_fill_rates(instance, arrangement)
        assert rates[1] == pytest.approx(1.0)  # capacity 2, two attendees
        assert rates[2] == 0.0
        assert rates[3] == 0.0

    def test_mean_fill_rate(self, instance):
        arrangement = Arrangement.from_pairs(instance, [(1, 10), (3, 13)])
        # rates: event1 1/2, event2 0/1, event3 1/2 -> mean 1/3.
        assert mean_fill_rate(instance, arrangement) == pytest.approx(1 / 3)

    def test_zero_capacity_event_rate_is_zero(self):
        events = [Event(event_id=1, capacity=0)]
        users = [User(user_id=1, capacity=1)]
        inst = IGEPAInstance(
            events, users, MatrixConflict([]), TabulatedInterest({}), Graph(nodes=[1])
        )
        arrangement = Arrangement(inst)
        assert event_fill_rates(inst, arrangement)[1] == 0.0
        assert mean_fill_rate(inst, arrangement) == 0.0

    def test_empty_instance_mean_rate(self):
        inst = IGEPAInstance([], [], MatrixConflict([]), TabulatedInterest({}), Graph())
        assert mean_fill_rate(inst, Arrangement(inst)) == 0.0


class TestCoverageAndUtilities:
    def test_user_coverage(self, instance):
        arrangement = Arrangement.from_pairs(instance, [(1, 10), (3, 11)])
        assert user_coverage(instance, arrangement) == pytest.approx(0.5)

    def test_coverage_empty_instance(self):
        inst = IGEPAInstance([], [], MatrixConflict([]), TabulatedInterest({}), Graph())
        assert user_coverage(inst, Arrangement(inst)) == 0.0

    def test_user_utilities_sum_to_total(self, instance):
        arrangement = Arrangement.from_pairs(instance, [(1, 10), (3, 11), (3, 12)])
        per_user = user_utilities(instance, arrangement)
        assert sum(per_user.values()) == pytest.approx(arrangement.utility())
        assert per_user[13] == 0.0


class TestFairness:
    def test_equal_split_is_one(self, instance):
        # Two users with identical weight contributions.
        events = [Event(event_id=1, capacity=2)]
        users = [
            User(user_id=1, capacity=1, bids=(1,)),
            User(user_id=2, capacity=1, bids=(1,)),
        ]
        inst = IGEPAInstance(
            events,
            users,
            MatrixConflict([]),
            TabulatedInterest({(1, 1): 0.5, (1, 2): 0.5}),
            Graph(nodes=[1, 2]),
        )
        arrangement = Arrangement.from_pairs(inst, [(1, 1), (1, 2)])
        assert jain_fairness(inst, arrangement) == pytest.approx(1.0)

    def test_winner_take_all_approaches_reciprocal(self):
        events = [Event(event_id=1, capacity=1)]
        users = [
            User(user_id=1, capacity=1, bids=(1,)),
            User(user_id=2, capacity=1, bids=(1,)),
        ]
        inst = IGEPAInstance(
            events,
            users,
            MatrixConflict([]),
            TabulatedInterest({(1, 1): 0.9, (1, 2): 0.9}),
            Graph(nodes=[1, 2]),
        )
        arrangement = Arrangement.from_pairs(inst, [(1, 1)])
        assert jain_fairness(inst, arrangement) == pytest.approx(0.5)

    def test_empty_arrangement_is_fair(self, instance):
        assert jain_fairness(instance, Arrangement(instance)) == 1.0

    def test_users_without_bids_excluded(self):
        events = [Event(event_id=1, capacity=1)]
        users = [
            User(user_id=1, capacity=1, bids=(1,)),
            User(user_id=2, capacity=1, bids=()),  # cannot ever receive
        ]
        inst = IGEPAInstance(
            events,
            users,
            MatrixConflict([]),
            TabulatedInterest({(1, 1): 0.9}),
            Graph(nodes=[1, 2]),
        )
        arrangement = Arrangement.from_pairs(inst, [(1, 1)])
        assert jain_fairness(inst, arrangement) == pytest.approx(1.0)


class TestSocialMetrics:
    def test_cohesion_of_friend_pair(self, instance):
        arrangement = Arrangement.from_pairs(instance, [(1, 10), (1, 11)])
        # 10 and 11 are friends -> cohesion 1.0 at event 1.
        assert event_social_cohesion(instance, arrangement, 1) == 1.0

    def test_cohesion_of_strangers(self, instance):
        arrangement = Arrangement.from_pairs(instance, [(3, 12), (3, 13)])
        assert event_social_cohesion(instance, arrangement, 3) == 0.0

    def test_cohesion_single_attendee_is_zero(self, instance):
        arrangement = Arrangement.from_pairs(instance, [(1, 10)])
        assert event_social_cohesion(instance, arrangement, 1) == 0.0

    def test_cohesion_rejects_degree_override_instances(self):
        inst = generate_synthetic(
            SyntheticConfig(num_events=5, num_users=10), seed=0
        )
        arrangement = Arrangement(inst)
        with pytest.raises(ValueError, match="degree overrides"):
            event_social_cohesion(inst, arrangement, 0)

    def test_interaction_lift_prefers_social_users(self, instance):
        # Assign only the most social user (11, degree 2/3).
        arrangement = Arrangement.from_pairs(instance, [(1, 11)])
        assert interaction_lift(instance, arrangement) > 1.0

    def test_interaction_lift_empty_is_one(self, instance):
        assert interaction_lift(instance, Arrangement(instance)) == 1.0


class TestSummarize:
    def test_all_fields_present_and_consistent(self, instance):
        result = GGGreedy().solve(instance)
        summary = summarize(instance, result.arrangement)
        assert summary["utility"] == pytest.approx(result.utility)
        assert summary["pairs"] == result.num_pairs
        assert 0.0 <= summary["user_coverage"] <= 1.0
        assert 0.0 <= summary["jain_fairness"] <= 1.0
        assert summary["mean_fill_rate"] >= 0.0
        assert summary["interaction_lift"] > 0.0
        assert summary["utility"] == pytest.approx(
            instance.beta * summary["interest_total"]
            + (1 - instance.beta) * summary["interaction_total"]
        )
