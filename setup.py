"""Setuptools shim.

The metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` works on environments whose setuptools
lacks the PEP 660 editable-wheel path (no ``wheel`` package available).
"""

from setuptools import setup

setup()
