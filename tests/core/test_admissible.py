"""Unit tests for admissible event set enumeration."""

import itertools

import pytest

from repro.core import (
    AdmissibleSetExplosion,
    enumerate_admissible_sets,
    enumerate_all_admissible_sets,
    is_admissible,
)
from repro.model import (
    Event,
    IGEPAInstance,
    MatrixConflict,
    NoConflict,
    TabulatedInterest,
    User,
)
from repro.social import Graph
from tests.util import random_instance, tiny_instance


def _instance(num_events, conflicts, user_capacity, bids):
    events = [Event(event_id=i, capacity=3) for i in range(num_events)]
    users = [User(user_id=0, capacity=user_capacity, bids=tuple(bids))]
    return IGEPAInstance(
        events,
        users,
        MatrixConflict(conflicts),
        TabulatedInterest({}, default=0.5),
        Graph(nodes=[0]),
    )


class TestEnumeration:
    def test_no_conflicts_enumerates_all_bounded_subsets(self):
        instance = _instance(3, [], 2, [0, 1, 2])
        sets = enumerate_admissible_sets(instance, instance.users[0])
        expected = {(0,), (1,), (2,), (0, 1), (0, 2), (1, 2)}
        assert set(sets) == expected

    def test_capacity_one_gives_singletons(self):
        instance = _instance(3, [], 1, [0, 1, 2])
        sets = enumerate_admissible_sets(instance, instance.users[0])
        assert set(sets) == {(0,), (1,), (2,)}

    def test_conflicting_pair_excluded(self):
        instance = _instance(3, [(0, 1)], 3, [0, 1, 2])
        sets = enumerate_admissible_sets(instance, instance.users[0])
        assert (0, 1) not in sets
        assert (0, 1, 2) not in sets
        assert {(0,), (1,), (2,), (0, 2), (1, 2)} == set(sets)

    def test_all_conflicting_gives_singletons_only(self):
        conflicts = [(0, 1), (0, 2), (1, 2)]
        instance = _instance(3, conflicts, 3, [0, 1, 2])
        sets = enumerate_admissible_sets(instance, instance.users[0])
        assert set(sets) == {(0,), (1,), (2,)}

    def test_zero_capacity_user_has_no_sets(self):
        instance = _instance(3, [], 0, [0, 1])
        assert enumerate_admissible_sets(instance, instance.users[0]) == []

    def test_no_bids_gives_no_sets(self):
        instance = _instance(3, [], 2, [])
        assert enumerate_admissible_sets(instance, instance.users[0]) == []

    def test_empty_set_is_not_included(self):
        instance = _instance(2, [], 2, [0])
        sets = enumerate_admissible_sets(instance, instance.users[0])
        assert () not in sets

    def test_sets_are_sorted_tuples(self):
        instance = _instance(4, [], 3, [3, 1, 2])
        sets = enumerate_admissible_sets(instance, instance.users[0])
        for s in sets:
            assert tuple(sorted(s)) == s

    def test_deterministic_order(self):
        instance = _instance(4, [(1, 2)], 3, [0, 1, 2, 3])
        first = enumerate_admissible_sets(instance, instance.users[0])
        second = enumerate_admissible_sets(instance, instance.users[0])
        assert first == second

    def test_downward_closure(self):
        """Every nonempty subset of an admissible set must be admissible."""
        instance = random_instance(seed=5, num_events=7, conflict_probability=0.4)
        for user in instance.users:
            sets = set(enumerate_admissible_sets(instance, user))
            for s in sets:
                for size in range(1, len(s)):
                    for subset in itertools.combinations(s, size):
                        assert subset in sets

    def test_matches_brute_force(self):
        instance = random_instance(seed=11, num_events=6, conflict_probability=0.5)
        for user in instance.users:
            enumerated = set(enumerate_admissible_sets(instance, user))
            brute = set()
            for size in range(1, user.capacity + 1):
                for combo in itertools.combinations(sorted(user.bids), size):
                    if is_admissible(instance, user, combo):
                        brute.add(combo)
            assert enumerated == brute


class TestExplosionGuard:
    def test_explosion_raises(self):
        # 16 mutually non-conflicting bids with capacity 16: 2^16 - 1 subsets.
        events = list(range(16))
        instance = _instance(16, [], 16, events)
        with pytest.raises(AdmissibleSetExplosion, match="user 0"):
            enumerate_admissible_sets(instance, instance.users[0], max_sets=1000)

    def test_cap_allows_exact_count(self):
        instance = _instance(3, [], 3, [0, 1, 2])
        # 7 nonempty subsets; cap of exactly 7 must not raise.
        sets = enumerate_admissible_sets(instance, instance.users[0], max_sets=7)
        assert len(sets) == 7


class TestEnumerateAll:
    def test_keyed_by_user(self):
        instance = tiny_instance()
        collections = enumerate_all_admissible_sets(instance)
        assert set(collections) == {10, 11, 12, 13}
        # user 10 bids (1, 2) which conflict; capacity 1 -> singletons.
        assert set(collections[10]) == {(1,), (2,)}
        # user 11 bids (1, 3), no conflict, capacity 2.
        assert set(collections[11]) == {(1,), (3,), (1, 3)}
        # user 13: single bid.
        assert collections[13] == [(3,)]


class TestIsAdmissible:
    def test_rejects_empty(self):
        instance = tiny_instance()
        assert not is_admissible(instance, instance.user_by_id[11], [])

    def test_rejects_over_capacity(self):
        instance = tiny_instance()
        user = instance.user_by_id[10]  # capacity 1
        assert not is_admissible(instance, user, [1, 2])

    def test_rejects_non_bid(self):
        instance = tiny_instance()
        assert not is_admissible(instance, instance.user_by_id[13], [1])

    def test_rejects_conflicting(self):
        instance = tiny_instance()
        user = instance.user_by_id[12]
        assert is_admissible(instance, user, [2, 3])
        # make 2, 3 conflict in a fresh instance to verify rejection
        from repro.model import MatrixConflict as MC

        conflicted = IGEPAInstance(
            instance.events,
            instance.users,
            MC([(2, 3)]),
            instance.interest,
            instance.social,
        )
        assert not is_admissible(conflicted, user, [2, 3])

    def test_rejects_duplicates(self):
        instance = tiny_instance()
        assert not is_admissible(instance, instance.user_by_id[11], [1, 1])

    def test_accepts_valid(self):
        instance = tiny_instance()
        assert is_admissible(instance, instance.user_by_id[11], [1, 3])
        assert is_admissible(instance, instance.user_by_id[11], [3])
