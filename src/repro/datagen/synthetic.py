"""Synthetic IGEPA workloads (§IV "Synthetic Datasets", Table I).

The generator follows the paper's recipe exactly:

* capacities of events and users ~ uniform over ``{1, ..., max}``;
* every pair of events conflicts independently with probability ``p_cf``;
* every pair of users is befriended independently with probability ``p_deg``;
* interest values of users in (bid) events ~ uniform on [0, 1];
* **dependent bids**: "users tend to bid a group of similar and often
  conflicting events to ensure that they can eventually attend some (one or
  multiple) of the events.  So the bids of users are sampled dependently from
  several sets of conflicting events."  Each user picks a *conflict cluster*
  (an event plus events conflicting with it) and draws most bids inside it,
  topping up with uniform events.

Defaults are Table I: ``|V| = 200, |U| = 2000, max c_v = 50, max c_u = 4,
p_cf = 0.3, p_deg = 0.5``.

For large user counts the social network is not materialized; user degrees
are drawn from the exact ``Binomial(|U| - 1, p_deg)`` marginal instead (the
utility depends on degrees only — DESIGN.md §5).  Pass
``materialize_social_graph=True`` to build the explicit Erdős–Rényi graph.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.model.conflicts import MatrixConflict
from repro.model.entities import Event, User
from repro.model.instance import IGEPAInstance
from repro.model.interest import TabulatedInterest
from repro.social.generators import empty_graph, erdos_renyi_graph


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic generator (defaults = Table I).

    Attributes:
        num_events: ``|V|``.
        num_users: ``|U|``.
        max_event_capacity: ``max c_v`` (capacities uniform in 1..max).
        max_user_capacity: ``max c_u`` (capacities uniform in 1..max).
        conflict_probability: ``p_cf``.
        friend_probability: ``p_deg``.
        beta: utility balance parameter.
        min_bids / max_bids: bid-list length range per user (uniform).
        cluster_bid_fraction: fraction of each user's bids drawn from their
            conflict cluster (the rest are uniform over all events).
        materialize_social_graph: build the explicit ER graph instead of
            sampling degrees from the Binomial marginal.
    """

    num_events: int = 200
    num_users: int = 2000
    max_event_capacity: int = 50
    max_user_capacity: int = 4
    conflict_probability: float = 0.3
    friend_probability: float = 0.5
    beta: float = 0.5
    min_bids: int = 2
    max_bids: int = 6
    cluster_bid_fraction: float = 0.8
    materialize_social_graph: bool = False

    def __post_init__(self) -> None:
        if self.num_events < 0 or self.num_users < 0:
            raise ValueError("num_events and num_users must be >= 0")
        if self.max_event_capacity < 1 or self.max_user_capacity < 1:
            raise ValueError("capacities must be >= 1")
        if not 0.0 <= self.conflict_probability <= 1.0:
            raise ValueError(f"p_cf must be in [0, 1], got {self.conflict_probability}")
        if not 0.0 <= self.friend_probability <= 1.0:
            raise ValueError(f"p_deg must be in [0, 1], got {self.friend_probability}")
        if not 1 <= self.min_bids <= self.max_bids:
            raise ValueError("need 1 <= min_bids <= max_bids")
        if not 0.0 <= self.cluster_bid_fraction <= 1.0:
            raise ValueError("cluster_bid_fraction must be in [0, 1]")

    def with_overrides(self, **kwargs) -> "SyntheticConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **kwargs)


TABLE1_DEFAULTS = SyntheticConfig()


def _conflict_clusters(
    event_ids: list[int], conflict: MatrixConflict, rng: np.random.Generator
) -> list[list[int]]:
    """Sets of mutually *often*-conflicting events for dependent bidding.

    Each cluster is a random seed event together with every event that
    conflicts with it.  Clusters therefore contain many conflicting pairs —
    exactly the bid shape the paper observed on real EBSNs.
    """
    clusters: list[list[int]] = []
    seeds = list(event_ids)
    rng.shuffle(seeds)
    for seed_id in seeds[: max(1, len(event_ids) // 10)]:
        members = [seed_id] + [
            other
            for other in event_ids
            if conflict.conflicts_ids(seed_id, other)
        ]
        clusters.append(members)
    return clusters


def generate_synthetic(
    config: SyntheticConfig | None = None,
    seed: int | None = None,
    **overrides,
) -> IGEPAInstance:
    """Generate a synthetic IGEPA instance.

    Args:
        config: generator configuration (Table I defaults when omitted).
        seed: RNG seed; identical seeds and configs give identical instances.
        **overrides: convenience field overrides applied to ``config``
            (e.g. ``generate_synthetic(seed=0, num_users=5000)``).
    """
    if config is None:
        config = TABLE1_DEFAULTS
    if overrides:
        config = config.with_overrides(**overrides)
    rng = np.random.default_rng(seed)

    event_ids = list(range(config.num_events))
    user_ids = list(range(config.num_users))

    events = [
        Event(
            event_id=event_id,
            capacity=int(rng.integers(1, config.max_event_capacity + 1)),
        )
        for event_id in event_ids
    ]
    conflict = MatrixConflict.sample(event_ids, config.conflict_probability, rng)
    clusters = (
        _conflict_clusters(event_ids, conflict, rng) if event_ids else []
    )

    users: list[User] = []
    interest_values: dict[tuple[int, int], float] = {}
    for user_id in user_ids:
        capacity = int(rng.integers(1, config.max_user_capacity + 1))
        bids: tuple[int, ...] = ()
        if event_ids:
            wanted = int(rng.integers(config.min_bids, config.max_bids + 1))
            wanted = min(wanted, len(event_ids))
            from_cluster = int(round(wanted * config.cluster_bid_fraction))
            chosen: set[int] = set()
            if clusters and from_cluster:
                cluster = clusters[int(rng.integers(len(clusters)))]
                # The seed (cluster[0]) conflicts with every other member, so
                # including it guarantees the bid list is "a group of ...
                # often conflicting events" as the paper describes.
                chosen.add(cluster[0])
                rest = cluster[1:]
                take = min(from_cluster - 1, len(rest))
                if take > 0:
                    chosen.update(
                        int(e) for e in rng.choice(rest, size=take, replace=False)
                    )
            while len(chosen) < wanted:
                chosen.add(int(rng.integers(len(event_ids))))
            bids = tuple(sorted(chosen))
        users.append(User(user_id=user_id, capacity=capacity, bids=bids))
        for event_id in bids:
            interest_values[(event_id, user_id)] = float(rng.uniform())

    if config.materialize_social_graph:
        social = erdos_renyi_graph(user_ids, config.friend_probability, rng=rng)
        degrees = None
    else:
        social = empty_graph(user_ids)
        n = config.num_users
        if n > 1:
            raw = rng.binomial(n - 1, config.friend_probability, size=n)
            degrees = {
                user_id: float(raw[i]) / (n - 1) for i, user_id in enumerate(user_ids)
            }
        else:
            degrees = {user_id: 0.0 for user_id in user_ids}

    return IGEPAInstance(
        events=events,
        users=users,
        conflict=conflict,
        interest=TabulatedInterest(interest_values),
        social=social,
        beta=config.beta,
        name=f"synthetic(|V|={config.num_events},|U|={config.num_users},"
        f"pcf={config.conflict_probability},pdeg={config.friend_probability})",
        degrees=degrees,
    )
