"""Ablation: empirical validation of the 1/4 approximation ratio (Theorem 2).

On instances small enough for the exact ILP, the bench measures
``E[LP-packing] / OPT`` and ``E[LP-packing] / LP*`` at the theoretical
``α = 1/2`` and the empirical ``α = 1``.  Theorem 2 guarantees the α = 1/2
ratio is at least 1/4; in practice both settings land far above the bound.
"""

import numpy as np

from benchmarks.conftest import write_report
from repro.core import ExactILP, LPPacking, empirical_approximation_ratio
from repro.datagen import SyntheticConfig, generate_synthetic

NUM_INSTANCES = 5
REPS_PER_INSTANCE = 60
CONFIG = SyntheticConfig(
    num_events=8,
    num_users=12,
    max_event_capacity=3,
    max_user_capacity=3,
    conflict_probability=0.4,
)


def _run_validation():
    rows = []
    for alpha in (0.5, 1.0):
        ratios_lp = []
        ratios_exact = []
        for index in range(NUM_INSTANCES):
            instance = generate_synthetic(CONFIG, seed=100 + index)
            report = empirical_approximation_ratio(
                instance,
                LPPacking(alpha=alpha),
                repetitions=REPS_PER_INSTANCE,
                seed=0,
                compute_exact=True,
            )
            ratios_lp.append(report.ratio_vs_lp)
            ratios_exact.append(report.ratio_vs_exact)
        rows.append(
            (
                alpha,
                float(np.mean(ratios_lp)),
                float(min(ratios_lp)),
                float(np.mean(ratios_exact)),
                float(min(ratios_exact)),
            )
        )
    return rows


def bench_approx_ratio(bench_once):
    rows = bench_once(_run_validation)

    for alpha, _mean_lp, min_lp, _mean_exact, min_exact in rows:
        if alpha == 0.5:
            # Theorem 2: E[ALG] >= (1/4) LP* — check the worst instance too.
            assert min_lp >= 0.25, f"1/4 bound violated: {min_lp:.3f}"
            assert min_exact >= 0.25

    lines = [
        f"Theorem 2 validation: {NUM_INSTANCES} small instances x "
        f"{REPS_PER_INSTANCE} runs, exact optimum by branch-and-bound",
        f"{'α':>6} {'mean vs LP*':>12} {'min vs LP*':>11} "
        f"{'mean vs OPT':>12} {'min vs OPT':>11}",
    ]
    for alpha, mean_lp, min_lp, mean_exact, min_exact in rows:
        lines.append(
            f"{alpha:>6.2f} {mean_lp:>11.1%} {min_lp:>10.1%} "
            f"{mean_exact:>11.1%} {min_exact:>10.1%}"
        )
    lines.append("guarantee at α = 1/2: ratio >= α(1-α) = 25%")
    write_report("approx_ratio", "\n".join(lines))


def bench_exact_solver_nodes(bench_once):
    """Companion measurement: branch-and-bound effort on these instances."""

    def run():
        nodes = []
        for index in range(NUM_INSTANCES):
            instance = generate_synthetic(CONFIG, seed=100 + index)
            result = ExactILP().solve(instance)
            nodes.append(result.details["nodes_explored"])
        return nodes

    nodes = bench_once(run)
    assert all(count >= 1 for count in nodes)
    write_report(
        "exact_nodes",
        "Branch-and-bound nodes per small instance: "
        + ", ".join(map(str, nodes)),
    )
