"""Dynamic-platform benchmark: online arrivals + churn + defragmentation.

Runs the :func:`repro.experiments.simulate.simulate` loop twice over one
fixed-seed churn trace — capacity shocks, interest drift and adversarial
shrink bursts included — once with the defragmentation schedule off and
once with a periodic schedule on.  Results land in
``benchmarks/output/BENCH_dynamic.json`` so the trajectory accumulates
across PRs.

Run as a script (CI does, with ``--quick``)::

    python benchmarks/bench_dynamic.py --quick --seed 0 \
        --out benchmarks/output/BENCH_dynamic.json

or through pytest-benchmark with the rest of the bench suite::

    python -m pytest benchmarks/bench_dynamic.py

Hard gates, independent of machine speed:

* **per-tick feasibility** — every tick of both runs passes the full
  Definition 4 audit;
* **index parity** — the delta-patched index is bit-identical to a
  from-scratch rebuild on every tick of both runs (the check adds the same
  rebuild cost to each side, so the recorded tick timings stay
  comparable);
* **defrag pays** — long-horizon utility retention with the schedule on is
  at least the retention with it off;
* an ungated context row repeats the defrag-on run with the resolver's
  benchmark LP maintained incrementally (``defrag_lp_incremental=True``:
  churn deltas patch the program in place and each defrag re-solve starts
  from the previous basis) — feasibility and parity are still asserted;
* **long-horizon retention** (full mode only, |U| = 4000 over ≥ 50
  batches) — the defrag-on platform retains ≥ 95% of the periodic full
  re-solve oracle.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.core.online import OnlineGreedy
from repro.datagen import (
    ChurnConfig,
    SyntheticConfig,
    generate_churn_trace,
    generate_synthetic,
)
from repro.experiments.persistence import write_bench_artifact
from repro.experiments.simulate import PeriodicDefrag, simulate

MIN_RETENTION = 0.95


def _trace(num_users: int, num_batches: int, seed: int):
    """A fixed-seed dynamic trace: ~1% churn/tick + drift + capacity shocks."""
    instance = generate_synthetic(
        SyntheticConfig(num_users=num_users), seed=seed
    )
    config = ChurnConfig(
        num_batches=num_batches,
        user_arrival_rate=num_users / 100,
        user_departure_rate=num_users / 100,
        rebid_rate=num_users / 50,
        event_open_rate=2.0,
        event_close_rate=2.0,
        conflict_toggle_rate=2.0,
        drift_rate=num_users / 100,
        capacity_shock_rate=2.0,
        burst_every=max(4, num_batches // 5),
        burst_capacity_shrink_fraction=0.2,
    )
    return generate_churn_trace(instance, config, seed=seed + 1)


def run_bench(
    seed: int = 0, quick: bool = False, min_retention: float = MIN_RETENTION
) -> dict:
    """Run the defrag-off/defrag-on pair; returns the JSON-ready report."""
    num_users = 1000 if quick else 4000
    num_batches = 12 if quick else 50
    oracle_every = 4 if quick else 10
    defrag_period = 4 if quick else 10
    trace = _trace(num_users, num_batches, seed)

    off = simulate(
        trace,
        OnlineGreedy(),
        seed=seed,
        oracle_every=oracle_every,
        check_parity=True,
    )
    on = simulate(
        trace,
        OnlineGreedy(),
        seed=seed,
        oracle_every=oracle_every,
        defrag=PeriodicDefrag(defrag_period),
        check_parity=True,
    )
    # Context row (ungated): the same defrag-on run with the resolver's LP
    # maintained incrementally — every churn batch delta-patches the
    # program and each defrag re-solve starts from the previous basis.
    on_incremental = simulate(
        trace,
        OnlineGreedy(),
        seed=seed,
        oracle_every=oracle_every,
        defrag=PeriodicDefrag(defrag_period),
        defrag_lp_incremental=True,
        check_parity=True,
    )
    runs = (
        ("defrag-off", off),
        ("defrag-on", on),
        ("defrag-on-ilp", on_incremental),
    )
    for label, run in runs:
        assert run.all_feasible, f"{label}: a tick's arrangement is infeasible"
        retention = run.long_horizon_retention
        print(
            f"|U|={num_users:>5} x{num_batches} ticks {label:<13} "
            f"retention={'n/a' if retention is None else format(retention, '.1%')} "
            f"acceptance={run.arrival_acceptance_rate:.1%} "
            f"defrags={run.defrag_count} "
            f"tick={run.mean_tick_seconds * 1e3:.1f}ms"
        )
    for label, run in runs:
        assert run.all_parity, (
            f"{label}: patched index differs from a from-scratch build "
            "along the trace"
        )
    assert on.long_horizon_retention >= off.long_horizon_retention, (
        f"defragmentation lost utility: on={on.long_horizon_retention:.3f} "
        f"< off={off.long_horizon_retention:.3f}"
    )
    if not quick:
        assert on.long_horizon_retention >= min_retention, (
            f"defrag-on platform retains only {on.long_horizon_retention:.1%} "
            f"of the full re-solve oracle (required: {min_retention:.0%})"
        )
    return {
        "seed": seed,
        "quick": quick,
        "num_users": num_users,
        "num_batches": num_batches,
        "oracle_every": oracle_every,
        "defrag_period": defrag_period,
        "min_required_retention": None if quick else min_retention,
        "retention_defrag_off": off.long_horizon_retention,
        "retention_defrag_on": on.long_horizon_retention,
        "retention_defrag_on_incremental": on_incremental.long_horizon_retention,
        "acceptance_defrag_off": off.arrival_acceptance_rate,
        "acceptance_defrag_on": on.arrival_acceptance_rate,
        "defrag_off": off.to_dict(),
        "defrag_on": on.to_dict(),
        "defrag_on_incremental": on_incremental.to_dict(),
    }


def bench_dynamic_platform(bench_once):
    """pytest-benchmark entry: quick pair, same assertions as the script."""
    report = bench_once(run_bench, seed=0, quick=True)
    assert report["retention_defrag_on"] >= report["retention_defrag_off"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--min-retention",
        type=float,
        default=MIN_RETENTION,
        help="hard floor on defrag-on long-horizon retention (full mode)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent / "output" / "BENCH_dynamic.json",
    )
    args = parser.parse_args()
    report = run_bench(
        seed=args.seed, quick=args.quick, min_retention=args.min_retention
    )
    write_bench_artifact("bench_dynamic", report, path=args.out)
    print(f"[written to {args.out}]")


if __name__ == "__main__":
    main()
