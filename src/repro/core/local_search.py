"""Local-search post-processing for arrangements.

Not part of the paper's algorithm, but a natural improvement layer a
production EBSN platform would bolt on: take any feasible arrangement and
apply utility-increasing moves until a local optimum.  Three move types:

* **add** — insert a feasible missing (event, user) pair (weights are
  nonnegative, so additions never hurt);
* **upgrade** — replace one of a user's assigned events with a strictly
  heavier bid of theirs that is feasible after the swap;
* **evict** — at a full event, replace its lightest attendee with a heavier
  waiting bidder (the evicted user keeps their other events).

Each accepted move raises the utility by at least ``min_gain``, so the
search terminates; a pass cap bounds the worst case.  Wrapped as
:class:`LocalSearch`, it composes with any base algorithm::

    LocalSearch(RandomU()).solve(instance)   # name: "random-u+ls"
"""

from __future__ import annotations

import numpy as np

from repro.core.base import ArrangementAlgorithm
from repro.model.arrangement import Arrangement
from repro.model.instance import IGEPAInstance

_MIN_GAIN = 1e-9


def _try_add_moves(instance: IGEPAInstance, arrangement: Arrangement) -> int:
    accepted = 0
    for user in instance.users:
        if arrangement.load(user.user_id) >= user.capacity:
            continue
        for event_id in user.bids:
            if (event_id, user.user_id) in arrangement:
                continue
            if instance.weight(user.user_id, event_id) <= _MIN_GAIN:
                continue
            if arrangement.can_add(event_id, user.user_id):
                arrangement.add(event_id, user.user_id, check=False)
                accepted += 1
    return accepted


def _try_upgrade_moves(instance: IGEPAInstance, arrangement: Arrangement) -> int:
    accepted = 0
    for user in instance.users:
        assigned = sorted(arrangement.events_of(user.user_id))
        for current in assigned:
            current_weight = instance.weight(user.user_id, current)
            best_candidate = None
            best_gain = _MIN_GAIN
            for candidate in user.bids:
                if (candidate, user.user_id) in arrangement:
                    continue
                gain = instance.weight(user.user_id, candidate) - current_weight
                if gain <= best_gain:
                    continue
                arrangement.remove(current, user.user_id)
                feasible = arrangement.can_add(candidate, user.user_id)
                arrangement.add(current, user.user_id, check=False)
                if feasible:
                    best_candidate = candidate
                    best_gain = gain
            if best_candidate is not None:
                arrangement.remove(current, user.user_id)
                arrangement.add(best_candidate, user.user_id, check=False)
                accepted += 1
    return accepted


def _try_evict_moves(instance: IGEPAInstance, arrangement: Arrangement) -> int:
    accepted = 0
    for event in instance.events:
        if arrangement.attendance(event.event_id) < event.capacity:
            continue  # not full: add moves already cover it
        attendees = arrangement.users_of(event.event_id)
        if not attendees:
            continue
        lightest = min(
            attendees, key=lambda u: (instance.weight(u, event.event_id), u)
        )
        lightest_weight = instance.weight(lightest, event.event_id)
        best_bidder = None
        best_gain = _MIN_GAIN
        for user_id in instance.bidders(event.event_id):
            if user_id in attendees:
                continue
            gain = instance.weight(user_id, event.event_id) - lightest_weight
            if gain <= best_gain:
                continue
            arrangement.remove(event.event_id, lightest)
            feasible = arrangement.can_add(event.event_id, user_id)
            arrangement.add(event.event_id, lightest, check=False)
            if feasible:
                best_bidder = user_id
                best_gain = gain
        if best_bidder is not None:
            arrangement.remove(event.event_id, lightest)
            arrangement.add(event.event_id, best_bidder, check=False)
            accepted += 1
    return accepted


def improve(
    instance: IGEPAInstance,
    arrangement: Arrangement,
    max_passes: int = 20,
) -> dict:
    """Run add/upgrade/evict passes in place until a local optimum.

    Returns:
        Move counts: ``{"adds": ..., "upgrades": ..., "evictions": ...,
        "passes": ...}``.
    """
    totals = {"adds": 0, "upgrades": 0, "evictions": 0, "passes": 0}
    for _ in range(max_passes):
        moved = 0
        adds = _try_add_moves(instance, arrangement)
        upgrades = _try_upgrade_moves(instance, arrangement)
        evictions = _try_evict_moves(instance, arrangement)
        moved = adds + upgrades + evictions
        totals["adds"] += adds
        totals["upgrades"] += upgrades
        totals["evictions"] += evictions
        totals["passes"] += 1
        if moved == 0:
            break
    return totals


class LocalSearch(ArrangementAlgorithm):
    """Decorator algorithm: run ``base``, then local-search improve.

    Args:
        base: any arrangement algorithm whose output seeds the search.
        max_passes: cap on improvement passes.
    """

    def __init__(self, base: ArrangementAlgorithm, max_passes: int = 20):
        super().__init__(seed=base.seed)
        self.base = base
        self.max_passes = max_passes
        self.name = f"{base.name}+ls"

    def _solve(
        self, instance: IGEPAInstance, rng: np.random.Generator
    ) -> tuple[Arrangement, dict]:
        seed = int(rng.integers(2**31))
        base_result = self.base.solve(instance, seed=seed)
        arrangement = base_result.arrangement
        base_utility = base_result.utility
        moves = improve(instance, arrangement, max_passes=self.max_passes)
        details = dict(base_result.details)
        details.update(
            base_algorithm=self.base.name,
            base_utility=base_utility,
            local_search_moves=moves,
        )
        return arrangement, details
