"""Exception types for the EBSN data model."""

from __future__ import annotations


class ModelError(ValueError):
    """Base class for data-model validation failures."""


class InstanceValidationError(ModelError):
    """An IGEPA instance violates a structural invariant (duplicate ids,
    dangling bids, invalid capacities, ...)."""


class ArrangementError(ModelError):
    """An arrangement operation would violate the bid, capacity or conflict
    constraint of Definition 4."""


class IndexCapacityError(ModelError):
    """A dense ``(num_users, num_events)`` index was requested beyond the
    dense cell cap; the instance needs the sharded index."""
