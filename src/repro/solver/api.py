"""Unified solve entry points with backend selection and presolve.

``solve_lp(lp, backend="auto")`` is what the rest of the library calls.
Backends:

* ``"simplex"`` — from-scratch two-phase tableau simplex (dense, reference).
* ``"revised-simplex"`` — from-scratch revised simplex; the constraint
  representation (dense array vs pure-NumPy CSC) is picked by problem size:
  above :data:`~repro.solver.standard_form.DENSE_CELL_LIMIT` cells
  (``m * (n + m)``, phase-1 artificials included) the sparse path is used
  (see :func:`repro.solver.standard_form.prefer_sparse`).
* ``"revised-simplex-dense"`` / ``"revised-simplex-sparse"`` — the revised
  simplex with the representation forced (benchmarking, parity tests).
* ``"scipy"`` — HiGHS via ``scipy.optimize.linprog``.
* ``"auto"`` — scipy when importable, otherwise revised simplex.

Algorithm-level callers select a backend by name, e.g.
``LPPacking(lp_backend="revised-simplex-sparse")`` or
``ExactILP(lp_backend="revised-simplex")``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.solver.presolve import PresolveStatus, presolve as run_presolve
from repro.solver.problem import LinearProgram
from repro.solver.result import LPSolution, SolveStatus
from repro.solver.revised_simplex import RevisedSimplexOptions, solve_lp_revised_simplex
from repro.solver.scipy_backend import scipy_available, solve_lp_scipy
from repro.solver.simplex import SimplexOptions, solve_lp_simplex

BACKENDS = (
    "auto",
    "simplex",
    "revised-simplex",
    "revised-simplex-dense",
    "revised-simplex-sparse",
    "scipy",
)


def resolve_backend(backend: str) -> str:
    """Turn ``"auto"`` into a concrete backend name.

    Raises:
        ValueError: for unknown backend names.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if backend == "auto":
        return "scipy" if scipy_available() else "revised-simplex"
    return backend


def _solver_for(
    backend: str, warm_start: tuple[str, ...] | None = None
) -> Callable[[LinearProgram], LPSolution]:
    name = resolve_backend(backend)
    if name == "simplex":
        return lambda lp: solve_lp_simplex(lp, SimplexOptions())
    if name == "revised-simplex":
        return lambda lp: solve_lp_revised_simplex(
            lp, RevisedSimplexOptions(), warm_start=warm_start
        )
    if name == "revised-simplex-dense":
        return lambda lp: solve_lp_revised_simplex(
            lp, RevisedSimplexOptions(sparse=False), warm_start=warm_start
        )
    if name == "revised-simplex-sparse":
        return lambda lp: solve_lp_revised_simplex(
            lp, RevisedSimplexOptions(sparse=True), warm_start=warm_start
        )
    return solve_lp_scipy


def solve_lp(
    lp: LinearProgram,
    backend: str = "auto",
    *,
    presolve: bool = True,
    warm_start: tuple[str, ...] | None = None,
) -> LPSolution:
    """Solve a linear program (the relaxation, if integer markers are present).

    Args:
        lp: the program to solve (never mutated).
        backend: one of :data:`BACKENDS`.
        presolve: run the reduction passes first (recommended; fixed
            variables and singleton rows are common in branch-and-bound
            subproblems, and the implied-bound pass is what keeps the wide
            benchmark LP at ``|U| + |V|`` standard-form rows).
        warm_start: ``basis_labels`` from a previous solution of a
            structurally similar program; the revised-simplex backends use
            matching labels as a crash basis (presolve keeps variable and
            constraint names, so the labels survive the reduction).  Other
            backends ignore the hint.

    Returns:
        An :class:`LPSolution` whose ``x`` is aligned with ``lp``'s variables
        and whose objective is in ``lp``'s own sense.
    """
    solver = _solver_for(backend, warm_start)
    if not presolve:
        return solver(lp)

    reduction = run_presolve(lp)
    if reduction.status is PresolveStatus.INFEASIBLE:
        return LPSolution(SolveStatus.INFEASIBLE, backend="presolve")
    reduced = reduction.lp
    assert reduced is not None
    if reduced.num_variables == 0:
        # Everything was fixed; feasibility of the remaining empty program was
        # already verified by presolve.
        return LPSolution(
            SolveStatus.OPTIMAL,
            objective_value=reduction.objective_offset,
            x=reduction.recover_x(np.empty(0), lp.num_variables),
            backend="presolve",
        )
    solution = solver(reduced)
    if not solution.is_optimal:
        return LPSolution(
            solution.status,
            iterations=solution.iterations,
            backend=solution.backend,
            diagnostics=solution.diagnostics,
        )
    return LPSolution(
        SolveStatus.OPTIMAL,
        objective_value=solution.objective_value + reduction.objective_offset,
        x=reduction.recover_x(solution.x, lp.num_variables),
        iterations=solution.iterations,
        backend=solution.backend,
        basis_labels=solution.basis_labels,
        diagnostics=solution.diagnostics,
    )
