"""Network metrics used by the IGEPA utility and the analysis tooling.

The central quantity is Definition 6 of the paper::

    D(G, u) = |{u' : (u, u') in E}| / (|U| - 1)        for |U| > 1

i.e. the degree of ``u`` normalised by the maximum possible degree — which is
exactly degree centrality [Freeman 1978, ref. 9 in the paper].
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.social.graph import Graph, Node


def degree_of_potential_interaction(graph: Graph, node: Node) -> float:
    """Definition 6: normalised degree of ``node`` in the social network.

    Returns 0.0 when the graph has fewer than two nodes (the paper's formula
    is stated for ``|U| > 1``; a 1-user network offers no interaction).

    Raises:
        KeyError: if ``node`` is not in ``graph``.
    """
    n = graph.number_of_nodes
    degree = graph.degree(node)  # raises KeyError for unknown nodes
    if n <= 1:
        return 0.0
    return degree / (n - 1)


def interaction_vector(graph: Graph, nodes: list[Node] | None = None) -> np.ndarray:
    """``D(G, u)`` for every node, as a float array aligned with ``nodes``.

    The IGEPA weight ``w(u, v)`` needs ``D(G, u)`` for every user; computing
    the whole vector once avoids ``|M|`` repeated degree lookups.

    Args:
        graph: the social network.
        nodes: ordering of the output (defaults to ``graph.nodes()``).
    """
    ordering = graph.nodes() if nodes is None else nodes
    return np.array(
        [degree_of_potential_interaction(graph, node) for node in ordering],
        dtype=float,
    )


def degree_centrality(graph: Graph) -> dict[Node, float]:
    """Degree centrality of every node (same normalisation as Definition 6)."""
    return {
        node: degree_of_potential_interaction(graph, node) for node in graph.nodes()
    }


def average_degree(graph: Graph) -> float:
    """Mean degree; 0.0 for the empty graph."""
    n = graph.number_of_nodes
    if n == 0:
        return 0.0
    return 2.0 * graph.number_of_edges / n


def density(graph: Graph) -> float:
    """Fraction of possible edges present; 0.0 for graphs with < 2 nodes."""
    n = graph.number_of_nodes
    if n < 2:
        return 0.0
    return graph.number_of_edges / (n * (n - 1) / 2)


def clustering_coefficient(graph: Graph, node: Node) -> float:
    """Local clustering coefficient: fraction of neighbour pairs that are tied."""
    neighbors = graph.neighbors(node)
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = 0
    neighbor_list = list(neighbors)
    for i, u in enumerate(neighbor_list):
        for v in neighbor_list[i + 1 :]:
            if graph.has_edge(u, v):
                links += 1
    return links / (k * (k - 1) / 2)


def connected_components(graph: Graph) -> list[set[Node]]:
    """Connected components via BFS, largest first."""
    seen: set[Node] = set()
    components: list[set[Node]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component = {start}
        queue = deque([start])
        seen.add(start)
        while queue:
            current = queue.popleft()
            for neighbor in graph.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    component.add(neighbor)
                    queue.append(neighbor)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Map degree -> number of nodes with that degree."""
    histogram: dict[int, int] = {}
    for node in graph.nodes():
        d = graph.degree(node)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram
