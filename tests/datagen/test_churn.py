"""Unit tests for the churn trace generator."""

import pytest

from repro.datagen import (
    ChurnConfig,
    SyntheticConfig,
    generate_churn_trace,
    generate_synthetic,
)
from repro.model import CosineInterest, apply_delta
from tests.util import random_instance

SMALL = SyntheticConfig(num_events=15, num_users=60)
RATES = dict(
    user_arrival_rate=4.0,
    user_departure_rate=4.0,
    rebid_rate=6.0,
    event_open_rate=1.0,
    event_close_rate=1.0,
    conflict_toggle_rate=1.5,
)


def small_trace(seed=0, **overrides):
    instance = generate_synthetic(SMALL, seed=seed)
    config = ChurnConfig(num_batches=8, **{**RATES, **overrides})
    return generate_churn_trace(instance, config, seed=seed + 100)


class TestConfig:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="rebid_rate"):
            ChurnConfig(rebid_rate=-1.0)

    def test_bad_burst_fraction_rejected(self):
        with pytest.raises(ValueError, match="burst_event_close_fraction"):
            ChurnConfig(burst_event_close_fraction=1.5)

    def test_with_overrides(self):
        config = ChurnConfig().with_overrides(num_batches=3)
        assert config.num_batches == 3


class TestGeneration:
    def test_batch_count_and_summary(self):
        trace = small_trace()
        assert len(trace.deltas) == 8
        summary = trace.summary()
        assert summary["batches"] == 8
        assert summary["add_users"] > 0
        assert summary["remove_users"] > 0
        assert summary["add_bids"] > 0

    def test_deterministic_under_seed(self):
        first = small_trace(seed=7)
        second = small_trace(seed=7)
        assert first.deltas == second.deltas

    def test_different_seeds_differ(self):
        assert small_trace(seed=1).deltas != small_trace(seed=2).deltas

    def test_every_delta_applies_cleanly(self):
        """The mirror state must stay consistent with the real instance:
        every generated delta validates and applies against the chain."""
        trace = small_trace(seed=3)
        instance = trace.initial
        for delta in trace.deltas:
            instance = apply_delta(instance, delta).instance
        assert instance.num_users >= 1
        assert instance.num_events >= 1

    def test_ids_are_never_reused(self):
        trace = small_trace(seed=4)
        seen_users = {u.user_id for u in trace.initial.users}
        seen_events = {e.event_id for e in trace.initial.events}
        for delta in trace.deltas:
            for user in delta.add_users:
                assert user.user_id not in seen_users
                seen_users.add(user.user_id)
            for event in delta.add_events:
                assert event.event_id not in seen_events
                seen_events.add(event.event_id)

    def test_burst_batches_are_larger(self):
        steady = small_trace(seed=5, burst_every=0)
        bursty = small_trace(
            seed=5,
            burst_every=4,
            burst_user_multiplier=10.0,
            burst_event_close_fraction=0.4,
        )
        burst_arrivals = [
            len(d.add_users) for i, d in enumerate(bursty.deltas) if (i + 1) % 4 == 0
        ]
        steady_arrivals = [len(d.add_users) for d in steady.deltas]
        assert max(burst_arrivals) > max(steady_arrivals)

    def test_requires_tabulated_interest(self):
        instance = random_instance(seed=0)
        instance.interest = CosineInterest()
        with pytest.raises(TypeError, match="TabulatedInterest"):
            generate_churn_trace(instance, ChurnConfig(num_batches=1), seed=0)

    def test_graph_backed_instance_supported(self):
        """random_instance has no degree overrides; arrivals then carry no
        degree entries and the deltas still apply."""
        instance = random_instance(seed=6, num_users=20, num_events=8)
        trace = generate_churn_trace(
            instance, ChurnConfig(num_batches=3, **RATES), seed=1
        )
        current = instance
        for delta in trace.deltas:
            assert delta.degrees == ()
            current = apply_delta(current, delta).instance


class TestDynamicDeltaKinds:
    """Drift, capacity shocks and shrink bursts ride on the same trace."""

    DYNAMIC = dict(
        drift_rate=8.0,
        capacity_shock_rate=3.0,
        user_capacity_shock_rate=2.0,
        burst_every=4,
        burst_capacity_shrink_fraction=0.3,
    )

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError, match="drift_rate"):
            ChurnConfig(drift_rate=-1.0)
        with pytest.raises(ValueError, match="capacity_shock_rate"):
            ChurnConfig(capacity_shock_rate=-0.5)
        with pytest.raises(ValueError, match="burst_capacity_shrink_fraction"):
            ChurnConfig(burst_capacity_shrink_fraction=2.0)

    def test_default_knobs_emit_no_dynamic_ops(self):
        trace = small_trace(seed=3)
        summary = trace.summary()
        assert summary["event_capacity_updates"] == 0
        assert summary["user_capacity_updates"] == 0

    def test_dynamic_trace_emits_and_applies(self):
        trace = small_trace(seed=3, **self.DYNAMIC)
        summary = trace.summary()
        assert summary["event_capacity_updates"] > 0
        assert summary["user_capacity_updates"] > 0
        assert summary["interest_updates"] > 0
        current = trace.initial
        for delta in trace.deltas:
            current = apply_delta(current, delta).instance

    def test_mirror_capacities_track_the_model(self):
        """Capacity updates always target the entity's *current* capacity
        mirror, so replaying the deltas reproduces the generator's view."""
        trace = small_trace(seed=9, **self.DYNAMIC)
        current = trace.initial
        for delta in trace.deltas:
            current = apply_delta(current, delta).instance
        # Every capacity change along the way stuck (or was overridden by a
        # later one): spot-check the final instance against the last update
        # per entity.
        last_event_cap = {}
        last_user_cap = {}
        for delta in trace.deltas:
            for event_id, capacity in delta.set_event_capacity:
                last_event_cap[event_id] = capacity
            for user_id, capacity in delta.set_user_capacity:
                last_user_cap[user_id] = capacity
        for event_id, capacity in last_event_cap.items():
            if event_id in current.event_by_id:
                assert current.event_by_id[event_id].capacity == capacity
        for user_id, capacity in last_user_cap.items():
            if user_id in current.user_by_id:
                assert current.user_by_id[user_id].capacity == capacity

    def test_burst_shrinks_capacities(self):
        """Burst batches carry shrink updates (halved capacities)."""
        steady = small_trace(seed=5, drift_rate=0.0)
        bursty = small_trace(
            seed=5,
            burst_every=4,
            burst_capacity_shrink_fraction=0.5,
        )
        burst_updates = [
            len(d.set_event_capacity)
            for i, d in enumerate(bursty.deltas)
            if (i + 1) % 4 == 0
        ]
        assert max(burst_updates) > 0
        assert all(
            len(d.set_event_capacity) == 0 for d in steady.deltas
        )

    def test_drift_targets_existing_bid_pairs(self):
        """Drift entries re-weight pairs that exist on the pre-batch
        platform (they survive into the successor unless churned away)."""
        trace = small_trace(seed=7, drift_rate=10.0)
        current = trace.initial
        for delta in trace.deltas:
            rebid_removed = set(delta.remove_bids)
            new_bid_pairs = {(u, e) for u, e in delta.add_bids} | {
                (user.user_id, e) for user in delta.add_users for e in user.bids
            }
            for event_id, user_id, value in delta.interest:
                assert 0.0 <= value <= 1.0
                if (user_id, event_id) in new_bid_pairs:
                    continue  # interest backing a new bid
                # a drift entry: the pair was a live bid before the batch
                assert (user_id, event_id) not in rebid_removed
                user = current.user_by_id[user_id]
                assert event_id in user.bid_set
            current = apply_delta(current, delta).instance
