"""Unit tests for the Meetup-like simulator (the paper's real-data recipe)."""

import numpy as np
import pytest

from repro.datagen import SF_DEFAULTS, MeetupConfig, generate_meetup
from repro.model import TimeIntervalConflict

SMALL = MeetupConfig(num_events=25, num_users=80, num_groups=6)


class TestSFDefaults:
    def test_paper_scale(self):
        assert SF_DEFAULTS.num_events == 190
        assert SF_DEFAULTS.num_users == 2811

    @pytest.mark.slow
    def test_full_scale_generation(self):
        instance = generate_meetup(seed=0)
        assert instance.num_events == 190
        assert instance.num_users == 2811


class TestPaperRecipe:
    """Each clause of §IV 'Real Dataset' must hold on the generated data."""

    @pytest.fixture(scope="class")
    def instance(self):
        return generate_meetup(SMALL, seed=1)

    def test_conflict_is_time_overlap(self, instance):
        assert isinstance(instance.conflict, TimeIntervalConflict)
        events = instance.events
        for i, first in enumerate(events):
            for second in events[i + 1 :]:
                overlap = (
                    first.start_time < second.end_time
                    and second.start_time < first.end_time
                )
                assert instance.conflicts(first.event_id, second.event_id) == overlap

    def test_unspecified_capacities_equal_num_users(self, instance):
        capacities = {e.capacity for e in instance.events}
        unspecified = [c for c in capacities if c == instance.num_users]
        specified = [c for c in capacities if c != instance.num_users]
        assert unspecified, "some events should fall back to |U|"
        assert specified, "some events should specify a capacity"
        assert all(
            SMALL.min_specified_capacity <= c <= SMALL.max_specified_capacity
            for c in specified
        )

    def test_user_capacity_is_twice_attended(self, instance):
        """c_u = 2k and the k attended events are among the bids, pairwise
        non-overlapping (a user cannot have attended two overlapping events)."""
        for user in instance.users:
            assert user.capacity % 2 == 0
            assert user.capacity >= 2  # everyone attended at least one event
            assert len(user.bids) <= user.capacity

    def test_bids_are_attended_plus_most_interesting(self, instance):
        """|bids| = c_u when enough distinct events exist: k attended plus
        c_u/2 = k extra (overlap between top-interest and attended can only
        shrink the list, never grow it)."""
        for user in instance.users:
            assert len(user.bids) >= user.capacity // 2
            assert len(user.bids) <= user.capacity

    def test_each_user_has_feasible_attended_subset(self, instance):
        """The attended part of every bid list must itself be conflict-free."""
        from repro.core import enumerate_admissible_sets

        for user in instance.users:
            sets = enumerate_admissible_sets(instance, user)
            assert sets, f"user {user.user_id} has no admissible set at all"
            best = max(len(s) for s in sets)
            assert best >= min(user.capacity // 2, 1)

    def test_interest_is_cosine_on_attributes(self, instance):
        from repro.model import CosineInterest

        assert isinstance(instance.interest, CosineInterest)
        user = instance.users[0]
        event = instance.event_by_id[user.bids[0]]
        a, b = event.attributes, user.attributes
        expected = float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))
        assert instance.interest_of(event.event_id, user.user_id) == pytest.approx(
            np.clip(expected, 0.0, 1.0)
        )

    def test_degrees_from_common_groups(self):
        """Materialized graph and degree-union modes must agree exactly."""
        materialized = generate_meetup(
            SMALL.with_overrides(materialize_social_graph=True), seed=3
        )
        computed = generate_meetup(SMALL, seed=3)
        assert materialized.degrees_override is None
        assert computed.degrees_override is not None
        for user in materialized.users:
            assert computed.degree(user.user_id) == pytest.approx(
                materialized.degree(user.user_id)
            )

    def test_attendance_capped(self, instance):
        for user in instance.users:
            assert user.capacity <= 2 * SMALL.max_events_attended


class TestStructure:
    def test_determinism(self):
        a = generate_meetup(SMALL, seed=5)
        b = generate_meetup(SMALL, seed=5)
        assert [u.bids for u in a.users] == [u.bids for u in b.users]
        assert [e.start_time for e in a.events] == [e.start_time for e in b.events]
        assert a.degrees_override == b.degrees_override

    def test_seeds_differ(self):
        a = generate_meetup(SMALL, seed=5)
        b = generate_meetup(SMALL, seed=6)
        assert [u.bids for u in a.users] != [u.bids for u in b.users]

    def test_event_times_within_horizon(self):
        instance = generate_meetup(SMALL, seed=7)
        for event in instance.events:
            assert 0.0 <= event.start_time <= SMALL.horizon_days * 24.0
            assert 0.5 <= event.duration <= 8.0

    def test_attribute_vectors_are_distributions(self):
        instance = generate_meetup(SMALL, seed=8)
        for event in instance.events:
            assert event.attributes.shape == (SMALL.num_categories,)
            assert event.attributes.sum() == pytest.approx(1.0)
            assert np.all(event.attributes >= 0.0)
        for user in instance.users:
            assert user.attributes.sum() == pytest.approx(1.0)

    def test_admissible_set_counts_stay_reasonable(self):
        """The attendance cap must keep the benchmark LP tractable."""
        from repro.core import enumerate_all_admissible_sets

        instance = generate_meetup(SMALL, seed=9)
        collections = enumerate_all_admissible_sets(instance)
        worst = max(len(sets) for sets in collections.values())
        assert worst <= 2 ** (2 * SMALL.max_events_attended)


class TestConfigValidation:
    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            MeetupConfig(num_events=-1)

    def test_zero_groups_rejected(self):
        with pytest.raises(ValueError, match="group"):
            MeetupConfig(num_groups=0)

    def test_capacity_range_rejected(self):
        with pytest.raises(ValueError, match="min_specified_capacity"):
            MeetupConfig(min_specified_capacity=50, max_specified_capacity=10)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError, match="fraction"):
            MeetupConfig(capacity_specified_fraction=2.0)

    def test_low_attendance_mean_rejected(self):
        with pytest.raises(ValueError, match="mean_events_attended"):
            MeetupConfig(mean_events_attended=0.5)

    def test_overrides(self):
        config = SF_DEFAULTS.with_overrides(num_users=100)
        assert config.num_users == 100
        assert SF_DEFAULTS.num_users == 2811
