"""Ablation: the repair scan order in Algorithm 1 lines 4-7.

The paper scans users in an unspecified fixed order when dropping
assignments to overfull events.  This repository implements three orders
(DESIGN.md §5): the faithful user-order scan, a random shuffle, and a
weight-descending greedy repair.  On loose-capacity instances they coincide
(nothing to drop); this bench uses a heavily oversubscribed instance so the
choice matters, and quantifies how much.
"""

import numpy as np

from benchmarks.conftest import BENCH_SEED, write_report
from repro.core import LPPacking
from repro.core.lp_packing import REPAIR_ORDERS
from repro.datagen import SyntheticConfig, generate_synthetic

RUNS = 15
#: Severe oversubscription: 800 users, 20 events, <= 4 seats each.
CONFIG = SyntheticConfig(
    num_events=20, num_users=800, max_event_capacity=4, max_user_capacity=3
)


def _run_ablation():
    instance = generate_synthetic(CONFIG, seed=BENCH_SEED)
    rows = []
    for order in REPAIR_ORDERS:
        algorithm = LPPacking(alpha=1.0, repair_order=order)
        utilities = []
        dropped = []
        for seed in range(RUNS):
            result = algorithm.solve(instance, seed=seed)
            utilities.append(result.utility)
            dropped.append(
                result.details["num_sampled_pairs"]
                - result.details["num_surviving_pairs"]
            )
        rows.append(
            (order, float(np.mean(utilities)), float(np.std(utilities)),
             float(np.mean(dropped)))
        )
    return rows


def bench_ablation_repair(bench_once):
    rows = bench_once(_run_ablation)
    by_order = {order: mean for order, mean, _s, _d in rows}

    # Weight-descending repair keeps the heaviest pairs, so it can only help
    # (up to sampling noise) relative to the arbitrary user order.
    assert by_order["weight"] >= by_order["user"] * 0.99
    # All orders drop the same *number* of pairs per event (capacity is the
    # binding constraint), so utilities stay within a few percent.
    means = [mean for _o, mean, _s, _d in rows]
    assert max(means) <= min(means) * 1.10

    lines = [
        f"Ablation: repair scan order ({RUNS} runs, oversubscribed instance)",
        f"{'order':>8} {'mean utility':>13} {'std':>8} {'pairs dropped':>14}",
    ]
    for order, mean, std, drop in rows:
        lines.append(f"{order:>8} {mean:>13.2f} {std:>8.2f} {drop:>14.1f}")
    lines.append(
        "paper: fixed (unspecified) user scan order; 'user' is the faithful "
        "reading."
    )
    write_report("ablation_repair", "\n".join(lines))
