"""Branch-and-bound for (mixed-)integer programs over the LP substrate.

Used by :class:`repro.core.exact.ExactILP` to compute true optima of small
IGEPA instances — both to validate the LP-packing approximation ratio and as
the ``exact`` algorithm in the test suite.  The IGEPA ILP restricted to the
benchmark formulation is binary, so the implementation specializes nothing
beyond standard LP-based branch-and-bound:

* depth-first search (keeps the open list small),
* branching on the most fractional integer variable,
* pruning by the LP relaxation bound against the incumbent (nodes also
  carry their parent's relaxation bound, so dominated subtrees are pruned
  before their LP is ever solved),
* node limit with a reported optimality gap when hit; the gap is computed
  over the *live* open frontier (the stack) only — bounds of subtrees that
  were fully explored or pruned no longer count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.solver.api import solve_lp
from repro.solver.problem import LinearProgram
from repro.solver.result import ILPSolution, SolveStatus

_INTEGRALITY_TOL = 1e-6


@dataclass
class BranchAndBoundOptions:
    """Knobs for the search.

    Attributes:
        max_nodes: hard cap on explored nodes.
        lp_backend: backend used for every relaxation solve.
        integrality_tol: how far from an integer a value may be and still
            count as integral.
    """

    max_nodes: int = 100_000
    lp_backend: str = "auto"
    integrality_tol: float = _INTEGRALITY_TOL


def _most_fractional(
    lp: LinearProgram, x: np.ndarray, tol: float
) -> tuple[int, float] | None:
    """The integer variable whose value is farthest from integral, or None."""
    best: tuple[int, float] | None = None
    best_score = tol
    for variable in lp.variables:
        if not variable.is_integer:
            continue
        value = x[variable.index]
        fraction = abs(value - round(value))
        if fraction > best_score:
            best_score = fraction
            best = (variable.index, value)
    return best


def solve_ilp(
    lp: LinearProgram, options: BranchAndBoundOptions | None = None
) -> ILPSolution:
    """Solve ``lp`` to integral optimality (subject to ``max_nodes``).

    Variables without the integer marker stay continuous (mixed-integer
    solve).  The returned objective is in ``lp``'s own sense.
    """
    options = options or BranchAndBoundOptions()
    maximize = lp.maximize
    sign = 1.0 if maximize else -1.0

    def better(candidate: float, incumbent: float) -> bool:
        return sign * candidate > sign * incumbent + 1e-12

    incumbent_value = -math.inf if maximize else math.inf
    incumbent_x: np.ndarray | None = None
    nodes_explored = 0
    # Each stack entry is a map {var_index: (lower, upper)} of tightened
    # bounds plus the parent's relaxation bound — a valid bound for the whole
    # subtree, inherited until the node's own relaxation is solved.  The
    # stack IS the open frontier: popping a node (pruned, integral, branched
    # or infeasible) removes its bound from the frontier, so the gap reported
    # on NODE_LIMIT is computed over live subtrees only, never over subtrees
    # that were already closed.
    root_bound = math.inf if maximize else -math.inf
    stack: list[tuple[dict[int, tuple[float, float]], float]] = [({}, root_bound)]
    # Bounds of subtrees abandoned because their relaxation failed to solve;
    # they stay unresolved, so their bounds must keep counting toward the gap.
    unresolved_bounds: list[float] = []
    hit_node_limit = False

    while stack:
        if nodes_explored >= options.max_nodes:
            hit_node_limit = True
            break
        tightenings, parent_bound = stack.pop()
        if incumbent_x is not None and not better(parent_bound, incumbent_value):
            continue  # inherited bound already proves the subtree is dominated
        nodes_explored += 1

        node_lp = lp.copy()
        infeasible_node = False
        for index, (lower, upper) in tightenings.items():
            variable = node_lp.variables[index]
            variable.lower = max(variable.lower, lower)
            variable.upper = min(variable.upper, upper)
            if variable.lower > variable.upper:
                infeasible_node = True
                break
        if infeasible_node:
            continue

        relaxation = solve_lp(node_lp, backend=options.lp_backend)
        if relaxation.status is SolveStatus.INFEASIBLE:
            continue
        if relaxation.status is SolveStatus.UNBOUNDED:
            return ILPSolution(SolveStatus.UNBOUNDED, nodes_explored=nodes_explored)
        if not relaxation.is_optimal:
            hit_node_limit = True  # relaxation failed; treat as unresolved
            unresolved_bounds.append(parent_bound)
            continue

        bound = relaxation.objective_value
        if incumbent_x is not None and not better(bound, incumbent_value):
            continue  # the whole subtree cannot beat the incumbent

        branch = _most_fractional(node_lp, relaxation.x, options.integrality_tol)
        if branch is None:
            # Integral solution: snap the integer coordinates exactly.
            x = relaxation.x.copy()
            for variable in lp.variables:
                if variable.is_integer:
                    x[variable.index] = round(x[variable.index])
            value = lp.objective_value(x)
            if incumbent_x is None or better(value, incumbent_value):
                incumbent_value = value
                incumbent_x = x
            continue

        index, value = branch
        floor_bounds = dict(tightenings)
        lower_prev, upper_prev = floor_bounds.get(index, (-math.inf, math.inf))
        floor_bounds[index] = (lower_prev, min(upper_prev, math.floor(value)))
        ceil_bounds = dict(tightenings)
        ceil_bounds[index] = (max(lower_prev, math.ceil(value)), upper_prev)
        # Depth-first: push the ceiling child last so the "round up" branch is
        # explored first (tends to find packing incumbents quickly).  Both
        # children inherit this node's relaxation bound.
        stack.append((floor_bounds, bound))
        stack.append((ceil_bounds, bound))

    if incumbent_x is None:
        status = SolveStatus.NODE_LIMIT if hit_node_limit else SolveStatus.INFEASIBLE
        return ILPSolution(status, nodes_explored=nodes_explored)

    if hit_node_limit:
        frontier = [bound for _, bound in stack] + unresolved_bounds
        if frontier:
            best_bound = max(frontier) if maximize else min(frontier)
            # Frontier nodes that cannot beat the incumbent would be pruned,
            # so the incumbent itself caps how bad the true bound can be.
            best_bound = (
                max(best_bound, incumbent_value)
                if maximize
                else min(best_bound, incumbent_value)
            )
        else:
            best_bound = incumbent_value
        return ILPSolution(
            SolveStatus.NODE_LIMIT,
            objective_value=incumbent_value,
            x=incumbent_x,
            nodes_explored=nodes_explored,
            best_bound=best_bound,
        )
    return ILPSolution(
        SolveStatus.OPTIMAL,
        objective_value=incumbent_value,
        x=incumbent_x,
        nodes_explored=nodes_explored,
        best_bound=incumbent_value,
    )
