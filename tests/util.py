"""Shared instance factories for the test suite."""

from __future__ import annotations

import numpy as np

from repro.model import (
    Event,
    IGEPAInstance,
    MatrixConflict,
    TabulatedInterest,
    User,
)
from repro.social import Graph, erdos_renyi_graph


def tiny_instance(beta: float = 0.5) -> IGEPAInstance:
    """A 3-event / 4-user instance with one conflict, fully hand-checkable.

    Layout:
        events: 1 (cap 2), 2 (cap 1), 3 (cap 2); conflict (1, 2).
        users:  10 bids {1,2} cap 1; 11 bids {1,3} cap 2;
                12 bids {2,3} cap 2; 13 bids {3} cap 1.
        social: 10-11, 11-12 (so D: 10->1/3, 11->2/3, 12->1/3, 13->0).
    """
    events = [
        Event(event_id=1, capacity=2),
        Event(event_id=2, capacity=1),
        Event(event_id=3, capacity=2),
    ]
    users = [
        User(user_id=10, capacity=1, bids=(1, 2)),
        User(user_id=11, capacity=2, bids=(1, 3)),
        User(user_id=12, capacity=2, bids=(2, 3)),
        User(user_id=13, capacity=1, bids=(3,)),
    ]
    interest = TabulatedInterest(
        {
            (1, 10): 0.9,
            (2, 10): 0.4,
            (1, 11): 0.6,
            (3, 11): 0.8,
            (2, 12): 0.7,
            (3, 12): 0.3,
            (3, 13): 1.0,
        }
    )
    social = Graph(nodes=[10, 11, 12, 13], edges=[(10, 11), (11, 12)])
    return IGEPAInstance(
        events=events,
        users=users,
        conflict=MatrixConflict([(1, 2)]),
        interest=interest,
        social=social,
        beta=beta,
        name="tiny",
    )


def random_instance(
    seed: int,
    num_events: int = 6,
    num_users: int = 10,
    max_event_capacity: int = 3,
    max_user_capacity: int = 3,
    conflict_probability: float = 0.3,
    friend_probability: float = 0.4,
    max_bids: int = 4,
    beta: float = 0.5,
) -> IGEPAInstance:
    """A small random instance for exhaustive / statistical tests."""
    rng = np.random.default_rng(seed)
    event_ids = list(range(num_events))
    user_ids = list(range(100, 100 + num_users))
    events = [
        Event(event_id=e, capacity=int(rng.integers(1, max_event_capacity + 1)))
        for e in event_ids
    ]
    interest_values = {}
    users = []
    for u in user_ids:
        count = int(rng.integers(1, max_bids + 1))
        bids = tuple(
            int(b) for b in rng.choice(event_ids, size=min(count, num_events), replace=False)
        )
        users.append(
            User(
                user_id=u,
                capacity=int(rng.integers(1, max_user_capacity + 1)),
                bids=bids,
            )
        )
        for b in bids:
            interest_values[(b, u)] = float(rng.uniform())
    conflict = MatrixConflict.sample(event_ids, conflict_probability, rng)
    social = erdos_renyi_graph(user_ids, friend_probability, rng=rng)
    return IGEPAInstance(
        events=events,
        users=users,
        conflict=conflict,
        interest=TabulatedInterest(interest_values),
        social=social,
        beta=beta,
        name=f"random-{seed}",
    )
