"""Churn deltas -> LP patches: the incrementally maintained benchmark LP.

:class:`IncrementalBenchmarkLP` keeps one :class:`~repro.core.lp_formulation.
BenchmarkLP` alive across a churn stream.  Each :class:`~repro.model.delta.
Delta` is translated into an :class:`~repro.solver.patch.LPPatch` — columns
for the *dirty* users' (user, admissible-set) pairs are removed and
re-enumerated, event rows follow their column counts, capacity shocks become
RHS edits, re-weightings become objective edits — and the patched program is
re-solved from the previous optimal basis by the
:class:`~repro.solver.patch.IncrementalLPSolver`.

Dirty users — whose admissible-set collection may have changed, so their
columns are re-enumerated against the successor:

* added users, and users adding/withdrawing bids;
* users whose capacity changed (the set size bound moved);
* bidders of closing events (their bid lists shrink implicitly);
* for every edited conflict pair, the users bidding *both* events (only
  sets containing both appear or disappear).

Re-weighted users — sets unchanged, objective coefficients rewritten:

* users named by interest drift entries;
* when the user set or the degree overrides change and ``beta < 1``, every
  surviving user whose ``D(G, u)`` moved (the normalization is
  ``deg / (|U| - 1)``, so user churn re-weights everyone with neighbours).

Row lifecycle mirrors :func:`~repro.core.lp_formulation.build_benchmark_lp`
exactly: a ``user[u]`` row exists while the user has columns, an
``event[v]`` row while any column contains the event — so a patched program
is structurally identical to a from-scratch build over the successor (the
property suite asserts optima match to 1e-6).

The LP is built with ``implied_upper=True`` (constraint (2) implies
``x <= 1``), which keeps presolve a no-op and the standard form free of
synthetic bound rows — the precondition for the solver's in-place RHS path.
"""

from __future__ import annotations

from repro.core.admissible import (
    DEFAULT_MAX_SETS_PER_USER,
    enumerate_admissible_sets,
)
from repro.core.lp_formulation import BenchmarkLP, build_benchmark_lp
from repro.model.delta import Delta
from repro.model.instance import IGEPAInstance
from repro.solver.patch import (
    IncrementalLPSolver,
    LPPatch,
    PatchConstraint,
    PatchVariable,
)
from repro.solver.problem import Sense
from repro.solver.result import LPSolution
from repro.solver.revised_simplex import RevisedSimplexOptions


def _user_row(user_id: int) -> str:
    return f"user[{user_id}]"


def _event_row(event_id: int) -> str:
    return f"event[{event_id}]"


def _column_name(user_id: int, events: tuple[int, ...]) -> str:
    return f"x[{user_id},{','.join(map(str, events))}]"


class IncrementalBenchmarkLP:
    """One benchmark LP, delta-patched and warm re-solved across churn.

    Args:
        instance: the initial instance; the LP is built from scratch once.
        max_sets_per_user: admissible-set explosion guard (must match the
            from-scratch builds it is compared against).
        options: revised-simplex options for the incremental solver.

    Attributes:
        benchmark: the live :class:`BenchmarkLP` — its ``lp`` is patched in
            place, its ``assignments`` / ``by_user`` / ``admissible`` side
            tables are mirrored after every patch.
        solver: the :class:`IncrementalLPSolver` owning basis and
            factorization state.
        instance: the instance the program currently describes.
    """

    def __init__(
        self,
        instance: IGEPAInstance,
        *,
        max_sets_per_user: int = DEFAULT_MAX_SETS_PER_USER,
        options: RevisedSimplexOptions | None = None,
    ):
        self.instance = instance
        self.max_sets_per_user = max_sets_per_user
        self.benchmark: BenchmarkLP = build_benchmark_lp(
            instance,
            max_sets_per_user=max_sets_per_user,
            implied_upper=True,
        )
        self.solver = IncrementalLPSolver(self.benchmark.lp, options)
        self.deltas_observed = 0
        # Live column count per event id — an event row exists iff > 0.
        self._event_columns: dict[int, int] = {}
        for _user_id, events in self.benchmark.assignments:
            for event_id in dict.fromkeys(events):
                self._event_columns[event_id] = (
                    self._event_columns.get(event_id, 0) + 1
                )

    # ------------------------------------------------------------------
    # Delta -> patch translation
    # ------------------------------------------------------------------
    def _dirty_users(self, delta: Delta) -> tuple[set[int], set[int]]:
        """(dirty survivors to re-enumerate, removed users)."""
        predecessor = self.instance
        removed = set(delta.remove_users)
        dirty: set[int] = set()
        dirty.update(user.user_id for user in delta.add_users)
        dirty.update(user_id for user_id, _e in delta.add_bids)
        dirty.update(user_id for user_id, _e in delta.remove_bids)
        dirty.update(user_id for user_id, _c in delta.set_user_capacity)
        for event_id in delta.remove_events:
            dirty.update(predecessor.bidders(event_id))
        event_pos = predecessor.index.event_pos
        for first, second in (*delta.add_conflicts, *delta.remove_conflicts):
            # Only users bidding both endpoints gain/lose admissible sets.
            # Pairs touching events added in this delta are covered: the
            # new event's bidders arrive via add_users/add_bids, which
            # already mark them dirty.
            if first in event_pos and second in event_pos:
                dirty.update(
                    set(predecessor.bidders(first))
                    & set(predecessor.bidders(second))
                )
        return dirty - removed, removed

    def _reweight_users(
        self, delta: Delta, successor: IGEPAInstance, exclude: set[int]
    ) -> set[int]:
        """Surviving users whose weights (not sets) changed."""
        reweight = {user_id for _e, user_id, _v in delta.interest}
        if successor.beta < 1.0 and (
            delta.add_users or delta.remove_users or delta.degrees
        ):
            # D(G, u) = deg / (|U| - 1): user churn or overrides can move
            # every survivor's degree term; diff the two degree vectors.
            old_index = self.instance.index
            new_index = successor.index
            old_pos = old_index.user_pos
            old_degrees = old_index.degrees
            new_degrees = new_index.degrees
            for new_upos, user_id in enumerate(new_index.user_ids.tolist()):
                opos = old_pos.get(user_id)
                if opos is not None and (
                    old_degrees[opos] != new_degrees[new_upos]
                ):
                    reweight.add(user_id)
        reweight -= exclude
        # Only users that actually hold columns carry objective entries.
        return {
            user_id
            for user_id in reweight
            if self.benchmark.by_user.get(user_id)
        }

    def build_patch(
        self, delta: Delta, successor: IGEPAInstance
    ) -> tuple[
        LPPatch,
        list[tuple[int, tuple[int, ...]]],
        dict[int, list[tuple[int, ...]]],
        set[int],
        dict[int, int],
    ]:
        """Translate ``delta`` into the LP patch (plus mirroring payloads).

        Returns ``(patch, added_records, new_sets, removed_users,
        event_count_delta)``; :meth:`observe_delta` is the high-level entry
        that also applies the patch and mirrors the side tables.
        """
        benchmark = self.benchmark
        lp = benchmark.lp
        dirty, removed_users = self._dirty_users(delta)
        reweight = self._reweight_users(delta, successor, dirty | removed_users)

        remove_variables: list[str] = []
        remove_constraints: list[str] = []
        add_constraints: list[PatchConstraint] = []
        add_variables: list[PatchVariable] = []
        set_rhs: list[tuple[str, float]] = []
        set_objective: list[tuple[str, float]] = []
        event_count_delta: dict[int, int] = {}

        # Every dirty or leaving user sheds all their columns (dirty ones
        # get fresh columns below); their (2)-row goes with the columns and
        # is re-added when new sets exist — same name, so basis labels and
        # the slack crash hint survive the round trip.
        for user_id in sorted(dirty | removed_users):
            indices = benchmark.by_user.get(user_id)
            if not indices:
                continue
            for idx in indices:
                _uid, events = benchmark.assignments[idx]
                remove_variables.append(lp.variables[idx].name)
                for event_id in dict.fromkeys(events):
                    event_count_delta[event_id] = (
                        event_count_delta.get(event_id, 0) - 1
                    )
            remove_constraints.append(_user_row(user_id))

        new_sets: dict[int, list[tuple[int, ...]]] = {}
        added_records: list[tuple[int, tuple[int, ...]]] = []
        new_index = successor.index
        user_by_id = successor.user_by_id
        for user_id in sorted(dirty):
            user = user_by_id[user_id]
            sets = enumerate_admissible_sets(
                successor, user, self.max_sets_per_user
            )
            new_sets[user_id] = sets
            if not sets:
                continue
            add_constraints.append(
                PatchConstraint(_user_row(user_id), Sense.LE, 1.0)
            )
            upos = new_index.user_pos[user_id]
            weight_of = new_index.user_weight_by_event_id(upos)
            for events in sets:
                weight = sum(
                    weight_of[event_id]
                    if event_id in weight_of
                    else successor.weight(user_id, event_id)
                    for event_id in events
                )
                coefficients = [(_user_row(user_id), 1.0)]
                for event_id in dict.fromkeys(events):
                    coefficients.append((_event_row(event_id), 1.0))
                    event_count_delta[event_id] = (
                        event_count_delta.get(event_id, 0) + 1
                    )
                add_variables.append(
                    PatchVariable(
                        name=_column_name(user_id, events),
                        objective=weight,
                        coefficients=tuple(coefficients),
                    )
                )
                added_records.append((user_id, events))

        # Event-row lifecycle: rows follow their column counts; capacity
        # changes on persisting rows are pure RHS edits (the dual-simplex
        # path when nothing else rode along).
        removed_events = set(delta.remove_events)
        capacity_updates = dict(delta.set_event_capacity)
        event_capacity = new_index.event_capacity
        event_pos = new_index.event_pos
        for event_id in sorted(
            set(event_count_delta) | removed_events | set(capacity_updates)
        ):
            before = self._event_columns.get(event_id, 0)
            after = before + event_count_delta.get(event_id, 0)
            if event_id in removed_events:
                if before > 0:
                    remove_constraints.append(_event_row(event_id))
                continue
            if before > 0 and after == 0:
                remove_constraints.append(_event_row(event_id))
            elif before == 0 and after > 0:
                add_constraints.append(
                    PatchConstraint(
                        _event_row(event_id),
                        Sense.LE,
                        float(event_capacity[event_pos[event_id]]),
                    )
                )
            elif before > 0 and event_id in capacity_updates:
                set_rhs.append(
                    (_event_row(event_id), float(capacity_updates[event_id]))
                )

        for user_id in sorted(reweight):
            upos = new_index.user_pos[user_id]
            weight_of = new_index.user_weight_by_event_id(upos)
            for idx in benchmark.by_user[user_id]:
                _uid, events = benchmark.assignments[idx]
                weight = sum(
                    weight_of[event_id]
                    if event_id in weight_of
                    else successor.weight(user_id, event_id)
                    for event_id in events
                )
                set_objective.append((lp.variables[idx].name, weight))

        patch = LPPatch(
            remove_variables=tuple(remove_variables),
            remove_constraints=tuple(remove_constraints),
            add_constraints=tuple(add_constraints),
            add_variables=tuple(add_variables),
            set_rhs=tuple(set_rhs),
            set_objective=tuple(set_objective),
        )
        return patch, added_records, new_sets, removed_users, event_count_delta

    # ------------------------------------------------------------------
    # Application + side-table mirroring
    # ------------------------------------------------------------------
    def observe_delta(self, delta: Delta, successor: IGEPAInstance) -> LPPatch:
        """Patch the program from ``self.instance`` to ``successor``.

        ``successor`` must be the result of applying ``delta`` to the
        current instance (:func:`repro.model.delta.apply_delta`).  The LP,
        its standard form, the solver basis and the benchmark side tables
        are all updated in place; the next :meth:`solve` re-solves warm.
        """
        (
            patch,
            added_records,
            new_sets,
            removed_users,
            event_count_delta,
        ) = self.build_patch(delta, successor)
        benchmark = self.benchmark

        if not patch.is_empty:
            application = self.solver.apply_patch(patch)
            # Mirror the assignments list through the swap-with-last journal,
            # then append the new columns in emission order.
            assignments = benchmark.assignments
            for hole, last in application.variable_moves:
                if hole != last:
                    assignments[hole] = assignments[last]
                assignments.pop()
            assignments.extend(added_records)

        # Event-column counts.
        for event_id, change in event_count_delta.items():
            count = self._event_columns.get(event_id, 0) + change
            if count > 0:
                self._event_columns[event_id] = count
            else:
                self._event_columns.pop(event_id, None)
        for event_id in delta.remove_events:
            self._event_columns.pop(event_id, None)

        # by_user: indices moved arbitrarily — rebuild from the mirrored
        # assignments (O(columns), trivial next to the re-solve).
        by_user: dict[int, list[int]] = {
            int(user_id): []
            for user_id in successor.index.user_ids.tolist()
        }
        for idx, (user_id, _events) in enumerate(benchmark.assignments):
            by_user[user_id].append(idx)
        benchmark.by_user = by_user

        for user_id in removed_users:
            benchmark.admissible.pop(user_id, None)
        benchmark.admissible.update(new_sets)

        self.instance = successor
        self.deltas_observed += 1
        return patch

    def solve(self) -> LPSolution:
        """Warm re-solve of the current program (see the solver's dispatch
        table); ``solution.x`` aligns with ``benchmark.assignments``."""
        return self.solver.solve()

    # ------------------------------------------------------------------
    # Invariant check (tests / debugging)
    # ------------------------------------------------------------------
    def check_tables(self) -> None:
        """Assert the mirrored side tables agree with the live program."""
        benchmark = self.benchmark
        lp = benchmark.lp
        assert len(benchmark.assignments) == lp.num_variables
        counts: dict[int, int] = {}
        for idx, (user_id, events) in enumerate(benchmark.assignments):
            assert lp.variables[idx].name == _column_name(user_id, events)
            for event_id in dict.fromkeys(events):
                counts[event_id] = counts.get(event_id, 0) + 1
        assert counts == self._event_columns
        flat = sorted(
            idx for indices in benchmark.by_user.values() for idx in indices
        )
        assert flat == list(range(lp.num_variables))
        con_index = lp.constraint_index()
        for event_id, count in counts.items():
            assert (_event_row(event_id) in con_index) == (count > 0)
