"""Per-rule fixtures for ``igepa lint`` (IGP001-IGP010).

Each rule gets at least one *bad* fixture (a minimal source snippet that
must produce a finding with the rule's code) and one *good* fixture (the
sanctioned way to write the same thing, which must stay silent).  Paths are
virtual — the engine scopes rules by path suffix, so a snippet linted under
``src/repro/core/metrics.py`` is treated as hot-path code.
"""

import json

from repro.analysis_tools import default_rules, lint_source
from repro.analysis_tools.engine import format_json, parse_suppressions


def codes(source, path):
    return [f.code for f in lint_source(source, path, default_rules())]


HOT = "src/repro/core/metrics.py"
COLD = "src/repro/experiments/reporting.py"


class TestHotPathLoops:
    def test_loop_over_entity_collection_flagged(self):
        src = (
            "def total(instance):\n"
            "    acc = 0\n"
            "    for user in instance.users:\n"
            "        acc += user.capacity\n"
            "    return acc\n"
        )
        assert "IGP001" in codes(src, HOT)

    def test_loop_over_range_num_users_flagged(self):
        src = (
            "def scan(index):\n"
            "    for i in range(index.num_users):\n"
            "        pass\n"
        )
        assert "IGP001" in codes(src, HOT)

    def test_enumerate_wrapper_flagged(self):
        src = (
            "def scan(instance):\n"
            "    for i, e in enumerate(instance.events):\n"
            "        pass\n"
        )
        assert "IGP001" in codes(src, HOT)

    def test_comprehension_allowed(self):
        src = "def ids(instance):\n    return [u.user_id for u in instance.users]\n"
        assert codes(src, HOT) == []

    def test_bare_local_name_not_an_entity_sweep(self):
        # A local called ``bids`` is a bounded per-user slice, not a sweep.
        src = (
            "def gains(bids):\n"
            "    acc = 0.0\n"
            "    for b in bids:\n"
            "        acc += b\n"
            "    return acc\n"
        )
        assert codes(src, HOT) == []

    def test_same_loop_fine_outside_hot_modules(self):
        src = (
            "def total(instance):\n"
            "    acc = 0\n"
            "    for user in instance.users:\n"
            "        acc += user.capacity\n"
            "    return acc\n"
        )
        assert codes(src, COLD) == []


class TestDenseMaterialization:
    def test_dense_user_event_zeros_flagged(self):
        src = (
            "import numpy as np\n"
            "def slab(num_users, num_events):\n"
            "    return np.zeros((num_users, num_events))\n"
        )
        assert "IGP002" in codes(src, COLD)

    def test_toarray_flagged(self):
        src = "def densify(matrix):\n    return matrix.toarray()\n"
        assert "IGP002" in codes(src, COLD)

    def test_whitelisted_slab_builder_allowed(self):
        src = (
            "import numpy as np\n"
            "class InstanceIndex:\n"
            "    def _finalize(self):\n"
            "        self.W = np.zeros((self.num_users, self.num_events))\n"
        )
        assert codes(src, "src/repro/model/index.py") == []

    def test_one_dimensional_zeros_allowed(self):
        src = (
            "import numpy as np\n"
            "def vec(num_users):\n"
            "    return np.zeros(num_users)\n"
        )
        assert codes(src, COLD) == []


class TestStoreCopy:
    INDEX = "src/repro/model/index.py"

    def test_copy_of_store_column_flagged(self):
        src = (
            "def build(store):\n"
            "    degrees = store.degrees.copy()\n"
            "    return degrees\n"
        )
        assert "IGP003" in codes(src, self.INDEX)

    def test_astype_copy_true_flagged(self):
        src = (
            "import numpy as np\n"
            "def build(store):\n"
            "    return store.degrees.astype(np.float64, copy=True)\n"
        )
        assert "IGP003" in codes(src, self.INDEX)

    def test_zero_copy_astype_allowed(self):
        src = (
            "import numpy as np\n"
            "def build(store):\n"
            "    return store.degrees.astype(np.float64, copy=False)\n"
        )
        assert codes(src, self.INDEX) == []

    def test_outside_index_build_modules_silent(self):
        src = (
            "def snapshot(store):\n"
            "    return store.degrees.copy()\n"
        )
        assert codes(src, COLD) == []


class TestDeltaPurity:
    DELTA = "src/repro/model/delta.py"

    def test_write_into_predecessor_array_flagged(self):
        src = (
            "def patch(old):\n"
            "    weights = old.bid_weights\n"
            "    weights[0] = 1.0\n"
            "    return weights\n"
        )
        assert "IGP004" in codes(src, self.DELTA)

    def test_augassign_into_param_flagged(self):
        src = (
            "def patch(degrees):\n"
            "    degrees += 1.0\n"
            "    return degrees\n"
        )
        assert "IGP004" in codes(src, self.DELTA)

    def test_write_into_fresh_copy_allowed(self):
        src = (
            "import numpy as np\n"
            "def patch(old):\n"
            "    weights = np.array(old.bid_weights)\n"
            "    weights[0] = 1.0\n"
            "    return weights\n"
        )
        assert codes(src, self.DELTA) == []

    def test_write_through_fresh_object_attribute_allowed(self):
        # ``carried`` is constructed here, so views of its attributes are
        # function-owned even though the write target is dotted.
        src = (
            "def carry(successor):\n"
            "    carried = Arrangement(successor)\n"
            "    assigned = carried.assignment_matrix\n"
            "    assigned[0, 0] = True\n"
            "    carried.attendance_counts[:] = 0\n"
            "    return carried\n"
        )
        assert codes(src, self.DELTA) == []


class TestRngDiscipline:
    def test_bare_random_import_flagged(self):
        src = "import random\n\nx = random.random()\n"
        assert "IGP005" in codes(src, COLD)

    def test_module_level_np_random_call_flagged(self):
        src = "import numpy as np\n\nnoise = np.random.rand(4)\n"
        assert "IGP005" in codes(src, COLD)

    def test_unseeded_default_rng_flagged(self):
        src = (
            "import numpy as np\n"
            "def draw():\n"
            "    return np.random.default_rng().random()\n"
        )
        assert "IGP005" in codes(src, COLD)

    def test_seeded_generator_allowed(self):
        src = (
            "import numpy as np\n"
            "def draw(seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.random()\n"
        )
        assert codes(src, COLD) == []


class TestShardWorkerDiscipline:
    PARALLEL = "src/repro/core/parallel.py"

    def test_worker_with_index_param_flagged(self):
        src = (
            "def run(executor, index, payloads):\n"
            "    def worker(index):\n"
            "        return index\n"
            "    return list(executor.map(worker, payloads))\n"
        )
        assert "IGP006" in codes(src, self.PARALLEL)

    def test_worker_closing_over_state_flagged(self):
        src = (
            "def run(executor, payloads):\n"
            "    state = {}\n"
            "    def worker(payload):\n"
            "        return state\n"
            "    return list(executor.map(worker, payloads))\n"
        )
        assert "IGP006" in codes(src, self.PARALLEL)

    def test_pure_payload_worker_allowed(self):
        src = (
            "import numpy as np\n"
            "def scan_shard(payload):\n"
            "    return float(np.sum(payload[0]))\n"
            "def run(executor, payloads):\n"
            "    return list(executor.map(scan_shard, payloads))\n"
        )
        assert codes(src, self.PARALLEL) == []


class TestWallClock:
    def test_time_time_flagged_everywhere(self):
        src = (
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        )
        assert "IGP007" in codes(src, "src/repro/core/local_search.py")
        assert "IGP007" in codes(src, "src/repro/experiments/replay.py")

    def test_perf_counter_outside_timing_modules_flagged(self):
        src = (
            "import time\n"
            "def stamp():\n"
            "    return time.perf_counter()\n"
        )
        assert "IGP007" in codes(src, "src/repro/core/local_search.py")

    def test_perf_counter_in_timing_modules_allowed(self):
        src = (
            "import time\n"
            "def stamp():\n"
            "    return time.perf_counter()\n"
        )
        assert codes(src, "src/repro/experiments/replay.py") == []

    def test_service_clock_module_may_read_monotonic_timers(self):
        # service/clock.py is the serving loop's single sanctioned timer
        # access: Clock.perf() feeds latency reports, never decisions.
        src = (
            "import time\n"
            "class MonotonicClock:\n"
            "    def now(self):\n"
            "        return time.monotonic()\n"
            "    def perf(self):\n"
            "        return time.perf_counter()\n"
        )
        assert codes(src, "src/repro/service/clock.py") == []

    def test_service_clock_module_still_bans_wall_clock(self):
        src = (
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        )
        assert "IGP007" in codes(src, "src/repro/service/clock.py")

    def test_rest_of_service_package_rejects_timer_reads(self):
        # Everything else in repro/service must take time through the
        # injected Clock — direct timer reads would leak wall time into
        # batching/admission decisions and break replay determinism.
        src = (
            "import time\n"
            "def flush_due():\n"
            "    return time.perf_counter()\n"
        )
        for module in (
            "src/repro/service/loop.py",
            "src/repro/service/batcher.py",
            "src/repro/service/admission.py",
            "src/repro/service/engine.py",
        ):
            assert "IGP007" in codes(src, module)
        wall = (
            "import time\n"
            "def cutoff():\n"
            "    return time.time()\n"
        )
        assert "IGP007" in codes(wall, "src/repro/service/loop.py")


class TestPublicApiAnnotations:
    API = "src/repro/solver/api.py"

    def test_unannotated_public_function_flagged(self):
        src = "def solve(instance):\n    return instance\n"
        assert "IGP008" in codes(src, self.API)

    def test_missing_return_annotation_flagged(self):
        src = "def solve(instance: object):\n    return instance\n"
        assert "IGP008" in codes(src, self.API)

    def test_fully_annotated_allowed(self):
        src = "def solve(instance: object) -> object:\n    return instance\n"
        assert codes(src, self.API) == []

    def test_private_helpers_exempt(self):
        src = "def _helper(x):\n    return x\n"
        assert codes(src, self.API) == []


class TestLPRebuild:
    TICK = "src/repro/service/engine.py"

    def test_from_scratch_build_in_tick_loop_flagged(self):
        src = (
            "def resolve(instance):\n"
            "    benchmark = build_benchmark_lp(instance)\n"
            "    return benchmark\n"
        )
        assert "IGP009" in codes(src, self.TICK)

    def test_attribute_call_form_flagged(self):
        src = (
            "def resolve(instance):\n"
            "    return lp_formulation.build_benchmark_lp(instance)\n"
        )
        assert "IGP009" in codes(src, self.TICK)

    def test_all_tick_loop_modules_covered(self):
        src = "def f(i):\n    return build_benchmark_lp(i)\n"
        for module in (
            "src/repro/service/engine.py",
            "src/repro/service/loop.py",
            "src/repro/experiments/simulate.py",
            "src/repro/experiments/replay.py",
        ):
            assert "IGP009" in codes(src, module)

    def test_ignore_marker_sanctions_baseline(self):
        # A measured from-scratch baseline (e.g. lp_resolve_comparison's
        # warm side) opts out explicitly.
        src = (
            "def baseline(instance):\n"
            "    return build_benchmark_lp(  # igepa: ignore[IGP009]\n"
            "        instance\n"
            "    )\n"
        )
        assert codes(src, self.TICK) == []

    def test_other_modules_unscoped(self):
        src = "def f(i):\n    return build_benchmark_lp(i)\n"
        assert codes(src, "src/repro/core/lp_packing.py") == []
        assert codes(src, COLD) == []


class TestRawReportDump:
    BENCH = "benchmarks/bench_churn.py"

    def test_json_dump_of_report_flagged(self):
        src = (
            "import json\n"
            "def main(report, path):\n"
            "    path.write_text(json.dumps(report, indent=2))\n"
        )
        assert "IGP010" in codes(src, self.BENCH)

    def test_json_dump_of_to_dict_result_flagged(self):
        # The old cli.py pattern: dumping a report object's snapshot raw.
        src = (
            "import json\n"
            "def write(report, handle):\n"
            "    json.dump(report.to_dict(), handle, indent=2)\n"
        )
        assert "IGP010" in codes(src, "src/repro/cli.py")

    def test_persistence_module_exempt(self):
        src = (
            "import json\n"
            "def _write_payload(report, path):\n"
            "    path.write_text(json.dumps(report, indent=1))\n"
        )
        assert codes(src, "src/repro/experiments/persistence.py") == []

    def test_non_report_json_allowed(self):
        # Instance files, wire responses and JSONL store rows are not
        # report envelopes.
        src = (
            "import json\n"
            "def save(instance, sample, response, handle):\n"
            "    json.dump(instance.to_dict(), handle)\n"
            "    json.dump(sample.to_dict(), handle)\n"
            "    print(json.dumps(response_to_dict(response)))\n"
        )
        assert codes(src, "src/repro/model/instance.py") == []

    def test_ignore_marker_sanctions_internal_dump(self):
        src = (
            "import json\n"
            "def child(report, path):\n"
            "    path.write_text(json.dumps(report))  # igepa: ignore[IGP010]\n"
        )
        assert codes(src, self.BENCH) == []


class TestSuppressions:
    def test_inline_ignore_silences_one_line(self):
        src = (
            "def total(instance):\n"
            "    acc = 0\n"
            "    for user in instance.users:  # igepa: ignore[IGP001]\n"
            "        acc += user.capacity\n"
            "    return acc\n"
        )
        assert codes(src, HOT) == []

    def test_ignore_is_code_specific(self):
        src = (
            "def total(instance):\n"
            "    acc = 0\n"
            "    for user in instance.users:  # igepa: ignore[IGP002]\n"
            "        acc += user.capacity\n"
            "    return acc\n"
        )
        assert "IGP001" in codes(src, HOT)

    def test_multiple_codes_parse(self):
        line = "x = 1  # igepa: ignore[IGP001, IGP005]"
        assert parse_suppressions(line) == {1: frozenset({"IGP001", "IGP005"})}


class TestEngine:
    def test_parse_error_reports_igp000(self):
        findings = lint_source("def broken(:\n", COLD, default_rules())
        assert [f.code for f in findings] == ["IGP000"]

    def test_json_format_shape(self):
        findings = lint_source(
            "import random\n", COLD, default_rules()
        )
        payload = json.loads(format_json(findings, 1))
        assert payload["tool"] == "igepa-lint"
        assert payload["files_scanned"] == 1
        assert payload["findings"][0]["code"] == "IGP005"
        assert payload["findings"][0]["path"] == COLD


class TestRepoIsClean:
    def test_lint_src_has_zero_findings(self):
        from repro.analysis_tools import lint_paths

        findings, scanned = lint_paths(["src"])
        assert scanned > 50
        assert findings == []
