"""Dataset generators: synthetic (Table I), Meetup-like (Table II),
adversarial stress workloads, and churn traces (sustained traffic)."""

from repro.datagen.adversarial import (
    INTEGRALITY_GAP_SEEDS,
    conflict_clique,
    greedy_trap,
    hotspot,
    integrality_gap_instance,
    small_tight_instance,
)
from repro.datagen.churn import ChurnConfig, ChurnTrace, generate_churn_trace
from repro.datagen.meetup import SF_DEFAULTS, MeetupConfig, generate_meetup
from repro.datagen.synthetic import (
    TABLE1_DEFAULTS,
    SyntheticConfig,
    generate_synthetic,
    generate_synthetic_stream,
)

__all__ = [
    "ChurnConfig",
    "ChurnTrace",
    "generate_churn_trace",
    "SyntheticConfig",
    "generate_synthetic",
    "generate_synthetic_stream",
    "TABLE1_DEFAULTS",
    "MeetupConfig",
    "generate_meetup",
    "SF_DEFAULTS",
    "conflict_clique",
    "greedy_trap",
    "hotspot",
    "integrality_gap_instance",
    "small_tight_instance",
    "INTEGRALITY_GAP_SEEDS",
]
