"""Unit tests for the standard-form conversion."""

import math

import numpy as np
import pytest

from repro.solver import LinearProgram, Sense
from repro.solver.standard_form import to_standard_form


def test_b_is_nonnegative_after_conversion():
    lp = LinearProgram(maximize=False)
    x = lp.add_variable("x", objective=1.0)
    lp.add_constraint({x: 1.0}, Sense.GE, -5.0)
    lp.add_constraint({x: -1.0}, Sense.LE, -2.0)
    sf = to_standard_form(lp)
    assert np.all(sf.b >= 0.0)


def test_le_constraint_gets_slack():
    lp = LinearProgram(maximize=False)
    x = lp.add_variable("x", objective=1.0)
    lp.add_constraint({x: 1.0}, Sense.LE, 4.0)
    sf = to_standard_form(lp)
    # One structural column + one slack.
    assert sf.num_columns == 2
    assert sf.num_rows == 1
    # x + s = 4
    assert sf.a[0] == pytest.approx([1.0, 1.0])


def test_ge_constraint_gets_surplus():
    lp = LinearProgram(maximize=False)
    x = lp.add_variable("x", objective=1.0)
    lp.add_constraint({x: 1.0}, Sense.GE, 4.0)
    sf = to_standard_form(lp)
    assert sf.a[0] == pytest.approx([1.0, -1.0])


def test_eq_constraint_gets_no_slack():
    lp = LinearProgram(maximize=False)
    x = lp.add_variable("x", objective=1.0)
    lp.add_constraint({x: 1.0}, Sense.EQ, 4.0)
    sf = to_standard_form(lp)
    assert sf.num_columns == 1


def test_maximize_negates_costs():
    lp = LinearProgram(maximize=True)
    lp.add_variable("x", objective=3.0)
    sf = to_standard_form(lp)
    assert sf.c[0] == pytest.approx(-3.0)
    assert sf.recover_objective(-6.0) == pytest.approx(6.0)


def test_shifted_lower_bound():
    lp = LinearProgram(maximize=False)
    x = lp.add_variable("x", lower=2.0, objective=1.0)
    lp.add_constraint({x: 1.0}, Sense.LE, 10.0)
    sf = to_standard_form(lp)
    # x = 2 + y: row becomes y <= 8, objective offset 2.
    assert sf.b[0] == pytest.approx(8.0)
    assert sf.objective_offset == pytest.approx(2.0)
    x_rec = sf.recover_x(np.array([3.0, 0.0]))
    assert x_rec[0] == pytest.approx(5.0)


def test_finite_upper_bound_becomes_row():
    lp = LinearProgram(maximize=False)
    lp.add_variable("x", lower=1.0, upper=4.0, objective=1.0)
    sf = to_standard_form(lp)
    # The bound row y <= 3 plus its slack.
    assert sf.num_rows == 1
    assert sf.b[0] == pytest.approx(3.0)


def test_mirrored_variable_upper_bound_only():
    lp = LinearProgram(maximize=False)
    x = lp.add_variable("x", lower=-math.inf, upper=5.0, objective=2.0)
    lp.add_constraint({x: 1.0}, Sense.LE, 3.0)
    sf = to_standard_form(lp)
    # x = 5 - y: row x <= 3 becomes -y <= -2, i.e. y >= 2 after the flip.
    y = np.array([2.0, 0.0])
    assert sf.recover_x(y)[0] == pytest.approx(3.0)
    assert sf.objective_offset == pytest.approx(10.0)


def test_free_variable_split():
    lp = LinearProgram(maximize=False)
    x = lp.add_variable("x", lower=-math.inf, upper=math.inf, objective=1.0)
    lp.add_constraint({x: 1.0}, Sense.EQ, -7.0)
    sf = to_standard_form(lp)
    # Two columns for x; recover from y_pos - y_neg.
    assert sf.num_columns == 2
    assert sf.recover_x(np.array([0.0, 7.0]))[0] == pytest.approx(-7.0)


def test_fixed_variable_substituted():
    lp = LinearProgram(maximize=False)
    x = lp.add_variable("x", lower=3.0, upper=3.0, objective=2.0)
    y = lp.add_variable("y", objective=1.0)
    lp.add_constraint({x: 1.0, y: 1.0}, Sense.LE, 10.0)
    sf = to_standard_form(lp)
    # x contributes 3 to the row and 6 to the objective offset.
    assert sf.b[0] == pytest.approx(7.0)
    assert sf.objective_offset == pytest.approx(6.0)
    assert sf.recover_x(np.zeros(sf.num_columns))[0] == pytest.approx(3.0)


def test_empty_domain_raises():
    lp = LinearProgram(maximize=False)
    lp.add_variable("x", objective=1.0)
    lp.variables[0].lower = 5.0
    lp.variables[0].upper = 1.0  # bypass add_variable validation
    with pytest.raises(ValueError, match="empty domain"):
        to_standard_form(lp)


def test_recover_objective_minimize_passthrough():
    lp = LinearProgram(maximize=False)
    lp.add_variable("x", objective=1.0)
    sf = to_standard_form(lp)
    assert sf.recover_objective(5.0) == pytest.approx(5.0)
