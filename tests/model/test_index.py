"""Unit tests for the array-backed InstanceIndex."""

import numpy as np
import pytest

from repro.model import (
    Event,
    IGEPAInstance,
    InstanceIndex,
    InstanceValidationError,
    NoConflict,
    TabulatedInterest,
    User,
)
from repro.social import Graph
from tests.util import random_instance, tiny_instance


class TestConstruction:
    def test_lazily_built_and_cached(self):
        instance = tiny_instance()
        assert instance._index is None
        index = instance.index
        assert isinstance(index, InstanceIndex)
        assert instance.index is index

    def test_shapes(self):
        index = tiny_instance().index
        assert index.num_users == 4
        assert index.num_events == 3
        assert index.num_bids == 7
        assert index.W.shape == (4, 3)
        assert index.SI.shape == (4, 3)
        assert index.bid_mask.shape == (4, 3)
        assert index.conflict_matrix.shape == (3, 3)
        assert index.bid_indptr.shape == (5,)
        assert index.bid_indices.shape == (7,)
        assert index.bid_weights.shape == (7,)

    def test_position_maps_invert_id_arrays(self):
        index = tiny_instance().index
        for user_id, position in index.user_pos.items():
            assert index.user_ids[position] == user_id
        for event_id, position in index.event_pos.items():
            assert index.event_ids[position] == event_id

    def test_empty_instance(self):
        instance = IGEPAInstance([], [], NoConflict(), TabulatedInterest({}), Graph())
        index = instance.index
        assert index.num_users == 0
        assert index.num_events == 0
        assert index.num_bids == 0
        assert index.W.shape == (0, 0)

    def test_invalid_interest_rejected_at_build(self):
        class Bad(TabulatedInterest):
            def interest(self, event, user):
                return 2.0

        instance = IGEPAInstance(
            [Event(event_id=1, capacity=1)],
            [User(user_id=1, capacity=1, bids=(1,))],
            NoConflict(),
            Bad({}),
            Graph(nodes=[1]),
        )
        with pytest.raises(InstanceValidationError, match="Definition 5"):
            instance.index


class TestContent:
    def test_weight_matrix_masked_by_bids(self):
        instance = tiny_instance()
        index = instance.index
        for i, user in enumerate(instance.users):
            for j, event in enumerate(instance.events):
                if event.event_id in user.bid_set:
                    assert index.bid_mask[i, j]
                    assert index.W[i, j] == instance.weight(
                        user.user_id, event.event_id
                    )
                    assert index.SI[i, j] == instance.interest_of(
                        event.event_id, user.user_id
                    )
                else:
                    assert not index.bid_mask[i, j]
                    assert index.W[i, j] == 0.0

    def test_csr_matches_bid_lists(self):
        instance = tiny_instance()
        index = instance.index
        for i, user in enumerate(instance.users):
            positions = index.user_bid_positions(i)
            assert [int(index.event_ids[p]) for p in positions] == list(user.bids)
            weights = index.user_bid_weights(i)
            for position, weight in zip(positions, weights):
                assert weight == index.W[i, position]

    def test_bidder_incidence_matches_bidders(self):
        instance = tiny_instance()
        index = instance.index
        for j, event in enumerate(instance.events):
            bidders = index.user_ids[index.event_bidder_positions(j)].tolist()
            assert bidders == instance.bidders(event.event_id)

    def test_conflict_matrix_symmetric_zero_diagonal(self):
        index = tiny_instance().index
        matrix = index.conflict_matrix
        assert np.array_equal(matrix, matrix.T)
        assert not matrix.diagonal().any()
        assert index.conflict_pair_count() == 1  # events (1, 2)

    def test_degrees_match_scalar_accessor(self):
        instance = tiny_instance()
        index = instance.index
        for i, user in enumerate(instance.users):
            assert index.degrees[i] == instance.degree(user.user_id)

    def test_degrees_override_respected(self):
        events = [Event(event_id=1, capacity=1)]
        users = [User(user_id=1, capacity=1, bids=(1,)), User(user_id=2, capacity=1)]
        instance = IGEPAInstance(
            events,
            users,
            NoConflict(),
            TabulatedInterest({(1, 1): 0.5}),
            Graph(nodes=[1, 2], edges=[(1, 2)]),
            degrees={1: 0.25},
        )
        index = instance.index
        assert index.degrees[0] == 0.25
        assert index.degrees[1] == 0.0  # override wins over the graph edge

    def test_weight_by_event_id_dict(self):
        instance = tiny_instance()
        index = instance.index
        weight_of = index.user_weight_by_event_id(0)  # user 10, bids (1, 2)
        assert set(weight_of) == {1, 2}
        assert weight_of[1] == instance.weight(10, 1)

    def test_scalar_weight_view(self):
        instance = tiny_instance()
        index = instance.index
        # Bid pair: the scalar accessor reads the masked matrix.
        assert instance.weight(10, 1) == index.W[index.user_pos[10], index.event_pos[1]]
        # Non-bid pair (user 12 did not bid for event 1): masked to 0 in W,
        # but the scalar accessor recomputes it via the formula.
        assert index.W[index.user_pos[12], index.event_pos[1]] == 0.0
        assert instance.weight(12, 1) == pytest.approx(
            instance.beta * instance.interest_of(1, 12)
            + (1 - instance.beta) * instance.degree(12)
        )
        assert instance.weight(12, 1) != 0.0  # degree term keeps it positive


class TestRandomizedProperties:
    @pytest.mark.parametrize("seed", range(5))
    def test_weight_matrix_parity_on_random_instances(self, seed):
        instance = random_instance(seed=seed)
        index = instance.index
        for i, user in enumerate(instance.users):
            for event_id in user.bids:
                j = index.event_pos[event_id]
                assert index.W[i, j] == instance.weight(user.user_id, event_id)

    @pytest.mark.parametrize("seed", range(5))
    def test_conflict_matrix_parity(self, seed):
        instance = random_instance(seed=seed, conflict_probability=0.5)
        index = instance.index
        for a in instance.events:
            for b in instance.events:
                i, j = index.event_pos[a.event_id], index.event_pos[b.event_id]
                expected = (
                    False
                    if a.event_id == b.event_id
                    else instance.conflict.conflicts(a, b)
                )
                assert bool(index.conflict_matrix[i, j]) == expected

    @pytest.mark.parametrize("seed", range(3))
    def test_bid_weights_align_with_csr(self, seed):
        instance = random_instance(seed=seed)
        index = instance.index
        upos = np.repeat(
            np.arange(index.num_users), np.diff(index.bid_indptr)
        )
        assert np.array_equal(
            index.bid_weights, index.W[upos, index.bid_indices]
        )
