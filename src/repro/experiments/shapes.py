"""Programmatic verification of the paper's qualitative claims.

EXPERIMENTS.md argues that a faithful reproduction must match the paper's
*shapes*: who wins, which way trends point, where GG catches up.  This
module encodes each claim as data so it can be checked mechanically against
any :class:`~repro.experiments.sweeps.SweepResult` — by the benchmark
suite, by CI over archived results, or by a user re-running with different
grids.

    violations = check_figure("fig1b", sweep)
    assert not violations, violations
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.sweeps import SweepResult


@dataclass(frozen=True)
class ShapeExpectation:
    """A paper claim about one sweep.

    Attributes:
        winner: algorithm expected to have the best mean utility at every
            grid point (None to skip the check).
        trend: expected direction of the winner's series end-to-end:
            ``"increasing"``, ``"decreasing"`` or None.
        winner_tolerance: multiplicative slack when comparing the winner to
            others (runs with few repetitions are noisy).
        step_slack: per-step slack for the monotonicity check; only the
            end-to-end direction is strict.
        closing_gap: name of an algorithm whose relative gap to the winner
            must shrink from the first to the last grid point (the paper's
            "GG has similar utility as LP-packing at |U| = 10000").
    """

    winner: str | None = "lp-packing"
    trend: str | None = None
    winner_tolerance: float = 0.98
    step_slack: float = 0.05
    closing_gap: str | None = None


#: The paper's Fig. 1 claims, panel by panel.
FIG1_EXPECTATIONS: dict[str, ShapeExpectation] = {
    "fig1a": ShapeExpectation(trend="increasing"),
    "fig1b": ShapeExpectation(trend="increasing", closing_gap="gg"),
    "fig1c": ShapeExpectation(trend="decreasing"),
    "fig1d": ShapeExpectation(trend="increasing"),
    "fig1e": ShapeExpectation(trend="increasing"),
    "fig1f": ShapeExpectation(trend="increasing"),
}


def check_sweep_shape(
    sweep: SweepResult, expectation: ShapeExpectation
) -> list[str]:
    """All violations of ``expectation`` in ``sweep`` (empty = conforms)."""
    violations: list[str] = []

    if expectation.winner is not None:
        if expectation.winner not in sweep.algorithms():
            return [f"winner {expectation.winner!r} not present in sweep"]
        winner_series = sweep.series(expectation.winner)
        for index, value in enumerate(sweep.values):
            best = winner_series[index]
            for name in sweep.algorithms():
                if name == expectation.winner:
                    continue
                other = sweep.stats[index][name].mean_utility
                if best < other * expectation.winner_tolerance:
                    violations.append(
                        f"at {sweep.parameter}={value}: {expectation.winner} "
                        f"({best:.2f}) loses to {name} ({other:.2f})"
                    )

    if expectation.trend is not None and expectation.winner is not None:
        series = sweep.series(expectation.winner)
        if len(series) >= 2:
            increasing = expectation.trend == "increasing"
            first, last = series[0], series[-1]
            if increasing and not last > first:
                violations.append(
                    f"series not increasing end-to-end: {first:.2f} -> {last:.2f}"
                )
            if not increasing and not last < first:
                violations.append(
                    f"series not decreasing end-to-end: {first:.2f} -> {last:.2f}"
                )
            for a, b in zip(series, series[1:]):
                if increasing and b < a * (1 - expectation.step_slack):
                    violations.append(f"non-monotone step {a:.2f} -> {b:.2f}")
                if not increasing and b > a * (1 + expectation.step_slack):
                    violations.append(f"non-monotone step {a:.2f} -> {b:.2f}")

    if expectation.closing_gap is not None and expectation.winner is not None:
        chaser = expectation.closing_gap
        if chaser not in sweep.algorithms():
            violations.append(f"chaser {chaser!r} not present in sweep")
        else:
            winner_series = sweep.series(expectation.winner)
            chaser_series = sweep.series(chaser)
            if winner_series[0] > 0 and winner_series[-1] > 0:
                gap_first = (winner_series[0] - chaser_series[0]) / winner_series[0]
                gap_last = (winner_series[-1] - chaser_series[-1]) / winner_series[-1]
                if not gap_last < gap_first:
                    violations.append(
                        f"{chaser} gap did not close: {gap_first:.3f} -> {gap_last:.3f}"
                    )
    return violations


def check_figure(figure_id: str, sweep: SweepResult) -> list[str]:
    """Check a sweep against the registered Fig. 1 expectation.

    Raises:
        KeyError: for unknown figure ids.
    """
    if figure_id not in FIG1_EXPECTATIONS:
        raise KeyError(
            f"unknown figure id {figure_id!r}; known: {sorted(FIG1_EXPECTATIONS)}"
        )
    return check_sweep_shape(sweep, FIG1_EXPECTATIONS[figure_id])
