"""Unit tests for targeted local search and churn repair."""

import pytest

from repro.core import GGGreedy, apply_with_repair, improve, repair
from repro.model import Arrangement, Delta, Event, User, apply_delta
from tests.util import random_instance, tiny_instance


class TestTargetedImprove:
    def test_empty_scopes_do_nothing(self):
        instance = tiny_instance()
        arrangement = Arrangement(instance)
        moves = improve(
            instance, arrangement, user_positions=[], event_positions=[]
        )
        assert len(arrangement) == 0
        assert moves["adds"] == 0

    def test_scoped_user_only_gains_their_moves(self):
        instance = tiny_instance()
        arrangement = Arrangement(instance)
        upos = instance.index.user_pos[13]  # bids only event 3
        improve(
            instance, arrangement, user_positions=[upos], event_positions=[]
        )
        assert arrangement.pairs == {(3, 13)}

    def test_full_scope_matches_default(self):
        instance = random_instance(seed=3, num_users=15, num_events=6)
        first = Arrangement(instance)
        improve(instance, first)
        second = Arrangement(instance)
        improve(
            instance,
            second,
            user_positions=range(instance.num_users),
            event_positions=range(instance.num_events),
        )
        assert first.pairs == second.pairs

    @pytest.mark.parametrize("seed", range(3))
    def test_scoped_improve_stays_feasible(self, seed):
        instance = random_instance(seed=seed, num_users=20, num_events=8)
        arrangement = GGGreedy().solve(instance, seed=seed).arrangement
        before = arrangement.utility()
        improve(
            instance,
            arrangement,
            user_positions=range(0, instance.num_users, 2),
            event_positions=range(0, instance.num_events, 2),
        )
        assert arrangement.is_feasible()
        assert arrangement.utility() >= before - 1e-12


class TestRepair:
    def test_requires_arrangement(self):
        result = apply_delta(tiny_instance(), Delta())
        with pytest.raises(ValueError, match="no arrangement"):
            repair(result)

    def test_repair_refills_freed_capacity(self):
        instance = tiny_instance()
        # Event 2 (capacity 1) held by user 10; removing 10 frees the seat
        # for bidder 12, which only a repair scoped to the touched event
        # can discover.
        arrangement = Arrangement.from_pairs(
            instance, [(2, 10), (3, 11), (3, 12)]
        )
        result, moves = apply_with_repair(
            instance, Delta(remove_users=(10,)), arrangement
        )
        assert (2, 12) in result.arrangement.pairs
        assert moves["refills"] >= 1
        assert moves["dropped_pairs"] == 1
        assert result.arrangement.is_feasible()

    def test_new_user_is_served(self):
        """A new user with an uncontested seat is assigned by repair."""
        instance = tiny_instance()
        arrangement = Arrangement.from_pairs(instance, [(3, 13)])
        result, moves = apply_with_repair(
            instance,
            Delta(
                add_events=(Event(event_id=9, capacity=1),),
                add_users=(User(user_id=70, capacity=1, bids=(9,)),),
                interest=((9, 70, 1.0),),
            ),
            arrangement,
        )
        assert (9, 70) in result.arrangement.pairs

    def test_new_user_without_interest_entries_can_evict(self):
        """Regression: add_users' bid events were missing from
        touched_events, so when the pair's interest pre-existed in the
        table (no delta interest entries), repair never rescanned the full
        event and a heavier arrival could not displace a lighter attendee."""
        from repro.model import IGEPAInstance, MatrixConflict, TabulatedInterest
        from repro.social import Graph

        instance = IGEPAInstance(
            events=[Event(event_id=1, capacity=1)],
            users=[User(user_id=10, capacity=1, bids=(1,))],
            conflict=MatrixConflict([]),
            # The future arrival's interest is already tabulated.
            interest=TabulatedInterest({(1, 10): 0.1, (1, 11): 0.9}),
            social=Graph(nodes=[10]),
        )
        arrangement = Arrangement.from_pairs(instance, [(1, 10)])
        result, moves = apply_with_repair(
            instance,
            Delta(add_users=(User(user_id=11, capacity=1, bids=(1,)),)),
            arrangement,
        )
        assert 1 in result.touched_events
        assert result.arrangement.pairs == {(1, 11)}
        assert moves["evictions"] == 1

    def test_new_user_loses_contested_seats_to_heavier_bidders(self):
        """When the new user's only event is contested, repair may serve
        the heavier waiting bidders instead — the higher-utility optimum
        (the interest re-weight marks the event touched, so its whole
        bidder pool competes)."""
        instance = tiny_instance()
        arrangement = Arrangement.from_pairs(instance, [(3, 13)])
        result, _moves = apply_with_repair(
            instance,
            Delta(
                add_users=(User(user_id=70, capacity=1, bids=(1,)),),
                interest=((1, 70, 1.0),),
            ),
            arrangement,
        )
        # Event 1 (capacity 2): users 10 and 11 outweigh the degree-0
        # newcomer, whose lone serving would have scored lower.
        assert result.arrangement.users_of(1) == {10, 11}
        lone_newcomer = 0.5 * 1.0 + 0.5 * 0.0  # w(1, 70)
        assert result.arrangement.utility() > lone_newcomer

    def test_new_event_attracts_rebid(self):
        instance = tiny_instance()
        arrangement = Arrangement.from_pairs(instance, [(3, 13)])
        result, moves = apply_with_repair(
            instance,
            Delta(
                add_events=(Event(event_id=9, capacity=2),),
                add_bids=((10, 9),),
                interest=((9, 10, 1.0),),
            ),
            arrangement,
        )
        assert (9, 10) in result.arrangement.pairs
        assert result.arrangement.is_feasible()

    def test_interest_reweight_triggers_upgrade(self):
        """Regression: interest-only deltas left the touched sets empty, so
        a re-weighted bid was never re-optimized."""
        from repro.model import IGEPAInstance, MatrixConflict, TabulatedInterest
        from repro.social import Graph

        instance = IGEPAInstance(
            events=[Event(event_id=10, capacity=2), Event(event_id=11, capacity=2)],
            users=[User(user_id=1, capacity=1, bids=(10, 11))],
            conflict=MatrixConflict([]),
            interest=TabulatedInterest({(10, 1): 0.8, (11, 1): 0.1}),
            social=Graph(nodes=[1]),
        )
        arrangement = Arrangement.from_pairs(instance, [(10, 1)])
        result, moves = apply_with_repair(
            instance, Delta(interest=((11, 1, 0.99),)), arrangement
        )
        assert result.arrangement.pairs == {(11, 1)}
        assert moves["upgrades"] == 1

    def test_utility_never_decreases_from_carryover(self):
        instance = random_instance(seed=11, num_users=25, num_events=8)
        arrangement = GGGreedy().solve(instance, seed=0).arrangement
        delta = Delta(remove_users=(instance.users[0].user_id,))
        result = apply_delta(instance, delta, arrangement)
        carried_utility = result.arrangement.utility()
        repair(result)
        assert result.arrangement.utility() >= carried_utility - 1e-12
