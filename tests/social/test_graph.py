"""Unit tests for repro.social.graph.Graph."""

import pytest

from repro.social import Graph


class TestConstruction:
    def test_empty_graph_has_no_nodes_or_edges(self):
        g = Graph()
        assert g.number_of_nodes == 0
        assert g.number_of_edges == 0
        assert g.nodes() == []
        assert g.edges() == []

    def test_init_with_nodes_and_edges(self):
        g = Graph(nodes=[1, 2, 3], edges=[(1, 2)])
        assert g.number_of_nodes == 3
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 3)

    def test_init_edges_create_missing_nodes(self):
        g = Graph(edges=[(1, 2), (3, 4)])
        assert set(g.nodes()) == {1, 2, 3, 4}

    def test_nodes_preserve_insertion_order(self):
        g = Graph(nodes=[3, 1, 2])
        assert g.nodes() == [3, 1, 2]


class TestMutation:
    def test_add_node_is_idempotent(self):
        g = Graph()
        g.add_node("a")
        g.add_node("a")
        assert g.number_of_nodes == 1

    def test_add_edge_is_idempotent(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.number_of_edges == 1

    def test_add_edge_rejects_self_loop(self):
        g = Graph()
        with pytest.raises(ValueError, match="self-loop"):
            g.add_edge(1, 1)

    def test_edge_is_symmetric(self):
        g = Graph(edges=[(1, 2)])
        assert g.has_edge(1, 2)
        assert g.has_edge(2, 1)

    def test_remove_edge(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.has_edge(2, 3)
        assert g.has_node(1)

    def test_remove_missing_edge_raises(self):
        g = Graph(nodes=[1, 2])
        with pytest.raises(KeyError):
            g.remove_edge(1, 2)

    def test_remove_node_drops_incident_edges(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        g.remove_node(2)
        assert not g.has_node(2)
        assert g.degree(1) == 1
        assert g.has_edge(1, 3)

    def test_remove_missing_node_raises(self):
        with pytest.raises(KeyError):
            Graph().remove_node(42)


class TestQueries:
    def test_neighbors_returns_copy(self):
        g = Graph(edges=[(1, 2)])
        neighbors = g.neighbors(1)
        neighbors.add(99)
        assert g.neighbors(1) == {2}

    def test_neighbors_of_unknown_node_raises(self):
        with pytest.raises(KeyError):
            Graph().neighbors(0)

    def test_degree_counts_distinct_neighbors(self):
        g = Graph(edges=[(1, 2), (1, 3), (1, 4)])
        assert g.degree(1) == 3
        assert g.degree(2) == 1

    def test_edges_lists_each_edge_once(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        edges = g.edges()
        assert len(edges) == 3
        normalized = {frozenset(e) for e in edges}
        assert normalized == {frozenset((1, 2)), frozenset((2, 3)), frozenset((1, 3))}

    def test_dunder_protocols(self):
        g = Graph(edges=[(1, 2)])
        assert 1 in g
        assert 3 not in g
        assert len(g) == 2
        assert sorted(g) == [1, 2]

    def test_equality_compares_structure(self):
        g1 = Graph(edges=[(1, 2)])
        g2 = Graph(edges=[(2, 1)])
        assert g1 == g2
        g2.add_node(3)
        assert g1 != g2

    def test_equality_against_non_graph(self):
        assert Graph() != "not a graph"

    def test_repr_mentions_counts(self):
        g = Graph(edges=[(1, 2)])
        assert "nodes=2" in repr(g)
        assert "edges=1" in repr(g)


class TestDerivations:
    def test_copy_is_independent(self):
        g = Graph(edges=[(1, 2)])
        clone = g.copy()
        clone.add_edge(1, 3)
        assert not g.has_edge(1, 3)
        assert clone.has_edge(1, 2)

    def test_subgraph_keeps_internal_edges_only(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 4)])
        sub = g.subgraph([2, 3, 4])
        assert set(sub.nodes()) == {2, 3, 4}
        assert sub.has_edge(2, 3)
        assert sub.has_edge(3, 4)
        assert not sub.has_node(1)

    def test_subgraph_ignores_unknown_nodes(self):
        g = Graph(edges=[(1, 2)])
        sub = g.subgraph([1, 99])
        assert set(sub.nodes()) == {1}

    def test_networkx_round_trip(self):
        g = Graph(edges=[(1, 2), (2, 3)], nodes=[4])
        nx_graph = g.to_networkx()
        back = Graph.from_networkx(nx_graph)
        assert set(back.nodes()) == {1, 2, 3, 4}
        assert back.has_edge(1, 2)
        assert back.has_edge(2, 3)
        assert back.number_of_edges == 2
