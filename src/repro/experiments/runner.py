"""Repetition runner: the paper's "repeated 50 times, averages reported".

A *repetition* draws a fresh instance (seed ``base_seed + i``) and runs every
algorithm once on it with the same seed — so algorithms are compared on
identical data and randomness budgets, repetition by repetition.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.base import ArrangementAlgorithm
from repro.core.baselines import GGGreedy, RandomU, RandomV
from repro.core.lp_packing import LPPacking
from repro.model.instance import IGEPAInstance

InstanceFactory = Callable[[int], IGEPAInstance]
AlgorithmFactory = Callable[[], list[ArrangementAlgorithm]]


def default_algorithms(lp_backend: str = "auto") -> list[ArrangementAlgorithm]:
    """The paper's four algorithms in its Table II order.

    LP-packing uses ``α = 1`` ("We empirically set α = 1 in LP-packing").
    """
    return [
        LPPacking(alpha=1.0, lp_backend=lp_backend),
        RandomU(),
        RandomV(),
        GGGreedy(),
    ]


@dataclass
class AlgorithmStats:
    """Aggregated repetition statistics for one algorithm.

    Attributes:
        algorithm: display name.
        utilities: utility per repetition.
        runtimes: solve wall-clock per repetition (seconds).
        pair_counts: arrangement sizes per repetition.
    """

    algorithm: str
    utilities: list[float] = field(default_factory=list)
    runtimes: list[float] = field(default_factory=list)
    pair_counts: list[int] = field(default_factory=list)

    @property
    def mean_utility(self) -> float:
        return float(np.mean(self.utilities)) if self.utilities else 0.0

    @property
    def std_utility(self) -> float:
        return float(np.std(self.utilities)) if self.utilities else 0.0

    @property
    def mean_runtime(self) -> float:
        return float(np.mean(self.runtimes)) if self.runtimes else 0.0

    @property
    def mean_pairs(self) -> float:
        return float(np.mean(self.pair_counts)) if self.pair_counts else 0.0


def run_repetitions(
    instance_factory: InstanceFactory,
    algorithms: Sequence[ArrangementAlgorithm] | None = None,
    repetitions: int = 3,
    base_seed: int = 0,
) -> dict[str, AlgorithmStats]:
    """Run every algorithm on ``repetitions`` freshly drawn instances.

    Args:
        instance_factory: maps a repetition seed to an instance (e.g.
            ``lambda s: generate_synthetic(config, seed=s)``).
        algorithms: algorithm objects (defaults to the paper's four).
        repetitions: number of instance draws.
        base_seed: repetition ``i`` uses seed ``base_seed + i`` for both the
            instance and the algorithms.

    Returns:
        Per-algorithm statistics keyed by algorithm name.
    """
    if algorithms is None:
        algorithms = default_algorithms()
    stats = {algorithm.name: AlgorithmStats(algorithm.name) for algorithm in algorithms}
    for repetition in range(repetitions):
        seed = base_seed + repetition
        instance = instance_factory(seed)
        for algorithm in algorithms:
            result = algorithm.solve(instance, seed=seed)
            record = stats[algorithm.name]
            record.utilities.append(result.utility)
            record.runtimes.append(result.runtime_seconds)
            record.pair_counts.append(result.num_pairs)
    return stats


def run_on_instance(
    instance: IGEPAInstance,
    algorithms: Sequence[ArrangementAlgorithm] | None = None,
    repetitions: int = 3,
    base_seed: int = 0,
) -> dict[str, AlgorithmStats]:
    """Like :func:`run_repetitions` but on one fixed instance.

    Used for the real-dataset experiment (Table II), where the data is fixed
    and only algorithm randomness varies.  LP-packing's internal LP cache
    makes the extra repetitions nearly free.
    """
    return run_repetitions(
        lambda _seed: instance,
        algorithms=algorithms,
        repetitions=repetitions,
        base_seed=base_seed,
    )
