"""Event-participant arrangements (Definition 4) and their utility (Definition 7).

An :class:`Arrangement` is a mutable set of (event, user) pairs bound to an
:class:`~repro.model.instance.IGEPAInstance`.  Mutations check the three
feasibility constraints *incrementally* (O(c_u) per insert), so algorithm
implementations can build arrangements pair by pair and rely on the model to
reject violations:

* **Bid** — users only join events they bid for;
* **Capacity** — both ``c_v`` (attendees per event) and ``c_u`` (events per
  user);
* **Conflict** — no user attends two conflicting events.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.model.errors import ArrangementError
from repro.model.instance import IGEPAInstance


class Arrangement:
    """A feasible (by construction) collection of event-user pairs.

    Use ``add(..., check=False)`` only when the caller guarantees
    feasibility; ``is_feasible()`` / ``violations()`` re-verify from scratch.
    """

    def __init__(self, instance: IGEPAInstance):
        self.instance = instance
        self._pairs: set[tuple[int, int]] = set()
        self._events_of: dict[int, set[int]] = {}
        self._users_of: dict[int, set[int]] = {}

    # ------------------------------------------------------------------
    # Content
    # ------------------------------------------------------------------
    @property
    def pairs(self) -> set[tuple[int, int]]:
        """All ``(event_id, user_id)`` pairs (copy)."""
        return set(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __contains__(self, pair: tuple[int, int]) -> bool:
        return pair in self._pairs

    def __iter__(self):
        return iter(self._pairs)

    def events_of(self, user_id: int) -> set[int]:
        """Events currently assigned to the user."""
        return set(self._events_of.get(user_id, ()))

    def users_of(self, event_id: int) -> set[int]:
        """Users currently assigned to the event."""
        return set(self._users_of.get(event_id, ()))

    def attendance(self, event_id: int) -> int:
        """Number of users assigned to the event."""
        return len(self._users_of.get(event_id, ()))

    def load(self, user_id: int) -> int:
        """Number of events assigned to the user."""
        return len(self._events_of.get(user_id, ()))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def can_add(self, event_id: int, user_id: int) -> bool:
        """Whether adding the pair keeps the arrangement feasible."""
        try:
            self._check_addition(event_id, user_id)
        except ArrangementError:
            return False
        return True

    def _check_addition(self, event_id: int, user_id: int) -> None:
        instance = self.instance
        if event_id not in instance.event_by_id:
            raise ArrangementError(f"unknown event id {event_id}")
        user = instance.user_by_id.get(user_id)
        if user is None:
            raise ArrangementError(f"unknown user id {user_id}")
        if (event_id, user_id) in self._pairs:
            raise ArrangementError(f"pair ({event_id}, {user_id}) already present")
        if event_id not in user.bid_set:
            raise ArrangementError(
                f"bid constraint: user {user_id} did not bid for event {event_id}"
            )
        if self.attendance(event_id) >= instance.event_by_id[event_id].capacity:
            raise ArrangementError(
                f"capacity constraint: event {event_id} is full "
                f"(c_v = {instance.event_by_id[event_id].capacity})"
            )
        if self.load(user_id) >= user.capacity:
            raise ArrangementError(
                f"capacity constraint: user {user_id} is at capacity "
                f"(c_u = {user.capacity})"
            )
        for assigned in self._events_of.get(user_id, ()):
            if instance.conflicts(event_id, assigned):
                raise ArrangementError(
                    f"conflict constraint: events {event_id} and {assigned} "
                    f"conflict for user {user_id}"
                )

    def add(self, event_id: int, user_id: int, check: bool = True) -> None:
        """Add a pair.

        Raises:
            ArrangementError: when ``check`` and the pair violates a
                constraint of Definition 4 (or is already present).
        """
        if check:
            self._check_addition(event_id, user_id)
        self._pairs.add((event_id, user_id))
        self._events_of.setdefault(user_id, set()).add(event_id)
        self._users_of.setdefault(event_id, set()).add(user_id)

    def remove(self, event_id: int, user_id: int) -> None:
        """Remove a pair.

        Raises:
            ArrangementError: if the pair is not present.
        """
        if (event_id, user_id) not in self._pairs:
            raise ArrangementError(f"pair ({event_id}, {user_id}) not in arrangement")
        self._pairs.discard((event_id, user_id))
        self._events_of[user_id].discard(event_id)
        self._users_of[event_id].discard(user_id)

    @classmethod
    def from_pairs(
        cls,
        instance: IGEPAInstance,
        pairs: Iterable[tuple[int, int]],
        check: bool = True,
    ) -> "Arrangement":
        """Build an arrangement from ``(event_id, user_id)`` pairs."""
        arrangement = cls(instance)
        for event_id, user_id in pairs:
            arrangement.add(event_id, user_id, check=check)
        return arrangement

    # ------------------------------------------------------------------
    # Feasibility audit (full re-check, independent of incremental guards)
    # ------------------------------------------------------------------
    def violations(self) -> list[str]:
        """All constraint violations in the current pair set."""
        instance = self.instance
        problems: list[str] = []
        for event_id, user_id in sorted(self._pairs):
            user = instance.user_by_id.get(user_id)
            if user is None:
                problems.append(f"unknown user {user_id}")
                continue
            if event_id not in instance.event_by_id:
                problems.append(f"unknown event {event_id}")
                continue
            if event_id not in user.bid_set:
                problems.append(
                    f"bid: user {user_id} assigned to non-bid event {event_id}"
                )
        for event_id, users in sorted(self._users_of.items()):
            event = instance.event_by_id.get(event_id)
            if event is not None and len(users) > event.capacity:
                problems.append(
                    f"capacity: event {event_id} has {len(users)} attendees, "
                    f"c_v = {event.capacity}"
                )
        for user_id, events in sorted(self._events_of.items()):
            user = instance.user_by_id.get(user_id)
            if user is not None and len(events) > user.capacity:
                problems.append(
                    f"capacity: user {user_id} attends {len(events)} events, "
                    f"c_u = {user.capacity}"
                )
            ordered = sorted(events)
            for i, first in enumerate(ordered):
                for second in ordered[i + 1 :]:
                    if instance.conflicts(first, second):
                        problems.append(
                            f"conflict: user {user_id} attends conflicting events "
                            f"{first} and {second}"
                        )
        return problems

    def is_feasible(self) -> bool:
        """Full feasibility audit (Definition 4)."""
        return not self.violations()

    # ------------------------------------------------------------------
    # Utility (Definition 7)
    # ------------------------------------------------------------------
    def utility(self) -> float:
        """``β·Σ SI + (1-β)·Σ D`` over all assigned pairs."""
        return sum(
            self.instance.weight(user_id, event_id)
            for event_id, user_id in self._pairs
        )

    def interest_total(self) -> float:
        """The Σ SI part of the utility (before the β weighting)."""
        return sum(
            self.instance.interest_of(event_id, user_id)
            for event_id, user_id in self._pairs
        )

    def interaction_total(self) -> float:
        """The Σ D part of the utility (before the 1-β weighting)."""
        return sum(
            self.instance.degree(user_id) for _, user_id in self._pairs
        )

    def copy(self) -> "Arrangement":
        clone = Arrangement(self.instance)
        for event_id, user_id in self._pairs:
            clone.add(event_id, user_id, check=False)
        return clone

    def __repr__(self) -> str:
        return (
            f"Arrangement(pairs={len(self._pairs)}, "
            f"utility={self.utility():.4f})"
        )
