"""Sharded-index benchmark: |U| = 50k end-to-end under a dense-impossible gate.

Three gates, all on fixed seeds:

1. **Scale + memory** — stream-generate a |U| = 50_000, |V| = 500 instance,
   build its :class:`~repro.model.sharded_index.ShardedInstanceIndex` and
   run the full pipeline (GG+LS, then LP-packing on HiGHS) end to end.
   The dense index cannot even build at this shape (2.5·10⁷ cells is past
   its hard cap — asserted), and the whole run's peak RSS above the
   interpreter baseline must stay under the gate
   ``instance footprint + 17·|U|·|V| bytes`` — i.e. under what a
   dense-index pipeline would occupy the moment its ``W``/``SI``/
   ``bid_mask`` matrices exist, before solving anything.
2. **Parity** — at a dense-buildable size, GG / GG+LS / LP-packing must
   produce bit-identical arrangements on the sharded and the dense index
   (hard gate; the property suite covers more shard sizes).
3. **Shard-parallel replay** — replay a churn trace over the 50k instance
   with the shard-parallel repair engine at 1 worker and at
   ``max(4, ...)`` workers; on machines with 4+ cores the per-batch
   wall-clock speedup must reach ``--min-speedup`` (default 2x; CI passes
   a looser floor because shared runners add noise — the measured ratio
   lands in the JSON artifact either way).  On smaller machines the ratio
   is recorded but not gated.

Results land in ``benchmarks/output/BENCH_shard.json`` so the scaling
trajectory accumulates across PRs, like the LP and churn benches.

Run as a script (CI does)::

    python benchmarks/bench_shard.py --out benchmarks/output/BENCH_shard.json

or through pytest-benchmark with the rest of the bench suite::

    python -m pytest benchmarks/bench_shard.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from repro.core import GGGreedy, LPPacking, LocalSearch
from repro.datagen import (
    ChurnConfig,
    SyntheticConfig,
    generate_churn_trace,
    generate_synthetic,
    generate_synthetic_stream,
)
from repro.experiments.replay import replay_trace
from repro.model import IndexCapacityError, InstanceIndex, ShardedInstanceIndex
from repro.solver.scipy_backend import scipy_available

NUM_USERS = 50_000
NUM_EVENTS = 500
#: Bytes per user-by-event cell of the dense index's matrices (W + SI as
#: float64 plus bid_mask as bool) — 425 MB at the bench shape.  The memory
#: gate is ``measured instance footprint + this``: a dense-index pipeline
#: exceeds that the moment its matrices are allocated, before any solve.
DENSE_BYTES_PER_CELL = 17.0
MIN_PARALLEL_SPEEDUP = 2.0
PARALLEL_WORKERS = 4


def _rss_mb() -> float:
    """Peak RSS of this process in MB (ru_maxrss is KB on Linux)."""
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def run_scale_gate(seed: int) -> dict:
    """Build + GG+LS + LP-packing at 50k users under the memory gate."""
    baseline_mb = _rss_mb()
    config = SyntheticConfig(
        num_users=NUM_USERS,
        num_events=NUM_EVENTS,
        max_bids=3,
        max_user_capacity=2,
    )
    started = time.perf_counter()
    instance = generate_synthetic_stream(config, seed=seed)
    generate_seconds = time.perf_counter() - started
    instance_mb = _rss_mb() - baseline_mb

    # The dense index cannot represent this shape at all.
    try:
        InstanceIndex(instance)
        raise AssertionError(
            "dense InstanceIndex unexpectedly accepted a "
            f"{NUM_USERS}x{NUM_EVENTS} instance"
        )
    except IndexCapacityError:
        pass

    started = time.perf_counter()
    index = instance.index
    index_seconds = time.perf_counter() - started
    assert isinstance(index, ShardedInstanceIndex), type(index).__name__

    started = time.perf_counter()
    gg_ls = LocalSearch(GGGreedy()).solve(instance, seed=seed)
    gg_ls_seconds = time.perf_counter() - started
    assert gg_ls.arrangement.is_feasible()

    lp_row = None
    if scipy_available():
        started = time.perf_counter()
        lp = LPPacking(
            alpha=1.0, lp_backend="scipy", lp_presolve=False, cache_lp=False
        ).solve(instance, seed=seed)
        lp_seconds = time.perf_counter() - started
        assert lp.arrangement.is_feasible()
        lp_row = {
            "seconds": lp_seconds,
            "utility": lp.utility,
            "lp_variables": lp.details["num_variables"],
            "lp_backend": lp.details["lp_backend"],
        }

    peak_mb = _rss_mb()
    dense_matrix_mb = DENSE_BYTES_PER_CELL * NUM_USERS * NUM_EVENTS / 1e6
    gate_delta_mb = instance_mb + dense_matrix_mb
    peak_delta_mb = peak_mb - baseline_mb
    row = {
        "num_users": NUM_USERS,
        "num_events": NUM_EVENTS,
        "num_bids": index.num_bids,
        "num_shards": index.num_shards,
        "shard_size": index.shard_size,
        "generate_seconds": generate_seconds,
        "index_seconds": index_seconds,
        "gg_ls_seconds": gg_ls_seconds,
        "gg_ls_utility": gg_ls.utility,
        "lp_packing": lp_row,
        "baseline_mb": baseline_mb,
        "instance_mb": instance_mb,
        "peak_mb": peak_mb,
        "peak_delta_mb": peak_delta_mb,
        "dense_matrix_mb": dense_matrix_mb,
        "memory_gate_delta_mb": gate_delta_mb,
    }
    print(
        f"scale: |U|={NUM_USERS} |V|={NUM_EVENTS} shards="
        f"{index.num_shards}x{index.shard_size} gg+ls={gg_ls_seconds:.1f}s "
        f"lp={'skipped' if lp_row is None else format(lp_row['seconds'], '.1f') + 's'} "
        f"peak delta {peak_delta_mb:.0f}MB < gate {gate_delta_mb:.0f}MB "
        f"(instance {instance_mb:.0f}MB + dense matrices {dense_matrix_mb:.0f}MB)"
    )
    assert peak_delta_mb < gate_delta_mb, (
        f"sharded 50k run peaked {peak_delta_mb:.0f}MB over baseline — not "
        f"below the dense-index floor of {gate_delta_mb:.0f}MB (instance "
        f"{instance_mb:.0f}MB + dense matrices {dense_matrix_mb:.0f}MB)"
    )
    return row


def run_parity_gate(seed: int) -> dict:
    """Fixed-seed arrangement parity between the sharded and dense paths."""
    config = SyntheticConfig(num_users=3000, num_events=200)
    algorithms = {
        "gg": lambda: GGGreedy(),
        "gg+ls": lambda: LocalSearch(GGGreedy()),
        "lp-packing": lambda: LPPacking(alpha=1.0),
    }
    rows = {}
    for name, factory in algorithms.items():
        dense_instance = generate_synthetic(config, seed=seed)
        dense_instance.configure_index(sharded=False)
        sharded_instance = generate_synthetic(config, seed=seed)
        sharded_instance.configure_index(sharded=True, shard_size=256)
        dense = factory().solve(dense_instance, seed=seed)
        sharded = factory().solve(sharded_instance, seed=seed)
        identical = dense.arrangement.pairs == sharded.arrangement.pairs
        rows[name] = {
            "utility": dense.utility,
            "identical_pairs": identical,
        }
        assert identical, f"{name}: sharded and dense arrangements differ"
        assert dense.utility == sharded.utility
    print(f"parity: {', '.join(rows)} bit-identical across index implementations")
    return rows


def run_parallel_gate(seed: int, min_speedup: float, workers: int) -> dict:
    """Shard-parallel replay speedup over the single-worker baseline."""
    config = SyntheticConfig(num_users=NUM_USERS, num_events=NUM_EVENTS)
    instance = generate_synthetic_stream(config, seed=seed)
    churn = ChurnConfig(
        num_batches=3,
        user_arrival_rate=NUM_USERS / 1000,
        user_departure_rate=NUM_USERS / 1000,
        rebid_rate=NUM_USERS / 25,
        event_open_rate=1.0,
        event_close_rate=1.0,
        base=config,
    )
    trace = generate_churn_trace(instance, churn, seed=seed + 1)

    single = replay_trace(trace, seed=seed, compare_full=False, workers=1)
    assert single.all_feasible
    parallel = replay_trace(trace, seed=seed, compare_full=False, workers=workers)
    assert parallel.all_feasible

    speedup = (
        single.mean_incremental_seconds / parallel.mean_incremental_seconds
        if parallel.mean_incremental_seconds > 0
        else None
    )
    cores = os.cpu_count() or 1
    gated = cores >= 4
    row = {
        "workers": workers,
        "cpu_cores": cores,
        "single_mean_batch_seconds": single.mean_incremental_seconds,
        "parallel_mean_batch_seconds": parallel.mean_incremental_seconds,
        "speedup": speedup,
        "gated": gated,
        "min_required_speedup": min_speedup if gated else None,
        "single_utilities": [r.incremental_utility for r in single.records],
        "parallel_utilities": [r.incremental_utility for r in parallel.records],
    }
    print(
        f"parallel replay: 1 worker {single.mean_incremental_seconds:.2f}s/batch, "
        f"{workers} workers {parallel.mean_incremental_seconds:.2f}s/batch -> "
        f"{speedup:.2f}x ({'gated' if gated else f'not gated, {cores} core(s)'})"
    )
    if gated:
        assert speedup is not None and speedup >= min_speedup, (
            f"shard-parallel replay reached only {speedup:.2f}x over the "
            f"single-worker baseline at {workers} workers "
            f"(required: {min_speedup}x on {cores} cores)"
        )
    return row


def run_bench(
    seed: int = 0,
    min_speedup: float = MIN_PARALLEL_SPEEDUP,
    workers: int = PARALLEL_WORKERS,
    skip_parallel: bool = False,
) -> dict:
    report = {
        "seed": seed,
        "scale": run_scale_gate(seed),
        "parity": run_parity_gate(seed),
    }
    if not skip_parallel:
        report["parallel_replay"] = run_parallel_gate(seed, min_speedup, workers)
    return report


def bench_shard_scale(bench_once):
    """pytest-benchmark entry: scale + parity gates (parallel gate is
    hardware-dependent and runs in the script/CI path)."""
    report = bench_once(run_bench, seed=0, skip_parallel=True)
    scale = report["scale"]
    assert scale["peak_delta_mb"] < scale["memory_gate_delta_mb"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=MIN_PARALLEL_SPEEDUP,
        help="floor on the shard-parallel replay speedup (4+ core machines)",
    )
    parser.add_argument(
        "--workers", type=int, default=PARALLEL_WORKERS, help="parallel worker count"
    )
    parser.add_argument(
        "--skip-parallel",
        action="store_true",
        help="skip the shard-parallel replay measurement",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent / "output" / "BENCH_shard.json",
    )
    args = parser.parse_args()
    report = run_bench(
        seed=args.seed,
        min_speedup=args.min_speedup,
        workers=args.workers,
        skip_parallel=args.skip_parallel,
    )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[written to {args.out}]")


if __name__ == "__main__":
    main()
