"""Solution and status types shared by all solver backends."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np


class SolveStatus(Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    NODE_LIMIT = "node_limit"

    @property
    def is_optimal(self) -> bool:
        return self is SolveStatus.OPTIMAL


@dataclass
class LPSolution:
    """Result of solving a :class:`~repro.solver.problem.LinearProgram`.

    Attributes:
        status: solve outcome; ``x``/``objective_value`` are only meaningful
            when ``status.is_optimal``.
        objective_value: objective in the program's own sense (max or min).
        x: primal values aligned with the program's variable indices.
        iterations: simplex pivots (or backend-reported iterations).
        backend: name of the backend that produced the solution.
        basis_labels: names of the basic columns at optimality (variable
            names; slacks as ``slack:<constraint name>``), reported by the
            revised-simplex backends.  Feed them back into
            :func:`repro.solver.api.solve_lp` as ``warm_start`` to crash the
            next, structurally similar solve from this basis.
        diagnostics: backend-reported solve telemetry (e.g. warm-start label
            match/stale counts and whether the solve fell back to a cold
            start, dual/primal pivot and refactorization counts on the
            incremental path).  None when the backend reports nothing.
    """

    status: SolveStatus
    objective_value: float = float("nan")
    x: np.ndarray = field(default_factory=lambda: np.empty(0))
    iterations: int = 0
    backend: str = ""
    basis_labels: tuple[str, ...] | None = None
    diagnostics: dict | None = None

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)

    @property
    def is_optimal(self) -> bool:
        return self.status.is_optimal


@dataclass
class ILPSolution:
    """Result of a branch-and-bound solve.

    Attributes:
        status: ``OPTIMAL`` when the tree was exhausted, ``NODE_LIMIT`` when an
            incumbent exists but optimality was not proven.
        objective_value: incumbent objective (program's own sense).
        x: incumbent point.
        nodes_explored: number of branch-and-bound nodes processed.
        best_bound: tightest relaxation bound over open nodes at termination;
            equals ``objective_value`` when optimal.
    """

    status: SolveStatus
    objective_value: float = float("nan")
    x: np.ndarray = field(default_factory=lambda: np.empty(0))
    nodes_explored: int = 0
    best_bound: float = float("nan")

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)

    @property
    def is_optimal(self) -> bool:
        return self.status.is_optimal

    @property
    def gap(self) -> float:
        """Relative optimality gap (0.0 when proven optimal)."""
        if self.status.is_optimal:
            return 0.0
        if np.isnan(self.objective_value) or np.isnan(self.best_bound):
            return float("inf")
        denom = max(abs(self.objective_value), 1e-12)
        return abs(self.best_bound - self.objective_value) / denom
