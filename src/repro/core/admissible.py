"""Admissible event sets (§III of the paper).

For a user ``u``, an admissible event set ``S ⊆ N_u`` is a *nonempty*,
*conflict-free* subset of the user's bids with ``|S| ≤ c_u``.  (The paper's
text misprints the conflict condition as ``σ = 1``; "admissible event sets …
without conflicting events" makes the intent unambiguous — see DESIGN.md §5.)
The collection ``A_u`` of all such sets is downward closed: every nonempty
subset of an admissible set is admissible.

Enumeration is exact: a depth-first walk over the user's bids in sorted order
that extends only by non-conflicting events, which visits every independent
set of the bid-conflict graph of size ``≤ c_u`` exactly once.  The paper
"assume[s] that a user will not bid for too many events, so the number of
admissible event sets will be reasonable"; :data:`DEFAULT_MAX_SETS_PER_USER`
turns a violation of that assumption into a clear error instead of a hang.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.model.entities import User
from repro.model.instance import IGEPAInstance

DEFAULT_MAX_SETS_PER_USER = 100_000


class AdmissibleSetExplosion(RuntimeError):
    """A user's admissible-set collection exceeded the configured cap."""

    def __init__(self, user_id: int, cap: int):
        super().__init__(
            f"user {user_id} has more than {cap} admissible event sets; "
            "the LP-packing formulation assumes few bids per user — lower the "
            "user's bid count or raise max_sets_per_user"
        )
        self.user_id = user_id
        self.cap = cap


def enumerate_admissible_sets(
    instance: IGEPAInstance,
    user: User,
    max_sets: int = DEFAULT_MAX_SETS_PER_USER,
) -> list[tuple[int, ...]]:
    """All admissible event sets of ``user``, as sorted tuples of event ids.

    The result is ordered lexicographically (the DFS visits extensions in
    sorted-bid order), which makes downstream sampling reproducible.

    Args:
        instance: supplies the conflict relation between bid events.
        user: whose bids and capacity define the collection.
        max_sets: explosion guard.

    Raises:
        AdmissibleSetExplosion: when the collection exceeds ``max_sets``.
    """
    bids = sorted(user.bids)
    capacity = user.capacity
    results: list[tuple[int, ...]] = []
    if capacity == 0 or not bids:
        return results

    index = instance.index
    conflict = index.conflict_matrix
    positions = [index.event_pos[event_id] for event_id in bids]

    def extend(start: int, current: list[int], chosen_positions: list[int]) -> None:
        for offset in range(start, len(bids)):
            row = conflict[positions[offset]]
            if any(row[p] for p in chosen_positions):
                continue
            current.append(bids[offset])
            chosen_positions.append(positions[offset])
            results.append(tuple(current))
            if len(results) > max_sets:
                raise AdmissibleSetExplosion(user.user_id, max_sets)
            if len(current) < capacity:
                extend(offset + 1, current, chosen_positions)
            current.pop()
            chosen_positions.pop()

    extend(0, [], [])
    return results


def enumerate_all_admissible_sets(
    instance: IGEPAInstance,
    max_sets_per_user: int = DEFAULT_MAX_SETS_PER_USER,
) -> dict[int, list[tuple[int, ...]]]:
    """``A_u`` for every user of the instance, keyed by user id."""
    return {
        user.user_id: enumerate_admissible_sets(instance, user, max_sets_per_user)
        for user in instance.users
    }


def is_admissible(
    instance: IGEPAInstance, user: User, events: Sequence[int]
) -> bool:
    """Whether ``events`` is an admissible event set for ``user``.

    Checks all three conditions: nonempty subset of the bids, within the
    user's capacity, and pairwise conflict-free.
    """
    events = list(events)
    if not events or len(events) > user.capacity:
        return False
    if len(set(events)) != len(events):
        return False
    if not set(events) <= user.bid_set:
        return False
    index = instance.index
    positions = [index.event_pos[event_id] for event_id in events]
    conflict = index.conflict_matrix
    return not conflict[np.ix_(positions, positions)].any()
