"""The regression detector: slumps flag, flat/improving histories pass."""

import pytest

from repro.metrics import (
    METRICS,
    HistoryFrame,
    Sample,
    detect_regressions,
    format_trend_report,
    relative_drop,
    rolling_median,
    sparkline,
)


def frame_for(metric, values, kind="simulation"):
    return HistoryFrame(
        [
            Sample(
                sha=f"sha{i}",
                timestamp_utc=f"2026-07-{i + 1:02d}T00:00:00+00:00",
                kind=kind,
                metrics={metric: v},
            )
            for i, v in enumerate(values)
        ]
    )


def failing(findings):
    return [f for f in findings if f.regressed]


RET = METRICS["retention_auc"]  # up, tight 5%
P99 = METRICS["serve_p99_ms"]  # down, loose 75%


class TestRelativeDrop:
    def test_injected_slump_flags(self):
        # The acceptance scenario: a >=20% retention drop must trip.
        finding = relative_drop(RET, [0.95, 0.94, 0.96, 0.95, 0.75])
        assert finding.regressed
        assert finding.change > 0.20

    def test_flat_history_passes(self):
        finding = relative_drop(RET, [0.95, 0.94, 0.96, 0.95, 0.95])
        assert not finding.regressed

    def test_improvement_passes_for_up_metric(self):
        finding = relative_drop(RET, [0.90, 0.91, 0.90, 0.99])
        assert not finding.regressed
        assert finding.change < 0

    def test_direction_aware_for_down_metric(self):
        # Latency rising 10x is a regression; falling is an improvement.
        assert relative_drop(P99, [100.0, 110.0, 105.0, 1000.0]).regressed
        assert not relative_drop(P99, [100.0, 110.0, 105.0, 20.0]).regressed

    def test_single_point_has_no_trajectory(self):
        assert relative_drop(RET, [0.9]) is None

    def test_median_baseline_resists_one_noisy_run(self):
        # One absurd outlier in the window must not poison the baseline.
        finding = relative_drop(P99, [100.0, 5000.0, 105.0, 102.0, 103.0])
        assert not finding.regressed

    def test_near_zero_baseline_skipped(self):
        assert relative_drop(RET, [0.0, 0.0, 0.0]) is None


class TestRollingMedian:
    def test_sustained_slump_flags(self):
        # Each recent run individually survivable, but the recent median
        # sits well below the prior window.
        values = [1.00, 1.00, 1.00, 1.00, 0.90, 0.89, 0.91]
        assert rolling_median(RET, values).regressed

    def test_flat_history_passes(self):
        assert not rolling_median(RET, [0.95] * 8).regressed

    def test_improving_history_passes(self):
        values = [0.90, 0.91, 0.92, 0.93, 0.94, 0.95, 0.96]
        assert not rolling_median(RET, values).regressed

    def test_too_short_history_skipped(self):
        assert rolling_median(RET, [0.9, 0.9, 0.9, 0.9]) is None


class TestDetectRegressions:
    def test_slumped_frame_fails_and_flat_frame_passes(self):
        slump = frame_for("retention_auc", [0.95, 0.94, 0.96, 0.95, 0.70])
        assert failing(detect_regressions(slump))
        flat = frame_for("retention_auc", [0.95, 0.94, 0.96, 0.95, 0.95])
        assert not failing(detect_regressions(flat))

    def test_metric_filter(self):
        slump = frame_for("retention_auc", [0.95, 0.95, 0.95, 0.95, 0.70])
        assert not failing(detect_regressions(slump, metrics=["serve_p99_ms"]))
        assert failing(detect_regressions(slump, metrics=["retention_auc"]))

    def test_unregistered_metric_names_ignored(self):
        frame = frame_for("not_a_metric", [1.0, 0.1])
        assert detect_regressions(frame) == []

    def test_loose_wall_clock_threshold_tolerates_noise(self):
        # 30% p99 swing is runner noise, not a regression (limit 75%).
        noisy = frame_for("serve_p99_ms", [100.0, 95.0, 104.0, 99.0, 130.0])
        assert not failing(detect_regressions(noisy))


class TestRendering:
    def test_sparkline_shape(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(sparkline([1.0, 1.0])) == 2  # flat series still renders

    def test_trend_report_mentions_series_and_verdict(self):
        slump = frame_for("retention_auc", [0.95, 0.94, 0.96, 0.95, 0.70])
        text = format_trend_report(slump)
        assert "retention_auc" in text
        assert "REGRESSIONS" in text
        flat = frame_for("retention_auc", [0.95, 0.94, 0.96, 0.95, 0.95])
        assert "no trajectory regressions" in format_trend_report(flat)

    def test_finding_format_has_numbers(self):
        finding = relative_drop(RET, [0.95, 0.94, 0.96, 0.95, 0.70])
        text = finding.format()
        assert "FAIL" in text
        assert "retention_auc" in text
        assert "%" in text
        assert finding.change == pytest.approx(
            (0.95 - 0.70) / 0.95, rel=1e-6
        )
