"""Admission control: what the platform answers under burst.

A flushed tick may carry more arrivals than the serving budget allows.
The admission policy partitions the tick's arrivals — queued leftovers
first, then new ones, in timestamp order — into four outcomes:

* **serve** — full online serving (admissible-set enumeration);
* **degrade** — served by the cheap greedy bid-walk
  (:func:`repro.core.online.serve_greedy_walk`): an answer now, at lower
  quality, instead of a rejection;
* **requeue** — held for the next tick (queue-with-deadline);
* **reject** — turned away (``rejected`` for overload, ``expired`` for a
  queued arrival past its deadline).

Whatever the outcome, the arrival *is registered* on the platform (its
delta applies), so later churn referencing the user stays valid; only the
assignment work is controlled.  Policies are pure functions of the batch
and decision time — deterministic under replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.service.requests import ArrivalRequest


@dataclass
class AdmissionDecision:
    """Partition of one tick's arrivals (each arrival in exactly one
    bucket)."""

    serve: list[ArrivalRequest] = field(default_factory=list)
    degrade: list[ArrivalRequest] = field(default_factory=list)
    requeue: list[ArrivalRequest] = field(default_factory=list)
    reject: list[ArrivalRequest] = field(default_factory=list)
    expire: list[ArrivalRequest] = field(default_factory=list)


class AdmissionPolicy:
    """Base policy: serve everything (no admission control)."""

    name = "admit-all"

    def decide(
        self, arrivals: list[ArrivalRequest], now: float
    ) -> AdmissionDecision:
        """Partition ``arrivals`` (oldest first) at decision time ``now``."""
        return AdmissionDecision(serve=list(arrivals))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class AdmitAll(AdmissionPolicy):
    """Explicit alias of the base policy."""


class _OverloadPolicy(AdmissionPolicy):
    """Shared shape: the first ``max_serve`` arrivals are served in full,
    the overflow goes to the subclass's bucket."""

    def __init__(self, max_serve: int):
        if max_serve < 1:
            raise ValueError(f"max_serve must be >= 1, got {max_serve}")
        self.max_serve = max_serve

    def _overflow(
        self, decision: AdmissionDecision, arrival: ArrivalRequest, now: float
    ) -> None:
        raise NotImplementedError

    def decide(
        self, arrivals: list[ArrivalRequest], now: float
    ) -> AdmissionDecision:
        decision = AdmissionDecision()
        for position, arrival in enumerate(arrivals):
            if position < self.max_serve:
                decision.serve.append(arrival)
            else:
                self._overflow(decision, arrival, now)
        return decision


class RejectOnOverload(_OverloadPolicy):
    """Overflow arrivals are rejected outright (answered immediately)."""

    def __init__(self, max_serve: int):
        super().__init__(max_serve)
        self.name = f"reject>{max_serve}"

    def _overflow(self, decision, arrival, now):
        decision.reject.append(arrival)


class DegradeOnOverload(_OverloadPolicy):
    """Overflow arrivals are served by the cheap greedy bid-walk."""

    def __init__(self, max_serve: int):
        super().__init__(max_serve)
        self.name = f"degrade>{max_serve}"

    def _overflow(self, decision, arrival, now):
        decision.degrade.append(arrival)


class DeadlineQueue(_OverloadPolicy):
    """Overflow arrivals queue for the next tick, up to a deadline.

    A queued arrival re-enters admission ahead of newer arrivals; once its
    decision-time age exceeds ``deadline`` it is answered ``expired``
    instead of queueing again.
    """

    def __init__(self, max_serve: int, deadline: float):
        super().__init__(max_serve)
        if deadline <= 0.0:
            raise ValueError(f"deadline must be > 0, got {deadline}")
        self.deadline = deadline
        self.name = f"queue>{max_serve}@{deadline:g}s"

    def _overflow(self, decision, arrival, now):
        if now - arrival.timestamp > self.deadline:
            decision.expire.append(arrival)
        else:
            decision.requeue.append(arrival)
