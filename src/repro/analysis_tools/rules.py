"""The repo-specific rules behind ``igepa lint`` (IGP001-IGP010).

Each rule encodes one contract the array/columnar architecture depends on.
Every finding carries a fix hint; sanctioned exceptions are marked per line
with ``# igepa: ignore[CODE]`` at the violation site — there are no
file-level escapes.

+--------+--------------------------------------------------------------+
| IGP001 | no Python-level loops over users/events/bids in hot modules  |
| IGP002 | no dense |U|x|V| materialization outside the slab whitelist  |
| IGP003 | zero-copy contract: no copies of store-owned columns in      |
|        | index-build paths                                            |
| IGP004 | delta purity: successor construction must not mutate         |
|        | predecessor-reachable arrays                                 |
| IGP005 | RNG discipline: all draws through a seeded Generator         |
| IGP006 | shard workers may not touch closure/global index state       |
| IGP007 | no wall-clock reads in deterministic logic                   |
| IGP008 | public API functions must be fully type-annotated            |
| IGP009 | no from-scratch benchmark-LP rebuilds in tick-loop modules   |
| IGP010 | report/bench payloads serialize only through                 |
|        | experiments/persistence.py                                   |
+--------+--------------------------------------------------------------+
"""

from __future__ import annotations

import ast
import builtins
from typing import Sequence

from repro.analysis_tools.engine import (
    FileContext,
    Finding,
    Rule,
    dotted_name,
    root_name,
    terminal_name,
)

#: Modules whose inner loops dominate end-to-end wall-clock: entity-scale
#: iteration here must be vectorized (or explicitly sanctioned per line).
HOT_PATH_MODULES = (
    "repro/model/index.py",
    "repro/model/columnar.py",
    "repro/core/local_search.py",
    "repro/core/repair.py",
    "repro/core/metrics.py",
)

#: Entity-collection names whose direct iteration scales with instance size.
_ENTITY_COLLECTIONS = frozenset({"users", "events", "bids", "bidders", "pairs"})
#: Size names: ``range()`` over these is a full entity sweep.
_ENTITY_SIZES = frozenset(
    {"num_users", "num_events", "num_bids", "n_users", "n_events", "n_bids"}
)
#: Index/store id and incidence arrays: ``.tolist()`` iteration over these
#: is a full entity sweep too.
_ENTITY_ARRAYS = frozenset(
    {
        "user_ids",
        "event_ids",
        "bid_indices",
        "bid_event_pos",
        "bidder_indices",
        "bid_user_positions",
    }
)


def _names_in(node: ast.AST) -> set[str]:
    """Every Name id and Attribute attr mentioned under ``node``."""
    found: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            found.add(child.id)
        elif isinstance(child, ast.Attribute):
            found.add(child.attr)
    return found


class HotPathLoopRule(Rule):
    """IGP001: no Python-level ``for`` loops over users/events/bids in the
    hot-path modules.

    Statement-level loops whose iterable is an entity collection
    (``instance.users``), a full-size ``range(num_users)`` sweep, or a
    ``.tolist()`` walk of an id/incidence array run O(entities) interpreter
    iterations on paths the benchmarks gate.  Comprehensions and generator
    expressions are allowed — they are the repo's sanctioned feeder idiom
    for ``np.fromiter`` — as are loops over bounded scopes (touched users,
    shards, scan lists).
    """

    code = "IGP001"
    name = "hot-path-entity-loop"
    hint = (
        "vectorize over the index/store arrays (CSR slices, np.fromiter, "
        "bincount/argsort) or mark a sanctioned scalar path with "
        "'# igepa: ignore[IGP001]'"
    )
    module_suffixes = HOT_PATH_MODULES

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            what = self._entity_sweep(node.iter)
            if what:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"Python-level loop over {what} in a hot-path module",
                    )
                )
        return findings

    def _entity_sweep(self, iterable: ast.AST) -> str | None:
        """A description of the entity sweep, or None if the loop is fine."""
        # enumerate(...) / zip(...) / sorted(...) / reversed(...): look at
        # the underlying iterables.
        if isinstance(iterable, ast.Call):
            func = terminal_name(iterable.func)
            if func in {"enumerate", "zip", "sorted", "reversed"}:
                for arg in iterable.args:
                    what = self._entity_sweep(arg)
                    if what:
                        return what
                return None
            if func == "range":
                for arg in iterable.args:
                    names = _names_in(arg)
                    hit = names & _ENTITY_SIZES
                    if hit:
                        return f"range({sorted(hit)[0]})"
                return None
            if func == "tolist" and isinstance(iterable.func, ast.Attribute):
                array = terminal_name(iterable.func.value)
                if array in _ENTITY_ARRAYS:
                    return f"{array}.tolist()"
                return None
            return None
        # Only dotted access (instance.users, arrangement.pairs) counts:
        # a bare local like ``bids`` is a per-user slice, bounded by one
        # user's bid count, not an entity sweep.
        if (
            isinstance(iterable, ast.Attribute)
            and iterable.attr in _ENTITY_COLLECTIONS
        ):
            return dotted_name(iterable) or iterable.attr
        return None


#: (module suffix, function name) pairs allowed to build dense |U|x|V|
#: slabs: the dense index's own storage and the shard slab builders.
DENSE_SLAB_WHITELIST = (
    ("repro/model/index.py", "_finalize"),
    ("repro/model/index.py", "_scatter_slab"),
    ("repro/model/index.py", "_shard_weight_slab"),
    ("repro/model/index.py", "_shard_si_slab"),
    ("repro/model/index.py", "_shard_mask_slab"),
    ("repro/model/sharded_index.py", "_scatter_slab"),
    ("repro/model/sharded_index.py", "_shard_weight_slab"),
    ("repro/model/sharded_index.py", "_shard_si_slab"),
    ("repro/model/sharded_index.py", "_shard_mask_slab"),
)

_USERISH = frozenset({"num_users", "n_users"})
_EVENTISH = frozenset({"num_events", "n_events"})


class DenseMaterializationRule(Rule):
    """IGP002: no dense |U|x|V| materialization outside the slab whitelist.

    ``.toarray()`` / ``.todense()`` calls and ``np.zeros((num_users,
    num_events))``-shaped allocations defeat the CSR/columnar architecture:
    one stray call re-introduces the O(cells) memory wall the sharded index
    exists to avoid.  The dense index's own storage and the slab builders
    are the only sanctioned sites.
    """

    code = "IGP002"
    name = "dense-materialization"
    hint = (
        "keep pair data in the CSR arrays or materialize a bounded per-shard "
        "slab via index.iter_shards(); only the dense-slab whitelist "
        "(InstanceIndex storage, slab builders) may allocate |U|x|V|"
    )
    module_suffixes = None

    def check(self, ctx: FileContext) -> list[Finding]:
        allowed_functions = {
            fn for suffix, fn in DENSE_SLAB_WHITELIST
            if ctx.matches_module((suffix,))
        }
        findings: list[Finding] = []
        self._walk(ctx, ctx.tree, None, allowed_functions, findings)
        return findings

    def _walk(
        self,
        ctx: FileContext,
        node: ast.AST,
        current_function: str | None,
        allowed: set[str],
        findings: list[Finding],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk(ctx, child, child.name, allowed, findings)
                continue
            if isinstance(child, ast.Call) and current_function not in allowed:
                finding = self._check_call(ctx, child)
                if finding:
                    findings.append(finding)
            self._walk(ctx, child, current_function, allowed, findings)

    def _check_call(self, ctx: FileContext, call: ast.Call) -> Finding | None:
        func = terminal_name(call.func)
        if func in {"toarray", "todense"} and isinstance(call.func, ast.Attribute):
            return self.finding(
                ctx, call, f".{func}() densifies a sparse matrix"
            )
        if func in {"zeros", "empty", "ones", "full"} and call.args:
            shape = call.args[0]
            if isinstance(shape, ast.Tuple) and len(shape.elts) >= 2:
                names = [_names_in(elt) for elt in shape.elts]
                has_user = any(n & _USERISH for n in names)
                has_event = any(n & _EVENTISH for n in names)
                if has_user and has_event:
                    return self.finding(
                        ctx,
                        call,
                        f"np.{func} allocates a dense (num_users, num_events) "
                        "matrix outside the dense-slab whitelist",
                    )
        return None


#: Columns owned by ColumnarStore and shared zero-copy into the indexes.
STORE_COLUMNS = frozenset(
    {
        "user_ids",
        "event_ids",
        "user_capacity",
        "event_capacity",
        "bid_indptr",
        "bid_event_pos",
        "bid_indices",
        "bid_si",
        "degrees",
        "conflict_matrix",
    }
)

#: Receiver roots that hold store-owned columns in index-build code.
_STORE_ROOTS = frozenset({"store", "self", "index", "old", "instance"})

#: Index-build modules bound by the zero-copy contract.
INDEX_BUILD_MODULES = (
    "repro/model/index.py",
    "repro/model/sharded_index.py",
)


class StoreCopyRule(Rule):
    """IGP003: the zero-copy contract of index builds.

    Index construction shares the store's columns (``_build_primary`` /
    ``_build_csr`` are documented zero-copy); a silent ``.copy()`` /
    ``np.array(...)`` / ``astype(copy=True)`` on a store-owned column
    doubles resident memory at 500k users and decouples the index from the
    store the sanitizer freezes.
    """

    code = "IGP003"
    name = "store-column-copy"
    hint = (
        "share the store's array (astype(..., copy=False), np.asarray) — "
        "indexes never mutate primary arrays; if a private copy is load-"
        "bearing, mark the line with '# igepa: ignore[IGP003]' and say why"
    )
    module_suffixes = INDEX_BUILD_MODULES

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            finding = self._check_call(ctx, node)
            if finding:
                findings.append(finding)
        return findings

    def _is_store_column(self, node: ast.AST) -> bool:
        return (
            terminal_name(node) in STORE_COLUMNS
            and root_name(node) in _STORE_ROOTS
        )

    def _copy_kwarg_true(self, call: ast.Call) -> bool:
        for keyword in call.keywords:
            if keyword.arg == "copy":
                return isinstance(keyword.value, ast.Constant) and bool(
                    keyword.value.value
                )
        return False

    def _check_call(self, ctx: FileContext, call: ast.Call) -> Finding | None:
        func = call.func
        if isinstance(func, ast.Attribute):
            column = func.value
            if func.attr == "copy" and self._is_store_column(column):
                return self.finding(
                    ctx,
                    call,
                    f"copy of store-owned column "
                    f"'{dotted_name(column)}' in an index-build path",
                )
            if (
                func.attr == "astype"
                and self._is_store_column(column)
                and self._copy_kwarg_true(call)
            ):
                return self.finding(
                    ctx,
                    call,
                    f"astype(copy=True) forces a copy of store-owned column "
                    f"'{dotted_name(column)}'",
                )
        name = dotted_name(func)
        if name in {"np.array", "numpy.array"} and call.args:
            if self._is_store_column(call.args[0]):
                return self.finding(
                    ctx,
                    call,
                    f"np.array() copies store-owned column "
                    f"'{dotted_name(call.args[0])}' (use np.asarray)",
                )
        if name in {"np.asarray", "numpy.asarray"} and call.args:
            if self._is_store_column(call.args[0]) and self._copy_kwarg_true(call):
                return self.finding(
                    ctx,
                    call,
                    f"np.asarray(copy=True) copies store-owned column "
                    f"'{dotted_name(call.args[0])}'",
                )
        return None


#: Calls whose result is a freshly allocated object (safe to mutate).
_ALLOCATING_CALLS = frozenset(
    {
        "array",
        "asarray",
        "zeros",
        "zeros_like",
        "empty",
        "empty_like",
        "ones",
        "ones_like",
        "full",
        "full_like",
        "arange",
        "linspace",
        "concatenate",
        "stack",
        "hstack",
        "vstack",
        "repeat",
        "tile",
        "where",
        "insert",
        "delete",
        "append",
        "fromiter",
        "frombuffer",
        "bincount",
        "cumsum",
        "diff",
        "copy",
        "astype",
        "tolist",
        "unique",
        "sort",  # np.sort (function) returns a copy; .sort() method caught below
        "argsort",
        "flatnonzero",
        "nonzero",
        "searchsorted",
        "ix_",
        "dict",
        "list",
        "set",
        "tuple",
    }
)

#: ndarray methods that mutate their receiver in place.
_MUTATING_METHODS = frozenset({"fill", "put", "partition", "setfield", "itemset"})


class _FreshnessTracker:
    """Statement-order freshness analysis for one function body.

    A local name is *fresh* when it was (re)bound in this function to a
    value the function owns: any call result, an arithmetic/boolean
    expression, a comprehension, or advanced (non-slice) indexing — NumPy
    semantics make all of these new objects.  Parameters, attribute chains
    rooted at parameters, and basic-slice views of non-fresh arrays stay
    *foreign*: mutating them mutates state reachable from the predecessor.

    Branches are over-approximated: a name fresh in either arm counts as
    fresh (this is a reviewer's linter, not a verifier — under-reporting
    beats drowning real violations in false positives).
    """

    def __init__(self, params: set[str]):
        self.params = params
        self.fresh: set[str] = set()

    def is_fresh_expr(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.fresh
        if isinstance(node, ast.Subscript):
            if isinstance(node.slice, ast.Slice):
                # Basic slice: a view of the base.
                return self.is_fresh_expr(node.value)
            # Advanced indexing (mask/fancy/scalar tuple): a copy in NumPy.
            return True
        if isinstance(node, ast.Attribute):
            # ``carried.assignment_matrix`` where ``carried`` was freshly
            # constructed here: the object owns its arrays, so views of its
            # attributes are function-owned too.
            root = root_name(node)
            return root is not None and root in self.fresh
        if isinstance(
            node,
            (
                ast.BinOp,
                ast.UnaryOp,
                ast.BoolOp,
                ast.Compare,
                ast.ListComp,
                ast.SetComp,
                ast.DictComp,
                ast.GeneratorExp,
                ast.List,
                ast.Dict,
                ast.Set,
                ast.Tuple,
                ast.Constant,
                ast.IfExp,
            ),
        ):
            return True
        return False

    def bind(self, target: ast.AST, fresh: bool) -> None:
        if isinstance(target, ast.Name):
            if fresh:
                self.fresh.add(target.id)
            else:
                self.fresh.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.bind(elt, fresh)
        elif isinstance(target, ast.Starred):
            self.bind(target.value, fresh)

    def base_is_foreign(self, node: ast.AST) -> bool:
        """Whether the mutation target's base array is predecessor-reachable."""
        base = node
        while isinstance(base, ast.Subscript):
            if not isinstance(base.slice, ast.Slice) and base is not node:
                # Advanced indexing below the top level produced a copy.
                return False
            base = base.value
        if isinstance(base, ast.Name):
            return base.id not in self.fresh
        if isinstance(base, ast.Attribute):
            root = root_name(base)
            return root is None or root not in self.fresh
        if isinstance(base, ast.Call):
            return False
        return True


class DeltaPurityRule(Rule):
    """IGP004: successor construction must not mutate predecessor state.

    ``apply_delta`` promises the predecessor instance, store and index are
    untouched — replay keeps both generations alive, parity compares them,
    and the sanitizer freezes the arrays.  Any in-place write
    (``arr[...] = ``, ``+=``, ``out=``, ``.fill()``/``.sort()``) must
    target an array freshly allocated inside the same function.
    """

    code = "IGP004"
    name = "delta-purity"
    hint = (
        "allocate the successor array first (np.concatenate / boolean-mask "
        "copy / .copy()) and patch that; arrays reached through parameters "
        "or the predecessor index/store are shared and frozen under "
        "IGEPA_SANITIZE=1"
    )
    module_suffixes = ("repro/model/delta.py",)

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(ctx, node, findings)
        return findings

    def _check_function(
        self,
        ctx: FileContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        findings: list[Finding],
    ) -> None:
        args = func.args
        params = {
            a.arg
            for a in (
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            )
        }
        tracker = _FreshnessTracker(params)
        self._check_body(ctx, func.body, tracker, findings)

    def _check_body(
        self,
        ctx: FileContext,
        body: Sequence[ast.stmt],
        tracker: _FreshnessTracker,
        findings: list[Finding],
    ) -> None:
        for stmt in body:
            self._check_stmt(ctx, stmt, tracker, findings)

    def _check_stmt(
        self,
        ctx: FileContext,
        stmt: ast.stmt,
        tracker: _FreshnessTracker,
        findings: list[Finding],
    ) -> None:
        # Nested defs get their own scope; don't leak freshness across.
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._check_function(ctx, stmt, findings)
            return
        if isinstance(stmt, ast.Assign):
            self._scan_expr(ctx, stmt.value, tracker, findings)
            fresh = tracker.is_fresh_expr(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    if tracker.base_is_foreign(target):
                        findings.append(
                            self.finding(
                                ctx,
                                stmt,
                                "in-place write to "
                                f"'{dotted_name(target.value) or '<expr>'}' — "
                                "not freshly allocated in this function",
                            )
                        )
                elif isinstance(target, ast.Attribute):
                    # Attribute rebinding (self.x = ...) is allowed: it
                    # changes a reference, not shared array contents.
                    continue
                else:
                    tracker.bind(target, fresh)
            return
        if isinstance(stmt, ast.AugAssign):
            self._scan_expr(ctx, stmt.value, tracker, findings)
            target = stmt.target
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                if tracker.base_is_foreign(target):
                    findings.append(
                        self.finding(
                            ctx,
                            stmt,
                            "augmented in-place write to "
                            f"'{dotted_name(getattr(target, 'value', target)) or '<expr>'}'"
                            " — not freshly allocated in this function",
                        )
                    )
            elif isinstance(target, ast.Name) and target.id in tracker.params:
                findings.append(
                    self.finding(
                        ctx,
                        stmt,
                        f"augmented assignment to parameter '{target.id}' "
                        "mutates caller-owned state if it is an array",
                    )
                )
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.target is not None:
            if stmt.value is not None:
                self._scan_expr(ctx, stmt.value, tracker, findings)
                tracker.bind(stmt.target, tracker.is_fresh_expr(stmt.value))
            return
        if isinstance(stmt, ast.For):
            self._scan_expr(ctx, stmt.iter, tracker, findings)
            tracker.bind(stmt.target, True)
            self._check_body(ctx, stmt.body, tracker, findings)
            self._check_body(ctx, stmt.orelse, tracker, findings)
            return
        if isinstance(stmt, ast.While):
            self._scan_expr(ctx, stmt.test, tracker, findings)
            self._check_body(ctx, stmt.body, tracker, findings)
            self._check_body(ctx, stmt.orelse, tracker, findings)
            return
        if isinstance(stmt, ast.If):
            self._scan_expr(ctx, stmt.test, tracker, findings)
            self._check_body(ctx, stmt.body, tracker, findings)
            self._check_body(ctx, stmt.orelse, tracker, findings)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expr(ctx, item.context_expr, tracker, findings)
                if item.optional_vars is not None:
                    tracker.bind(item.optional_vars, True)
            self._check_body(ctx, stmt.body, tracker, findings)
            return
        if isinstance(stmt, ast.Try):
            self._check_body(ctx, stmt.body, tracker, findings)
            for handler in stmt.handlers:
                self._check_body(ctx, handler.body, tracker, findings)
            self._check_body(ctx, stmt.orelse, tracker, findings)
            self._check_body(ctx, stmt.finalbody, tracker, findings)
            return
        if isinstance(stmt, (ast.Expr, ast.Return)):
            if stmt.value is not None:
                self._scan_expr(ctx, stmt.value, tracker, findings)
            return
        # Remaining statements (pass, raise, imports, ...): scan expressions.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(ctx, child, tracker, findings)

    def _scan_expr(
        self,
        ctx: FileContext,
        expr: ast.expr,
        tracker: _FreshnessTracker,
        findings: list[Finding],
    ) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            # out= into a foreign array.
            for keyword in node.keywords:
                if keyword.arg == "out" and tracker.base_is_foreign(keyword.value):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "out= targets an array not freshly allocated "
                            "in this function",
                        )
                    )
            # Mutating ndarray methods on a foreign receiver.  ``.sort()``
            # is in-place as a method (np.sort the function copies).
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                _MUTATING_METHODS | {"sort"}
            ):
                receiver = node.func.value
                if node.func.attr == "sort" and root_name(receiver) in {
                    "np",
                    "numpy",
                }:
                    continue
                if tracker.base_is_foreign(receiver):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f".{node.func.attr}() mutates "
                            f"'{dotted_name(receiver) or '<expr>'}' in place — "
                            "not freshly allocated in this function",
                        )
                    )


class RngDisciplineRule(Rule):
    """IGP005: every random draw goes through a seeded ``Generator``.

    Module-level ``np.random.*`` draws and the stdlib ``random`` module use
    hidden global state: two call sites interleave differently across
    refactors and worker counts, silently breaking the fixed-seed
    bit-parity every replay/simulate gate depends on.  The only sanctioned
    constructor is ``np.random.default_rng(seed)`` *with* a seed
    expression; draws take an explicit ``rng`` parameter.
    """

    code = "IGP005"
    name = "rng-discipline"
    hint = (
        "accept an rng: np.random.Generator parameter (or seed) and draw "
        "from it; construct generators only via np.random.default_rng(seed)"
    )
    module_suffixes = None

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                "stdlib 'random' uses hidden global state",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "stdlib 'random' uses hidden global state",
                        )
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in {"np.random.default_rng", "numpy.random.default_rng"}:
                    if not node.args and not node.keywords:
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                "default_rng() without a seed is "
                                "non-deterministic",
                            )
                        )
                elif name and (
                    name.startswith("np.random.")
                    or name.startswith("numpy.random.")
                ):
                    attr = name.rsplit(".", 1)[1]
                    if attr not in {"default_rng", "Generator", "SeedSequence"}:
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                f"module-level np.random.{attr}() draws from "
                                "hidden global state",
                            )
                        )
        return findings


#: Parameter names a worker function must not take: these objects carry
#: index/arrangement state the serial commit owns.
_WORKER_FORBIDDEN_PARAMS = frozenset({"instance", "index", "arrangement", "self"})


class ShardWorkerRule(Rule):
    """IGP006: shard workers see payloads, nothing else.

    Functions dispatched through the executor in ``core/parallel.py`` run
    in other processes: closure or module-global index/arrangement state
    would be a *stale pickle copy* there — reads are silently wrong, writes
    silently lost.  Workers take explicit payload arguments, read only
    locals/module constants, and never write through their parameters
    (commit happens serially in the main process).
    """

    code = "IGP006"
    name = "shard-worker-discipline"
    hint = (
        "pass everything the worker needs inside its payload argument "
        "(arrays and small lists); return proposals and let the serial "
        "commit apply them"
    )
    module_suffixes = ("repro/core/parallel.py",)

    def check(self, ctx: FileContext) -> list[Finding]:
        worker_names = self._dispatched_functions(ctx.tree)
        if not worker_names:
            return []
        module_names = self._module_level_names(ctx.tree)
        findings: list[Finding] = []
        # Walk the whole tree: workers defined inside a dispatch helper are
        # the ones most likely to close over state by accident.
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in worker_names
            ):
                self._check_worker(ctx, node, module_names, findings)
        return findings

    def _dispatched_functions(self, tree: ast.Module) -> set[str]:
        """Names passed as the callable to ``<executor>.map`` / ``.submit``."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in {"map", "submit"}:
                receiver = root_name(func.value) or ""
                if "executor" in receiver.lower() or "pool" in receiver.lower():
                    if node.args and isinstance(node.args[0], ast.Name):
                        names.add(node.args[0].id)
        return names

    def _module_level_names(self, tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    names.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    names.add(alias.asname or alias.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                names.add(node.target.id)
        return names

    def _check_worker(
        self,
        ctx: FileContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        module_names: set[str],
        findings: list[Finding],
    ) -> None:
        args = func.args
        params = {
            a.arg
            for a in (
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            )
        }
        for param in sorted(params & _WORKER_FORBIDDEN_PARAMS):
            findings.append(
                self.finding(
                    ctx,
                    func,
                    f"worker '{func.name}' takes '{param}': index/arrangement "
                    "state must not cross the process boundary",
                )
            )
        local_names = set(params)
        for node in ast.walk(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"worker '{func.name}' declares "
                        f"{'global' if isinstance(node, ast.Global) else 'nonlocal'}"
                        " state",
                    )
                )
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store,)
            ):
                local_names.add(node.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name):
                        local_names.add(target.id)
            elif isinstance(node, ast.comprehension):
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name):
                        local_names.add(target.id)
        builtin_names = set(dir(builtins))
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id not in local_names
                and node.id not in module_names
                and node.id not in builtin_names
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"worker '{func.name}' reads '{node.id}' from an "
                        "enclosing scope: workers may only touch their "
                        "payload, locals and module-level constants",
                    )
                )
            # Writing through a parameter leaks state the main process
            # will never see (and under spawn semantics is silently lost).
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript) and (
                        isinstance(target.value, ast.Name)
                        and target.value.id in params
                    ):
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                f"worker '{func.name}' writes into its "
                                f"payload parameter '{target.value.id}': "
                                "results must be returned, not written back",
                            )
                        )


#: Modules sanctioned to read monotonic timers for timing *reports*.
#: ``service/clock.py`` is the serving loop's *only* timer access: every
#: other service module takes time through the injected Clock, so decision
#: time stays virtual (replayable) and measurement time stays report-only.
TIMING_REPORT_MODULES = (
    "repro/experiments/replay.py",
    "repro/experiments/simulate.py",
    "repro/experiments/runner.py",
    "repro/core/base.py",
    "repro/service/clock.py",
)

_WALL_CLOCK_CALLS = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "time.ctime": "time.ctime()",
    "time.localtime": "time.localtime()",
    "time.gmtime": "time.gmtime()",
    "datetime.now": "datetime.now()",
    "datetime.utcnow": "datetime.utcnow()",
    "datetime.today": "datetime.today()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.date.today": "date.today()",
}

_MONOTONIC_CALLS = {
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
}


class WallClockRule(Rule):
    """IGP007: no wall-clock reads in deterministic logic.

    Replay and simulate promise bit-identical runs per seed; a
    ``time.time()`` that leaks into a decision (tick cutoffs, cache aging,
    tie-breaks) makes reruns diverge invisibly.  Wall-clock calls are
    banned everywhere under ``src/``; monotonic timers
    (``time.perf_counter``) are allowed only in the timing-report modules,
    where their values land in reports, never in decisions.
    """

    code = "IGP007"
    name = "wall-clock"
    hint = (
        "thread simulated time through the trace/config; for runtime "
        "reports use time.perf_counter() inside the timing-report "
        "whitelist (experiments/replay.py, experiments/simulate.py, "
        "experiments/runner.py, core/base.py, service/clock.py)"
    )
    module_suffixes = None

    def check(self, ctx: FileContext) -> list[Finding]:
        in_timing_module = ctx.matches_module(TIMING_REPORT_MODULES)
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _WALL_CLOCK_CALLS:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"{_WALL_CLOCK_CALLS[name]} reads the wall clock in "
                        "deterministic logic",
                    )
                )
            elif name in _MONOTONIC_CALLS and not in_timing_module:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"{name}() outside the timing-report whitelist",
                    )
                )
        return findings


#: Modules whose public functions form the protocol seam and must carry
#: complete signatures (mypy's strict scope starts from the same seam).
PUBLIC_API_MODULES = (
    "repro/solver/api.py",
    "repro/model/__init__.py",
    "repro/core/__init__.py",
)


class PublicApiAnnotationRule(Rule):
    """IGP008: public API functions must be fully type-annotated.

    The protocol seam (``solver/api.py`` and the package fronts) is what
    every layer above programs against; un-annotated parameters there turn
    mypy's strict scope into ``Any`` holes and hide interface drift between
    the dense/sharded/columnar implementations.
    """

    code = "IGP008"
    name = "public-api-annotations"
    hint = (
        "annotate every parameter and the return type; the mypy strict "
        "scope (model/ + solver/api.py) enforces the same seam in CI"
    )
    module_suffixes = PUBLIC_API_MODULES

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(ctx, node, findings, method=False)
            elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._check_function(ctx, item, findings, method=True)
        return findings

    def _check_function(
        self,
        ctx: FileContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        findings: list[Finding],
        *,
        method: bool,
    ) -> None:
        if func.name.startswith("_") and func.name != "__init__":
            return
        args = func.args
        ordered = [*args.posonlyargs, *args.args]
        if method and ordered:
            ordered = ordered[1:]  # self / cls
        missing = [
            a.arg
            for a in (*ordered, *args.kwonlyargs)
            if a.annotation is None
        ]
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None and vararg.annotation is None:
                missing.append(vararg.arg)
        if missing:
            findings.append(
                self.finding(
                    ctx,
                    func,
                    f"public function '{func.name}' has un-annotated "
                    f"parameter(s): {', '.join(missing)}",
                )
            )
        if func.returns is None and func.name != "__init__":
            findings.append(
                self.finding(
                    ctx,
                    func,
                    f"public function '{func.name}' has no return annotation",
                )
            )


#: Modules that drive the per-tick dynamic loop: LP work here repeats once
#: per churn batch, so a from-scratch LP build is a per-tick O(instance)
#: rebuild of state the incremental layer maintains in place.
TICK_LOOP_MODULES = (
    "repro/service/engine.py",
    "repro/service/loop.py",
    "repro/experiments/simulate.py",
    "repro/experiments/replay.py",
)

#: Calls that construct the benchmark LP from scratch.
_LP_REBUILD_CALLS = frozenset({"build_benchmark_lp"})


class LPRebuildRule(Rule):
    """IGP009: no from-scratch benchmark-LP rebuilds in tick-loop modules.

    The tick loop re-solves the benchmark LP once per churn batch; calling
    :func:`~repro.core.lp_formulation.build_benchmark_lp` there re-enumerates
    every admissible set and re-emits the whole constraint matrix —
    O(instance) work per tick that the incremental layer
    (:class:`~repro.core.lp_incremental.IncrementalBenchmarkLP`, or
    ``LPPacking(incremental=True)`` fed via ``observe_delta``) replaces
    with a delta-sized patch and a warm re-solve.  Explicit from-scratch
    baselines (speedup comparisons) are sanctioned per line.
    """

    code = "IGP009"
    name = "tick-loop-lp-rebuild"
    hint = (
        "patch the LP across ticks instead: feed deltas through "
        "LPPacking(incremental=True).observe_delta / "
        "IncrementalBenchmarkLP, or mark an intentional from-scratch "
        "baseline with '# igepa: ignore[IGP009]'"
    )
    module_suffixes = TICK_LOOP_MODULES

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if terminal_name(node.func) in _LP_REBUILD_CALLS:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "from-scratch benchmark-LP build in a tick-loop "
                        "module (rebuilds every admissible set per tick)",
                    )
                )
        return findings


#: The one module allowed to serialize report/bench payloads.
PERSISTENCE_MODULES = ("repro/experiments/persistence.py",)

#: First-argument terminal names that mark a dumped object as a report
#: payload.  Deliberately narrow — wire responses, lint output and
#: instance files dump JSON too, and those are not report envelopes.
_REPORTISH_MARKERS = ("report", "envelope")


class RawReportDumpRule(Rule):
    """IGP010: report/bench payloads serialize only through persistence.

    A raw ``json.dump(report...)`` (or of any ``.to_dict()`` result)
    outside :mod:`repro.experiments.persistence` writes an artifact with
    no version tag, no registered ``kind`` and no provenance block — the
    history store (:mod:`repro.metrics`) cannot key it to a commit, and
    :func:`~repro.experiments.persistence.load_report` rejects it.  Every
    report/bench writer goes through :func:`~repro.experiments.persistence.save_report`
    or :func:`~repro.experiments.persistence.write_bench_artifact`;
    non-report JSON (wire responses, instance files, tool output) is out
    of scope, and genuinely internal dumps (parent-child IPC) are
    sanctioned per line.
    """

    code = "IGP010"
    name = "raw-report-dump"
    hint = (
        "write through repro.experiments.persistence (save_report for "
        "report objects, write_bench_artifact for BENCH_*.json) so the "
        "payload carries the envelope + provenance; mark an internal "
        "non-artifact dump with '# igepa: ignore[IGP010]'"
    )
    module_suffixes = None

    def check(self, ctx: FileContext) -> list[Finding]:
        if ctx.matches_module(PERSISTENCE_MODULES):
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = dotted_name(node.func)
            if func not in {"json.dump", "json.dumps"}:
                continue
            what = self._report_payload(node.args[0])
            if what:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"raw {func}() of report payload {what} bypasses "
                        "the persistence envelope",
                    )
                )
        return findings

    def _report_payload(self, arg: ast.AST) -> str | None:
        """A description of the report-like payload, or None.

        Over-approximation is the wrong failure mode here (instance files
        and JSONL store rows also call ``to_dict``), so both branches
        require a report-ish *name*: the dumped variable's, or the
        ``to_dict`` receiver's.
        """
        if isinstance(arg, ast.Call) and terminal_name(arg.func) == "to_dict":
            if isinstance(arg.func, ast.Attribute) and self._reportish(
                terminal_name(arg.func.value)
            ):
                return f"'{dotted_name(arg.func.value)}.to_dict()'"
            return None
        name = terminal_name(arg)
        if self._reportish(name):
            return f"'{dotted_name(arg) or name}'"
        return None

    @staticmethod
    def _reportish(name: str | None) -> bool:
        return name is not None and any(
            marker in name.lower() for marker in _REPORTISH_MARKERS
        )


#: Registry, in code order.  ``igepa lint --list-rules`` prints this.
ALL_RULES: tuple[type[Rule], ...] = (
    HotPathLoopRule,
    DenseMaterializationRule,
    StoreCopyRule,
    DeltaPurityRule,
    RngDisciplineRule,
    ShardWorkerRule,
    WallClockRule,
    PublicApiAnnotationRule,
    LPRebuildRule,
    RawReportDumpRule,
)
