"""Targeted arrangement repair after a churn delta.

:func:`repro.model.delta.apply_delta` carries an arrangement over to the
successor instance with every invalidated pair dropped — feasible, but
usually improvable: dropped pairs free event seats and user capacity, new
users and bids open fresh options, dissolved conflicts unlock combinations.
:func:`repair` closes that gap by running the local-search move engine
*scoped to the touched entities only* (add/upgrade moves over the touched
users; refill and evict moves over the touched events, so freed seats are
re-offered to their — untouched — bidder pools).  Per-batch scan cost is
proportional to the touched set, on top of a snapshot of capacities and the
conflict relation (O(|U| + |V|²), a couple of milliseconds at the benchmark
scales) — not to a full re-optimization of the platform.

:func:`apply_with_repair` is the one-call form the replay driver and the
churn benchmark use: apply the delta, repair the carried arrangement, and
report what happened.
"""

from __future__ import annotations

from repro.core.local_search import improve
from repro.model.arrangement import Arrangement
from repro.model.delta import Delta, DeltaResult, apply_delta
from repro.model.instance import IGEPAInstance


def repair(result: DeltaResult, max_passes: int = 20) -> dict:
    """Re-optimize a carried-over arrangement around the churned entities.

    Runs the standard local-search moves restricted to the delta's touched
    users/events.  The arrangement stays feasible throughout (every move is
    feasibility-checked) and its utility never decreases.

    The scope is fixed for the whole call: capacity freed *by repair
    moves themselves* on untouched entities (e.g. a touched user upgrading
    away from an untouched event) is not chased within the batch — a
    deliberate cost/quality trade measured by the churn bench, which holds
    repaired utility at ≈99% of a full re-solve; a periodic full
    :func:`~repro.core.local_search.improve` (or the next batch touching
    those entities) recovers the remainder.

    Args:
        result: an :func:`apply_delta` result whose ``arrangement`` is set.
        max_passes: cap on improvement passes.

    Returns:
        Move counts from :func:`repro.core.local_search.improve`, plus
        ``{"touched_users": ..., "touched_events": ..., "dropped_pairs":
        ...}`` sizes.

    Raises:
        ValueError: when the result carries no arrangement.
    """
    if result.arrangement is None:
        raise ValueError("DeltaResult has no arrangement to repair")
    index = result.instance.index
    user_positions = [
        index.user_pos[user_id]
        for user_id in result.touched_users
        if user_id in index.user_pos
    ]
    event_positions = [
        index.event_pos[event_id]
        for event_id in result.touched_events
        if event_id in index.event_pos
    ]
    moves = improve(
        result.instance,
        result.arrangement,
        max_passes=max_passes,
        user_positions=user_positions,
        event_positions=event_positions,
        refill_events=True,
    )
    moves.update(
        touched_users=len(user_positions),
        touched_events=len(event_positions),
        dropped_pairs=len(result.dropped_pairs),
    )
    return moves


def apply_with_repair(
    instance: IGEPAInstance,
    delta: Delta,
    arrangement: Arrangement,
    max_passes: int = 20,
) -> tuple[DeltaResult, dict]:
    """Apply one churn batch and repair the carried arrangement in one call.

    Returns the :class:`DeltaResult` (successor instance with the
    delta-patched index, repaired arrangement) and the repair move counts.
    """
    result = apply_delta(instance, delta, arrangement)
    moves = repair(result, max_passes=max_passes)
    return result, moves
