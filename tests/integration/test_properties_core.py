"""Property-based tests (hypothesis) for the IGEPA model and algorithms."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    GGGreedy,
    LPPacking,
    RandomU,
    RandomV,
    enumerate_admissible_sets,
    is_admissible,
    lp_upper_bound,
)
from repro.model import (
    Arrangement,
    ArrangementError,
    Event,
    IGEPAInstance,
    MatrixConflict,
    TabulatedInterest,
    User,
)
from repro.social import Graph


# ----------------------------------------------------------------------
# Strategy: complete random IGEPA instances.
# ----------------------------------------------------------------------


@st.composite
def igepa_instances(draw):
    num_events = draw(st.integers(min_value=1, max_value=6))
    num_users = draw(st.integers(min_value=1, max_value=8))
    event_ids = list(range(num_events))
    user_ids = list(range(100, 100 + num_users))

    events = [
        Event(
            event_id=e,
            capacity=draw(st.integers(min_value=0, max_value=3)),
        )
        for e in event_ids
    ]
    pairs = list(itertools.combinations(event_ids, 2))
    conflicting = [pair for pair in pairs if draw(st.booleans())]
    conflict = MatrixConflict(conflicting)

    users = []
    interest = {}
    for u in user_ids:
        subset = [e for e in event_ids if draw(st.booleans())]
        users.append(
            User(
                user_id=u,
                capacity=draw(st.integers(min_value=0, max_value=3)),
                bids=tuple(subset),
            )
        )
        for e in subset:
            interest[(e, u)] = draw(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
            )

    social = Graph(nodes=user_ids)
    for a, b in itertools.combinations(user_ids, 2):
        if draw(st.booleans()):
            social.add_edge(a, b)

    beta = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    return IGEPAInstance(
        events=events,
        users=users,
        conflict=conflict,
        interest=TabulatedInterest(interest),
        social=social,
        beta=beta,
    )


ALGORITHM_FACTORIES = [
    lambda: LPPacking(alpha=1.0),
    lambda: LPPacking(alpha=0.5),
    lambda: GGGreedy(),
    lambda: RandomU(),
    lambda: RandomV(),
]


class TestAlgorithmInvariants:
    @given(igepa_instances(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_every_algorithm_yields_feasible_arrangements(self, instance, seed):
        for factory in ALGORITHM_FACTORIES:
            result = factory().solve(instance, seed=seed)
            assert result.arrangement.is_feasible(), (
                f"{result.algorithm} produced violations: "
                f"{result.arrangement.violations()}"
            )

    @given(igepa_instances(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_no_algorithm_beats_the_lp_bound(self, instance, seed):
        bound = lp_upper_bound(instance)
        for factory in ALGORITHM_FACTORIES:
            result = factory().solve(instance, seed=seed)
            assert result.utility <= bound + 1e-6, result.algorithm

    @given(igepa_instances(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_utility_equals_sum_of_pair_weights(self, instance, seed):
        result = GGGreedy().solve(instance, seed=seed)
        expected = sum(
            instance.weight(u, v) for v, u in result.pairs
        )
        assert result.utility == pytest.approx(expected)


class TestAdmissibleSetProperties:
    @given(igepa_instances())
    @settings(max_examples=30, deadline=None)
    def test_enumerated_sets_are_admissible_and_complete(self, instance):
        for user in instance.users:
            sets = enumerate_admissible_sets(instance, user)
            as_set = set(sets)
            assert len(as_set) == len(sets), "duplicates in enumeration"
            for events in sets:
                assert is_admissible(instance, user, events)
            # Completeness against brute force.
            for size in range(1, min(user.capacity, len(user.bids)) + 1):
                for combo in itertools.combinations(sorted(user.bids), size):
                    if is_admissible(instance, user, combo):
                        assert combo in as_set

    @given(igepa_instances())
    @settings(max_examples=30, deadline=None)
    def test_downward_closure(self, instance):
        for user in instance.users:
            sets = set(enumerate_admissible_sets(instance, user))
            for events in sets:
                if len(events) > 1:
                    for drop in range(len(events)):
                        subset = events[:drop] + events[drop + 1 :]
                        assert subset in sets


class TestArrangementProperties:
    @given(
        igepa_instances(),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=100, max_value=107),
            ),
            max_size=15,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_checked_mutation_maintains_feasibility(self, instance, operations):
        """Whatever sequence of guarded adds is attempted, the arrangement
        stays feasible — rejected operations must not corrupt state."""
        arrangement = Arrangement(instance)
        for event_id, user_id in operations:
            try:
                arrangement.add(event_id, user_id)
            except ArrangementError:
                pass
            assert arrangement.is_feasible()

    @given(igepa_instances(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_add_remove_roundtrip_restores_utility(self, instance, seed):
        result = RandomU().solve(instance, seed=seed)
        arrangement = result.arrangement
        before = arrangement.utility()
        pairs = list(arrangement.pairs)
        if not pairs:
            return
        event_id, user_id = pairs[0]
        arrangement.remove(event_id, user_id)
        arrangement.add(event_id, user_id)
        assert arrangement.utility() == pytest.approx(before)


class TestSerializationProperties:
    @given(igepa_instances())
    @settings(max_examples=20, deadline=None)
    def test_round_trip_preserves_weights(self, instance):
        restored = IGEPAInstance.from_dict(instance.to_dict())
        assert restored.num_events == instance.num_events
        assert restored.num_users == instance.num_users
        for user in instance.users:
            for event_id in user.bids:
                assert restored.weight(user.user_id, event_id) == pytest.approx(
                    instance.weight(user.user_id, event_id)
                )

    @given(igepa_instances(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_round_trip_preserves_algorithm_output(self, instance, seed):
        """Deterministic algorithms must produce identical arrangements on a
        serialization round-trip — the acid test for lossless encoding."""
        restored = IGEPAInstance.from_dict(instance.to_dict())
        original = GGGreedy().solve(instance, seed=seed)
        replayed = GGGreedy().solve(restored, seed=seed)
        assert original.pairs == replayed.pairs
        assert original.utility == pytest.approx(replayed.utility)
