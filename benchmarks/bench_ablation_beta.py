"""Ablation: the β balance between interest and social interaction.

Definition 7 weighs Σ SI by β against Σ D by (1-β).  Sweeping β shows the
arrangement pivoting from interaction-chasing (β = 0) to pure
interest-maximization (β = 1, the GEACC objective the NP-hardness reduction
uses).  The bench records the utility decomposition of LP-packing
arrangements across β.
"""

from benchmarks.conftest import BENCH_SEED, write_report
from repro.core import LPPacking
from repro.datagen import SyntheticConfig, generate_synthetic

BETAS = [0.0, 0.25, 0.5, 0.75, 1.0]
CONFIG = SyntheticConfig(num_events=40, num_users=400, max_event_capacity=5)


def _run_ablation():
    rows = []
    for beta in BETAS:
        instance = generate_synthetic(
            CONFIG.with_overrides(beta=beta), seed=BENCH_SEED
        )
        result = LPPacking(alpha=1.0).solve(instance, seed=0)
        arrangement = result.arrangement
        rows.append(
            (
                beta,
                result.utility,
                arrangement.interest_total(),
                arrangement.interaction_total(),
                result.num_pairs,
            )
        )
    return rows


def bench_ablation_beta(bench_once):
    rows = bench_once(_run_ablation)

    # As β grows the optimizer trades interaction for interest: the raw
    # interest sum at β = 1 must exceed the one at β = 0.
    interest_at = {beta: interest for beta, _u, interest, _d, _p in rows}
    assert interest_at[1.0] > interest_at[0.0]
    # Utility identity: utility == β·ΣSI + (1-β)·ΣD at every point.
    for beta, utility, interest, interaction, _pairs in rows:
        reconstructed = beta * interest + (1 - beta) * interaction
        assert abs(utility - reconstructed) < 1e-6

    lines = [
        "Ablation: β (utility decomposition of LP-packing arrangements)",
        f"{'β':>6} {'utility':>10} {'Σ interest':>12} {'Σ interaction':>14} {'pairs':>7}",
    ]
    for beta, utility, interest, interaction, pairs in rows:
        lines.append(
            f"{beta:>6.2f} {utility:>10.2f} {interest:>12.2f} "
            f"{interaction:>14.2f} {pairs:>7}"
        )
    lines.append("paper evaluates at β = 0.5; β = 1 is the GEACC special case.")
    write_report("ablation_beta", "\n".join(lines))
