"""Unit tests for the branch-and-bound ILP solver."""

import numpy as np
import pytest

from repro.solver import (
    BranchAndBoundOptions,
    LinearProgram,
    Sense,
    SolveStatus,
    solve_ilp,
    solve_lp,
)


def _knapsack(values, weights, capacity, maximize=True):
    lp = LinearProgram(maximize=maximize)
    for j, value in enumerate(values):
        lp.add_variable(f"x{j}", upper=1.0, objective=float(value), is_integer=True)
    lp.add_constraint(
        {j: float(w) for j, w in enumerate(weights)}, Sense.LE, float(capacity)
    )
    return lp


class TestKnapsack:
    def test_small_knapsack_optimum(self):
        # values 10, 13, 7; weights 3, 4, 2; capacity 5 -> best is {10, 7} = 17.
        lp = _knapsack([10, 13, 7], [3, 4, 2], 5)
        solution = solve_ilp(lp)
        assert solution.is_optimal
        assert solution.objective_value == pytest.approx(17.0)
        assert solution.x == pytest.approx([1.0, 0.0, 1.0])

    def test_lp_relaxation_is_an_upper_bound(self):
        lp = _knapsack([10, 13, 7], [3, 4, 2], 5)
        relaxation = solve_lp(lp)
        integral = solve_ilp(lp)
        assert relaxation.objective_value >= integral.objective_value - 1e-9

    def test_fractional_relaxation_forces_branching(self):
        # Relaxation puts 1/2 of item 1; B&B must still find the integral optimum.
        lp = _knapsack([6, 10], [3, 5], 5)
        solution = solve_ilp(lp)
        assert solution.is_optimal
        assert solution.objective_value == pytest.approx(10.0)

    def test_exhaustive_agreement_with_brute_force(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            n = int(rng.integers(2, 7))
            values = rng.uniform(1, 10, n)
            weights = rng.uniform(1, 5, n)
            capacity = float(weights.sum() * rng.uniform(0.3, 0.8))
            lp = _knapsack(values, weights, capacity)
            solution = solve_ilp(lp)
            assert solution.is_optimal
            best = 0.0
            for mask in range(2**n):
                chosen = [(mask >> j) & 1 for j in range(n)]
                if np.dot(chosen, weights) <= capacity + 1e-9:
                    best = max(best, float(np.dot(chosen, values)))
            assert solution.objective_value == pytest.approx(best)


class TestStatuses:
    def test_infeasible_ilp(self):
        lp = LinearProgram(maximize=True)
        x = lp.add_variable("x", upper=1.0, objective=1.0, is_integer=True)
        lp.add_constraint({x: 1.0}, Sense.GE, 2.0)
        assert solve_ilp(lp).status is SolveStatus.INFEASIBLE

    def test_unbounded_ilp(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=1.0, is_integer=True)
        assert solve_ilp(lp).status is SolveStatus.UNBOUNDED

    def test_node_limit(self):
        rng = np.random.default_rng(0)
        n = 14
        values = rng.uniform(1, 2, n)
        weights = rng.uniform(1, 2, n)
        lp = _knapsack(values, weights, weights.sum() / 2)
        solution = solve_ilp(lp, BranchAndBoundOptions(max_nodes=2))
        assert solution.status in (SolveStatus.NODE_LIMIT, SolveStatus.OPTIMAL)
        if solution.status is SolveStatus.NODE_LIMIT:
            assert solution.nodes_explored <= 2
            assert solution.gap >= 0.0

    def test_gap_is_zero_when_optimal(self):
        lp = _knapsack([5, 4], [2, 3], 4)
        solution = solve_ilp(lp)
        assert solution.is_optimal
        assert solution.gap == 0.0


class TestBestBoundTracksLiveFrontier:
    """Regression: the NODE_LIMIT bound must cover only *open* subtrees.

    The historical implementation appended every branched node's relaxation
    bound to a list and never removed entries when subtrees were fully
    explored, so the reported bound was always the root relaxation — too
    loose whenever the high-bound subtrees had already been closed.
    """

    # Calibrated so that after 8 nodes the root's high-bound subtree is fully
    # explored and the live frontier sits strictly below the root relaxation.
    VALUES = [1.19, 3.8, 9.45, 5.85, 8.3]
    WEIGHTS = [3.63, 3.44, 1.77, 3.3, 1.16]
    CAPACITY = 6.65

    def test_node_limited_bound_is_tighter_than_root_relaxation(self):
        lp = _knapsack(self.VALUES, self.WEIGHTS, self.CAPACITY)
        root_bound = solve_lp(lp).objective_value
        optimum = solve_ilp(lp).objective_value
        limited = solve_ilp(lp, BranchAndBoundOptions(max_nodes=8))
        assert limited.status is SolveStatus.NODE_LIMIT
        # Valid: still an upper bound on the true optimum ...
        assert limited.best_bound >= optimum - 1e-9
        # ... and tight: strictly inside the root relaxation, which is what
        # the stale-open-list implementation could never report.
        assert limited.best_bound < root_bound - 1e-6
        assert limited.gap >= 0.0

    def test_bound_never_spuriously_below_incumbent(self):
        lp = _knapsack(self.VALUES, self.WEIGHTS, self.CAPACITY)
        for max_nodes in (2, 4, 8, 16):
            solution = solve_ilp(lp, BranchAndBoundOptions(max_nodes=max_nodes))
            if solution.status is SolveStatus.NODE_LIMIT and solution.x.size:
                sign = 1.0  # maximization knapsack
                assert sign * solution.best_bound >= sign * solution.objective_value - 1e-9

    def test_bound_tightens_as_the_search_progresses(self):
        lp = _knapsack(self.VALUES, self.WEIGHTS, self.CAPACITY)
        optimum = solve_ilp(lp).objective_value
        bounds = []
        for max_nodes in (4, 8, 64):
            solution = solve_ilp(lp, BranchAndBoundOptions(max_nodes=max_nodes))
            if solution.x.size == 0:
                continue  # no incumbent yet: the bound is undefined (nan)
            bound = (
                solution.best_bound
                if solution.status is SolveStatus.NODE_LIMIT
                else solution.objective_value
            )
            assert bound >= optimum - 1e-9
            bounds.append(bound)
        assert len(bounds) >= 2
        # Monotone under DFS with live-frontier tracking on this instance.
        for earlier, later in zip(bounds, bounds[1:]):
            assert earlier >= later - 1e-9


class TestMixedInteger:
    def test_continuous_variables_stay_continuous(self):
        # max x + y, x integer <= 1.5 -> x = 1; y continuous <= 1.5 -> y = 1.5.
        lp = LinearProgram(maximize=True)
        x = lp.add_variable("x", objective=1.0, is_integer=True)
        y = lp.add_variable("y", objective=1.0)
        lp.add_constraint({x: 1.0}, Sense.LE, 1.5)
        lp.add_constraint({y: 1.0}, Sense.LE, 1.5)
        solution = solve_ilp(lp)
        assert solution.is_optimal
        assert solution.x[x] == pytest.approx(1.0)
        assert solution.x[y] == pytest.approx(1.5)
        assert solution.objective_value == pytest.approx(2.5)

    def test_pure_lp_through_ilp_solver(self):
        lp = LinearProgram(maximize=True)
        x = lp.add_variable("x", upper=2.5, objective=1.0)
        solution = solve_ilp(lp)
        assert solution.is_optimal
        assert solution.objective_value == pytest.approx(2.5)

    def test_minimization_ilp(self):
        # min 3x + 2y s.t. x + y >= 2.5, binaries -> infeasible with binaries?
        # x + y can be at most 2 -> infeasible.
        lp = LinearProgram(maximize=False)
        x = lp.add_variable("x", upper=1.0, objective=3.0, is_integer=True)
        y = lp.add_variable("y", upper=1.0, objective=2.0, is_integer=True)
        lp.add_constraint({x: 1.0, y: 1.0}, Sense.GE, 2.5)
        assert solve_ilp(lp).status is SolveStatus.INFEASIBLE

    def test_minimization_ilp_feasible(self):
        # min 3x + 2y s.t. x + y >= 1.5 -> both must be 1, cost 5.
        lp = LinearProgram(maximize=False)
        x = lp.add_variable("x", upper=1.0, objective=3.0, is_integer=True)
        y = lp.add_variable("y", upper=1.0, objective=2.0, is_integer=True)
        lp.add_constraint({x: 1.0, y: 1.0}, Sense.GE, 1.5)
        solution = solve_ilp(lp)
        assert solution.is_optimal
        assert solution.objective_value == pytest.approx(5.0)

    def test_integer_solution_is_exactly_integral(self):
        lp = _knapsack([3.3, 4.7, 1.2], [1, 2, 1], 2)
        solution = solve_ilp(lp)
        assert solution.is_optimal
        for variable in lp.variables:
            if variable.is_integer:
                value = solution.x[variable.index]
                assert value == pytest.approx(round(value), abs=1e-12)
