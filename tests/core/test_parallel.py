"""Shard-parallel repair: propose/commit must stay feasible and improving."""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.core import GGGreedy, LocalSearch, parallel_repair
from repro.core.parallel import _shard_payload, scan_shard
from repro.datagen import (
    ChurnConfig,
    SyntheticConfig,
    generate_churn_trace,
    generate_synthetic,
)
from repro.experiments.replay import replay_trace
from repro.model.delta import apply_delta

CONFIG = SyntheticConfig(num_users=300, num_events=40)


class InlineExecutor:
    """Executor stand-in that runs tasks in-process (deterministic tests)."""

    def map(self, fn, payloads):
        return [fn(payload) for payload in payloads]


def _churned(seed: int, shard_size: int | None = 50):
    instance = generate_synthetic(CONFIG, seed=seed)
    if shard_size is not None:
        instance.configure_index(sharded=True, shard_size=shard_size)
    churn = ChurnConfig(
        num_batches=1,
        user_arrival_rate=10.0,
        user_departure_rate=10.0,
        rebid_rate=20.0,
        event_open_rate=1.0,
        event_close_rate=1.0,
        base=CONFIG,
    )
    trace = generate_churn_trace(instance, churn, seed=seed + 1)
    base = LocalSearch(GGGreedy()).solve(instance, seed=seed)
    return apply_delta(instance, trace.deltas[0], base.arrangement)


@pytest.mark.parametrize("shard_size", [50, None])
def test_parallel_repair_feasible_and_improving(shard_size):
    result = _churned(3, shard_size)
    carried_utility = result.arrangement.utility()
    moves = parallel_repair(result, InlineExecutor())
    assert result.arrangement.is_feasible()
    assert result.arrangement.utility() >= carried_utility
    assert moves["passes"] >= 1
    assert moves["tasks"] >= moves["passes"]


def test_parallel_repair_deterministic_across_executors():
    a = _churned(4)
    b = _churned(4)
    parallel_repair(a, InlineExecutor())
    with ProcessPoolExecutor(max_workers=2) as pool:
        parallel_repair(b, pool)
    assert a.arrangement.pairs == b.arrangement.pairs
    assert a.arrangement.utility() == b.arrangement.utility()


def test_scan_shard_runs_on_pickled_payload():
    import pickle

    result = _churned(5)
    instance = result.instance
    index = instance.index
    conflict_bits = np.packbits(index.conflict_matrix.astype(np.uint8))
    payload = _shard_payload(
        instance,
        result.arrangement,
        0,
        min(50, index.num_users),
        result.arrangement.attendance_counts.copy(),
        conflict_bits,
    )
    proposals = scan_shard(pickle.loads(pickle.dumps(payload)))
    for gain, upos, vpos, old_vpos in proposals:
        assert gain > 0
        assert 0 <= upos < index.num_users
        assert 0 <= vpos < index.num_events
        assert old_vpos == -1 or 0 <= old_vpos < index.num_events


def test_replay_trace_workers_path_feasible():
    instance = generate_synthetic(CONFIG, seed=6)
    instance.configure_index(sharded=True, shard_size=64)
    churn = ChurnConfig(
        num_batches=2,
        user_arrival_rate=8.0,
        user_departure_rate=8.0,
        rebid_rate=15.0,
        base=CONFIG,
    )
    trace = generate_churn_trace(instance, churn, seed=7)
    report = replay_trace(
        trace, seed=0, compare_full=False, check_parity=True, workers=2
    )
    assert report.all_feasible
    assert report.all_parity
