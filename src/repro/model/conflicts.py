"""Conflict functions ``σ(l_v, l_v')`` (Definition 3).

A conflict function decides whether two events cannot both be attended by the
same user.  The paper uses two concrete realizations:

* synthetic data — an explicit random conflict relation with density ``p_cf``
  (here :class:`MatrixConflict`);
* real data — "if two events overlap in time, they conflict with each other"
  (here :class:`TimeIntervalConflict`).

All implementations are symmetric and irreflexive; :func:`conflict_matrix`
materializes the relation as a boolean matrix over an event list.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence

import numpy as np

from repro.model.entities import Event


class ConflictFunction(ABC):
    """Interface for σ: pairs of events -> {0, 1}."""

    @abstractmethod
    def conflicts(self, first: Event, second: Event) -> bool:
        """Whether the two events conflict (σ = 1)."""

    def __call__(self, first: Event, second: Event) -> bool:
        return self.conflicts(first, second)

    def to_dict(self) -> dict:
        """JSON-serializable representation (see :func:`conflict_from_dict`)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support serialization"
        )

    def matrix(self, events: Sequence[Event]) -> np.ndarray:
        """Boolean σ matrix over ``events`` (zero diagonal).

        The generic implementation evaluates every unordered pair; concrete
        conflict functions override it with a vectorized construction so the
        :class:`~repro.model.index.InstanceIndex` build stays cheap.
        """
        n = len(events)
        result = np.zeros((n, n), dtype=bool)
        for i in range(n):
            for j in range(i + 1, n):
                if self.conflicts(events[i], events[j]):
                    result[i, j] = True
                    result[j, i] = True
        return result


class NoConflict(ConflictFunction):
    """σ ≡ 0: no two events ever conflict (degenerates IGEPA to GEACC-like)."""

    def conflicts(self, first: Event, second: Event) -> bool:
        return False

    def matrix(self, events: Sequence[Event]) -> np.ndarray:
        return np.zeros((len(events), len(events)), dtype=bool)

    def to_dict(self) -> dict:
        return {"kind": "none"}


class AlwaysConflict(ConflictFunction):
    """σ ≡ 1 for distinct events: each user can attend at most one event."""

    def conflicts(self, first: Event, second: Event) -> bool:
        return first.event_id != second.event_id

    def matrix(self, events: Sequence[Event]) -> np.ndarray:
        ids = np.array([e.event_id for e in events], dtype=np.int64)
        return ids[:, None] != ids[None, :]

    def to_dict(self) -> dict:
        return {"kind": "always"}


class MatrixConflict(ConflictFunction):
    """An explicit symmetric conflict relation over event ids.

    This realizes the synthetic-data setting: "Two events conflict with each
    other with the probability ``p_cf``" — the sampled relation is stored as a
    set of unordered id pairs.
    """

    def __init__(self, conflicting_pairs: Iterable[tuple[int, int]]) -> None:
        self._pairs: set[frozenset[int]] = set()
        for u, v in conflicting_pairs:
            if u == v:
                raise ValueError(f"event {u} cannot conflict with itself")
            self._pairs.add(frozenset((int(u), int(v))))

    @classmethod
    def sample(
        cls,
        event_ids: Sequence[int],
        probability: float,
        rng: np.random.Generator,
    ) -> "MatrixConflict":
        """Sample each unordered pair as conflicting with ``probability``."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"conflict probability must be in [0, 1], got {probability}")
        ids = list(event_ids)
        pairs = []
        n = len(ids)
        if n >= 2 and probability > 0.0:
            iu, ju = np.triu_indices(n, k=1)
            mask = rng.random(iu.shape[0]) < probability
            pairs = [(ids[int(i)], ids[int(j)]) for i, j in zip(iu[mask], ju[mask])]
        return cls(pairs)

    def conflicts(self, first: Event, second: Event) -> bool:
        return self.conflicts_ids(first.event_id, second.event_id)

    def conflicts_ids(self, first_id: int, second_id: int) -> bool:
        """σ by event id, for callers that have no :class:`Event` objects."""
        if first_id == second_id:
            return False
        return frozenset((first_id, second_id)) in self._pairs

    def matrix(self, events: Sequence[Event]) -> np.ndarray:
        position = {e.event_id: i for i, e in enumerate(events)}
        result = np.zeros((len(events), len(events)), dtype=bool)
        for pair in self._pairs:
            first_id, second_id = tuple(pair)
            i = position.get(first_id)
            j = position.get(second_id)
            if i is not None and j is not None:
                result[i, j] = True
                result[j, i] = True
        return result

    @property
    def num_conflicting_pairs(self) -> int:
        return len(self._pairs)

    def pairs(self) -> list[tuple[int, int]]:
        """All conflicting pairs as sorted ``(low_id, high_id)`` tuples.

        Delta maintenance (:mod:`repro.model.delta`) derives a successor
        relation from it when conflicts churn.
        """
        return sorted(tuple(sorted(pair)) for pair in self._pairs)

    def with_edits(
        self,
        add: Iterable[tuple[int, int]] = (),
        remove: Iterable[tuple[int, int]] = (),
        drop_events: Iterable[int] = (),
    ) -> "MatrixConflict":
        """A successor relation with pairs added/removed and dangling pairs
        referencing ``drop_events`` pruned.

        The internal pair set is copied and edited directly — no per-pair
        revalidation — so batch churn stays O(edits + pruned), not O(pairs).
        Removing a pair that is not present is a silent no-op (``discard``
        semantics); callers needing strictness validate first, as
        :func:`repro.model.delta.apply_delta` does.
        """
        dropped = set(drop_events)
        successor = MatrixConflict.__new__(MatrixConflict)
        if dropped:
            successor._pairs = {
                pair for pair in self._pairs if not (dropped & pair)
            }
        else:
            successor._pairs = set(self._pairs)
        for u, v in remove:
            successor._pairs.discard(frozenset((int(u), int(v))))
        for u, v in add:
            if u == v:
                raise ValueError(f"event {u} cannot conflict with itself")
            successor._pairs.add(frozenset((int(u), int(v))))
        return successor

    def to_dict(self) -> dict:
        pairs = sorted(tuple(sorted(pair)) for pair in self._pairs)
        return {"kind": "matrix", "pairs": [list(p) for p in pairs]}


class TimeIntervalConflict(ConflictFunction):
    """σ = 1 iff the events' time intervals overlap (the real-data rule).

    Events lacking temporal attributes never conflict under this function.
    Touching intervals (one ends exactly when the other starts) do not
    overlap.
    """

    def conflicts(self, first: Event, second: Event) -> bool:
        if first.event_id == second.event_id:
            return False
        if first.start_time is None or second.start_time is None:
            return False
        return (
            first.start_time < second.end_time
            and second.start_time < first.end_time
        )

    def matrix(self, events: Sequence[Event]) -> np.ndarray:
        n = len(events)
        starts = np.array(
            [e.start_time if e.start_time is not None else np.nan for e in events]
        )
        ends = np.array(
            [e.end_time if e.end_time is not None else np.nan for e in events]
        )
        ids = np.array([e.event_id for e in events], dtype=np.int64)
        with np.errstate(invalid="ignore"):
            overlap = (starts[:, None] < ends[None, :]) & (
                starts[None, :] < ends[:, None]
            )
        return overlap & (ids[:, None] != ids[None, :])

    def to_dict(self) -> dict:
        return {"kind": "time-interval"}


class CompositeConflict(ConflictFunction):
    """σ = 1 iff *any* member function reports a conflict.

    Models multi-attribute conflicts (e.g. same time slot OR same venue).
    """

    def __init__(self, members: Sequence[ConflictFunction]) -> None:
        if not members:
            raise ValueError("CompositeConflict needs at least one member")
        self.members = list(members)

    def conflicts(self, first: Event, second: Event) -> bool:
        return any(member.conflicts(first, second) for member in self.members)

    def matrix(self, events: Sequence[Event]) -> np.ndarray:
        result = np.zeros((len(events), len(events)), dtype=bool)
        for member in self.members:
            result |= member.matrix(events)
        return result

    def to_dict(self) -> dict:
        return {
            "kind": "composite",
            "members": [member.to_dict() for member in self.members],
        }


def conflict_matrix(
    events: Sequence[Event], conflict: ConflictFunction
) -> np.ndarray:
    """Boolean matrix ``C[i, j] = σ(events[i], events[j])`` (zero diagonal)."""
    return conflict.matrix(events)


def validate_symmetry(
    events: Sequence[Event], conflict: ConflictFunction
) -> None:
    """Raise ``ValueError`` if σ is asymmetric or reflexive on ``events``.

    Definition 3 implies symmetry (conflicting is mutual); a custom
    :class:`ConflictFunction` can be checked with this helper before use.
    """
    for i, first in enumerate(events):
        if conflict.conflicts(first, first):
            raise ValueError(f"conflict function is reflexive on event {first.event_id}")
        for second in events[i + 1 :]:
            forward = conflict.conflicts(first, second)
            backward = conflict.conflicts(second, first)
            if forward != backward:
                raise ValueError(
                    "conflict function is asymmetric on events "
                    f"({first.event_id}, {second.event_id})"
                )


def conflict_from_dict(payload: dict) -> ConflictFunction:
    """Inverse of the ``to_dict`` methods above."""
    kind = payload.get("kind")
    if kind == "none":
        return NoConflict()
    if kind == "always":
        return AlwaysConflict()
    if kind == "matrix":
        return MatrixConflict([tuple(pair) for pair in payload["pairs"]])
    if kind == "time-interval":
        return TimeIntervalConflict()
    if kind == "composite":
        return CompositeConflict(
            [conflict_from_dict(member) for member in payload["members"]]
        )
    raise ValueError(f"unknown conflict function kind {kind!r}")
