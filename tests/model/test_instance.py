"""Unit tests for IGEPAInstance."""

import numpy as np
import pytest

from repro.model import (
    Event,
    IGEPAInstance,
    InstanceValidationError,
    MatrixConflict,
    NoConflict,
    TabulatedInterest,
    User,
)
from repro.social import Graph
from tests.util import tiny_instance


class TestValidation:
    def test_valid_instance_constructs(self):
        instance = tiny_instance()
        assert instance.num_events == 3
        assert instance.num_users == 4

    def test_duplicate_event_ids_rejected(self):
        events = [Event(event_id=1, capacity=1), Event(event_id=1, capacity=2)]
        with pytest.raises(InstanceValidationError, match="duplicate event"):
            IGEPAInstance(events, [], NoConflict(), TabulatedInterest({}), Graph())

    def test_duplicate_user_ids_rejected(self):
        users = [User(user_id=1, capacity=1), User(user_id=1, capacity=2)]
        with pytest.raises(InstanceValidationError, match="duplicate user"):
            IGEPAInstance([], users, NoConflict(), TabulatedInterest({}), Graph())

    def test_dangling_bid_rejected(self):
        events = [Event(event_id=1, capacity=1)]
        users = [User(user_id=1, capacity=1, bids=(1, 99))]
        with pytest.raises(InstanceValidationError, match="unknown events"):
            IGEPAInstance(
                events, users, NoConflict(), TabulatedInterest({}), Graph(nodes=[1])
            )

    def test_invalid_beta_rejected(self):
        with pytest.raises(InstanceValidationError, match="beta"):
            IGEPAInstance(
                [], [], NoConflict(), TabulatedInterest({}), Graph(), beta=1.5
            )

    def test_social_graph_with_alien_nodes_rejected(self):
        users = [User(user_id=1, capacity=1)]
        graph = Graph(nodes=[1, 2])
        with pytest.raises(InstanceValidationError, match="non-user"):
            IGEPAInstance([], users, NoConflict(), TabulatedInterest({}), graph)


class TestDerivedQuantities:
    def test_degree_normalization(self):
        instance = tiny_instance()
        # 4 users: D = deg / 3.
        assert instance.degree(10) == pytest.approx(1 / 3)
        assert instance.degree(11) == pytest.approx(2 / 3)
        assert instance.degree(13) == 0.0

    def test_degree_of_user_missing_from_graph_is_zero(self):
        events = [Event(event_id=1, capacity=1)]
        users = [User(user_id=1, capacity=1), User(user_id=2, capacity=1)]
        instance = IGEPAInstance(
            events, users, NoConflict(), TabulatedInterest({}), Graph(nodes=[1])
        )
        assert instance.degree(2) == 0.0

    def test_degree_single_user_is_zero(self):
        users = [User(user_id=1, capacity=1)]
        instance = IGEPAInstance(
            [], users, NoConflict(), TabulatedInterest({}), Graph(nodes=[1])
        )
        assert instance.degree(1) == 0.0

    def test_degree_unknown_user_raises(self):
        with pytest.raises(KeyError):
            tiny_instance().degree(999)

    def test_interest_lookup(self):
        instance = tiny_instance()
        assert instance.interest_of(1, 10) == pytest.approx(0.9)
        assert instance.interest_of(3, 13) == pytest.approx(1.0)

    def test_interest_out_of_range_rejected(self):
        class Bad(TabulatedInterest):
            def interest(self, event, user):
                return 2.0

        events = [Event(event_id=1, capacity=1)]
        users = [User(user_id=1, capacity=1, bids=(1,))]
        instance = IGEPAInstance(
            events, users, NoConflict(), Bad({}), Graph(nodes=[1])
        )
        with pytest.raises(InstanceValidationError, match="Definition 5"):
            instance.interest_of(1, 1)

    def test_weight_formula(self):
        instance = tiny_instance(beta=0.5)
        expected = 0.5 * 0.9 + 0.5 * (1 / 3)
        assert instance.weight(10, 1) == pytest.approx(expected)

    def test_weight_beta_extremes(self):
        pure_interest = tiny_instance(beta=1.0)
        assert pure_interest.weight(10, 1) == pytest.approx(0.9)
        pure_interaction = tiny_instance(beta=0.0)
        assert pure_interaction.weight(10, 1) == pytest.approx(1 / 3)

    def test_conflicts_lookup_and_symmetry(self):
        instance = tiny_instance()
        assert instance.conflicts(1, 2)
        assert instance.conflicts(2, 1)
        assert not instance.conflicts(1, 3)
        assert not instance.conflicts(1, 1)

    def test_bidders(self):
        instance = tiny_instance()
        assert sorted(instance.bidders(1)) == [10, 11]
        assert sorted(instance.bidders(3)) == [11, 12, 13]

    def test_bidders_unknown_event_raises(self):
        with pytest.raises(KeyError):
            tiny_instance().bidders(99)

    def test_bid_conflict_edges(self):
        instance = tiny_instance()
        user10 = instance.user_by_id[10]  # bids (1, 2) which conflict
        assert instance.bid_conflict_edges(user10) == [(1, 2)]
        user11 = instance.user_by_id[11]  # bids (1, 3): no conflict
        assert instance.bid_conflict_edges(user11) == []


class TestStatistics:
    def test_statistics_fields(self):
        stats = tiny_instance().statistics()
        assert stats["num_events"] == 3
        assert stats["num_users"] == 4
        assert stats["total_bids"] == 7
        assert stats["mean_bids_per_user"] == pytest.approx(7 / 4)
        assert stats["conflict_density"] == pytest.approx(1 / 3)
        assert stats["social_edges"] == 2
        assert stats["beta"] == 0.5

    def test_statistics_empty_instance(self):
        instance = IGEPAInstance(
            [], [], NoConflict(), TabulatedInterest({}), Graph()
        )
        stats = instance.statistics()
        assert stats["num_events"] == 0
        assert stats["mean_bids_per_user"] == 0.0
        assert stats["conflict_density"] == 0.0


class TestSerialization:
    def test_round_trip_preserves_everything(self, tmp_path):
        instance = tiny_instance()
        path = tmp_path / "instance.json"
        instance.save(path)
        restored = IGEPAInstance.load(path)
        assert restored.num_events == instance.num_events
        assert restored.num_users == instance.num_users
        assert restored.beta == instance.beta
        for event in instance.events:
            other = restored.event_by_id[event.event_id]
            assert other == event
        for user in instance.users:
            other = restored.user_by_id[user.user_id]
            assert other == user
        assert restored.conflicts(1, 2)
        assert not restored.conflicts(1, 3)
        assert restored.interest_of(1, 10) == pytest.approx(0.9)
        assert restored.degree(11) == pytest.approx(instance.degree(11))

    def test_round_trip_with_temporal_events(self, tmp_path):
        events = [
            Event(event_id=1, capacity=2, start_time=0.0, duration=2.0),
            Event(event_id=2, capacity=2, start_time=1.0, duration=2.0),
        ]
        users = [User(user_id=1, capacity=2, bids=(1, 2))]
        from repro.model import TimeIntervalConflict

        instance = IGEPAInstance(
            events,
            users,
            TimeIntervalConflict(),
            TabulatedInterest({(1, 1): 0.5, (2, 1): 0.6}),
            Graph(nodes=[1]),
        )
        path = tmp_path / "temporal.json"
        instance.save(path)
        restored = IGEPAInstance.load(path)
        assert restored.conflicts(1, 2)
        assert restored.event_by_id[1].end_time == pytest.approx(2.0)

    def test_repr(self):
        assert "tiny" in repr(tiny_instance())
