"""End-to-end integration tests: generator -> algorithms -> reports."""

import numpy as np
import pytest

from repro.core import ExactILP, GGGreedy, LPPacking, RandomU, RandomV, lp_upper_bound
from repro.datagen import MeetupConfig, SyntheticConfig, generate_meetup, generate_synthetic
from repro.experiments import (
    default_algorithms,
    format_utility_table,
    run_on_instance,
    run_repetitions,
)
from repro.model import IGEPAInstance


class TestSyntheticPipeline:
    """Reduced-scale version of the paper's synthetic evaluation loop."""

    CONFIG = SyntheticConfig(num_events=25, num_users=150)

    def test_full_loop_produces_paper_ordering(self):
        stats = run_repetitions(
            lambda seed: generate_synthetic(self.CONFIG, seed=seed),
            repetitions=5,
            base_seed=0,
        )
        lp = stats["lp-packing"].mean_utility
        gg = stats["gg"].mean_utility
        random_u = stats["random-u"].mean_utility
        random_v = stats["random-v"].mean_utility
        # The paper's headline: LP-packing wins, GG second, randoms behind.
        assert lp > random_u
        assert lp > random_v
        assert lp >= gg * 0.99
        assert gg > min(random_u, random_v)

    def test_report_contains_all_rows(self):
        stats = run_repetitions(
            lambda seed: generate_synthetic(self.CONFIG, seed=seed),
            repetitions=2,
        )
        text = format_utility_table(stats, title="integration")
        for name in ("lp-packing", "gg", "random-u", "random-v"):
            assert name in text


class TestMeetupPipeline:
    CONFIG = MeetupConfig(num_events=25, num_users=120, num_groups=6)

    def test_fixed_instance_loop(self):
        instance = generate_meetup(self.CONFIG, seed=4)
        stats = run_on_instance(instance, repetitions=3, base_seed=0)
        assert stats["lp-packing"].mean_utility >= stats["random-u"].mean_utility
        assert stats["lp-packing"].mean_utility >= stats["random-v"].mean_utility

    def test_lp_cache_survives_repetitions(self):
        instance = generate_meetup(self.CONFIG, seed=4)
        algorithm = LPPacking(alpha=1.0)
        first = algorithm.solve(instance, seed=0)
        second = algorithm.solve(instance, seed=1)
        assert second.details["lp_backend"] == "cache"
        assert first.details["lp_objective"] == pytest.approx(
            second.details["lp_objective"]
        )


class TestSaveLoadSolve:
    def test_json_round_trip_through_disk_then_solve(self, tmp_path):
        instance = generate_synthetic(
            SyntheticConfig(num_events=12, num_users=40), seed=9
        )
        path = tmp_path / "workload.json"
        instance.save(path)
        restored = IGEPAInstance.load(path)
        original = GGGreedy().solve(instance)
        replayed = GGGreedy().solve(restored)
        assert original.pairs == replayed.pairs

    def test_meetup_round_trip(self, tmp_path):
        instance = generate_meetup(
            MeetupConfig(num_events=10, num_users=30, num_groups=4), seed=2
        )
        path = tmp_path / "meetup.json"
        instance.save(path)
        restored = IGEPAInstance.load(path)
        assert restored.degrees_override == instance.degrees_override
        for event in instance.events:
            twin = restored.event_by_id[event.event_id]
            assert twin.start_time == pytest.approx(event.start_time)


class TestCrossAlgorithmDominance:
    """Statistical shape of the algorithm hierarchy on many small instances."""

    def test_lp_packing_dominates_on_average(self):
        wins = 0
        trials = 10
        for seed in range(trials):
            instance = generate_synthetic(
                SyntheticConfig(num_events=15, num_users=80), seed=seed
            )
            lp = LPPacking().solve(instance, seed=0).utility
            others = max(
                GGGreedy().solve(instance, seed=0).utility,
                RandomU().solve(instance, seed=0).utility,
                RandomV().solve(instance, seed=0).utility,
            )
            if lp >= others - 1e-9:
                wins += 1
        assert wins >= 8, f"LP-packing won only {wins}/{trials} instances"

    def test_exact_confirms_lp_packing_near_optimality(self):
        """On small instances LP-packing with α = 1 should land within 10%
        of the true optimum (usually exactly on it)."""
        ratios = []
        for seed in range(5):
            instance = generate_synthetic(
                SyntheticConfig(
                    num_events=6,
                    num_users=10,
                    max_event_capacity=3,
                    max_bids=4,
                ),
                seed=seed,
            )
            optimum = ExactILP().solve(instance).utility
            if optimum == 0.0:
                continue
            achieved = np.mean(
                [LPPacking().solve(instance, seed=s).utility for s in range(20)]
            )
            ratios.append(achieved / optimum)
        assert ratios, "all instances degenerate"
        assert min(ratios) >= 0.75
        assert np.mean(ratios) >= 0.9

    def test_bound_chain_on_one_instance(self):
        """utility(any algorithm) <= OPT <= LP* — the Lemma 1 chain."""
        instance = generate_synthetic(
            SyntheticConfig(num_events=6, num_users=10, max_bids=3), seed=1
        )
        bound = lp_upper_bound(instance)
        optimum = ExactILP().solve(instance).utility
        heuristic = GGGreedy().solve(instance).utility
        assert heuristic <= optimum + 1e-9 <= bound + 1e-9
