"""Cross-run metric history: append-only JSONL plus an in-memory frame.

Each line of the history file is one **sample** — every metric one report
envelope yielded on one run, keyed by the run's provenance:

.. code-block:: json

    {"sha": "abc123", "timestamp_utc": "2026-08-08T00:00:00+00:00",
     "host": "runner-3", "kind": "bench_churn", "source": "BENCH_churn.json",
     "metrics": {"churn_speedup": 12.4, "utility_retention": 0.97}}

Append-only JSONL keeps the store git-mergeable (CI appends a line per
artifact per run; conflicts never rewrite history) and ingestion
idempotent: re-ingesting the artifacts of an already-recorded commit is a
no-op because samples dedupe on ``(sha, kind)``.  Within one key the last
line wins on load, so a force-pushed sha's corrected numbers supersede
without rewriting the file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from repro.experiments.persistence import load_report
from repro.metrics.registry import extract_metrics


@dataclass(frozen=True)
class Sample:
    """One run's metric values for one envelope kind."""

    sha: str
    timestamp_utc: str
    kind: str
    metrics: Mapping[str, float]
    host: str = "unknown"
    source: str = ""

    @property
    def key(self) -> tuple[str, str]:
        """Dedupe key: one sample per (commit, envelope kind)."""
        return (self.sha, self.kind)

    def to_dict(self) -> dict:
        return {
            "sha": self.sha,
            "timestamp_utc": self.timestamp_utc,
            "host": self.host,
            "kind": self.kind,
            "source": self.source,
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, row: Mapping) -> "Sample":
        metrics = row.get("metrics")
        if not isinstance(metrics, Mapping):
            raise ValueError("history row has no metrics mapping")
        return cls(
            sha=str(row.get("sha", "unknown")),
            timestamp_utc=str(row.get("timestamp_utc", "")),
            host=str(row.get("host", "unknown")),
            kind=str(row.get("kind", "unknown")),
            source=str(row.get("source", "")),
            metrics={str(k): float(v) for k, v in metrics.items()},
        )


def sample_from_payload(payload: Mapping, *, source: str = "") -> Sample | None:
    """Distil one report envelope into a :class:`Sample`.

    Provenance (sha/timestamp/host) comes from the payload's own
    ``provenance`` block; version-1 archives without one record as
    ``unknown``.  Returns None when no registered metric applies — such
    artifacts carry nothing to trend.
    """
    metrics = extract_metrics(payload)
    if not metrics:
        return None
    provenance = payload.get("provenance")
    if not isinstance(provenance, Mapping):
        provenance = {}
    return Sample(
        sha=str(provenance.get("git_sha", "unknown")),
        timestamp_utc=str(provenance.get("timestamp_utc", "")),
        host=str(provenance.get("host", "unknown")),
        kind=str(payload.get("kind", "unknown")),
        source=source,
        metrics=metrics,
    )


@dataclass
class HistoryFrame:
    """The loaded history: deduped samples in chronological order."""

    samples: list[Sample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[Sample]:
        return iter(self.samples)

    @classmethod
    def from_rows(cls, rows: Iterable[Mapping]) -> "HistoryFrame":
        """Dedupe on (sha, kind) — later lines win — then order by time.

        ``unknown``-sha rows (local runs without git metadata) are never
        collapsed; ties on timestamp keep file order, so they still
        trend in append order.
        """
        deduped: dict[tuple, tuple[int, Sample]] = {}
        for position, row in enumerate(rows):
            sample = Sample.from_dict(row)
            key = (position,) if sample.sha == "unknown" else sample.key
            deduped[key] = (position, sample)
        ordered = sorted(
            deduped.values(), key=lambda item: (item[1].timestamp_utc, item[0])
        )
        return cls([sample for _, sample in ordered])

    def series(self, metric: str, kind: str | None = None) -> list[tuple[Sample, float]]:
        """Chronological (sample, value) points for one metric.

        Args:
            metric: metric name.
            kind: restrict to one envelope kind; by default every kind
                reporting the metric contributes (e.g. ``serve_p99_ms``
                from both nightly soaks and ``bench_serve``).
        """
        return [
            (sample, sample.metrics[metric])
            for sample in self.samples
            if metric in sample.metrics and (kind is None or sample.kind == kind)
        ]

    def metric_names(self) -> list[str]:
        names = {name for sample in self.samples for name in sample.metrics}
        return sorted(names)

    def kinds(self) -> list[str]:
        return sorted({sample.kind for sample in self.samples})


class HistoryStore:
    """The on-disk JSONL history at ``path`` (typically
    ``benchmarks/history/history.jsonl``)."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def load(self) -> HistoryFrame:
        if not self.path.exists():
            return HistoryFrame()
        rows = []
        with self.path.open(encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as error:
                    raise ValueError(
                        f"{self.path}:{line_number}: not valid JSON ({error})"
                    ) from error
                rows.append(row)
        return HistoryFrame.from_rows(rows)

    def append(self, sample: Sample) -> bool:
        """Record one sample; False (and no write) when its (sha, kind)
        is already present — ingestion stays idempotent per commit."""
        existing = {s.key for s in self.load()}
        if sample.key in existing and sample.sha != "unknown":
            return False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(sample.to_dict(), sort_keys=True) + "\n")
        return True

    def ingest(self, paths: Iterable[str | Path]) -> tuple[int, int]:
        """Ingest report artifacts; returns (appended, skipped).

        Skipped counts artifacts that deduped away or yielded no metrics.
        Unreadable files raise — a malformed artifact in CI should fail
        loudly, not silently shrink the history.
        """
        appended = skipped = 0
        for path in paths:
            envelope = load_report(path)
            sample = sample_from_payload(envelope.payload, source=Path(path).name)
            if sample is None:
                skipped += 1
                continue
            if self.append(sample):
                appended += 1
            else:
                skipped += 1
        return appended, skipped
