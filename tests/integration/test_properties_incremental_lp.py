"""Property suite for the incrementally maintained benchmark LP.

Across generated churn traces, the delta-patched LP
(:class:`~repro.core.lp_incremental.IncrementalBenchmarkLP`) must stay a
faithful image of the from-scratch build on every successor: identical
optima to 1e-6, consistent decode tables, and — on pure capacity-shock
batches — the in-place dual path with the basis reused as-is (no phase 1,
zero refactorizations).  The same contract is asserted one layer up
(``LPPacking(incremental=True)``) and at the engine seam
(``TickEngine(defrag_lp_incremental=True)``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lp_formulation import build_benchmark_lp
from repro.core.lp_incremental import IncrementalBenchmarkLP
from repro.core.lp_packing import LPPacking
from repro.datagen import (
    ChurnConfig,
    SyntheticConfig,
    generate_churn_trace,
    generate_synthetic,
)
from repro.model.delta import Delta, apply_delta
from repro.service.defrag import PeriodicDefrag
from repro.service.engine import TickEngine
from repro.solver.api import solve_lp

TOLERANCE = 1e-6


def _reference_objective(instance) -> float:
    solution = solve_lp(
        build_benchmark_lp(instance).lp, backend="revised-simplex-sparse"
    )
    assert solution.is_optimal
    return solution.objective_value


@pytest.mark.parametrize(
    "seed,sharded",
    [(0, False), (1, False), (2, True)],
)
def test_patched_optima_match_from_scratch_across_churn(seed, sharded):
    instance = generate_synthetic(
        SyntheticConfig(num_users=60, num_events=14), seed=seed
    )
    if sharded:
        instance.configure_index(sharded=True, shard_size=16)
    trace = generate_churn_trace(
        instance, ChurnConfig(num_batches=5), seed=seed + 100
    )
    incremental = IncrementalBenchmarkLP(instance)
    first = incremental.solve()
    assert first.is_optimal
    assert first.objective_value == pytest.approx(
        _reference_objective(instance), abs=TOLERANCE
    )

    current = instance
    for delta in trace.deltas:
        successor = apply_delta(current, delta).instance
        incremental.observe_delta(delta, successor)
        incremental.check_tables()
        patched = incremental.solve()
        assert patched.is_optimal
        assert patched.objective_value == pytest.approx(
            _reference_objective(successor), abs=TOLERANCE
        )
        current = successor
    assert incremental.deltas_observed == len(trace.deltas)


def test_capacity_shocks_reuse_basis_without_phase1():
    instance = generate_synthetic(
        SyntheticConfig(num_users=80, num_events=16), seed=3
    )
    incremental = IncrementalBenchmarkLP(instance)
    assert incremental.solve().is_optimal

    # Shock only events that actually hold columns, so every batch is a
    # pure RHS patch on live rows.
    live_events = sorted(
        {
            event_id
            for sets in incremental.benchmark.admissible.values()
            for events in sets
            for event_id in events
        }
    )
    assert live_events
    rng = np.random.default_rng(11)
    current = instance
    for _ in range(5):
        picks = rng.choice(live_events, size=min(4, len(live_events)), replace=False)
        capacity_by_id = {
            event.event_id: int(event.capacity) for event in current.events
        }
        updates = tuple(
            (int(event_id), max(1, capacity_by_id[int(event_id)] + int(shift)))
            for event_id, shift in zip(picks, rng.integers(-2, 3, size=picks.size))
        )
        delta = Delta(set_event_capacity=updates)
        successor = apply_delta(current, delta).instance
        incremental.observe_delta(delta, successor)
        patched = incremental.solve()
        assert patched.is_optimal
        diagnostics = patched.diagnostics
        assert diagnostics["mode"] == "rhs_dual"
        assert not diagnostics["phase1"]
        assert diagnostics["refactorizations"] == 0
        assert patched.objective_value == pytest.approx(
            _reference_objective(successor), abs=TOLERANCE
        )
        current = successor


def test_lp_packing_incremental_matches_reference_across_churn():
    instance = generate_synthetic(
        SyntheticConfig(num_users=60, num_events=14), seed=7
    )
    trace = generate_churn_trace(instance, ChurnConfig(num_batches=4), seed=13)
    packing = LPPacking(alpha=1.0, incremental=True, seed=3)
    reference = LPPacking(
        alpha=1.0, lp_backend="revised-simplex-sparse", seed=3
    )
    current = instance
    for index, delta in enumerate(trace.deltas):
        solved = packing.solve(current, seed=100 + index)
        expected = reference.solve(current, seed=100 + index)
        assert solved.details["lp_objective"] == pytest.approx(
            expected.details["lp_objective"], abs=TOLERANCE
        )
        successor = apply_delta(current, delta).instance
        packing.observe_delta(delta, successor)
        current = successor
    final = packing.solve(current, seed=999)
    assert final.details["lp_objective"] == pytest.approx(
        reference.solve(current, seed=999).details["lp_objective"],
        abs=TOLERANCE,
    )
    assert final.details["lp_backend"] == "incremental-revised-simplex"
    assert "mode" in final.details["lp_diagnostics"]
    packing._incremental_lp.check_tables()


def test_lp_packing_rebases_on_unrelated_instance():
    packing = LPPacking(alpha=1.0, incremental=True, seed=1)
    first = generate_synthetic(
        SyntheticConfig(num_users=40, num_events=10), seed=21
    )
    other = generate_synthetic(
        SyntheticConfig(num_users=30, num_events=8), seed=22
    )
    assert packing.solve(first, seed=5).details["lp_objective"] == pytest.approx(
        _reference_objective(first), abs=TOLERANCE
    )
    # No observe_delta chain onto `other`: the packing must rebase, not
    # serve the stale program.
    assert packing.solve(other, seed=5).details["lp_objective"] == pytest.approx(
        _reference_objective(other), abs=TOLERANCE
    )


def test_engine_keeps_incremental_lp_in_lockstep():
    instance = generate_synthetic(
        SyntheticConfig(num_users=60, num_events=14), seed=5
    )
    trace = generate_churn_trace(instance, ChurnConfig(num_batches=4), seed=9)
    engine = TickEngine(
        instance,
        seed=2,
        defrag=PeriodicDefrag(1),
        defrag_lp_incremental=True,
    )
    engine.bootstrap()
    for tick, delta in enumerate(trace.deltas):
        result = engine.apply_churn(delta)
        engine.serve_arrivals(result, delta)
        moves: dict = {}
        engine.adopt_lp(result, tick, moves, utility=0.0)
        assert "lp_utility" in moves
    resolver = engine.lp_resolver
    assert resolver is not None
    chain = resolver._incremental_lp
    assert chain is not None
    assert chain.instance is engine.instance
    chain.check_tables()
    patched = chain.solve()
    assert patched.objective_value == pytest.approx(
        _reference_objective(engine.instance), abs=TOLERANCE
    )
