"""Analysis helpers: LP upper bounds and empirical approximation ratios.

Used by the test suite and the ``approx_ratio`` ablation bench to check
Theorem 2 empirically: with ``α = 1/2``, ``E[ALG] ≥ (1/4)·LP* ≥ (1/4)·OPT``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.core.admissible import DEFAULT_MAX_SETS_PER_USER
from repro.core.base import ArrangementAlgorithm
from repro.core.exact import ExactILP
from repro.core.lp_formulation import build_benchmark_lp
from repro.model.instance import IGEPAInstance
from repro.solver.api import solve_lp


def lp_upper_bound(
    instance: IGEPAInstance,
    backend: str = "auto",
    max_sets_per_user: int = DEFAULT_MAX_SETS_PER_USER,
) -> float:
    """The benchmark-LP optimum — a valid upper bound on OPT (Lemma 1)."""
    benchmark = build_benchmark_lp(instance, max_sets_per_user=max_sets_per_user)
    if benchmark.lp.num_variables == 0:
        return 0.0
    solution = solve_lp(benchmark.lp, backend=backend)
    if not solution.is_optimal:
        raise RuntimeError(
            f"benchmark LP solve failed with status {solution.status.value}"
        )
    return solution.objective_value


@dataclass
class RatioReport:
    """Empirical approximation statistics for one algorithm on one instance.

    Attributes:
        algorithm: algorithm name.
        utilities: per-repetition utilities.
        lp_bound: benchmark LP optimum (upper bound on OPT).
        exact_optimum: true OPT when computed (small instances), else None.
        mean_utility: average utility across repetitions.
        ratio_vs_lp: ``mean_utility / lp_bound`` (1.0 when the bound is 0).
        ratio_vs_exact: ``mean_utility / exact_optimum`` when available.
    """

    #: :class:`~repro.experiments.persistence.ReportEnvelope` discriminator.
    envelope_kind: ClassVar[str] = "ratio"

    algorithm: str
    utilities: list[float]
    lp_bound: float
    exact_optimum: float | None

    @property
    def mean_utility(self) -> float:
        return float(np.mean(self.utilities)) if self.utilities else 0.0

    @property
    def ratio_vs_lp(self) -> float:
        if self.lp_bound <= 0.0:
            return 1.0
        return self.mean_utility / self.lp_bound

    @property
    def ratio_vs_exact(self) -> float | None:
        if self.exact_optimum is None:
            return None
        if self.exact_optimum <= 0.0:
            return 1.0
        return self.mean_utility / self.exact_optimum

    def to_dict(self) -> dict:
        """JSON-ready snapshot through the shared report envelope."""
        # Deferred: repro.experiments imports repro.core back (the runner
        # solves with core algorithms), so the envelope import stays local.
        from repro.experiments.persistence import report_to_dict

        return report_to_dict(
            "ratio",
            {
                "algorithm": self.algorithm,
                "utilities": list(self.utilities),
                "lp_bound": self.lp_bound,
                "exact_optimum": self.exact_optimum,
                "mean_utility": self.mean_utility,
                "ratio_vs_lp": self.ratio_vs_lp,
                "ratio_vs_exact": self.ratio_vs_exact,
            },
            [],
        )


def empirical_approximation_ratio(
    instance: IGEPAInstance,
    algorithm: ArrangementAlgorithm,
    repetitions: int = 50,
    seed: int = 0,
    compute_exact: bool = False,
) -> RatioReport:
    """Run ``algorithm`` repeatedly and relate its mean utility to the bounds.

    Args:
        instance: the IGEPA instance.
        algorithm: any :class:`ArrangementAlgorithm`; randomized ones receive
            seeds ``seed, seed+1, ...`` per repetition.
        repetitions: number of runs to average.
        seed: base seed.
        compute_exact: additionally solve the instance exactly (viable only
            for small instances).
    """
    utilities = [
        algorithm.solve(instance, seed=seed + repetition).utility
        for repetition in range(repetitions)
    ]
    bound = lp_upper_bound(instance)
    exact_value: float | None = None
    if compute_exact:
        exact_value = ExactILP().solve(instance).utility
    return RatioReport(
        algorithm=algorithm.name,
        utilities=utilities,
        lp_bound=bound,
        exact_optimum=exact_value,
    )
