"""LP backend delegating to ``scipy.optimize.linprog`` (HiGHS).

The from-scratch simplex backends are exact but dense; the paper's largest
sweep (|U| = 10000 in Fig. 1b) produces benchmark LPs with tens of thousands
of columns, where a sparse interior-point/dual-simplex code is the practical
choice.  This mirrors the paper's use of Gurobi for the same role.

scipy is an optional dependency: :func:`scipy_available` reports whether the
backend can be used, and callers fall back to the from-scratch simplex.
"""

from __future__ import annotations

import numpy as np

from repro.solver.problem import LinearProgram, Sense
from repro.solver.result import LPSolution, SolveStatus


def scipy_available() -> bool:
    """Whether ``scipy.optimize.linprog`` can be imported."""
    try:
        from scipy.optimize import linprog  # noqa: F401
    except ImportError:
        return False
    return True


def solve_lp_scipy(lp: LinearProgram) -> LPSolution:
    """Solve ``lp`` with HiGHS via ``scipy.optimize.linprog``.

    Raises:
        ImportError: when scipy is not installed (check
            :func:`scipy_available` first, or use the ``auto`` backend).
    """
    from scipy.optimize import linprog
    from scipy.sparse import lil_matrix

    n = lp.num_variables
    sign = -1.0 if lp.maximize else 1.0
    c = sign * lp.objective_vector()

    ub_rows: list[int] = []
    eq_rows: list[int] = []
    for i, constraint in enumerate(lp.constraints):
        if constraint.sense is Sense.EQ:
            eq_rows.append(i)
        else:
            ub_rows.append(i)

    def build(rows: list[int], flip_ge: bool):
        if not rows:
            return None, None
        matrix = lil_matrix((len(rows), n))
        rhs = np.zeros(len(rows))
        for out_i, row_index in enumerate(rows):
            constraint = lp.constraints[row_index]
            flip = flip_ge and constraint.sense is Sense.GE
            factor = -1.0 if flip else 1.0
            for var_index, coeff in constraint.coefficients.items():
                matrix[out_i, var_index] = factor * coeff
            rhs[out_i] = factor * constraint.rhs
        return matrix.tocsr(), rhs

    a_ub, b_ub = build(ub_rows, flip_ge=True)
    a_eq, b_eq = build(eq_rows, flip_ge=False)
    bounds = [
        (v.lower if np.isfinite(v.lower) else None, v.upper if np.isfinite(v.upper) else None)
        for v in lp.variables
    ]

    result = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )

    iterations = int(getattr(result, "nit", 0) or 0)
    if result.status == 2:
        return LPSolution(SolveStatus.INFEASIBLE, iterations=iterations, backend="scipy-highs")
    if result.status == 3:
        return LPSolution(SolveStatus.UNBOUNDED, iterations=iterations, backend="scipy-highs")
    if not result.success:
        return LPSolution(
            SolveStatus.ITERATION_LIMIT, iterations=iterations, backend="scipy-highs"
        )
    objective = sign * float(result.fun)
    return LPSolution(
        SolveStatus.OPTIMAL,
        objective_value=objective,
        x=np.asarray(result.x, dtype=float),
        iterations=iterations,
        backend="scipy-highs",
    )
