"""Common interface for arrangement algorithms."""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

import numpy as np

from repro.core.result import ArrangementResult
from repro.model.arrangement import Arrangement
from repro.model.instance import IGEPAInstance


class ArrangementAlgorithm(ABC):
    """Base class: ``solve(instance)`` produces an :class:`ArrangementResult`.

    Randomized algorithms draw from a :class:`numpy.random.Generator`; the
    per-call ``seed`` overrides the constructor default so that experiment
    harnesses can run independent repetitions off one configured object.
    """

    #: Display name used in reports and result objects.
    name: str = "algorithm"

    def __init__(self, seed: int | None = None):
        self.seed = seed

    def _rng(self, seed: int | None) -> np.random.Generator:
        if seed is None:
            seed = self.seed
        return np.random.default_rng(seed)

    @abstractmethod
    def _solve(
        self, instance: IGEPAInstance, rng: np.random.Generator
    ) -> tuple[Arrangement, dict]:
        """Produce a feasible arrangement and a diagnostics dict."""

    def solve(
        self, instance: IGEPAInstance, seed: int | None = None
    ) -> ArrangementResult:
        """Run the algorithm; measures runtime and packages the result."""
        rng = self._rng(seed)
        started = time.perf_counter()
        arrangement, details = self._solve(instance, rng)
        elapsed = time.perf_counter() - started
        return ArrangementResult(
            algorithm=self.name,
            arrangement=arrangement,
            utility=arrangement.utility(),
            runtime_seconds=elapsed,
            details=details,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
