"""Unit tests for the synthetic (Table I) generator."""

import numpy as np
import pytest

from repro.datagen import TABLE1_DEFAULTS, SyntheticConfig, generate_synthetic


class TestTable1Defaults:
    """Table I: |V|=200, |U|=2000, max c_v=50, max c_u=4, pcf=0.3, pdeg=0.5."""

    def test_default_factors(self):
        assert TABLE1_DEFAULTS.num_events == 200
        assert TABLE1_DEFAULTS.num_users == 2000
        assert TABLE1_DEFAULTS.max_event_capacity == 50
        assert TABLE1_DEFAULTS.max_user_capacity == 4
        assert TABLE1_DEFAULTS.conflict_probability == 0.3
        assert TABLE1_DEFAULTS.friend_probability == 0.5

    def test_generated_instance_matches_defaults(self):
        instance = generate_synthetic(seed=0)
        assert instance.num_events == 200
        assert instance.num_users == 2000
        assert max(e.capacity for e in instance.events) <= 50
        assert max(u.capacity for u in instance.users) <= 4
        assert min(e.capacity for e in instance.events) >= 1
        assert min(u.capacity for u in instance.users) >= 1


class TestSmallerInstances:
    """Structural checks on reduced sizes (fast)."""

    CONFIG = SyntheticConfig(num_events=40, num_users=100)

    def test_determinism(self):
        a = generate_synthetic(self.CONFIG, seed=7)
        b = generate_synthetic(self.CONFIG, seed=7)
        assert [u.bids for u in a.users] == [u.bids for u in b.users]
        assert [e.capacity for e in a.events] == [e.capacity for e in b.events]
        assert a.degrees_override == b.degrees_override
        assert a.conflict.to_dict() == b.conflict.to_dict()

    def test_seeds_differ(self):
        a = generate_synthetic(self.CONFIG, seed=1)
        b = generate_synthetic(self.CONFIG, seed=2)
        assert [u.bids for u in a.users] != [u.bids for u in b.users]

    def test_capacities_in_range(self):
        instance = generate_synthetic(self.CONFIG, seed=3)
        assert all(1 <= e.capacity <= 50 for e in instance.events)
        assert all(1 <= u.capacity <= 4 for u in instance.users)

    def test_capacity_spread_is_uniformish(self):
        """Capacities come from uniform distributions, so the full range
        should appear at Table-I scale."""
        instance = generate_synthetic(seed=5)
        user_caps = {u.capacity for u in instance.users}
        assert user_caps == {1, 2, 3, 4}

    def test_conflict_density_near_pcf(self):
        instance = generate_synthetic(
            SyntheticConfig(num_events=100, num_users=10), seed=4
        )
        density = instance.statistics()["conflict_density"]
        assert abs(density - 0.3) < 0.07

    def test_bid_counts_in_range(self):
        instance = generate_synthetic(self.CONFIG, seed=5)
        for user in instance.users:
            assert 2 <= len(user.bids) <= 6

    def test_bids_reference_existing_events(self):
        instance = generate_synthetic(self.CONFIG, seed=6)
        event_ids = {e.event_id for e in instance.events}
        for user in instance.users:
            assert set(user.bids) <= event_ids

    def test_interest_defined_for_every_bid_pair(self):
        instance = generate_synthetic(self.CONFIG, seed=8)
        for user in instance.users[:20]:
            for event_id in user.bids:
                assert 0.0 <= instance.interest_of(event_id, user.user_id) <= 1.0

    def test_dependent_bids_conflict_more_than_uniform(self):
        """The paper's bid model draws from conflict clusters, so bid lists
        must contain conflicting pairs far above the uniform-bid rate."""
        clustered = generate_synthetic(
            SyntheticConfig(num_events=60, num_users=300, cluster_bid_fraction=0.9),
            seed=9,
        )
        uniform = generate_synthetic(
            SyntheticConfig(num_events=60, num_users=300, cluster_bid_fraction=0.0),
            seed=9,
        )

        def conflict_rate(instance):
            conflicting = total = 0
            for user in instance.users:
                for i, first in enumerate(user.bids):
                    for second in user.bids[i + 1 :]:
                        total += 1
                        conflicting += instance.conflicts(first, second)
            return conflicting / total

        assert conflict_rate(clustered) > conflict_rate(uniform) * 1.5


class TestSocialNetwork:
    def test_degree_sampling_matches_binomial_marginal(self):
        instance = generate_synthetic(
            SyntheticConfig(num_events=10, num_users=500), seed=10
        )
        degrees = np.array([instance.degree(u.user_id) for u in instance.users])
        # Binomial(499, 0.5) / 499: mean 0.5, std ~0.0224.
        assert abs(degrees.mean() - 0.5) < 0.01
        assert abs(degrees.std() - np.sqrt(0.25 / 499)) < 0.01

    def test_materialized_graph_mode(self):
        instance = generate_synthetic(
            SyntheticConfig(
                num_events=10, num_users=60, materialize_social_graph=True
            ),
            seed=11,
        )
        assert instance.degrees_override is None
        assert instance.social.number_of_edges > 0
        # Degree values still normalized by |U| - 1.
        for user in instance.users:
            assert 0.0 <= instance.degree(user.user_id) <= 1.0

    def test_single_user_degree_zero(self):
        instance = generate_synthetic(
            SyntheticConfig(num_events=5, num_users=1), seed=0
        )
        assert instance.degree(instance.users[0].user_id) == 0.0


class TestConfigValidation:
    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_events=-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacities"):
            SyntheticConfig(max_event_capacity=0)

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ValueError, match="p_cf"):
            SyntheticConfig(conflict_probability=1.1)
        with pytest.raises(ValueError, match="p_deg"):
            SyntheticConfig(friend_probability=-0.2)

    def test_bad_bid_range_rejected(self):
        with pytest.raises(ValueError, match="min_bids"):
            SyntheticConfig(min_bids=5, max_bids=3)

    def test_with_overrides(self):
        config = TABLE1_DEFAULTS.with_overrides(num_users=5000)
        assert config.num_users == 5000
        assert config.num_events == 200  # untouched
        assert TABLE1_DEFAULTS.num_users == 2000  # original unchanged

    def test_kwargs_overrides_in_generate(self):
        instance = generate_synthetic(seed=0, num_events=15, num_users=30)
        assert instance.num_events == 15
        assert instance.num_users == 30


class TestEdgeCases:
    def test_empty_instance(self):
        instance = generate_synthetic(
            SyntheticConfig(num_events=0, num_users=0), seed=0
        )
        assert instance.num_events == 0
        assert instance.num_users == 0

    def test_users_without_events_have_no_bids(self):
        instance = generate_synthetic(
            SyntheticConfig(num_events=0, num_users=5), seed=0
        )
        assert all(u.bids == () for u in instance.users)

    def test_more_min_bids_than_events_is_capped(self):
        instance = generate_synthetic(
            SyntheticConfig(num_events=2, num_users=5, min_bids=4, max_bids=6),
            seed=0,
        )
        for user in instance.users:
            assert len(user.bids) <= 2


class TestStreamGenerator:
    """Chunk-vectorized streaming generator for the ≥50k-user regime."""

    def test_determinism(self):
        from repro.datagen import generate_synthetic_stream

        config = SyntheticConfig(num_users=400, num_events=50)
        a = generate_synthetic_stream(config, seed=11, chunk_size=64)
        b = generate_synthetic_stream(config, seed=11, chunk_size=64)
        assert [u.bids for u in a.users] == [u.bids for u in b.users]
        assert [u.capacity for u in a.users] == [u.capacity for u in b.users]
        assert a.interest.items() == b.interest.items()
        assert a.degrees_override == b.degrees_override

    def test_workload_shape(self):
        from repro.datagen import generate_synthetic_stream

        config = SyntheticConfig(num_users=600, num_events=60)
        instance = generate_synthetic_stream(config, seed=3, chunk_size=100)
        assert instance.num_users == 600
        assert instance.num_events == 60
        stats = instance.statistics()
        assert config.min_bids - 1 <= stats["mean_bids_per_user"] <= config.max_bids
        for user in instance.users:
            assert 1 <= user.capacity <= config.max_user_capacity
            assert len(user.bids) <= config.max_bids
            for event_id in user.bids:
                assert 0 <= event_id < config.num_events
                # every bid pair carries a sampled interest value
                assert (event_id, user.user_id) in instance.interest.items()
        assert instance.degrees_override is not None
        assert all(0.0 <= d <= 1.0 for d in instance.degrees_override.values())

    def test_chunk_size_does_not_change_totals(self):
        from repro.datagen import generate_synthetic_stream

        config = SyntheticConfig(num_users=300, num_events=40)
        small = generate_synthetic_stream(config, seed=5, chunk_size=32)
        # Different chunking redraws differently, but the workload shape and
        # validity must hold for any chunking.
        large = generate_synthetic_stream(config, seed=5, chunk_size=10_000)
        for instance in (small, large):
            assert instance.num_users == 300
            assert instance.index.num_bids == sum(
                len(u.bids) for u in instance.users
            )

    def test_rejects_materialized_graph(self):
        from repro.datagen import generate_synthetic_stream

        with pytest.raises(ValueError):
            generate_synthetic_stream(
                SyntheticConfig(num_users=10, num_events=5, materialize_social_graph=True),
                seed=0,
            )
