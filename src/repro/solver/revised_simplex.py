"""Revised simplex with explicit basis-inverse maintenance.

The benchmark LP (1)-(4) is *wide*: one column per (user, admissible set)
pair but only ``|U| + |V|`` rows.  The tableau simplex updates the full
``m x (n + m)`` tableau per pivot; the revised simplex keeps only the
``m x m`` basis inverse and prices columns on demand, which is the right
trade-off for wide LPs.  The basis inverse is updated by an eta
(elementary) transformation each pivot and rebuilt from scratch every
``refactor_every`` pivots to stop drift.

Phases, pivot rules, anti-cycling and statuses mirror
:mod:`repro.solver.simplex`; both backends are cross-checked against each
other and against scipy in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solver.problem import LinearProgram
from repro.solver.result import LPSolution, SolveStatus
from repro.solver.simplex import SimplexOptions, _TableauResult
from repro.solver.standard_form import StandardForm, to_standard_form


@dataclass
class RevisedSimplexOptions(SimplexOptions):
    """Simplex options plus the basis refactorization period."""

    refactor_every: int = 100


class _RevisedCore:
    """One phase of the revised simplex over ``min c@x, A@x == b, x >= 0``."""

    def __init__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        options: RevisedSimplexOptions,
    ):
        self.a = a
        self.b = b
        self.options = options
        self.m = a.shape[0]
        self.n = a.shape[1]
        self.basis: list[int] = []
        self.basis_inverse = np.eye(self.m)
        self.x_basic = b.copy()
        self.pivots_since_refactor = 0

    def set_basis(self, basis: list[int]) -> None:
        self.basis = list(basis)
        self.refactor()

    def refactor(self) -> None:
        """Rebuild the basis inverse and basic solution from scratch."""
        basis_matrix = self.a[:, self.basis]
        self.basis_inverse = np.linalg.inv(basis_matrix)
        self.x_basic = self.basis_inverse @ self.b
        # Numerical noise can push a basic value to -1e-13; clamp so the
        # ratio test never divides feasibility away.
        self.x_basic[np.abs(self.x_basic) < self.options.tol] = 0.0
        self.pivots_since_refactor = 0

    def run(
        self,
        costs: np.ndarray,
        allowed: int,
        start_iteration: int,
        max_iterations: int,
    ) -> tuple[SolveStatus, int]:
        """Pivot to optimality for ``costs`` over columns ``[0, allowed)``."""
        tol = self.options.tol
        iterations = start_iteration
        while True:
            duals = costs[self.basis] @ self.basis_inverse
            reduced = costs[:allowed] - duals @ self.a[:, :allowed]
            basic_set = set(self.basis)
            use_bland = iterations >= self.options.bland_after
            entering = self._choose_entering(reduced, basic_set, use_bland, tol)
            if entering is None:
                return SolveStatus.OPTIMAL, iterations
            direction = self.basis_inverse @ self.a[:, entering]
            leaving_row = self._ratio_test(direction, tol)
            if leaving_row is None:
                return SolveStatus.UNBOUNDED, iterations
            self._pivot(entering, leaving_row, direction)
            iterations += 1
            if iterations >= max_iterations:
                return SolveStatus.ITERATION_LIMIT, iterations

    @staticmethod
    def _choose_entering(
        reduced: np.ndarray, basic: set[int], use_bland: bool, tol: float
    ) -> int | None:
        if use_bland:
            for j in np.nonzero(reduced < -tol)[0]:
                if int(j) not in basic:
                    return int(j)
            return None
        masked = reduced.copy()
        for j in basic:
            if j < masked.shape[0]:
                masked[j] = 0.0
        best = int(np.argmin(masked))
        return best if masked[best] < -tol else None

    def _ratio_test(self, direction: np.ndarray, tol: float) -> int | None:
        best_row: int | None = None
        best_ratio = np.inf
        for row in range(self.m):
            if direction[row] > tol:
                ratio = self.x_basic[row] / direction[row]
                better = ratio < best_ratio - tol
                tie = ratio < best_ratio + tol and (
                    best_row is None or self.basis[row] < self.basis[best_row]
                )
                if better or tie:
                    best_ratio = ratio
                    best_row = row
        return best_row

    def _pivot(self, entering: int, row: int, direction: np.ndarray) -> None:
        """Eta update of the basis inverse and the basic solution."""
        step = self.x_basic[row] / direction[row]
        self.x_basic -= step * direction
        self.x_basic[row] = step
        self.x_basic[np.abs(self.x_basic) < self.options.tol] = 0.0
        eta = -direction / direction[row]
        eta[row] = 1.0 / direction[row]
        pivot_row = self.basis_inverse[row].copy()
        self.basis_inverse += np.outer(eta, pivot_row)
        self.basis_inverse[row] = eta[row] * pivot_row
        self.basis[row] = entering
        self.pivots_since_refactor += 1
        if self.pivots_since_refactor >= self.options.refactor_every:
            self.refactor()

    def solution(self) -> np.ndarray:
        x = np.zeros(self.n, dtype=float)
        for row, basic in enumerate(self.basis):
            x[basic] = self.x_basic[row]
        return x


def solve_standard_form_revised(
    sf: StandardForm, options: RevisedSimplexOptions | None = None
) -> _TableauResult:
    """Two-phase revised simplex over a :class:`StandardForm`."""
    options = options or RevisedSimplexOptions()
    a, b, c = sf.a, sf.b, sf.c
    m, n = a.shape
    max_iterations = options.resolved_max_iterations(m, n)

    if m == 0:
        if np.any(c < -options.tol):
            return _TableauResult(SolveStatus.UNBOUNDED, np.zeros(n), np.nan, 0)
        return _TableauResult(SolveStatus.OPTIMAL, np.zeros(n), 0.0, 0)

    # Phase 1 over [A | I] with artificial costs.
    a_ext = np.hstack([a, np.eye(m)])
    costs1 = np.concatenate([np.zeros(n), np.ones(m)])
    core = _RevisedCore(a_ext, b, options)
    core.set_basis(list(range(n, n + m)))
    status, iterations = core.run(costs1, n + m, 0, max_iterations)
    if status is SolveStatus.ITERATION_LIMIT:
        return _TableauResult(status, np.zeros(n), np.nan, iterations)
    phase1_value = float(costs1[core.basis] @ core.x_basic)
    if phase1_value > 1e-7:
        return _TableauResult(SolveStatus.INFEASIBLE, np.zeros(n), np.nan, iterations)

    # Drive residual artificials out of the basis where possible.
    for row in range(m):
        if core.basis[row] < n:
            continue
        tableau_row = core.basis_inverse[row] @ a
        candidates = np.nonzero(np.abs(tableau_row) > options.tol)[0]
        if candidates.size:
            entering = int(candidates[0])
            direction = core.basis_inverse @ a_ext[:, entering]
            core._pivot(entering, row, direction)
            iterations += 1

    if any(basic >= n for basic in core.basis):
        # A redundant row pins an artificial in the basis at level zero.  The
        # eta updates keep it there harmlessly, but its cost must stay zero in
        # phase 2 — which it is, because phase-2 costs are only set for
        # structural columns.
        pass

    costs2 = np.concatenate([c, np.zeros(m)])
    status, iterations = core.run(costs2, n, iterations, max_iterations)
    if status is not SolveStatus.OPTIMAL:
        return _TableauResult(status, np.zeros(n), np.nan, iterations)
    x_ext = core.solution()
    y = x_ext[:n]
    objective = float(c @ y)
    return _TableauResult(SolveStatus.OPTIMAL, y, objective, iterations)


def solve_lp_revised_simplex(
    lp: LinearProgram, options: RevisedSimplexOptions | None = None
) -> LPSolution:
    """Solve a :class:`LinearProgram` with the revised simplex backend."""
    sf = to_standard_form(lp)
    result = solve_standard_form_revised(sf, options)
    if result.status is not SolveStatus.OPTIMAL:
        return LPSolution(
            status=result.status, iterations=result.iterations, backend="revised-simplex"
        )
    x = sf.recover_x(result.y)
    objective = sf.recover_objective(result.objective)
    return LPSolution(
        status=SolveStatus.OPTIMAL,
        objective_value=objective,
        x=x,
        iterations=result.iterations,
        backend="revised-simplex",
    )
