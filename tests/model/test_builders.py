"""Unit tests for the fluent InstanceBuilder."""

import pytest

from repro.model import (
    CosineInterest,
    InstanceBuilder,
    InstanceValidationError,
)


def _weekend_builder():
    return (
        InstanceBuilder(beta=0.6, name="weekend")
        .event(1, capacity=2, start=18.0, duration=2.0)
        .event(2, capacity=1, start=19.0, duration=2.0)
        .event(3, capacity=3, start=22.0, duration=1.0)
        .user(100, capacity=2, bids=[1, 2, 3])
        .user(101, capacity=1, bids=[2])
        .friends(100, 101)
        .interest(1, 100, 0.9)
        .interest(2, 100, 0.8)
        .interest(3, 100, 0.4)
        .interest(2, 101, 0.7)
    )


class TestBasicAssembly:
    def test_builds_valid_instance(self):
        instance = _weekend_builder().build()
        assert instance.num_events == 3
        assert instance.num_users == 2
        assert instance.beta == 0.6
        assert instance.name == "weekend"

    def test_temporal_conflicts_inferred(self):
        instance = _weekend_builder().build()
        assert instance.conflicts(1, 2)  # 18-20 overlaps 19-21
        assert not instance.conflicts(1, 3)  # 22-23 disjoint

    def test_interest_table(self):
        instance = _weekend_builder().build()
        assert instance.interest_of(1, 100) == pytest.approx(0.9)
        assert instance.interest_of(3, 101) == 0.0  # default

    def test_social_ties(self):
        instance = _weekend_builder().build()
        assert instance.degree(100) == pytest.approx(1.0)  # 1 tie / (2-1)

    def test_chaining_returns_builder(self):
        builder = InstanceBuilder()
        assert builder.event(1, capacity=1) is builder
        assert builder.user(2, capacity=1) is builder
        assert builder.interest(1, 2, 0.5) is builder


class TestConflictModes:
    def test_no_conflicts_when_untimed_and_undeclared(self):
        instance = (
            InstanceBuilder()
            .event(1, capacity=1)
            .event(2, capacity=1)
            .user(9, capacity=2, bids=[1, 2])
            .build()
        )
        assert not instance.conflicts(1, 2)

    def test_explicit_conflicts(self):
        instance = (
            InstanceBuilder()
            .event(1, capacity=1)
            .event(2, capacity=1)
            .user(9, capacity=2, bids=[1, 2])
            .conflict(1, 2)
            .build()
        )
        assert instance.conflicts(1, 2)

    def test_composite_time_plus_explicit(self):
        instance = (
            InstanceBuilder()
            .event(1, capacity=1, start=0.0, duration=2.0)
            .event(2, capacity=1, start=1.0, duration=2.0)
            .event(3, capacity=1, start=9.0, duration=1.0)
            .user(9, capacity=3, bids=[1, 2, 3])
            .conflict(1, 3)  # same venue, say
            .build()
        )
        assert instance.conflicts(1, 2)  # time overlap
        assert instance.conflicts(1, 3)  # declared
        assert not instance.conflicts(2, 3)


class TestInterestModes:
    def test_default_interest(self):
        instance = (
            InstanceBuilder()
            .event(1, capacity=1)
            .user(9, capacity=1, bids=[1])
            .default_interest(0.3)
            .build()
        )
        assert instance.interest_of(1, 9) == pytest.approx(0.3)

    def test_attribute_driven_interest(self):
        instance = (
            InstanceBuilder()
            .event(1, capacity=1, attributes=[1.0, 0.0])
            .user(9, capacity=1, bids=[1], attributes=[1.0, 0.0])
            .interest_function(CosineInterest())
            .build()
        )
        assert instance.interest_of(1, 9) == pytest.approx(1.0)


class TestGroupsAndValidation:
    def test_friend_group_builds_clique(self):
        instance = (
            InstanceBuilder()
            .user(1, capacity=1)
            .user(2, capacity=1)
            .user(3, capacity=1)
            .friend_group([1, 2, 3])
            .build()
        )
        assert instance.social.has_edge(1, 2)
        assert instance.social.has_edge(2, 3)
        assert instance.social.has_edge(1, 3)

    def test_dangling_bid_rejected_at_build(self):
        builder = InstanceBuilder().event(1, capacity=1).user(9, capacity=1, bids=[99])
        with pytest.raises(InstanceValidationError, match="unknown events"):
            builder.build()

    def test_tie_to_unknown_user_rejected_at_build(self):
        builder = InstanceBuilder().user(1, capacity=1).friends(1, 42)
        with pytest.raises(InstanceValidationError, match="non-user"):
            builder.build()

    def test_built_instance_is_solvable(self):
        from repro.core import ExactILP, GGGreedy

        instance = _weekend_builder().build()
        exact = ExactILP().solve(instance)
        greedy = GGGreedy().solve(instance)
        assert exact.arrangement.is_feasible()
        assert greedy.utility <= exact.utility + 1e-9
        # Hand check: 100 -> {1 or 2, 3} and 101 -> 2 when 100 takes 1.
        assert exact.utility > 0.0
