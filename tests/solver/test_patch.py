"""LP patches: swap-with-last journals, COO cache integrity, dispatch.

:func:`apply_lp_patch` edits a :class:`LinearProgram` in place — removals
swap with the last element, additions append — and keeps the primed COO
triplet cache in sync, so ``to_standard_form`` after a patch must agree
coefficient for coefficient with a program rebuilt from the patched row
dicts.  :class:`IncrementalLPSolver` then dispatches on the patch shape;
the mode strings are pinned here (the dual path has its own suite in
``test_dual_simplex.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.solver.api import solve_lp
from repro.solver.patch import (
    IncrementalLPSolver,
    LPPatch,
    PatchConstraint,
    PatchError,
    PatchVariable,
    apply_lp_patch,
)
from repro.solver.problem import LinearProgram, Sense
from repro.solver.result import SolveStatus
from repro.solver.standard_form import to_standard_form


def _lp() -> LinearProgram:
    lp = LinearProgram(name="patchable", maximize=True)
    a = lp.add_variable("a", objective=3.0)
    b = lp.add_variable("b", objective=2.0)
    c = lp.add_variable("c", objective=1.0)
    d = lp.add_variable("d", objective=4.0)
    lp.add_constraint({a: 1.0, b: 1.0}, Sense.LE, 4.0, name="r1")
    lp.add_constraint({b: 1.0, c: 1.0, d: 1.0}, Sense.LE, 3.0, name="r2")
    lp.add_constraint({a: 1.0, d: 2.0}, Sense.LE, 5.0, name="r3")
    return lp


def _clone_from_rows(lp: LinearProgram) -> LinearProgram:
    """Rebuild an identical program by re-walking the patched dicts —
    the ground truth the COO cache must match."""
    clone = LinearProgram(name="clone", maximize=lp.maximize)
    for variable in lp.variables:
        clone.add_variable(
            variable.name,
            lower=variable.lower,
            upper=variable.upper,
            objective=variable.objective,
            is_integer=variable.is_integer,
        )
    for constraint in lp.constraints:
        clone.add_constraint(
            dict(constraint.coefficients),
            constraint.sense,
            constraint.rhs,
            name=constraint.name,
        )
    return clone


def _dense(lp: LinearProgram) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    sf = to_standard_form(lp)
    matrix = sf.matrix().gather_dense(np.arange(sf.num_columns))
    return matrix, sf.b.copy(), sf.c.copy()


def test_remove_variable_swaps_with_last():
    lp = _lp()
    application = apply_lp_patch(lp, LPPatch(remove_variables=("b",)))
    # 'd' (last) moved into 'b''s slot 1.
    assert [v.name for v in lp.variables] == ["a", "d", "c"]
    assert application.variable_moves == [(1, 3)]
    assert application.variable_map.tolist() == [0, -1, 2, 1]
    assert application.structural
    # Rows reference the moved index, not the hole.
    assert lp.constraints[2].coefficients == {0: 1.0, 1: 2.0}
    # 'b' is gone from every row.
    assert lp.constraints[0].coefficients == {0: 1.0}


def test_remove_constraint_swaps_with_last():
    lp = _lp()
    application = apply_lp_patch(lp, LPPatch(remove_constraints=("r1",)))
    assert [c.name for c in lp.constraints] == ["r3", "r2"]
    assert application.constraint_moves == [(0, 2)]
    assert application.constraint_map.tolist() == [-1, 1, 0]


def test_add_variable_and_constraint_append():
    lp = _lp()
    application = apply_lp_patch(
        lp,
        LPPatch(
            add_constraints=(PatchConstraint("r4", Sense.LE, 2.0),),
            add_variables=(
                PatchVariable(
                    name="e",
                    objective=6.0,
                    coefficients=(("r1", 1.0), ("r4", 1.0)),
                ),
            ),
        ),
    )
    assert application.added_variables == [4]
    assert application.added_constraints == [3]
    assert lp.variables[4].name == "e"
    assert lp.constraints[3].coefficients == {4: 1.0}
    assert lp.constraints[0].coefficients[4] == 1.0


def test_rhs_and_objective_edits_are_non_structural():
    lp = _lp()
    application = apply_lp_patch(
        lp, LPPatch(set_rhs=(("r2", 9.0),), set_objective=(("c", 7.0),))
    )
    assert not application.structural
    assert not application.rhs_only
    assert not application.objective_only
    assert lp.constraints[1].rhs == 9.0
    assert lp.variables[2].objective == 7.0
    rhs_only = apply_lp_patch(lp, LPPatch(set_rhs=(("r1", 1.0),)))
    assert rhs_only.rhs_only and not rhs_only.structural


def test_unknown_names_raise_patch_error():
    lp = _lp()
    with pytest.raises(PatchError):
        apply_lp_patch(lp, LPPatch(remove_variables=("zz",)))
    with pytest.raises(PatchError):
        apply_lp_patch(lp, LPPatch(set_rhs=(("nope", 1.0),)))
    with pytest.raises(PatchError):
        apply_lp_patch(
            lp,
            LPPatch(
                add_variables=(
                    PatchVariable(
                        name="e", objective=0.0, coefficients=(("nope", 1.0),)
                    ),
                )
            ),
        )


def test_coo_cache_matches_row_dicts_after_patches():
    lp = _lp()
    # Prime the COO cache the way the benchmark builder does.
    sf0 = to_standard_form(lp)
    assert sf0.num_columns > 0
    apply_lp_patch(
        lp,
        LPPatch(
            remove_variables=("b",),
            remove_constraints=("r1",),
            add_constraints=(PatchConstraint("r4", Sense.LE, 2.0),),
            add_variables=(
                PatchVariable(
                    name="e",
                    objective=6.0,
                    coefficients=(("r2", 1.0), ("r4", 1.0)),
                ),
            ),
            set_rhs=(("r3", 7.0),),
            set_objective=(("a", 5.0),),
        ),
    )
    matrix, b, c = _dense(lp)
    clone_matrix, clone_b, clone_c = _dense(_clone_from_rows(lp))
    np.testing.assert_array_equal(matrix, clone_matrix)
    np.testing.assert_array_equal(b, clone_b)
    np.testing.assert_array_equal(c, clone_c)


def test_dispatch_modes_and_optima():
    lp = _lp()
    solver = IncrementalLPSolver(lp)
    first = solver.solve()
    assert first.status is SolveStatus.OPTIMAL
    assert first.diagnostics["mode"] == "initial"

    solver.apply_patch(LPPatch(set_objective=(("c", 10.0),)))
    objective_only = solver.solve()
    assert objective_only.diagnostics["mode"] == "objective_primal"
    assert objective_only.diagnostics["refactorizations"] == 0
    assert objective_only.objective_value == pytest.approx(
        solve_lp(lp, backend="revised-simplex").objective_value, abs=1e-9
    )

    solver.apply_patch(
        LPPatch(
            add_variables=(
                PatchVariable(
                    name="e",
                    objective=9.0,
                    coefficients=(("r1", 1.0), ("r2", 1.0)),
                ),
            )
        )
    )
    structural = solver.solve()
    assert structural.diagnostics["mode"] == "structural_warm"
    assert not structural.diagnostics["phase1"]
    assert structural.objective_value == pytest.approx(
        solve_lp(lp, backend="revised-simplex").objective_value, abs=1e-9
    )

    # Mixed rhs+objective: non-structural, but not a single-shape fast path
    # either — re-runs primal from the kept basis without a rebuild.
    solver.apply_patch(
        LPPatch(set_rhs=(("r3", 2.0),), set_objective=(("a", 1.0),))
    )
    mixed = solver.solve()
    assert mixed.diagnostics["mode"].startswith("structural")
    assert mixed.objective_value == pytest.approx(
        solve_lp(lp, backend="revised-simplex").objective_value, abs=1e-9
    )


def test_eager_patch_then_solve_keeps_fast_dispatch():
    # apply_patch called eagerly (for the move journal) must not forfeit
    # the RHS fast path at the next solve().
    lp = _lp()
    solver = IncrementalLPSolver(lp)
    assert solver.solve().status is SolveStatus.OPTIMAL
    application = solver.apply_patch(LPPatch(set_rhs=(("r1", 1.0),)))
    assert application.rhs_only
    patched = solver.solve()
    assert patched.diagnostics["mode"] == "rhs_dual"
    assert patched.objective_value == pytest.approx(
        solve_lp(lp, backend="revised-simplex").objective_value, abs=1e-9
    )
