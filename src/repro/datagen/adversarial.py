"""Adversarial / stress workloads for the algorithms and the solver stack.

The paper's generators produce benign instances (the benchmark LP is
usually integral on them; see EXPERIMENTS.md).  These constructions target
the places where algorithms can actually lose:

* :func:`integrality_gap_instance` — an instance whose benchmark-LP optimum
  is *strictly above* the ILP optimum, so LP-packing must genuinely round
  (with additive weights such gaps need interacting conflicts and tight
  capacities; benign random instances are almost always integral);
* :func:`hotspot` — one high-demand event plus filler, maximal repair
  pressure on Algorithm 1 lines 4-7;
* :func:`conflict_clique` — every pair of events conflicts, collapsing all
  admissible sets to singletons (greedy-friendly; LP overhead is pure cost);
* :func:`greedy_trap` — instances where GG's myopic first pick provably
  costs utility but the LP sees the global optimum.

Used by stress tests and the ``stress`` bench; also handy as hard unit-test
fixtures for new algorithms.
"""

from __future__ import annotations

import numpy as np

from repro.model.conflicts import AlwaysConflict, MatrixConflict
from repro.model.entities import Event, User
from repro.model.instance import IGEPAInstance
from repro.model.interest import TabulatedInterest
from repro.social.generators import empty_graph


def small_tight_instance(
    seed: int,
    num_events: int = 5,
    num_users: int = 8,
    max_event_capacity: int = 2,
    max_user_capacity: int = 3,
    conflict_probability: float = 0.5,
    max_bids: int = 5,
) -> IGEPAInstance:
    """A small instance with tight capacities and dense conflicts.

    This is the regime where the benchmark LP develops fractional vertices
    and (for some seeds) a genuine integrality gap; the synthetic Table I
    regime almost never does.  Degrees are zero (β is effectively 1).
    """
    rng = np.random.default_rng(seed)
    event_ids = list(range(num_events))
    events = [
        Event(event_id=e, capacity=int(rng.integers(1, max_event_capacity + 1)))
        for e in event_ids
    ]
    users = []
    interest: dict[tuple[int, int], float] = {}
    for user_id in range(100, 100 + num_users):
        count = int(rng.integers(1, max_bids + 1))
        bids = tuple(
            int(b)
            for b in rng.choice(event_ids, size=min(count, num_events), replace=False)
        )
        users.append(
            User(
                user_id=user_id,
                capacity=int(rng.integers(1, max_user_capacity + 1)),
                bids=bids,
            )
        )
        for event_id in bids:
            interest[(event_id, user_id)] = float(rng.uniform())
    conflict = MatrixConflict.sample(event_ids, conflict_probability, rng)
    return IGEPAInstance(
        events=events,
        users=users,
        conflict=conflict,
        interest=TabulatedInterest(interest),
        social=empty_graph([user.user_id for user in users]),
        beta=1.0,
        name=f"small-tight({seed})",
    )


#: Seeds of :func:`small_tight_instance` whose LP optimum strictly exceeds
#: the ILP optimum (found by scripted search over 400 seeds; the largest gap
#: is ~1.7% at seed 90).  Asserted in tests.
INTEGRALITY_GAP_SEEDS = (90, 114, 134)


def integrality_gap_instance(rank: int = 0) -> IGEPAInstance:
    """An instance with a strict benchmark-LP integrality gap.

    Args:
        rank: index into :data:`INTEGRALITY_GAP_SEEDS` (0 = seed 90, the
            largest known gap at ~1.7%).
    """
    return small_tight_instance(INTEGRALITY_GAP_SEEDS[rank])


def hotspot(
    num_users: int = 100,
    hotspot_capacity: int = 5,
    num_filler_events: int = 4,
    seed: int | None = None,
) -> IGEPAInstance:
    """Everyone wants into one tiny event; filler events absorb the rest.

    Maximizes oversubscription after sampling, so the repair step drops
    most hotspot pairs.  The interesting question for LP-packing is whether
    the LP routes the surplus users to filler events rather than wasting
    their sampled slots — compare against Random-U, which wastes them.
    """
    rng = np.random.default_rng(seed)
    hotspot_id = 0
    events = [Event(event_id=hotspot_id, capacity=hotspot_capacity)]
    events += [
        Event(event_id=1 + j, capacity=num_users) for j in range(num_filler_events)
    ]
    users = []
    interest: dict[tuple[int, int], float] = {}
    for user_id in range(num_users):
        filler = 1 + int(rng.integers(num_filler_events)) if num_filler_events else None
        bids = (hotspot_id,) if filler is None else (hotspot_id, filler)
        users.append(User(user_id=user_id, capacity=1, bids=bids))
        interest[(hotspot_id, user_id)] = 1.0
        if filler is not None:
            interest[(filler, user_id)] = float(rng.uniform(0.3, 0.6))
    return IGEPAInstance(
        events=events,
        users=users,
        conflict=MatrixConflict([]),
        interest=TabulatedInterest(interest),
        social=empty_graph(list(range(num_users))),
        beta=1.0,
        name=f"hotspot({num_users}u/{hotspot_capacity}cap)",
    )


def conflict_clique(
    num_events: int = 10, num_users: int = 50, seed: int | None = None
) -> IGEPAInstance:
    """All events pairwise conflict: each user can attend at most one.

    Admissible sets degenerate to singletons, so the benchmark LP is a
    plain bipartite b-matching — a regime where GG is provably 1/2-optimal
    and empirically near-perfect.  Useful as a "no LP advantage" control.
    """
    rng = np.random.default_rng(seed)
    events = [
        Event(event_id=e, capacity=int(rng.integers(2, 6)))
        for e in range(num_events)
    ]
    users = []
    interest: dict[tuple[int, int], float] = {}
    for user_id in range(num_users):
        count = int(rng.integers(2, min(5, num_events) + 1))
        bids = tuple(
            int(b) for b in rng.choice(num_events, size=count, replace=False)
        )
        users.append(User(user_id=user_id, capacity=3, bids=bids))
        for event_id in bids:
            interest[(event_id, user_id)] = float(rng.uniform())
    return IGEPAInstance(
        events=events,
        users=users,
        conflict=AlwaysConflict(),
        interest=TabulatedInterest(interest),
        social=empty_graph(list(range(num_users))),
        beta=1.0,
        name=f"conflict-clique({num_events}v/{num_users}u)",
    )


def greedy_trap(num_copies: int = 5) -> IGEPAInstance:
    """GG's first pick blocks the optimum; the LP sees through it.

    Per copy: events A and B, both capacity 1, conflicting.  User x bids
    both with SI(A) = 0.6 and SI(B) = 0.55; user y bids only A with
    SI(A) = 0.5.  GG takes its heaviest pair (A, x) = 0.6, which fills A
    and exhausts x — nothing else fits, so GG scores 0.6 per copy.  The
    optimum assigns (B, x) + (A, y) = 1.05 per copy, and the benchmark
    LP/ILP find exactly that.  Copies are disjoint, so the ratio stays
    0.6 / 1.05 ≈ 0.57 at any scale.
    """
    events: list[Event] = []
    users: list[User] = []
    interest: dict[tuple[int, int], float] = {}
    conflicts: list[tuple[int, int]] = []
    for copy in range(num_copies):
        a, b = 2 * copy, 2 * copy + 1
        events.append(Event(event_id=a, capacity=1))
        events.append(Event(event_id=b, capacity=1))
        conflicts.append((a, b))
        x = 100 + 2 * copy
        y = 101 + 2 * copy
        users.append(User(user_id=x, capacity=1, bids=(a, b)))
        users.append(User(user_id=y, capacity=1, bids=(a,)))
        interest[(a, x)] = 0.6
        interest[(b, x)] = 0.55
        interest[(a, y)] = 0.5
    return IGEPAInstance(
        events=events,
        users=users,
        conflict=MatrixConflict(conflicts),
        interest=TabulatedInterest(interest),
        social=empty_graph([user.user_id for user in users]),
        beta=1.0,
        name=f"greedy-trap(x{num_copies})",
    )
