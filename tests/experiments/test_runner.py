"""Unit tests for the repetition runner."""

import pytest

from repro.core import GGGreedy, LPPacking, RandomU
from repro.experiments import (
    AlgorithmStats,
    default_algorithms,
    run_on_instance,
    run_repetitions,
)
from tests.util import random_instance


class TestDefaultAlgorithms:
    def test_paper_set(self):
        names = [a.name for a in default_algorithms()]
        assert names == ["lp-packing", "random-u", "random-v", "gg"]

    def test_lp_packing_uses_alpha_one(self):
        lp = default_algorithms()[0]
        assert lp.alpha == 1.0


class TestRunRepetitions:
    def test_each_algorithm_gets_all_repetitions(self):
        stats = run_repetitions(
            lambda seed: random_instance(seed=seed),
            algorithms=[GGGreedy(), RandomU()],
            repetitions=4,
        )
        assert set(stats) == {"gg", "random-u"}
        for record in stats.values():
            assert len(record.utilities) == 4
            assert len(record.runtimes) == 4
            assert len(record.pair_counts) == 4

    def test_fresh_instances_per_repetition(self):
        seen = []
        def factory(seed):
            seen.append(seed)
            return random_instance(seed=seed)

        run_repetitions(factory, algorithms=[GGGreedy()], repetitions=3, base_seed=10)
        assert seen == [10, 11, 12]

    def test_reproducible(self):
        def factory(seed):
            return random_instance(seed=seed)

        first = run_repetitions(factory, algorithms=[LPPacking()], repetitions=3)
        second = run_repetitions(factory, algorithms=[LPPacking()], repetitions=3)
        assert first["lp-packing"].utilities == second["lp-packing"].utilities

    def test_default_algorithm_list_used_when_omitted(self):
        stats = run_repetitions(
            lambda seed: random_instance(seed=seed), repetitions=1
        )
        assert set(stats) == {"lp-packing", "random-u", "random-v", "gg"}


class TestRunOnInstance:
    def test_fixed_instance_varies_only_algorithm_seed(self):
        instance = random_instance(seed=0, num_users=20, num_events=8)
        stats = run_on_instance(
            instance, algorithms=[RandomU()], repetitions=5, base_seed=0
        )
        record = stats["random-u"]
        assert len(record.utilities) == 5
        # Random baseline on a fixed instance should show some variance.
        assert record.std_utility > 0.0

    def test_deterministic_algorithm_has_zero_variance(self):
        instance = random_instance(seed=0)
        stats = run_on_instance(instance, algorithms=[GGGreedy()], repetitions=3)
        assert stats["gg"].std_utility == 0.0


class TestAlgorithmStats:
    def test_aggregates(self):
        stats = AlgorithmStats(
            "x", utilities=[1.0, 2.0, 3.0], runtimes=[0.1, 0.2, 0.3],
            pair_counts=[5, 6, 7],
        )
        assert stats.mean_utility == pytest.approx(2.0)
        assert stats.std_utility == pytest.approx(0.8164965809)
        assert stats.mean_runtime == pytest.approx(0.2)
        assert stats.mean_pairs == pytest.approx(6.0)

    def test_empty_stats_are_zero(self):
        stats = AlgorithmStats("x")
        assert stats.mean_utility == 0.0
        assert stats.std_utility == 0.0
        assert stats.mean_runtime == 0.0
        assert stats.mean_pairs == 0.0
