"""Array-backed instance index: the vectorized view of an IGEPA instance.

Every derived quantity of Definitions 6-8 — ``D(G, u)``, ``SI``, ``w(u, v)``,
σ, bidder sets — used to live in per-pair dict caches, which forces nested
Python loops onto every algorithm.  :class:`InstanceIndex` materializes them
once per :class:`~repro.model.instance.IGEPAInstance` as contiguous NumPy
arrays so the layers above (arrangements, baselines, local search, LP
construction) can batch their hot paths:

* ``user_ids`` / ``event_ids`` and the inverse ``user_pos`` / ``event_pos``
  maps — the contiguous coordinate system everything else is expressed in;
* ``W`` — the dense ``(num_users, num_events)`` weight matrix
  ``β·SI + (1-β)·D`` on bid pairs (0 elsewhere, see ``bid_mask``);
* ``SI`` — the matching interest matrix (0 off the bid pairs);
* ``bid_indptr`` / ``bid_indices`` / ``bid_weights`` — a CSR-style incidence
  of the bid relation by user, in each user's bid-list order;
* ``bidder_indptr`` / ``bidder_indices`` — the transposed incidence by event,
  in instance user order (matching ``IGEPAInstance.bidders``);
* ``conflict_matrix`` — boolean σ over event positions (zero diagonal);
* ``degrees``, ``user_capacity``, ``event_capacity`` — per-entity vectors.

The index is *read-only by convention*: instances are immutable, so the index
is built lazily once (``IGEPAInstance.index``) and shared by every
arrangement and algorithm run on the instance.  The one sanctioned way to
produce a *different* index is :func:`repro.model.delta.apply_delta`, which
derives the successor instance's index from this one by patching the arrays
(delta maintenance) instead of rebuilding; :meth:`InstanceIndex.from_components`
is the constructor it uses, and :meth:`_finalize` keeps the derived arrays
(``W``, ``bid_weights``, bidder incidence) bit-identical between the
from-scratch and the patched build because both run the same expressions.

Values are bit-identical to the scalar accessors they back: the same interest
function calls, the same degree normalisation, the same IEEE-754 double
arithmetic — so routing an algorithm through the index cannot change its
decisions under a fixed seed.

Memory is ``O(|U|·|V|)`` for the dense matrices — a few megabytes at the
benchmark scales (4000 × 200).  Workloads beyond ~10⁷ cells should shard the
user dimension before indexing; the CSR arrays stay proportional to the bid
count either way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.model.errors import InstanceValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.model.entities import Event, User
    from repro.model.instance import IGEPAInstance


def build_degrees(instance: "IGEPAInstance") -> np.ndarray:
    """``D(G, u)`` per user position (Definition 6).

    The single implementation of the degree vector — used by the
    from-scratch index build and by delta maintenance
    (:mod:`repro.model.delta`) whenever a churn batch changes the user set
    or the overrides, so the two can never drift apart.
    """
    num_users = len(instance.users)
    degrees = np.zeros(num_users, dtype=np.float64)
    if instance.degrees_override is not None:
        override = instance.degrees_override
        for i, user in enumerate(instance.users):
            degrees[i] = override.get(user.user_id, 0.0)
    elif num_users > 1:
        social = instance.social
        norm = num_users - 1
        for i, user in enumerate(instance.users):
            if social.has_node(user.user_id):
                degrees[i] = social.degree(user.user_id) / norm
    return degrees


def validated_interest(interest_fn, event: "Event", user: "User") -> float:
    """Evaluate SI on one pair, enforcing Definition 5's ``[0, 1]`` range.

    The single range check used by the index build and by delta maintenance,
    so both paths reject bad interest functions with the same error.
    """
    value = interest_fn(event, user)
    if not 0.0 <= value <= 1.0:
        raise InstanceValidationError(
            f"interest function returned {value} for event "
            f"{event.event_id}, user {user.user_id}; Definition 5 "
            "requires [0, 1]"
        )
    return value


class InstanceIndex:
    """Contiguous array views over one :class:`IGEPAInstance` (see module doc)."""

    def __init__(self, instance: "IGEPAInstance"):
        self.instance = instance
        users = instance.users
        events = instance.events
        num_users = len(users)
        num_events = len(events)

        self.user_ids = np.fromiter(
            (u.user_id for u in users), dtype=np.int64, count=num_users
        )
        self.event_ids = np.fromiter(
            (e.event_id for e in events), dtype=np.int64, count=num_events
        )
        self.user_pos: dict[int, int] = {
            u.user_id: i for i, u in enumerate(users)
        }
        self.event_pos: dict[int, int] = {
            e.event_id: j for j, e in enumerate(events)
        }

        self.user_capacity = np.fromiter(
            (u.capacity for u in users), dtype=np.int64, count=num_users
        )
        self.event_capacity = np.fromiter(
            (e.capacity for e in events), dtype=np.int64, count=num_events
        )

        self.degrees = self._build_degrees()
        self.conflict_matrix = instance.conflict.matrix(events)

        (
            self.bid_indptr,
            self.bid_indices,
            self.SI,
            self.bid_mask,
        ) = self._build_bid_incidence()

        self._finalize()

    @classmethod
    def from_components(
        cls,
        instance: "IGEPAInstance",
        *,
        user_ids: np.ndarray,
        event_ids: np.ndarray,
        user_capacity: np.ndarray,
        event_capacity: np.ndarray,
        degrees: np.ndarray,
        conflict_matrix: np.ndarray,
        bid_indptr: np.ndarray,
        bid_indices: np.ndarray,
        SI: np.ndarray,
        bid_mask: np.ndarray,
    ) -> "InstanceIndex":
        """Assemble an index from already-built primary arrays.

        Used by :func:`repro.model.delta.apply_delta` to attach a
        delta-patched index to a successor instance without the from-scratch
        interest/conflict/degree loops.  The caller must supply arrays whose
        values equal what ``InstanceIndex(instance)`` would compute; every
        *derived* array is then produced by the same :meth:`_finalize` code
        path the regular constructor runs, so they match bit for bit.
        """
        index = cls.__new__(cls)
        index.instance = instance
        index.user_ids = user_ids
        index.event_ids = event_ids
        index.user_pos = {int(u): i for i, u in enumerate(user_ids.tolist())}
        index.event_pos = {int(e): j for j, e in enumerate(event_ids.tolist())}
        index.user_capacity = user_capacity
        index.event_capacity = event_capacity
        index.degrees = degrees
        index.conflict_matrix = conflict_matrix
        index.bid_indptr = bid_indptr
        index.bid_indices = bid_indices
        index.SI = SI
        index.bid_mask = bid_mask
        index._finalize()
        return index

    def _finalize(self) -> None:
        """Derive the secondary arrays from the primary ones.

        Shared by the from-scratch constructor and :meth:`from_components`;
        the expressions here define the bit patterns of ``W``,
        ``bid_weights`` and the bidder incidence, so any two indexes with
        equal primary arrays have equal derived arrays.
        """
        num_users = self.user_ids.size
        # float32 copy for the BLAS-backed bulk conflict audit.
        self.conflict_f32 = self.conflict_matrix.astype(np.float32)
        beta = self.instance.beta
        self.W = np.where(
            self.bid_mask, beta * self.SI + (1.0 - beta) * self.degrees[:, None], 0.0
        )
        #: Row expansion of the CSR: the user position of each bid pair,
        #: aligned with ``bid_indices``.
        self.bid_user_positions = np.repeat(
            np.arange(num_users, dtype=np.int64), np.diff(self.bid_indptr)
        )
        #: CSR values aligned with ``bid_indices``: ``w(u, v)`` per bid pair.
        self.bid_weights = (
            self.W[self.bid_user_positions, self.bid_indices]
            if self.bid_indices.size
            else np.empty(0, dtype=np.float64)
        )

        self.bidder_indptr, self.bidder_indices = self._build_bidder_incidence()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_degrees(self) -> np.ndarray:
        """``D(G, u)`` per user position (Definition 6)."""
        return build_degrees(self.instance)

    def _build_bid_incidence(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """CSR bid incidence plus the dense SI matrix over bid pairs.

        Interest values are validated against Definition 5 exactly as the
        scalar ``IGEPAInstance.interest_of`` does.
        """
        instance = self.instance
        num_users = len(instance.users)
        num_events = len(instance.events)
        interest = instance.interest.interest
        event_pos = self.event_pos
        events_by_pos = instance.events

        indptr = np.zeros(num_users + 1, dtype=np.int64)
        indices: list[int] = []
        si = np.zeros((num_users, num_events), dtype=np.float64)
        bid_mask = np.zeros((num_users, num_events), dtype=bool)
        for i, user in enumerate(instance.users):
            for event_id in user.bids:
                j = event_pos[event_id]
                si[i, j] = validated_interest(interest, events_by_pos[j], user)
                bid_mask[i, j] = True
                indices.append(j)
            indptr[i + 1] = len(indices)
        return (
            indptr,
            np.asarray(indices, dtype=np.int64),
            si,
            bid_mask,
        )

    def _build_bidder_incidence(self) -> tuple[np.ndarray, np.ndarray]:
        """Transpose of the bid incidence: user positions per event.

        Users appear in instance order within each event — the same order
        ``IGEPAInstance.bidders`` has always returned.
        """
        num_events = len(self.instance.events)
        if self.bid_indices.size == 0:
            return np.zeros(num_events + 1, dtype=np.int64), np.empty(
                0, dtype=np.int64
            )
        counts = np.bincount(self.bid_indices, minlength=num_events)
        indptr = np.zeros(num_events + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        user_of_bid = np.repeat(
            np.arange(len(self.instance.users), dtype=np.int64),
            np.diff(self.bid_indptr),
        )
        # Stable sort by event position keeps users in instance order.
        order = np.argsort(self.bid_indices, kind="stable")
        return indptr, user_of_bid[order]

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        return self.user_ids.size

    @property
    def num_events(self) -> int:
        return self.event_ids.size

    @property
    def num_bids(self) -> int:
        return self.bid_indices.size

    # ------------------------------------------------------------------
    # Row / slice accessors
    # ------------------------------------------------------------------
    def user_bid_positions(self, upos: int) -> np.ndarray:
        """Event positions of the user's bids, in bid-list order."""
        return self.bid_indices[self.bid_indptr[upos] : self.bid_indptr[upos + 1]]

    def user_bid_weights(self, upos: int) -> np.ndarray:
        """``w(u, v)`` aligned with :meth:`user_bid_positions`."""
        return self.bid_weights[self.bid_indptr[upos] : self.bid_indptr[upos + 1]]

    def event_bidder_positions(self, vpos: int) -> np.ndarray:
        """User positions of the event's bidders, in instance user order."""
        return self.bidder_indices[
            self.bidder_indptr[vpos] : self.bidder_indptr[vpos + 1]
        ]

    def user_weight_by_event_id(self, upos: int) -> dict[int, float]:
        """``{event_id: w(u, v)}`` over the user's bids.

        Handy for summing ``w(u, S)`` over admissible sets with the exact
        left-to-right float semantics of the scalar code path.
        """
        positions = self.user_bid_positions(upos)
        weights = self.user_bid_weights(upos)
        return dict(
            zip(self.event_ids[positions].tolist(), weights.tolist())
        )

    def conflict_pair_count(self) -> int:
        """Number of unordered conflicting event pairs."""
        if self.num_events < 2:
            return 0
        return int(np.count_nonzero(np.triu(self.conflict_matrix, k=1)))

    def __repr__(self) -> str:
        return (
            f"InstanceIndex(users={self.num_users}, events={self.num_events}, "
            f"bids={self.num_bids})"
        )
