"""Ablation: LP solver backends on the benchmark LP (1)-(4).

The paper used Gurobi; this repository ships a from-scratch tableau simplex,
a revised simplex (wide-LP friendly) and a scipy/HiGHS backend.  The bench
solves the same benchmark LP with each backend, asserts they agree to 1e-6,
and reports wall-clock and iteration counts — the evidence behind the
``auto`` backend policy (scipy when available, else revised simplex).
"""

import time

from benchmarks.conftest import BENCH_SEED, write_report
from repro.core import build_benchmark_lp
from repro.datagen import SyntheticConfig, generate_synthetic
from repro.solver import scipy_available, solve_lp

#: Sized so the dense tableau stays in memory: ~60 users yield a few hundred
#: LP columns.  Production sweeps use HiGHS on tens of thousands of columns.
CONFIG = SyntheticConfig(num_events=25, num_users=60)

BACKENDS = ["simplex", "revised-simplex"] + (["scipy"] if scipy_available() else [])


def _run_ablation():
    instance = generate_synthetic(CONFIG, seed=BENCH_SEED)
    benchmark = build_benchmark_lp(instance)
    rows = []
    for backend in BACKENDS:
        started = time.perf_counter()
        solution = solve_lp(benchmark.lp, backend=backend)
        elapsed = time.perf_counter() - started
        assert solution.is_optimal, f"{backend} failed: {solution.status}"
        rows.append(
            (backend, solution.objective_value, solution.iterations, elapsed)
        )
    return benchmark.lp.num_variables, benchmark.lp.num_constraints, rows


def bench_ablation_solver(bench_once):
    num_vars, num_cons, rows = bench_once(_run_ablation)

    objectives = [objective for _b, objective, _i, _t in rows]
    assert max(objectives) - min(objectives) < 1e-6, (
        f"backends disagree: {objectives}"
    )

    lines = [
        f"Ablation: LP backends on the benchmark LP "
        f"({num_vars} variables, {num_cons} constraints)",
        f"{'backend':>16} {'objective':>12} {'iterations':>11} {'time':>10}",
    ]
    for backend, objective, iterations, elapsed in rows:
        lines.append(
            f"{backend:>16} {objective:>12.6f} {iterations:>11} "
            f"{elapsed * 1e3:>8.1f}ms"
        )
    lines.append("paper used Gurobi; all backends return the same optimum.")
    write_report("ablation_solver", "\n".join(lines))
