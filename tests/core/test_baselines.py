"""Unit tests for the Random-U, Random-V and GG baselines."""

import numpy as np
import pytest

from repro.core import GGGreedy, RandomU, RandomV
from repro.model import Event, IGEPAInstance, MatrixConflict, TabulatedInterest, User
from repro.social import Graph
from tests.util import random_instance, tiny_instance

ALGORITHMS = [
    pytest.param(RandomU, id="random-u"),
    pytest.param(RandomV, id="random-v"),
    pytest.param(GGGreedy, id="gg"),
]


@pytest.fixture(params=ALGORITHMS)
def algorithm_class(request):
    return request.param


class TestFeasibility:
    @pytest.mark.parametrize("seed", range(5))
    def test_always_feasible(self, algorithm_class, seed):
        instance = random_instance(seed=seed, conflict_probability=0.5)
        result = algorithm_class().solve(instance, seed=seed)
        assert result.arrangement.is_feasible()

    def test_empty_instance(self, algorithm_class):
        instance = IGEPAInstance(
            [], [], MatrixConflict([]), TabulatedInterest({}), Graph()
        )
        result = algorithm_class().solve(instance)
        assert result.num_pairs == 0
        assert result.utility == 0.0

    def test_zero_capacity_event_gets_nobody(self, algorithm_class):
        events = [Event(event_id=1, capacity=0), Event(event_id=2, capacity=2)]
        users = [User(user_id=1, capacity=2, bids=(1, 2))]
        instance = IGEPAInstance(
            events,
            users,
            MatrixConflict([]),
            TabulatedInterest({(1, 1): 0.9, (2, 1): 0.1}),
            Graph(nodes=[1]),
        )
        result = algorithm_class().solve(instance, seed=0)
        assert all(event_id != 1 for event_id, _ in result.pairs)


class TestDeterminismAndRandomness:
    def test_seeded_runs_reproduce(self, algorithm_class):
        instance = random_instance(seed=4)
        first = algorithm_class().solve(instance, seed=11)
        second = algorithm_class().solve(instance, seed=11)
        assert first.pairs == second.pairs

    def test_random_baselines_vary_with_seed(self):
        instance = random_instance(seed=4, num_users=20, num_events=8)
        for cls in (RandomU, RandomV):
            outcomes = {
                frozenset(cls().solve(instance, seed=s).pairs) for s in range(10)
            }
            assert len(outcomes) > 1, cls.name

    def test_gg_is_seed_independent(self):
        instance = random_instance(seed=4)
        results = {
            frozenset(GGGreedy().solve(instance, seed=s).pairs) for s in range(5)
        }
        assert len(results) == 1


class TestGreedyBehaviour:
    def test_gg_takes_heaviest_pair_first(self):
        events = [Event(event_id=1, capacity=1)]
        users = [
            User(user_id=1, capacity=1, bids=(1,)),
            User(user_id=2, capacity=1, bids=(1,)),
        ]
        instance = IGEPAInstance(
            events,
            users,
            MatrixConflict([]),
            TabulatedInterest({(1, 1): 0.3, (1, 2): 0.9}),
            Graph(nodes=[1, 2]),
        )
        result = GGGreedy().solve(instance)
        assert result.pairs == {(1, 2)}

    def test_gg_weight_includes_interaction_term(self):
        """With β = 0, GG must prefer the socially active user."""
        events = [Event(event_id=1, capacity=1)]
        users = [
            User(user_id=1, capacity=1, bids=(1,)),
            User(user_id=2, capacity=1, bids=(1,)),
            User(user_id=3, capacity=1, bids=()),
        ]
        social = Graph(nodes=[1, 2, 3], edges=[(2, 3)])
        instance = IGEPAInstance(
            events,
            users,
            MatrixConflict([]),
            TabulatedInterest({(1, 1): 1.0, (1, 2): 0.0}),
            social,
            beta=0.0,
        )
        result = GGGreedy().solve(instance)
        assert result.pairs == {(1, 2)}  # user 2 has degree, interest ignored

    def test_gg_respects_conflicts(self):
        events = [Event(event_id=1, capacity=1), Event(event_id=2, capacity=1)]
        users = [User(user_id=1, capacity=2, bids=(1, 2))]
        instance = IGEPAInstance(
            events,
            users,
            MatrixConflict([(1, 2)]),
            TabulatedInterest({(1, 1): 0.9, (2, 1): 0.8}),
            Graph(nodes=[1]),
        )
        result = GGGreedy().solve(instance)
        assert result.pairs == {(1, 1)}  # takes the heavier, blocks the other

    def test_gg_on_tiny_instance_is_strong(self):
        """GG should reach at least the utility of any single-pass baseline."""
        instance = tiny_instance()
        gg = GGGreedy().solve(instance).utility
        ru = np.mean([RandomU().solve(instance, seed=s).utility for s in range(20)])
        rv = np.mean([RandomV().solve(instance, seed=s).utility for s in range(20)])
        assert gg >= ru - 1e-9
        assert gg >= rv - 1e-9


class TestMaximality:
    """All three baselines produce maximal arrangements: no feasible pair
    can still be added afterwards."""

    @pytest.mark.parametrize("seed", range(3))
    def test_maximal(self, algorithm_class, seed):
        instance = random_instance(seed=seed)
        result = algorithm_class().solve(instance, seed=seed)
        arrangement = result.arrangement
        for user in instance.users:
            for event_id in user.bids:
                if (event_id, user.user_id) not in arrangement.pairs:
                    assert not arrangement.can_add(event_id, user.user_id), (
                        f"{algorithm_class.name} left addable pair "
                        f"({event_id}, {user.user_id})"
                    )
