"""Synthetic IGEPA workloads (§IV "Synthetic Datasets", Table I).

The generator follows the paper's recipe exactly:

* capacities of events and users ~ uniform over ``{1, ..., max}``;
* every pair of events conflicts independently with probability ``p_cf``;
* every pair of users is befriended independently with probability ``p_deg``;
* interest values of users in (bid) events ~ uniform on [0, 1];
* **dependent bids**: "users tend to bid a group of similar and often
  conflicting events to ensure that they can eventually attend some (one or
  multiple) of the events.  So the bids of users are sampled dependently from
  several sets of conflicting events."  Each user picks a *conflict cluster*
  (an event plus events conflicting with it) and draws most bids inside it,
  topping up with uniform events.

Defaults are Table I: ``|V| = 200, |U| = 2000, max c_v = 50, max c_u = 4,
p_cf = 0.3, p_deg = 0.5``.

For large user counts the social network is not materialized; user degrees
are drawn from the exact ``Binomial(|U| - 1, p_deg)`` marginal instead (the
utility depends on degrees only — DESIGN.md §5).  Pass
``materialize_social_graph=True`` to build the explicit Erdős–Rényi graph.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.model.conflicts import MatrixConflict
from repro.model.entities import Event, User
from repro.model.instance import IGEPAInstance
from repro.model.interest import TabulatedInterest
from repro.social.generators import empty_graph, erdos_renyi_graph


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic generator (defaults = Table I).

    Attributes:
        num_events: ``|V|``.
        num_users: ``|U|``.
        max_event_capacity: ``max c_v`` (capacities uniform in 1..max).
        max_user_capacity: ``max c_u`` (capacities uniform in 1..max).
        conflict_probability: ``p_cf``.
        friend_probability: ``p_deg``.
        beta: utility balance parameter.
        min_bids / max_bids: bid-list length range per user (uniform).
        cluster_bid_fraction: fraction of each user's bids drawn from their
            conflict cluster (the rest are uniform over all events).
        materialize_social_graph: build the explicit ER graph instead of
            sampling degrees from the Binomial marginal.
    """

    num_events: int = 200
    num_users: int = 2000
    max_event_capacity: int = 50
    max_user_capacity: int = 4
    conflict_probability: float = 0.3
    friend_probability: float = 0.5
    beta: float = 0.5
    min_bids: int = 2
    max_bids: int = 6
    cluster_bid_fraction: float = 0.8
    materialize_social_graph: bool = False

    def __post_init__(self) -> None:
        if self.num_events < 0 or self.num_users < 0:
            raise ValueError("num_events and num_users must be >= 0")
        if self.max_event_capacity < 1 or self.max_user_capacity < 1:
            raise ValueError("capacities must be >= 1")
        if not 0.0 <= self.conflict_probability <= 1.0:
            raise ValueError(f"p_cf must be in [0, 1], got {self.conflict_probability}")
        if not 0.0 <= self.friend_probability <= 1.0:
            raise ValueError(f"p_deg must be in [0, 1], got {self.friend_probability}")
        if not 1 <= self.min_bids <= self.max_bids:
            raise ValueError("need 1 <= min_bids <= max_bids")
        if not 0.0 <= self.cluster_bid_fraction <= 1.0:
            raise ValueError("cluster_bid_fraction must be in [0, 1]")

    def with_overrides(self, **kwargs) -> "SyntheticConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **kwargs)


TABLE1_DEFAULTS = SyntheticConfig()


def _conflict_clusters(
    event_ids: list[int], conflict: MatrixConflict, rng: np.random.Generator
) -> list[list[int]]:
    """Sets of mutually *often*-conflicting events for dependent bidding.

    Each cluster is a random seed event together with every event that
    conflicts with it.  Clusters therefore contain many conflicting pairs —
    exactly the bid shape the paper observed on real EBSNs.
    """
    clusters: list[list[int]] = []
    seeds = list(event_ids)
    rng.shuffle(seeds)
    for seed_id in seeds[: max(1, len(event_ids) // 10)]:
        members = [seed_id] + [
            other
            for other in event_ids
            if conflict.conflicts_ids(seed_id, other)
        ]
        clusters.append(members)
    return clusters


def generate_synthetic(
    config: SyntheticConfig | None = None,
    seed: int | None = None,
    **overrides,
) -> IGEPAInstance:
    """Generate a synthetic IGEPA instance.

    Args:
        config: generator configuration (Table I defaults when omitted).
        seed: RNG seed; identical seeds and configs give identical instances.
        **overrides: convenience field overrides applied to ``config``
            (e.g. ``generate_synthetic(seed=0, num_users=5000)``).
    """
    if config is None:
        config = TABLE1_DEFAULTS
    if overrides:
        config = config.with_overrides(**overrides)
    rng = np.random.default_rng(seed)

    event_ids = list(range(config.num_events))
    user_ids = list(range(config.num_users))

    events = [
        Event(
            event_id=event_id,
            capacity=int(rng.integers(1, config.max_event_capacity + 1)),
        )
        for event_id in event_ids
    ]
    conflict = MatrixConflict.sample(event_ids, config.conflict_probability, rng)
    clusters = (
        _conflict_clusters(event_ids, conflict, rng) if event_ids else []
    )

    users: list[User] = []
    interest_values: dict[tuple[int, int], float] = {}
    for user_id in user_ids:
        capacity = int(rng.integers(1, config.max_user_capacity + 1))
        bids: tuple[int, ...] = ()
        if event_ids:
            wanted = int(rng.integers(config.min_bids, config.max_bids + 1))
            wanted = min(wanted, len(event_ids))
            from_cluster = int(round(wanted * config.cluster_bid_fraction))
            chosen: set[int] = set()
            if clusters and from_cluster:
                cluster = clusters[int(rng.integers(len(clusters)))]
                # The seed (cluster[0]) conflicts with every other member, so
                # including it guarantees the bid list is "a group of ...
                # often conflicting events" as the paper describes.
                chosen.add(cluster[0])
                rest = cluster[1:]
                take = min(from_cluster - 1, len(rest))
                if take > 0:
                    chosen.update(
                        int(e) for e in rng.choice(rest, size=take, replace=False)
                    )
            while len(chosen) < wanted:
                chosen.add(int(rng.integers(len(event_ids))))
            bids = tuple(sorted(chosen))
        users.append(User(user_id=user_id, capacity=capacity, bids=bids))
        for event_id in bids:
            interest_values[(event_id, user_id)] = float(rng.uniform())

    if config.materialize_social_graph:
        social = erdos_renyi_graph(user_ids, config.friend_probability, rng=rng)
        degrees = None
    else:
        social = empty_graph(user_ids)
        n = config.num_users
        if n > 1:
            raw = rng.binomial(n - 1, config.friend_probability, size=n)
            degrees = {
                user_id: float(raw[i]) / (n - 1) for i, user_id in enumerate(user_ids)
            }
        else:
            degrees = {user_id: 0.0 for user_id in user_ids}

    return IGEPAInstance(
        events=events,
        users=users,
        conflict=conflict,
        interest=TabulatedInterest(interest_values),
        social=social,
        beta=config.beta,
        name=f"synthetic(|V|={config.num_events},|U|={config.num_users},"
        f"pcf={config.conflict_probability},pdeg={config.friend_probability})",
        degrees=degrees,
    )


def _stream_user_chunk(
    config: SyntheticConfig,
    rng: np.random.Generator,
    user_ids: list[int],
    num_events: int,
    clusters: list[list[int]],
) -> tuple[list[User], dict[tuple[int, int], float]]:
    """One vectorized chunk of dependent-bid users (see stream generator).

    All randomness is drawn in bulk arrays up front — capacities, bid
    budgets, cluster assignment, per-cluster member permutations and the
    uniform top-up pool — so the per-user assembly loop does only index
    arithmetic, never an RNG call.
    """
    k = len(user_ids)
    capacities = rng.integers(1, config.max_user_capacity + 1, size=k)
    wanted = np.minimum(
        rng.integers(config.min_bids, config.max_bids + 1, size=k), num_events
    )
    from_cluster = np.rint(wanted * config.cluster_bid_fraction).astype(np.int64)
    cluster_of = (
        rng.integers(len(clusters), size=k)
        if clusters
        else np.full(k, -1, dtype=np.int64)
    )
    # Per cluster: one (group x |rest|) random matrix, argsorted row-wise —
    # each user's row is a uniform permutation of the cluster's non-seed
    # members, exactly one bulk draw per cluster per chunk.
    member_picks: dict[int, np.ndarray] = {}
    group_offset: dict[int, int] = {}
    for cluster_id in np.unique(cluster_of[cluster_of >= 0]).tolist():
        rest = len(clusters[cluster_id]) - 1
        group = int((cluster_of == cluster_id).sum())
        if rest > 0:
            member_picks[cluster_id] = np.argsort(
                rng.random((group, rest)), axis=1
            )
        group_offset[cluster_id] = 0
    # Uniform top-up pool: oversample, dedupe per user in the assembly loop.
    pool_width = int(config.max_bids * 2 + 4)
    top_up = rng.integers(num_events, size=(k, pool_width)) if num_events else None

    users: list[User] = []
    pending: list[tuple[int, int]] = []  # (user offset in chunk, event_id)
    for i, user_id in enumerate(user_ids):
        chosen: set[int] = set()
        target = int(wanted[i])
        cluster_id = int(cluster_of[i])
        budget = int(from_cluster[i])
        if cluster_id >= 0 and budget > 0:
            cluster = clusters[cluster_id]
            chosen.add(cluster[0])
            picks = member_picks.get(cluster_id)
            if picks is not None:
                row = group_offset[cluster_id]
                group_offset[cluster_id] = row + 1
                for position in picks[row, : budget - 1]:
                    chosen.add(cluster[1 + int(position)])
        column = 0
        while len(chosen) < target and column < pool_width:
            chosen.add(int(top_up[i, column]))
            column += 1
        while len(chosen) < target:
            # Pool exhausted by collisions (vanishing probability except at
            # tiny event counts): finish with direct draws so the min_bids
            # floor always holds, like the per-user generator.
            chosen.add(int(rng.integers(num_events)))
        bids = tuple(sorted(chosen))
        users.append(User(user_id=user_id, capacity=int(capacities[i]), bids=bids))
        pending.extend((i, event_id) for event_id in bids)

    interest = rng.random(len(pending))
    interest_values = {
        (event_id, user_ids[offset]): float(interest[position])
        for position, (offset, event_id) in enumerate(pending)
    }
    return users, interest_values


def generate_synthetic_stream(
    config: SyntheticConfig | None = None,
    seed: int | None = None,
    *,
    chunk_size: int = 8192,
    **overrides,
) -> IGEPAInstance:
    """Generate a large synthetic instance by streaming vectorized user chunks.

    Same workload shape as :func:`generate_synthetic` (Table I capacities,
    p_cf conflicts, dependent cluster bids, Binomial-marginal degrees) but
    built for the ≥50k-user regime:

    * users are generated ``chunk_size`` at a time with bulk RNG draws —
      no per-user ``Generator`` calls, so a 50k-user instance builds in a
      fraction of the per-user generator's time;
    * nothing user-by-event is ever materialized — peak memory is
      O(|V|² + users + bids + chunk);
    * degrees always come from the exact Binomial marginal (the explicit
      Erdős–Rényi graph at 50k users would hold ~6·10⁸ edges).

    The draw order differs from :func:`generate_synthetic`, so the two
    produce different (equally distributed) instances for the same seed.
    Returns an instance whose lazy index resolves to the sharded
    implementation whenever the size heuristic calls for it.
    """
    if config is None:
        config = TABLE1_DEFAULTS
    if overrides:
        config = config.with_overrides(**overrides)
    if config.materialize_social_graph:
        raise ValueError(
            "generate_synthetic_stream never materializes the social graph; "
            "use generate_synthetic for explicit-graph workloads"
        )
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    rng = np.random.default_rng(seed)

    event_ids = list(range(config.num_events))
    events = [
        Event(
            event_id=event_id,
            capacity=int(rng.integers(1, config.max_event_capacity + 1)),
        )
        for event_id in event_ids
    ]
    conflict = MatrixConflict.sample(event_ids, config.conflict_probability, rng)
    clusters = _conflict_clusters(event_ids, conflict, rng) if event_ids else []

    users: list[User] = []
    interest_values: dict[tuple[int, int], float] = {}
    for start in range(0, config.num_users, chunk_size):
        chunk_ids = list(range(start, min(start + chunk_size, config.num_users)))
        if config.num_events:
            chunk_users, chunk_interest = _stream_user_chunk(
                config, rng, chunk_ids, config.num_events, clusters
            )
        else:
            capacities = rng.integers(
                1, config.max_user_capacity + 1, size=len(chunk_ids)
            )
            chunk_users = [
                User(user_id=user_id, capacity=int(capacities[i]))
                for i, user_id in enumerate(chunk_ids)
            ]
            chunk_interest = {}
        users.extend(chunk_users)
        interest_values.update(chunk_interest)

    user_ids = [u.user_id for u in users]
    social = empty_graph(user_ids)
    n = config.num_users
    if n > 1:
        raw = rng.binomial(n - 1, config.friend_probability, size=n)
        degrees = {
            user_id: float(raw[i]) / (n - 1) for i, user_id in enumerate(user_ids)
        }
    else:
        degrees = {user_id: 0.0 for user_id in user_ids}

    return IGEPAInstance(
        events=events,
        users=users,
        conflict=conflict,
        interest=TabulatedInterest(interest_values),
        social=social,
        beta=config.beta,
        name=f"synthetic-stream(|V|={config.num_events},|U|={config.num_users},"
        f"pcf={config.conflict_probability},pdeg={config.friend_probability})",
        degrees=degrees,
    )
