"""LP backend delegating to ``scipy.optimize.linprog`` (HiGHS).

The from-scratch simplex backends are exact but dense; the paper's largest
sweep (|U| = 10000 in Fig. 1b) produces benchmark LPs with tens of thousands
of columns, where a sparse interior-point/dual-simplex code is the practical
choice.  This mirrors the paper's use of Gurobi for the same role.

scipy is an optional dependency: :func:`scipy_available` reports whether the
backend can be used, and callers fall back to the from-scratch simplex.
"""

from __future__ import annotations

import numpy as np

from repro.solver.problem import LinearProgram, Sense
from repro.solver.result import LPSolution, SolveStatus


def scipy_available() -> bool:
    """Whether ``scipy.optimize.linprog`` can be imported."""
    try:
        from scipy.optimize import linprog  # noqa: F401
    except ImportError:
        return False
    return True


def solve_lp_scipy(lp: LinearProgram) -> LPSolution:
    """Solve ``lp`` with HiGHS via ``scipy.optimize.linprog``.

    Raises:
        ImportError: when scipy is not installed (check
            :func:`scipy_available` first, or use the ``auto`` backend).
    """
    from scipy.optimize import linprog
    from scipy.sparse import csr_matrix

    n = lp.num_variables
    m = lp.num_constraints
    sign = -1.0 if lp.maximize else 1.0
    c = sign * lp.objective_vector()

    # Vectorized assembly off the COO triplet cache (primed by bulk builders
    # like build_benchmark_lp): rows split into the inequality and equality
    # groups, >= rows flipped to <=, one csr_matrix call per group — no
    # per-coefficient Python loop.
    senses = np.fromiter(
        (
            0 if cstr.sense is Sense.EQ else (-1 if cstr.sense is Sense.GE else 1)
            for cstr in lp.constraints
        ),
        dtype=np.int64,
        count=m,
    )
    rhs = np.fromiter((cstr.rhs for cstr in lp.constraints), dtype=float, count=m)
    coo_rows, coo_cols, coo_vals = lp.constraints_coo()

    def build(row_mask: np.ndarray, row_factor: np.ndarray):
        rows = np.flatnonzero(row_mask)
        if not rows.size:
            return None, None
        new_row_of = np.full(m, -1, dtype=np.int64)
        new_row_of[rows] = np.arange(rows.size, dtype=np.int64)
        keep = row_mask[coo_rows]
        matrix = csr_matrix(
            (
                coo_vals[keep] * row_factor[coo_rows[keep]],
                (new_row_of[coo_rows[keep]], coo_cols[keep]),
            ),
            shape=(rows.size, n),
        )
        return matrix, rhs[rows] * row_factor[rows]

    factor = np.where(senses < 0, -1.0, 1.0)
    a_ub, b_ub = build(senses != 0, factor)
    a_eq, b_eq = build(senses == 0, factor)
    bounds = [
        (v.lower if np.isfinite(v.lower) else None, v.upper if np.isfinite(v.upper) else None)
        for v in lp.variables
    ]

    result = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )

    iterations = int(getattr(result, "nit", 0) or 0)
    if result.status == 2:
        return LPSolution(SolveStatus.INFEASIBLE, iterations=iterations, backend="scipy-highs")
    if result.status == 3:
        return LPSolution(SolveStatus.UNBOUNDED, iterations=iterations, backend="scipy-highs")
    if not result.success:
        return LPSolution(
            SolveStatus.ITERATION_LIMIT, iterations=iterations, backend="scipy-highs"
        )
    objective = sign * float(result.fun)
    return LPSolution(
        SolveStatus.OPTIMAL,
        objective_value=objective,
        x=np.asarray(result.x, dtype=float),
        iterations=iterations,
        backend="scipy-highs",
    )
