"""Plain-text reports in the shape of the paper's figures and tables."""

from __future__ import annotations

from collections.abc import Mapping

from repro.experiments.runner import AlgorithmStats
from repro.experiments.sweeps import SweepResult

#: Paper's Table II column order.
TABLE2_ORDER = ["lp-packing", "random-u", "random-v", "gg"]


def _format_value(value: float) -> str:
    return f"{value:10.2f}"


def format_sweep_table(result: SweepResult, title: str = "") -> str:
    """Render a sweep as a fixed-width table: one row per algorithm.

    Mirrors a Fig. 1 panel: the x-axis grid across the columns, one utility
    series per algorithm.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"(reps={result.repetitions}, varying {result.label}, "
        f"mean utility per grid point)"
    )
    header = f"{result.label:>12s}" + "".join(
        f"{str(value):>11s}" for value in result.values
    )
    lines.append(header)
    for algorithm in result.algorithms():
        row = f"{algorithm:>12s}"
        for value in result.series(algorithm):
            row += " " + _format_value(value)
        lines.append(row)
    return "\n".join(lines)


def format_utility_table(
    stats: Mapping[str, AlgorithmStats],
    title: str = "",
    order: list[str] | None = None,
) -> str:
    """Render fixed-instance results in the paper's Table II layout.

    Header names and value cells share one column width (12, grown to fit
    the longest algorithm name), so every value's right edge lines up under
    its algorithm name.  (The cells used to render 11 wide under 12-wide
    headers — a 10-char value plus one space — drifting the columns right
    by one character per algorithm.)
    """
    if order is None:
        order = [name for name in TABLE2_ORDER if name in stats]
        order += [name for name in stats if name not in order]
    width = max([12, *(len(name) for name in order)])
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("Algorithm " + "".join(f"{name:>{width}s}" for name in order))
    lines.append(
        "Utility   "
        + "".join(f"{stats[name].mean_utility:>{width}.2f}" for name in order)
    )
    lines.append(
        "Std       "
        + "".join(f"{stats[name].std_utility:>{width}.2f}" for name in order)
    )
    lines.append(
        "Pairs     "
        + "".join(f"{stats[name].mean_pairs:>{width}.1f}" for name in order)
    )
    lines.append(
        "Time (s)  "
        + "".join(f"{stats[name].mean_runtime:>{width}.3f}" for name in order)
    )
    return "\n".join(lines)


def format_ranking(stats: Mapping[str, AlgorithmStats]) -> str:
    """One line: algorithms by decreasing mean utility."""
    ranked = sorted(stats.values(), key=lambda s: -s.mean_utility)
    return " > ".join(f"{s.algorithm} ({s.mean_utility:.2f})" for s in ranked)


def sweep_to_csv(result: SweepResult) -> str:
    """CSV export of a sweep (one row per algorithm/value pair)."""
    lines = ["parameter,value,algorithm,mean_utility,std_utility,mean_runtime_s"]
    for value, point in zip(result.values, result.stats):
        for name, stat in point.items():
            lines.append(
                f"{result.parameter},{value},{name},"
                f"{stat.mean_utility:.6f},{stat.std_utility:.6f},"
                f"{stat.mean_runtime:.6f}"
            )
    return "\n".join(lines)
