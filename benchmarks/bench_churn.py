"""Churn engine benchmark: incremental update+repair vs full rebuild+re-solve.

Replays fixed-seed churn traces over a Table-I-shaped instance ladder and
times, per batch, the incremental pipeline (delta-patched
``InstanceIndex`` + carried arrangement + targeted local-search repair)
against the full pipeline (successor rebuild + from-scratch index + re-solve
with the deployed solver).  Results land in
``benchmarks/output/BENCH_churn.json`` so the perf trajectory accumulates
across PRs.

Run as a script (CI does)::

    python benchmarks/bench_churn.py --quick --out benchmarks/output/BENCH_churn.json

or through pytest-benchmark with the rest of the bench suite::

    python -m pytest benchmarks/bench_churn.py

The headline acceptance number is ``speedup`` on the largest instance
(|U| = 4000): incremental update+repair must be at least 5x faster per
batch than rebuilding and re-solving with LP-packing (α = 1, the paper's
algorithm and this repo's deployed solver).  A secondary, ungated row
records the same trace against gg+ls — the cheapest credible re-solve — for
context.  Independent of speed, every batch must satisfy the tentpole
correctness gates: the patched index bit-identical to a from-scratch build,
and the repaired arrangement feasible.

The ``lp_resolve`` row gates the incremental LP layer: re-solving the
delta-patched benchmark LP from the previous basis (dual simplex for RHS
moves, warm primal otherwise) must be at least 2x faster per batch than
rebuilding the LP and warm-starting from basis labels (the
pre-incremental baseline), with identical optima to 1e-6.  A companion
pure-capacity-shock trace asserts the in-place dual path: basis reused
as-is, no phase 1, zero refactorizations.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from repro.core import GGGreedy, LocalSearch, LPPacking
from repro.datagen import (
    ChurnConfig,
    ChurnTrace,
    SyntheticConfig,
    generate_churn_trace,
    generate_synthetic,
)
from repro.experiments.persistence import write_bench_artifact
from repro.experiments.replay import lp_resolve_comparison, replay_trace
from repro.model.delta import Delta

MIN_SPEEDUP = 5.0
MIN_RETENTION = 0.9
MIN_LP_RESOLVE_SPEEDUP = 2.0


def _trace(num_users: int, num_batches: int, seed: int):
    """A fixed-seed trace churning ~1% of the population per batch."""
    instance = generate_synthetic(
        SyntheticConfig(num_users=num_users), seed=seed
    )
    config = ChurnConfig(
        num_batches=num_batches,
        user_arrival_rate=num_users / 100,
        user_departure_rate=num_users / 100,
        rebid_rate=num_users / 50,
        event_open_rate=2.0,
        event_close_rate=2.0,
        conflict_toggle_rate=2.0,
        burst_every=max(2, num_batches // 2),
    )
    return generate_churn_trace(instance, config, seed=seed + 1)


def _capacity_shock_trace(instance, num_batches: int, seed: int) -> ChurnTrace:
    """Pure capacity-shock batches: every delta is RHS edits only.

    These must ride the incremental solver's in-place dual path — same
    basis, no phase 1, zero refactorizations — which is asserted below.
    """
    rng = np.random.default_rng(seed)
    capacities = {e.event_id: int(e.capacity) for e in instance.events}
    event_ids = sorted(capacities)
    deltas = []
    for _ in range(num_batches):
        picks = rng.choice(
            event_ids, size=max(2, len(event_ids) // 10), replace=False
        )
        updates = []
        for event_id in sorted(int(e) for e in picks):
            shift = int(rng.integers(-3, 4))
            capacity = max(1, capacities[event_id] + shift)
            capacities[event_id] = capacity
            updates.append((event_id, capacity))
        deltas.append(Delta(set_event_capacity=tuple(updates)))
    return ChurnTrace(initial=instance, deltas=deltas, seed=seed)


def _lp_resolve_row(num_users: int, num_batches: int, seed: int) -> dict:
    """Delta-patched LP re-solve vs the warm-rebuild baseline, one size."""
    row = lp_resolve_comparison(_trace(num_users, num_batches, seed))
    row["num_users"] = num_users
    row["num_batches"] = num_batches
    print(
        f"|U|={num_users:>5} lp_resolve   "
        f"patch={row['mean_patch_seconds'] * 1e3:>7.1f}ms/batch "
        f"warm={row['mean_warm_seconds'] * 1e3:>8.1f}ms/batch "
        f"speedup={row['speedup']:>6.1f}x "
        f"dual_pivots={row['dual_pivots']} "
        f"refactorizations={row['refactorizations']}"
    )

    # Pure capacity shocks must stay on the in-place dual path: the basis
    # is reused as-is (no phase-1 restart) and never refactorized.
    instance = generate_synthetic(
        SyntheticConfig(num_users=min(num_users, 1000)), seed=seed
    )
    shock = lp_resolve_comparison(
        _capacity_shock_trace(instance, num_batches, seed + 2)
    )
    for batch in shock["batches"]:
        assert batch["rhs_only"], "capacity-shock trace emitted a mixed delta"
        assert batch["mode"] == "rhs_dual", (
            f"capacity shock left the dual path: mode={batch['mode']!r}"
        )
        assert not batch["phase1"], "capacity shock re-entered phase 1"
        assert batch["refactorizations"] == 0, (
            "capacity shock refactorized the basis "
            f"({batch['refactorizations']} times)"
        )
    row["capacity_shock"] = shock
    return row


def _run_one(num_users: int, num_batches: int, seed: int, algorithm) -> dict:
    trace = _trace(num_users, num_batches, seed)
    report = replay_trace(trace, algorithm=algorithm, seed=seed, check_parity=True)
    assert report.all_parity, (
        f"|U|={num_users} {algorithm.name}: patched index differs from a "
        "from-scratch build"
    )
    assert report.all_feasible, (
        f"|U|={num_users} {algorithm.name}: a repaired arrangement is infeasible"
    )
    row = report.to_dict()
    row["num_users"] = num_users
    row["num_batches"] = num_batches
    retention = report.utility_retention
    print(
        f"|U|={num_users:>5} vs {algorithm.name:<12} "
        f"incr={report.mean_incremental_seconds * 1e3:>7.1f}ms/batch "
        f"full={report.mean_full_seconds * 1e3:>8.1f}ms/batch "
        f"speedup={report.speedup:>6.1f}x "
        f"retention={'n/a' if retention is None else format(retention, '.1%')}"
    )
    return row


def run_bench(
    seed: int = 0, quick: bool = False, min_speedup: float = MIN_SPEEDUP
) -> dict:
    """Run the churn ladder; returns the JSON-ready report.

    ``min_speedup`` gates the largest instance's incremental-vs-LP-packing
    ratio (default 5x, the acceptance criterion); CI passes a looser floor
    because shared runners add wall-clock noise — the measured ratio is
    always recorded in the JSON artifact either way.
    """
    sizes = [(1000, 4)] if quick else [(1000, 4), (4000, 8)]
    rows = []
    for num_users, num_batches in sizes:
        row = _run_one(num_users, num_batches, seed, LPPacking(alpha=1.0))
        # Context row: the cheapest credible re-solve; not gated.
        row["gg_ls_reference"] = _run_one(
            num_users, num_batches, seed, LocalSearch(GGGreedy())
        )
        # Gated row: the delta-patched incremental LP re-solve must beat
        # the warm-rebuild baseline (optima asserted equal to 1e-6 inside
        # the comparison).
        row["lp_resolve"] = _lp_resolve_row(num_users, num_batches, seed)
        rows.append(row)

    largest = max(rows, key=lambda r: r["num_users"])
    report = {
        "seed": seed,
        "quick": quick,
        "instances": rows,
        "largest_num_users": largest["num_users"],
        "largest_speedup": largest["speedup"],
        "largest_utility_retention": largest["utility_retention"],
        "largest_lp_resolve_speedup": largest["lp_resolve"]["speedup"],
        "min_required_speedup": min_speedup,
        "min_required_lp_resolve_speedup": MIN_LP_RESOLVE_SPEEDUP,
    }
    assert largest["lp_resolve"]["speedup"] >= MIN_LP_RESOLVE_SPEEDUP, (
        f"delta-patched LP re-solve is only "
        f"{largest['lp_resolve']['speedup']:.1f}x faster than the warm "
        f"rebuild at |U|={largest['num_users']} "
        f"(required: {MIN_LP_RESOLVE_SPEEDUP}x)"
    )
    assert largest["utility_retention"] >= MIN_RETENTION, (
        f"repair retains only {largest['utility_retention']:.1%} of the "
        f"re-solved utility at |U|={largest['num_users']} "
        f"(required: {MIN_RETENTION:.0%})"
    )
    assert largest["speedup"] >= min_speedup, (
        f"incremental update+repair is only {largest['speedup']:.1f}x faster "
        f"than full rebuild+re-solve at |U|={largest['num_users']} "
        f"(required: {min_speedup}x)"
    )
    return report


def bench_churn_engine(bench_once):
    """pytest-benchmark entry: quick ladder, same assertions as the script."""
    report = bench_once(run_bench, seed=0, quick=True)
    assert report["largest_speedup"] >= MIN_SPEEDUP


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true", help="CI-sized ladder")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=MIN_SPEEDUP,
        help="hard floor on the largest instance's incremental-vs-full ratio",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent / "output" / "BENCH_churn.json",
    )
    args = parser.parse_args()
    report = run_bench(seed=args.seed, quick=args.quick, min_speedup=args.min_speedup)
    write_bench_artifact(
        "bench_churn", report, report.pop("instances"), path=args.out
    )
    print(f"[written to {args.out}]")


if __name__ == "__main__":
    main()
