"""Churn trace generation: sustained-traffic workloads over IGEPA instances.

The dynamic EBSN setting (Social Event Scheduling / Attendance Maximization,
Bikakis et al. 2018) sees users register, cancel and re-bid continuously
while events open and close.  :func:`generate_churn_trace` turns a synthetic
instance into that workload: a sequence of :class:`~repro.model.delta.Delta`
batches whose per-batch operation counts are Poisson-distributed around
rates chosen relative to the Table I defaults —

* **user arrivals** — new users with Table-I capacities and bid-list
  lengths, bidding with the generator's conflict-cluster flavour (a seed
  event plus events conflicting with it, topped up uniformly) and uniform
  interest values;
* **user departures** — uniform over the current population;
* **re-bids** — a user withdraws one bid and places another;
* **event opens/closes** — fresh events conflict with existing ones at
  ``p_cf``; closures are uniform;
* **conflict toggles** — a uniform event pair flips its σ value;
* **interest drift** — an existing bid pair's SI value is re-sampled
  (``drift_rate``): organizers re-describe events, tastes move;
* **capacity shocks** — a surviving event (or user) re-samples its capacity
  (``capacity_shock_rate`` / ``user_capacity_shock_rate``): venues change,
  organizers re-plan.

An **adversarial burst mode** stresses the repair path: every
``burst_every``-th batch multiplies arrivals, closes a fraction of all open
events at once (mass cancellation) and — when
``burst_capacity_shrink_fraction`` is set — halves the capacity of a
fraction of the surviving events, producing the largest possible
carried-arrangement damage per batch (shrink sheds assigned pairs).

The generator tracks a lightweight mirror of the evolving instance (alive
ids, bid lists, conflict pairs), so building a trace never constructs
intermediate :class:`IGEPAInstance` objects — replay applies the deltas.

Traces require the synthetic generator's instance shape: a
:class:`TabulatedInterest` (new bids need explicit interest values) and a
:class:`MatrixConflict` (conflict toggles edit the relation).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.datagen.synthetic import TABLE1_DEFAULTS, SyntheticConfig
from repro.model.conflicts import MatrixConflict
from repro.model.delta import Delta
from repro.model.entities import Event, User
from repro.model.instance import IGEPAInstance
from repro.model.interest import TabulatedInterest


@dataclass(frozen=True)
class ChurnConfig:
    """Knobs of the churn trace generator.

    Rates are Poisson means per batch.  Defaults churn roughly 1% of a
    Table-I population per batch.

    Attributes:
        num_batches: number of deltas in the trace.
        user_arrival_rate: mean new users per batch.
        user_departure_rate: mean departing users per batch.
        rebid_rate: mean users replacing one bid per batch.
        event_open_rate: mean events opening per batch.
        event_close_rate: mean events closing per batch.
        conflict_toggle_rate: mean σ flips per batch.
        drift_rate: mean existing bid pairs whose SI value re-samples per
            batch (interest drift; 0 disables).
        capacity_shock_rate: mean surviving events re-sampling their
            capacity per batch (0 disables).
        user_capacity_shock_rate: mean surviving users re-sampling their
            capacity per batch (0 disables).
        burst_every: every k-th batch is an adversarial burst (0: never).
        burst_user_multiplier: arrival-rate multiplier during a burst.
        burst_event_close_fraction: fraction of open events a burst closes.
        burst_capacity_shrink_fraction: fraction of surviving events a burst
            halves the capacity of (adversarial shrink; 0 disables).
        base: sampling knobs for new entities (capacities, bid-list lengths,
            ``p_cf``, ``p_deg``) — defaults to Table I.
    """

    num_batches: int = 20
    user_arrival_rate: float = 20.0
    user_departure_rate: float = 20.0
    rebid_rate: float = 40.0
    event_open_rate: float = 1.0
    event_close_rate: float = 1.0
    conflict_toggle_rate: float = 2.0
    drift_rate: float = 0.0
    capacity_shock_rate: float = 0.0
    user_capacity_shock_rate: float = 0.0
    burst_every: int = 0
    burst_user_multiplier: float = 10.0
    burst_event_close_fraction: float = 0.2
    burst_capacity_shrink_fraction: float = 0.0
    base: SyntheticConfig = TABLE1_DEFAULTS

    def __post_init__(self) -> None:
        if self.num_batches < 0:
            raise ValueError("num_batches must be >= 0")
        for name in (
            "user_arrival_rate",
            "user_departure_rate",
            "rebid_rate",
            "event_open_rate",
            "event_close_rate",
            "conflict_toggle_rate",
            "drift_rate",
            "capacity_shock_rate",
            "user_capacity_shock_rate",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.burst_every < 0:
            raise ValueError("burst_every must be >= 0")
        if not 0.0 <= self.burst_event_close_fraction <= 1.0:
            raise ValueError("burst_event_close_fraction must be in [0, 1]")
        if not 0.0 <= self.burst_capacity_shrink_fraction <= 1.0:
            raise ValueError("burst_capacity_shrink_fraction must be in [0, 1]")

    def with_overrides(self, **kwargs) -> "ChurnConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass
class ChurnTrace:
    """A churn workload: the initial instance plus delta batches to replay.

    Attributes:
        initial: the instance at time zero.
        deltas: one :class:`Delta` per batch, in replay order.
        config: the generator configuration.
        seed: the generator seed (traces are reproducible).
    """

    initial: IGEPAInstance
    deltas: list[Delta] = field(default_factory=list)
    config: ChurnConfig = ChurnConfig()
    seed: int | None = None

    def summary(self) -> dict:
        """Aggregate operation counts across the whole trace."""
        totals: dict[str, int] = {}
        for delta in self.deltas:
            for key, value in delta.summary().items():
                totals[key] = totals.get(key, 0) + value
        totals["batches"] = len(self.deltas)
        return totals


class _MirrorState:
    """Alive ids, bid lists, capacities and conflict pairs tracked outside
    the model."""

    def __init__(self, instance: IGEPAInstance):
        self.bids: dict[int, list[int]] = {
            user.user_id: list(user.bids) for user in instance.users
        }
        self.events: list[int] = [event.event_id for event in instance.events]
        self.event_capacity: dict[int, int] = {
            event.event_id: event.capacity for event in instance.events
        }
        self.user_capacity: dict[int, int] = {
            user.user_id: user.capacity for user in instance.users
        }
        conflict = instance.conflict
        if not isinstance(conflict, MatrixConflict):
            raise TypeError(
                "churn traces require a MatrixConflict instance, got "
                f"{type(conflict).__name__}"
            )
        if not isinstance(instance.interest, TabulatedInterest):
            raise TypeError(
                "churn traces require a TabulatedInterest instance, got "
                f"{type(instance.interest).__name__}"
            )
        self.conflicts: set[frozenset[int]] = {
            frozenset(pair) for pair in conflict.pairs()
        }
        self.next_user_id = max(self.bids, default=-1) + 1
        self.next_event_id = max(self.events, default=-1) + 1
        self.uses_degree_overrides = instance.degrees_override is not None

    def user_ids(self) -> list[int]:
        return list(self.bids)


def _sample_bids(
    events_pool: list[int],
    conflicts: set[frozenset[int]],
    config: SyntheticConfig,
    rng: np.random.Generator,
) -> list[int]:
    """A Table-I-shaped bid list: mostly one conflict cluster, topped up."""
    if not events_pool:
        return []
    wanted = int(rng.integers(config.min_bids, config.max_bids + 1))
    wanted = min(wanted, len(events_pool))
    chosen: list[int] = []
    seen: set[int] = set()
    from_cluster = int(round(wanted * config.cluster_bid_fraction))
    if from_cluster:
        seed_event = int(events_pool[int(rng.integers(len(events_pool)))])
        cluster = [
            e
            for e in events_pool
            if e != seed_event and frozenset((seed_event, e)) in conflicts
        ]
        chosen.append(seed_event)
        seen.add(seed_event)
        take = min(from_cluster - 1, len(cluster))
        if take > 0:
            for event_id in rng.choice(cluster, size=take, replace=False):
                chosen.append(int(event_id))
                seen.add(int(event_id))
    while len(chosen) < wanted:
        candidate = int(events_pool[int(rng.integers(len(events_pool)))])
        if candidate not in seen:
            chosen.append(candidate)
            seen.add(candidate)
    return sorted(chosen)


def _generate_batch(
    state: _MirrorState,
    config: ChurnConfig,
    rng: np.random.Generator,
    burst: bool,
) -> Delta:
    base = config.base
    arrival_rate = config.user_arrival_rate
    close_count = int(rng.poisson(config.event_close_rate))
    if burst:
        arrival_rate *= config.burst_user_multiplier
        close_count = max(
            close_count,
            int(round(len(state.events) * config.burst_event_close_fraction)),
        )

    # --- event closures (keep at least one event open) ---
    close_count = min(close_count, max(0, len(state.events) - 1))
    closed: list[int] = []
    if close_count:
        closed = sorted(
            int(e)
            for e in rng.choice(state.events, size=close_count, replace=False)
        )
    closed_set = set(closed)
    surviving_events = [e for e in state.events if e not in closed_set]

    # --- event openings ---
    open_count = int(rng.poisson(config.event_open_rate))
    opened: list[Event] = []
    add_conflicts: list[tuple[int, int]] = []
    new_event_ids: list[int] = []
    for _ in range(open_count):
        event_id = state.next_event_id
        state.next_event_id += 1
        opened.append(
            Event(
                event_id=event_id,
                capacity=int(rng.integers(1, base.max_event_capacity + 1)),
            )
        )
        for other in (*surviving_events, *new_event_ids):
            if rng.random() < base.conflict_probability:
                add_conflicts.append((int(other), event_id))
        new_event_ids.append(event_id)
    events_pool = surviving_events + new_event_ids

    # --- conflict pool the bid sampler sees this batch ---
    pending_conflicts = {frozenset(pair) for pair in add_conflicts}
    batch_conflicts = {
        pair
        for pair in state.conflicts
        if not (pair & closed_set)
    } | pending_conflicts

    # --- user departures (keep at least one user) ---
    alive_users = state.user_ids()
    departure_count = min(
        int(rng.poisson(config.user_departure_rate)), max(0, len(alive_users) - 1)
    )
    departed: list[int] = []
    if departure_count:
        departed = sorted(
            int(u)
            for u in rng.choice(alive_users, size=departure_count, replace=False)
        )
    departed_set = set(departed)

    # --- user arrivals ---
    arrival_count = int(rng.poisson(arrival_rate))
    arrivals: list[User] = []
    interest: list[tuple[int, int, float]] = []
    degrees: list[tuple[int, float]] = []
    population = len(alive_users) - len(departed) + arrival_count
    for _ in range(arrival_count):
        user_id = state.next_user_id
        state.next_user_id += 1
        # Sample against the post-batch conflict relation.
        bids = _sample_bids(events_pool, batch_conflicts, base, rng)
        arrivals.append(
            User(
                user_id=user_id,
                capacity=int(rng.integers(1, base.max_user_capacity + 1)),
                bids=tuple(bids),
            )
        )
        for event_id in bids:
            interest.append((event_id, user_id, float(rng.uniform())))
        if state.uses_degree_overrides and population > 1:
            raw = int(rng.binomial(population - 1, base.friend_probability))
            degrees.append((user_id, raw / (population - 1)))

    # --- re-bids: survivors drop one bid, place another ---
    rebid_pool = [u for u in alive_users if u not in departed_set]
    rebid_count = min(int(rng.poisson(config.rebid_rate)), len(rebid_pool))
    remove_bids: list[tuple[int, int]] = []
    add_bids: list[tuple[int, int]] = []
    rebidders: list[int] = []
    if rebid_count:
        rebidders = [
            int(u)
            for u in rng.choice(rebid_pool, size=rebid_count, replace=False)
        ]
    for user_id in rebidders:
        bids = state.bids[user_id]
        if not bids:
            continue
        dropped = int(bids[int(rng.integers(len(bids)))])
        remove_bids.append((user_id, dropped))
        bid_set = set(bids)
        candidates = [
            e for e in events_pool if e != dropped and e not in bid_set
        ]
        if candidates:
            added = int(candidates[int(rng.integers(len(candidates)))])
            add_bids.append((user_id, added))
            interest.append((added, user_id, float(rng.uniform())))

    # --- interest drift: existing bid pairs re-sample their SI value ---
    # (all draws below are gated on their knobs, so traces generated with
    # the pre-drift defaults replay the exact same RNG stream)
    removed_bid_set = set(remove_bids)
    drift_count = int(rng.poisson(config.drift_rate)) if config.drift_rate else 0
    drifted: set[tuple[int, int]] = set()
    for _ in range(drift_count):
        if not rebid_pool:
            break
        user_id = int(rebid_pool[int(rng.integers(len(rebid_pool)))])
        alive_bids = [
            e
            for e in state.bids[user_id]
            if e not in closed_set and (user_id, e) not in removed_bid_set
        ]
        if not alive_bids:
            continue
        event_id = int(alive_bids[int(rng.integers(len(alive_bids)))])
        if (event_id, user_id) in drifted:
            continue
        drifted.add((event_id, user_id))
        interest.append((event_id, user_id, float(rng.uniform())))

    # --- capacity shocks: surviving events/users re-sample capacities;
    # bursts additionally halve a fraction of the event capacities ---
    set_event_capacity: list[tuple[int, int]] = []
    shocked_events: set[int] = set()
    shock_count = (
        min(int(rng.poisson(config.capacity_shock_rate)), len(surviving_events))
        if config.capacity_shock_rate
        else 0
    )
    if shock_count:
        for event_id in rng.choice(
            surviving_events, size=shock_count, replace=False
        ):
            event_id = int(event_id)
            new_capacity = int(rng.integers(1, base.max_event_capacity + 1))
            if new_capacity != state.event_capacity[event_id]:
                set_event_capacity.append((event_id, new_capacity))
                shocked_events.add(event_id)
    if burst and config.burst_capacity_shrink_fraction and surviving_events:
        shrink_count = min(
            int(round(len(surviving_events) * config.burst_capacity_shrink_fraction)),
            len(surviving_events),
        )
        if shrink_count:
            for event_id in rng.choice(
                surviving_events, size=shrink_count, replace=False
            ):
                event_id = int(event_id)
                if event_id in shocked_events:
                    continue
                new_capacity = state.event_capacity[event_id] // 2
                if new_capacity != state.event_capacity[event_id]:
                    set_event_capacity.append((event_id, new_capacity))
                    shocked_events.add(event_id)
    set_user_capacity: list[tuple[int, int]] = []
    user_shock_count = (
        min(int(rng.poisson(config.user_capacity_shock_rate)), len(rebid_pool))
        if config.user_capacity_shock_rate
        else 0
    )
    if user_shock_count:
        for user_id in rng.choice(rebid_pool, size=user_shock_count, replace=False):
            user_id = int(user_id)
            new_capacity = int(rng.integers(1, base.max_user_capacity + 1))
            if new_capacity != state.user_capacity[user_id]:
                set_user_capacity.append((user_id, new_capacity))

    # --- conflict toggles over the post-batch event set ---
    toggle_count = int(rng.poisson(config.conflict_toggle_rate))
    add_toggle: list[tuple[int, int]] = []
    remove_toggle: list[tuple[int, int]] = []
    toggled: set[frozenset[int]] = set()
    if len(events_pool) >= 2:
        for _ in range(toggle_count):
            first, second = (
                int(e) for e in rng.choice(events_pool, size=2, replace=False)
            )
            pair = frozenset((first, second))
            if pair in toggled:
                continue
            toggled.add(pair)
            if pair in batch_conflicts:
                # Toggling a pair added earlier this batch would make the
                # delta remove a not-yet-existing conflict; skip those.
                if pair in pending_conflicts:
                    continue
                remove_toggle.append((first, second))
            else:
                add_toggle.append((first, second))

    delta = Delta(
        add_users=tuple(arrivals),
        remove_users=tuple(departed),
        add_events=tuple(opened),
        remove_events=tuple(closed),
        add_bids=tuple(add_bids),
        remove_bids=tuple(remove_bids),
        add_conflicts=tuple(add_conflicts + add_toggle),
        remove_conflicts=tuple(remove_toggle),
        set_user_capacity=tuple(set_user_capacity),
        set_event_capacity=tuple(set_event_capacity),
        interest=tuple(interest),
        degrees=tuple(degrees) if state.uses_degree_overrides else (),
    )

    # --- advance the mirror ---
    for user_id in departed:
        del state.bids[user_id]
        del state.user_capacity[user_id]
    for event_id in closed:
        del state.event_capacity[event_id]
    for user in arrivals:
        state.user_capacity[user.user_id] = user.capacity
    for event in opened:
        state.event_capacity[event.event_id] = event.capacity
    for user_id, capacity in set_user_capacity:
        state.user_capacity[user_id] = capacity
    for event_id, capacity in set_event_capacity:
        state.event_capacity[event_id] = capacity
    for user_id, event_id in remove_bids:
        state.bids[user_id].remove(event_id)
    for bids in state.bids.values():
        bids[:] = [e for e in bids if e not in closed_set]
    for user_id, event_id in add_bids:
        state.bids[user_id].append(event_id)
    for user in arrivals:
        state.bids[user.user_id] = list(user.bids)
    state.events = events_pool
    state.conflicts = batch_conflicts
    for first, second in remove_toggle:
        state.conflicts.discard(frozenset((first, second)))
    for first, second in add_toggle:
        state.conflicts.add(frozenset((first, second)))
    return delta


@dataclass
class RequestTrace:
    """A serving workload: the initial instance plus timestamped requests.

    The request-level view of a :class:`ChurnTrace` — each batch's new
    users become individual :class:`~repro.service.requests.ArrivalRequest`
    objects spread over the batch's time window, and everything else the
    batch did becomes one :class:`~repro.service.requests.ChurnRequest` at
    the window's start.  Replaying the requests through the service's
    micro-batcher reconstitutes ticks from timestamps alone.

    Attributes:
        initial: the instance at time zero.
        requests: arrival/churn requests in timestamp order.
        config: the originating churn configuration.
        seed: the request-level seed (inter-arrival jitter).
    """

    initial: IGEPAInstance
    requests: list = field(default_factory=list)
    config: ChurnConfig = ChurnConfig()
    seed: int | None = None

    def summary(self) -> dict:
        from repro.service.requests import ArrivalRequest

        arrivals = sum(
            1 for request in self.requests if isinstance(request, ArrivalRequest)
        )
        return {
            "requests": len(self.requests),
            "arrivals": arrivals,
            "churn_requests": len(self.requests) - arrivals,
            "horizon_seconds": (
                self.requests[-1].timestamp if self.requests else 0.0
            ),
        }


def generate_request_trace(
    trace: ChurnTrace,
    *,
    batch_seconds: float = 1.0,
    seed: int | None = None,
) -> RequestTrace:
    """Explode a churn trace into a timestamped request stream.

    Batch ``b`` owns the decision-time window ``[b·batch_seconds,
    (b+1)·batch_seconds)``.  Its non-arrival operations land as one
    :class:`~repro.service.requests.ChurnRequest` at the window start; each
    new user becomes an :class:`~repro.service.requests.ArrivalRequest`
    carrying exactly their interest (and degree-override) entries, placed
    inside the window with exponential inter-arrival gaps (the order-
    statistics construction, so arrivals never leak past their window and
    replay order equals timestamp order).  Burst batches compress the gaps
    by the configured ``burst_user_multiplier`` — the whole clump lands in
    the first sliver of the window, which is what stresses micro-batch
    sizing and admission control.

    Determinism: same trace, ``seed`` and ``batch_seconds`` give the same
    request stream; replaying it through a virtual clock gives the same
    ticks.
    """
    from repro.service.requests import ArrivalRequest, ChurnRequest

    if batch_seconds <= 0.0:
        raise ValueError(f"batch_seconds must be > 0, got {batch_seconds}")
    rng = np.random.default_rng(seed)
    config = trace.config
    requests: list = []
    for batch, delta in enumerate(trace.deltas):
        start = batch * batch_seconds
        burst = (
            config.burst_every > 0 and (batch + 1) % config.burst_every == 0
        )
        arrival_ids = {user.user_id for user in delta.add_users}
        arrival_interest: dict[int, list[tuple[int, int, float]]] = {
            user_id: [] for user_id in arrival_ids
        }
        remainder_interest: list[tuple[int, int, float]] = []
        for entry in delta.interest:
            if entry[1] in arrival_ids:
                arrival_interest[entry[1]].append(entry)
            else:
                remainder_interest.append(entry)
        arrival_degrees: dict[int, list[tuple[int, float]]] = {
            user_id: [] for user_id in arrival_ids
        }
        remainder_degrees: list[tuple[int, float]] = []
        for entry in delta.degrees:
            if entry[0] in arrival_ids:
                arrival_degrees[entry[0]].append(entry)
            else:
                remainder_degrees.append(entry)
        remainder = replace(
            delta,
            add_users=(),
            interest=tuple(remainder_interest),
            degrees=tuple(remainder_degrees),
        )
        requests.append(ChurnRequest(timestamp=start, delta=remainder))
        count = len(delta.add_users)
        if not count:
            continue
        # Order-statistics placement: n+1 exponential gaps normalized to
        # the window put n arrivals inside it with exponential spacing.
        gaps = rng.exponential(size=count + 1)
        offsets = np.cumsum(gaps[:count]) / float(np.sum(gaps))
        compression = config.burst_user_multiplier if burst else 1.0
        compression = max(compression, 1.0)
        for user, offset in zip(delta.add_users, offsets):
            requests.append(
                ArrivalRequest(
                    timestamp=start + batch_seconds * float(offset) / compression,
                    user=user,
                    interest=tuple(arrival_interest[user.user_id]),
                    degrees=tuple(arrival_degrees[user.user_id]),
                )
            )
    requests.sort(key=lambda request: request.timestamp)
    return RequestTrace(
        initial=trace.initial, requests=requests, config=config, seed=seed
    )


def generate_churn_trace(
    instance: IGEPAInstance,
    config: ChurnConfig | None = None,
    seed: int | None = None,
    **overrides,
) -> ChurnTrace:
    """Generate a reproducible churn trace over ``instance``.

    Args:
        instance: the time-zero instance (synthetic generator shape:
            tabulated interest, matrix conflicts).
        config: churn knobs (defaults; see :class:`ChurnConfig`).
        seed: RNG seed; identical seeds and configs give identical traces.
        **overrides: convenience field overrides applied to ``config``.

    Raises:
        TypeError: when the instance's interest/conflict functions cannot
            absorb churn (non-tabulated interest, non-matrix conflicts).
    """
    if config is None:
        config = ChurnConfig()
    if overrides:
        config = config.with_overrides(**overrides)
    rng = np.random.default_rng(seed)
    state = _MirrorState(instance)
    deltas: list[Delta] = []
    for batch in range(config.num_batches):
        burst = config.burst_every > 0 and (batch + 1) % config.burst_every == 0
        deltas.append(_generate_batch(state, config, rng, burst))
    return ChurnTrace(initial=instance, deltas=deltas, config=config, seed=seed)
