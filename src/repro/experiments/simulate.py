"""Dynamic-platform simulator: online arrivals under event churn.

The paper solves a one-shot arrangement; PR 3's churn engine repairs a
fixed-population arrangement under deltas; the online extension serves
arrivals against a *frozen* platform.  Real EBSN platforms do all of it at
once — Bikakis et al.'s dynamic event-scheduling line has organizers
continuously (re)scheduling events while users keep registering — and this
module closes that gap with a clocked loop over a churn trace:

1. **churn** — the tick's :class:`~repro.model.delta.Delta` is applied
   through :func:`~repro.model.delta.apply_delta`: the index is patched at
   the CSR-entry level (capacity changes and interest drift included) and
   the arrangement is carried over with every invalidated pair shed;
2. **arrivals** — the delta's new users are served *online* in arrival
   order through :meth:`repro.core.online._OnlineAlgorithm.serve` against
   the capacities remaining right now, and the tick records its arrival
   acceptance rate (measured at arrival time);
3. **repair** — the targeted repair (:func:`repro.core.repair.repair`, or
   the shard-parallel :func:`repro.core.parallel.parallel_repair` when
   workers are configured) re-optimizes the churned scope.  Arrivals are
   excluded from the user-side scan, so the online policy's choice is
   never *improved upon* on their behalf; the event-side refill/evict
   moves still treat them like any other bidder, so the platform may later
   re-seat (or displace) an arrival the way a real venue reshuffle would;
4. **defragmentation** — a pluggable :class:`DefragSchedule` decides when
   the platform pays for a full-scope pass: ``parallel_repair(...,
   full_scope=True)`` (or a full local-search sweep when serial) plus a
   warm-started LP re-solve whose arrangement is adopted when it beats the
   repaired one.  :class:`PeriodicDefrag` runs every k-th tick;
   :class:`RetentionDefrag` triggers when utility falls below a fraction of
   the last oracle re-solve;
5. **oracle** — every ``oracle_every``-th tick a full re-solve of the
   current instance measures what a from-scratch optimizer would achieve;
   the quotient is the **retention curve**, and its running reference turns
   the per-tick utility gap into **repair debt** (the utility a
   defragmentation pass could reclaim).

The five stages themselves now live in
:class:`repro.service.engine.TickEngine`; this module is the *synchronous
driver* over that engine, preserving PR 5's report shapes, seed threading
and audits bit-for-bit.  The asyncio serving loop
(:class:`repro.service.loop.ArrangementService`) drives the same engine
request-by-request; ``igepa serve`` is its front end.

Every tick is audited: the repaired arrangement must pass the full
Definition 4 feasibility check, and (``check_parity``) the patched index
must be bit-identical to a from-scratch build.
:mod:`benchmarks.bench_dynamic` gates on both plus long-horizon retention.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.core.base import ArrangementAlgorithm
from repro.core.online import _OnlineAlgorithm
from repro.datagen.churn import ChurnTrace
from repro.experiments.persistence import report_to_dict
from repro.service.defrag import DefragSchedule, PeriodicDefrag, RetentionDefrag
from repro.service.engine import TickEngine

__all__ = [
    "DefragSchedule",
    "PeriodicDefrag",
    "RetentionDefrag",
    "SimulationInfeasibleError",
    "SimulationReport",
    "TickRecord",
    "format_simulation_table",
    "simulate",
]


class SimulationInfeasibleError(RuntimeError):
    """A tick's arrangement failed its feasibility audit.

    Carries the partial :class:`SimulationReport` (including the failing
    tick's record) as ``report`` for inspection.
    """

    def __init__(self, message: str, report: "SimulationReport"):
        super().__init__(message)
        self.report = report


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass
class TickRecord:
    """Measurements of one simulated tick.

    Attributes:
        tick: tick number (0-based).
        operations: the delta's operation counts.
        num_users / num_events / num_pairs: platform sizes after the tick.
        arrivals: users arriving this tick.
        accepted: arrivals assigned at least one event by the online policy
            *at arrival time* — the platform's admission answer.  Later
            repair/defrag moves may re-arrange them like any other user.
        dropped_pairs: pairs the delta invalidated (incl. capacity sheds).
        repair_moves: targeted-repair move counts.
        defrag: whether the defragmentation pass ran this tick.
        defrag_moves: its move counts (plus ``lp_utility``/``lp_adopted``
            when the LP re-solve ran); None when it did not run.
        utility: arrangement utility at the end of the tick.
        oracle_utility: full re-solve utility (None on non-oracle ticks).
        repair_debt: most recent oracle utility minus ``utility``, floored
            at 0 (None before the first oracle measurement) — the utility a
            full defragmentation could reclaim.
        seconds: wall-clock of churn + arrivals + repair + defrag (the
            oracle re-solve is measurement apparatus and excluded).
        feasible: full Definition 4 audit of the end-of-tick arrangement.
        parity_mismatches: index arrays differing from a fresh build (None
            when the parity check is off; empty list = bit-identical).
    """

    tick: int
    operations: dict
    num_users: int
    num_events: int
    num_pairs: int
    arrivals: int
    accepted: int
    dropped_pairs: int
    repair_moves: dict
    defrag: bool
    defrag_moves: dict | None
    utility: float
    oracle_utility: float | None
    repair_debt: float | None
    seconds: float
    feasible: bool
    parity_mismatches: list[str] | None

    @property
    def acceptance_rate(self) -> float | None:
        """Accepted fraction of this tick's arrivals (None: no arrivals)."""
        if not self.arrivals:
            return None
        return self.accepted / self.arrivals

    @property
    def retention(self) -> float | None:
        """Utility over the oracle re-solve (None on non-oracle ticks)."""
        if self.oracle_utility is None or self.oracle_utility <= 0.0:
            return None
        return self.utility / self.oracle_utility


@dataclass
class SimulationReport:
    """All tick records of one simulated trace plus aggregate views."""

    #: :class:`~repro.experiments.persistence.ReportEnvelope` discriminator.
    envelope_kind: ClassVar[str] = "simulation"

    online_algorithm: str
    oracle_algorithm: str
    defrag_schedule: str
    initial_utility: float
    initial_seconds: float
    records: list[TickRecord] = field(default_factory=list)

    @property
    def arrival_acceptance_rate(self) -> float | None:
        """Accepted fraction of all arrivals across the horizon."""
        arrivals = sum(r.arrivals for r in self.records)
        if not arrivals:
            return None
        return sum(r.accepted for r in self.records) / arrivals

    @property
    def retention_curve(self) -> list[tuple[int, float]]:
        """(tick, utility / oracle utility) at every oracle tick."""
        return [
            (r.tick, r.retention) for r in self.records if r.retention is not None
        ]

    @property
    def long_horizon_retention(self) -> float | None:
        """Mean retention across oracle ticks (None: no oracle ran)."""
        curve = [value for _tick, value in self.retention_curve]
        return float(np.mean(curve)) if curve else None

    @property
    def final_retention(self) -> float | None:
        """Retention at the last oracle tick (None: no oracle ran)."""
        curve = self.retention_curve
        return curve[-1][1] if curve else None

    @property
    def max_repair_debt(self) -> float | None:
        debts = [r.repair_debt for r in self.records if r.repair_debt is not None]
        return max(debts) if debts else None

    @property
    def defrag_count(self) -> int:
        return sum(1 for r in self.records if r.defrag)

    @property
    def mean_tick_seconds(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.seconds for r in self.records]))

    @property
    def all_feasible(self) -> bool:
        return all(r.feasible for r in self.records)

    @property
    def all_parity(self) -> bool:
        """True when every checked tick had a bit-identical patched index."""
        return all(
            not r.parity_mismatches
            for r in self.records
            if r.parity_mismatches is not None
        )

    def to_dict(self) -> dict:
        """JSON-ready snapshot (the dynamic bench / soak artifact).

        Shares the :func:`repro.experiments.persistence.report_to_dict`
        envelope with :class:`~repro.experiments.replay.ReplayReport`.
        """
        summary = {
            "online_algorithm": self.online_algorithm,
            "oracle_algorithm": self.oracle_algorithm,
            "defrag_schedule": self.defrag_schedule,
            "initial_utility": self.initial_utility,
            "initial_seconds": self.initial_seconds,
            "arrival_acceptance_rate": self.arrival_acceptance_rate,
            "long_horizon_retention": self.long_horizon_retention,
            "final_retention": self.final_retention,
            "retention_curve": [list(point) for point in self.retention_curve],
            "max_repair_debt": self.max_repair_debt,
            "defrag_count": self.defrag_count,
            "mean_tick_seconds": self.mean_tick_seconds,
            "all_feasible": self.all_feasible,
            "all_parity": self.all_parity,
        }
        records = [
            {
                "tick": r.tick,
                "operations": r.operations,
                "num_users": r.num_users,
                "num_events": r.num_events,
                "num_pairs": r.num_pairs,
                "arrivals": r.arrivals,
                "accepted": r.accepted,
                "acceptance_rate": r.acceptance_rate,
                "dropped_pairs": r.dropped_pairs,
                "repair_moves": r.repair_moves,
                "defrag": r.defrag,
                "defrag_moves": r.defrag_moves,
                "utility": r.utility,
                "oracle_utility": r.oracle_utility,
                "retention": r.retention,
                "repair_debt": r.repair_debt,
                "seconds": r.seconds,
                "feasible": r.feasible,
                "parity_mismatches": r.parity_mismatches,
            }
            for r in self.records
        ]
        return report_to_dict("simulation", summary, records, records_key="ticks")


def format_simulation_table(report: SimulationReport) -> str:
    """Fixed-width per-tick table for the CLI."""
    lines = [
        f"simulate: {report.online_algorithm} arrivals, "
        f"defrag {report.defrag_schedule}, oracle {report.oracle_algorithm}, "
        f"initial utility {report.initial_utility:.2f} "
        f"({report.initial_seconds * 1e3:.0f} ms)",
        f"{'tick':>5} {'|U|':>6} {'|V|':>5} {'arriv':>5} {'acc':>5} "
        f"{'dropped':>7} {'defrag':>6} {'utility':>9} {'oracle':>9} "
        f"{'retain':>7} {'debt':>8} {'ms':>8}",
    ]
    for r in report.records:
        acc = "-" if r.acceptance_rate is None else f"{r.acceptance_rate:5.0%}"
        oracle = "-" if r.oracle_utility is None else f"{r.oracle_utility:9.2f}"
        retain = "-" if r.retention is None else f"{r.retention:7.1%}"
        debt = "-" if r.repair_debt is None else f"{r.repair_debt:8.2f}"
        lines.append(
            f"{r.tick:>5} {r.num_users:>6} {r.num_events:>5} "
            f"{r.arrivals:>5} {acc:>5} {r.dropped_pairs:>7} "
            f"{'yes' if r.defrag else '-':>6} {r.utility:9.2f} "
            f"{oracle:>9} {retain:>7} {debt:>8} {r.seconds * 1e3:8.1f}"
        )
    summary = [f"mean tick: {report.mean_tick_seconds * 1e3:.1f} ms"]
    if report.arrival_acceptance_rate is not None:
        summary.append(f"acceptance: {report.arrival_acceptance_rate:.1%}")
    if report.long_horizon_retention is not None:
        summary.append(f"retention: {report.long_horizon_retention:.1%}")
    summary.append(f"defrags: {report.defrag_count}")
    summary.append(f"feasible: {report.all_feasible}")
    lines.append(", ".join(summary))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The simulation loop: a synchronous driver over TickEngine
# ----------------------------------------------------------------------
def simulate(
    trace: ChurnTrace,
    online: _OnlineAlgorithm | None = None,
    *,
    seed: int = 0,
    defrag: DefragSchedule | None = None,
    oracle: ArrangementAlgorithm | None = None,
    oracle_every: int = 0,
    defrag_lp: bool = True,
    defrag_lp_backend: str = "auto",
    defrag_lp_incremental: bool = False,
    max_passes: int = 20,
    workers: int | None = None,
    check_parity: bool = False,
) -> SimulationReport:
    """Run the dynamic-platform loop over a churn trace.

    Args:
        trace: the initial instance and delta batches; each delta's
            ``add_users`` are this tick's online arrivals.
        online: the arrival-serving policy (default:
            :class:`~repro.core.online.OnlineGreedy`).  Also produces the
            initial arrangement — the pre-trace population arrived online
            too.
        seed: RNG seed (initial solve, randomized serving, oracle and
            defrag re-solves derive decorrelated per-tick seeds from it).
        defrag: the defragmentation schedule (default: never).
        oracle: full re-solve algorithm for the retention curve (default:
            ``gg+ls``, the strongest non-LP combination).
        oracle_every: run the oracle every k-th tick, plus on the final
            tick (0: never — retention/debt fields stay None and
            :class:`RetentionDefrag` never triggers).
        defrag_lp: during defrag, also run a warm-started LP-packing
            re-solve and adopt its arrangement when it beats the repaired
            one.
        defrag_lp_backend: LP backend for that re-solve.  The default
            ``"auto"`` prefers scipy/HiGHS (fastest at scale; the warm
            hint is ignored there) and falls back to the from-scratch
            revised simplex, which consumes the basis threaded across
            defrags; force ``"revised-simplex"`` to exercise the warm
            start explicitly on small platforms.
        defrag_lp_incremental: maintain that resolver's LP as one
            delta-patched program — every churn batch is folded in via
            ``observe_delta`` and each defrag re-solve starts from the
            previous optimal basis (sublinear in platform size for small
            deltas) instead of rebuilding.  Same LP optimum; the sampled
            arrangement may sit on a different optimal vertex than the
            ``defrag_lp_backend`` solver's.
        max_passes: local-search pass cap for repair and defrag sweeps.
        workers: shard-parallel repair across this many worker processes
            (None/0: serial).
        check_parity: rebuild the index from scratch per tick and compare
            against the patched one (adds the fresh build's cost — leave
            off when timing, on when verifying).

    Returns:
        A :class:`SimulationReport` with per-tick records.

    Raises:
        SimulationInfeasibleError: when a tick's arrangement fails the full
            feasibility audit (never expected; a delta/repair invariant
            would be broken).  The partial report rides on the exception.
    """
    executor = None
    if workers:
        from concurrent.futures import ProcessPoolExecutor

        executor = ProcessPoolExecutor(max_workers=workers)
    try:
        engine = TickEngine(
            trace.initial,
            online,
            seed=seed,
            defrag=defrag,
            oracle=oracle,
            oracle_every=oracle_every,
            defrag_lp=defrag_lp,
            defrag_lp_backend=defrag_lp_backend,
            defrag_lp_incremental=defrag_lp_incremental,
            max_passes=max_passes,
            executor=executor,
            check_parity=check_parity,
        )
        return _simulate(trace, engine)
    finally:
        if executor is not None:
            executor.shutdown()


def _simulate(trace: ChurnTrace, engine: TickEngine) -> SimulationReport:
    initial_utility, initial_seconds = engine.bootstrap()
    report = SimulationReport(
        online_algorithm=engine.online.name,
        oracle_algorithm=engine.oracle.name,
        defrag_schedule=engine.defrag.name,
        initial_utility=initial_utility,
        initial_seconds=initial_seconds,
    )
    last_tick = len(trace.deltas) - 1
    for tick, delta in enumerate(trace.deltas):
        tick_started = time.perf_counter()
        result = engine.apply_churn(delta)
        accepted = engine.serve_arrivals(result, delta)
        repair_moves = engine.repair(result)

        utility = engine.utility()
        defragged = engine.should_defrag(tick, utility)
        defrag_moves = None
        if defragged:
            defrag_moves, utility = engine.defragment(result, tick)
        seconds = time.perf_counter() - tick_started

        tick_oracle: float | None = None
        if engine.should_run_oracle(tick, last_tick):
            tick_oracle = engine.oracle_solve(tick)
        repair_debt = engine.repair_debt(utility)

        feasible, parity = engine.audit(result)
        report.records.append(
            TickRecord(
                tick=tick,
                operations=delta.summary(),
                num_users=result.instance.num_users,
                num_events=result.instance.num_events,
                num_pairs=len(engine.arrangement),
                arrivals=len(delta.add_users),
                accepted=accepted,
                dropped_pairs=len(result.dropped_pairs),
                repair_moves=repair_moves,
                defrag=defragged,
                defrag_moves=defrag_moves,
                utility=utility,
                oracle_utility=tick_oracle,
                repair_debt=repair_debt,
                seconds=seconds,
                feasible=feasible,
                parity_mismatches=parity,
            )
        )
        if not feasible:
            # Recorded first, and the partial report rides on the error,
            # so the failing tick stays inspectable.
            raise SimulationInfeasibleError(
                f"tick {tick}: arrangement is infeasible: "
                f"{engine.arrangement.violations()[:5]}",
                report,
            )
    return report
