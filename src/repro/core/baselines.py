"""Baseline algorithms from the paper's evaluation (§IV "Baselines").

* :class:`RandomU` — "Random-U [4]": scan users in random order; each user
  greedily joins a random feasible subset of their bids.
* :class:`RandomV` — "Random-V [4]": scan events in random order; each event
  admits random feasible bidders until full.
* :class:`GGGreedy` — "GG (an extension of the Greedy-GEACC algorithm [4])":
  globally greedy on the pair weight ``w(u, v)``, which extends
  Greedy-GEACC's interest-greedy rule to IGEPA's interaction-aware weight.

All three produce feasible arrangements by construction (each insertion is
checked against the bid, capacity and conflict constraints).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import ArrangementAlgorithm
from repro.model.arrangement import Arrangement
from repro.model.instance import IGEPAInstance


class RandomU(ArrangementAlgorithm):
    """Random user-side baseline.

    Users are visited in a uniformly random order; each user walks their bid
    list in a uniformly random order and joins every event that keeps the
    arrangement feasible (until the user's capacity is exhausted).
    """

    name = "random-u"

    def _solve(
        self, instance: IGEPAInstance, rng: np.random.Generator
    ) -> tuple[Arrangement, dict]:
        arrangement = Arrangement(instance)
        users = list(instance.users)
        rng.shuffle(users)
        attempts = 0
        for user in users:
            bids = list(user.bids)
            rng.shuffle(bids)
            for event_id in bids:
                if arrangement.load(user.user_id) >= user.capacity:
                    break
                attempts += 1
                if arrangement.can_add(event_id, user.user_id):
                    arrangement.add(event_id, user.user_id, check=False)
        return arrangement, {"attempted_pairs": attempts}


class RandomV(ArrangementAlgorithm):
    """Random event-side baseline.

    Events are visited in a uniformly random order; each event admits
    bidders drawn in a uniformly random order while it has remaining
    capacity and the bidder can feasibly attend.
    """

    name = "random-v"

    def _solve(
        self, instance: IGEPAInstance, rng: np.random.Generator
    ) -> tuple[Arrangement, dict]:
        arrangement = Arrangement(instance)
        events = list(instance.events)
        rng.shuffle(events)
        attempts = 0
        for event in events:
            bidders = instance.bidders(event.event_id)
            rng.shuffle(bidders)
            for user_id in bidders:
                if arrangement.attendance(event.event_id) >= event.capacity:
                    break
                attempts += 1
                if arrangement.can_add(event.event_id, user_id):
                    arrangement.add(event.event_id, user_id, check=False)
        return arrangement, {"attempted_pairs": attempts}


class GGGreedy(ArrangementAlgorithm):
    """GG: global greedy on ``w(u, v)`` (extension of Greedy-GEACC [4]).

    All candidate (event, user) bid pairs are ordered by decreasing weight
    and inserted when feasible.  Because weights are static and feasibility
    only shrinks as pairs are added, a single pass over the sorted pairs is
    exactly the iterated "take the best feasible pair" greedy.

    Deterministic: ties break on (event id, user id); the RNG is unused.
    """

    name = "gg"

    def _solve(
        self, instance: IGEPAInstance, rng: np.random.Generator
    ) -> tuple[Arrangement, dict]:
        index = instance.index
        if index.num_bids == 0:
            return Arrangement(instance), {"candidate_pairs": 0}
        # One row per bid pair, straight from the CSR incidence.
        upos = index.bid_user_positions
        vpos = index.bid_indices
        weights = index.bid_weights
        user_ids = index.user_ids[upos]
        event_ids = index.event_ids[vpos]
        # Sort by (-w, event_id, user_id): negation of IEEE doubles is exact,
        # so the order matches the tuple sort it replaces bit for bit.
        order = np.lexsort((user_ids, event_ids, -weights))

        # Greedy scan over plain Python scalars (cheaper than per-element
        # ndarray indexing); the arrangement is assembled afterwards.
        attendance = [0] * index.num_events
        load = [0] * index.num_users
        event_cap = index.event_capacity.tolist()
        user_cap = index.user_capacity.tolist()
        assigned_events: list[list[int]] = [[] for _ in range(index.num_users)]
        conflict = index.conflict_matrix
        upos_list = upos.tolist()
        vpos_list = vpos.tolist()
        survivors: list[tuple[int, int]] = []
        for k in order.tolist():
            i = upos_list[k]
            j = vpos_list[k]
            if attendance[j] >= event_cap[j] or load[i] >= user_cap[i]:
                continue
            row = conflict[j]
            if any(row[p] for p in assigned_events[i]):
                continue
            attendance[j] += 1
            load[i] += 1
            assigned_events[i].append(j)
            survivors.append((int(event_ids[k]), int(user_ids[k])))
        arrangement = Arrangement.from_pairs(instance, survivors, check=False)
        return arrangement, {"candidate_pairs": index.num_bids}
