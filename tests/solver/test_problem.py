"""Unit tests for the LinearProgram model."""

import math

import numpy as np
import pytest

from repro.solver import Constraint, LinearProgram, Sense


class TestVariables:
    def test_add_variable_returns_sequential_indices(self):
        lp = LinearProgram()
        assert lp.add_variable("a") == 0
        assert lp.add_variable("b") == 1
        assert lp.num_variables == 2

    def test_default_bounds_are_nonnegative(self):
        lp = LinearProgram()
        lp.add_variable("x")
        assert lp.variables[0].lower == 0.0
        assert lp.variables[0].upper == math.inf

    def test_auto_generated_names(self):
        lp = LinearProgram()
        lp.add_variable()
        lp.add_variable()
        assert [v.name for v in lp.variables] == ["x0", "x1"]

    def test_duplicate_name_raises(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(ValueError, match="duplicate"):
            lp.add_variable("x")

    def test_inverted_bounds_raise(self):
        lp = LinearProgram()
        with pytest.raises(ValueError, match="lower"):
            lp.add_variable("x", lower=2.0, upper=1.0)

    def test_integer_marker(self):
        lp = LinearProgram()
        lp.add_variable("x", is_integer=True)
        lp.add_variable("y")
        assert lp.has_integer_variables
        assert lp.variables[0].is_integer
        assert not lp.variables[1].is_integer

    def test_no_integer_variables(self):
        lp = LinearProgram()
        lp.add_variable("x")
        assert not lp.has_integer_variables


class TestConstraints:
    def test_add_constraint_drops_zero_coefficients(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        lp.add_constraint({x: 1.0, y: 0.0}, Sense.LE, 5.0)
        assert lp.constraints[0].coefficients == {x: 1.0}

    def test_unknown_variable_index_raises(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(IndexError, match="unknown variable"):
            lp.add_constraint({7: 1.0}, Sense.LE, 1.0)

    def test_constraint_evaluate(self):
        c = Constraint("c", {0: 2.0, 2: -1.0}, Sense.LE, 4.0)
        assert c.evaluate(np.array([1.0, 9.0, 3.0])) == pytest.approx(-1.0)

    def test_constraint_satisfaction_le(self):
        c = Constraint("c", {0: 1.0}, Sense.LE, 1.0)
        assert c.is_satisfied(np.array([0.5]))
        assert c.is_satisfied(np.array([1.0]))
        assert not c.is_satisfied(np.array([1.5]))

    def test_constraint_satisfaction_ge(self):
        c = Constraint("c", {0: 1.0}, Sense.GE, 1.0)
        assert not c.is_satisfied(np.array([0.5]))
        assert c.is_satisfied(np.array([1.5]))

    def test_constraint_satisfaction_eq(self):
        c = Constraint("c", {0: 1.0}, Sense.EQ, 1.0)
        assert c.is_satisfied(np.array([1.0]))
        assert not c.is_satisfied(np.array([1.1]))


class TestProgramQueries:
    def _small_lp(self):
        lp = LinearProgram(maximize=True)
        x = lp.add_variable("x", upper=4.0, objective=3.0)
        y = lp.add_variable("y", upper=2.0, objective=5.0)
        lp.add_constraint({x: 1.0, y: 2.0}, Sense.LE, 8.0)
        return lp, x, y

    def test_objective_vector_and_value(self):
        lp, _, _ = self._small_lp()
        assert lp.objective_vector() == pytest.approx([3.0, 5.0])
        assert lp.objective_value(np.array([1.0, 1.0])) == pytest.approx(8.0)

    def test_dense_constraint_matrix(self):
        lp, _, _ = self._small_lp()
        a, senses, b = lp.dense_constraint_matrix()
        assert a == pytest.approx(np.array([[1.0, 2.0]]))
        assert senses == [Sense.LE]
        assert b == pytest.approx([8.0])

    def test_is_feasible_checks_bounds_and_rows(self):
        lp, _, _ = self._small_lp()
        assert lp.is_feasible(np.array([4.0, 2.0]))
        assert not lp.is_feasible(np.array([5.0, 0.0]))  # bound violated
        assert not lp.is_feasible(np.array([-0.1, 0.0]))  # lower bound
        assert not lp.is_feasible(np.array([4.0, 2.5]))  # row and bound

    def test_is_feasible_rejects_wrong_shape(self):
        lp, _, _ = self._small_lp()
        with pytest.raises(ValueError, match="shape"):
            lp.is_feasible(np.array([1.0]))

    def test_copy_is_deep_for_bounds_and_rows(self):
        lp, x, _ = self._small_lp()
        clone = lp.copy()
        clone.variables[x].upper = 99.0
        clone.constraints[0].coefficients[x] = 7.0
        assert lp.variables[x].upper == 4.0
        assert lp.constraints[0].coefficients[x] == 1.0

    def test_repr_mentions_shape_and_kind(self):
        lp, _, _ = self._small_lp()
        assert "vars=2" in repr(lp)
        assert "LP" in repr(lp)
        lp.add_variable("z", is_integer=True)
        assert "ILP" in repr(lp)
