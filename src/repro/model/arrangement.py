"""Event-participant arrangements (Definition 4) and their utility (Definition 7).

An :class:`Arrangement` is a mutable set of (event, user) pairs bound to an
:class:`~repro.model.instance.IGEPAInstance`.  Mutations check the three
feasibility constraints *incrementally* (O(c_u) per insert), so algorithm
implementations can build arrangements pair by pair and rely on the model to
reject violations:

* **Bid** — users only join events they bid for;
* **Capacity** — both ``c_v`` (attendees per event) and ``c_u`` (events per
  user);
* **Conflict** — no user attends two conflicting events.

State is array-backed through the instance's
:class:`~repro.model.index.InstanceIndex`: a boolean assignment matrix plus
per-event attendance and per-user load counters, so membership, capacity and
conflict checks are array lookups and ``utility()`` / the feasibility audit
are vectorized.  Pairs whose ids are unknown to the instance (only reachable
via ``add(..., check=False)``) are kept in a small side set so the audit can
still report them.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator

import numpy as np

from repro.model.errors import ArrangementError
from repro.model.instance import IGEPAInstance


class Arrangement:
    """A feasible (by construction) collection of event-user pairs.

    Use ``add(..., check=False)`` only when the caller guarantees
    feasibility; ``is_feasible()`` / ``violations()`` re-verify from scratch.
    """

    def __init__(self, instance: IGEPAInstance) -> None:
        self.instance = instance
        index = instance.index
        self._idx = index
        self._pairs: set[tuple[int, int]] = set()
        # Sanctioned dense storage: 1 byte/cell bool, the arrangement's own
        # representation (mirrors the LP variable grid, not a weight slab).
        self._assigned = np.zeros(  # igepa: ignore[IGP002]
            (index.num_users, index.num_events), dtype=bool
        )
        self._attendance = np.zeros(index.num_events, dtype=np.int64)
        self._load = np.zeros(index.num_users, dtype=np.int64)
        # Assigned event positions per user position, in insertion order.
        self._user_events: list[list[int]] = [[] for _ in range(index.num_users)]
        # Pairs referencing ids the instance does not know (check=False only).
        self._extra_pairs: set[tuple[int, int]] = set()
        # Count of assigned known pairs that violate the bid constraint.
        self._nonbid_count = 0

    # ------------------------------------------------------------------
    # Content
    # ------------------------------------------------------------------
    @property
    def pairs(self) -> set[tuple[int, int]]:
        """All ``(event_id, user_id)`` pairs (copy)."""
        return set(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __contains__(self, pair: tuple[int, int]) -> bool:
        return pair in self._pairs

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self._pairs)

    def events_of(self, user_id: int) -> set[int]:
        """Events currently assigned to the user."""
        index = self._idx
        upos = index.user_pos.get(user_id)
        result: set[int] = set()
        if upos is not None:
            event_ids = index.event_ids
            result = {int(event_ids[p]) for p in self._user_events[upos]}
        if self._extra_pairs:
            result |= {e for e, u in self._extra_pairs if u == user_id}
        return result

    def users_of(self, event_id: int) -> set[int]:
        """Users currently assigned to the event."""
        index = self._idx
        vpos = index.event_pos.get(event_id)
        result: set[int] = set()
        if vpos is not None:
            result = {
                int(u) for u in index.user_ids[np.flatnonzero(self._assigned[:, vpos])]
            }
        if self._extra_pairs:
            result |= {u for e, u in self._extra_pairs if e == event_id}
        return result

    def attendance(self, event_id: int) -> int:
        """Number of users assigned to the event."""
        vpos = self._idx.event_pos.get(event_id)
        count = 0 if vpos is None else int(self._attendance[vpos])
        if self._extra_pairs:
            count += sum(1 for e, _ in self._extra_pairs if e == event_id)
        return count

    def load(self, user_id: int) -> int:
        """Number of events assigned to the user."""
        upos = self._idx.user_pos.get(user_id)
        count = 0 if upos is None else int(self._load[upos])
        if self._extra_pairs:
            count += sum(1 for _, u in self._extra_pairs if u == user_id)
        return count

    # ------------------------------------------------------------------
    # Array views (positions are InstanceIndex coordinates)
    # ------------------------------------------------------------------
    @property
    def attendance_counts(self) -> np.ndarray:
        """Per-event-position attendance — live view, do not mutate."""
        return self._attendance

    @property
    def load_counts(self) -> np.ndarray:
        """Per-user-position load — live view, do not mutate."""
        return self._load

    @property
    def assignment_matrix(self) -> np.ndarray:
        """Boolean (users × events) assignment — live view, do not mutate."""
        return self._assigned

    def assigned_event_positions(self, upos: int) -> list[int]:
        """Assigned event positions of a user position, in insertion order —
        live view, do not mutate."""
        return self._user_events[upos]

    def is_clean(self) -> bool:
        """All pairs are known bid pairs — the array views cover everything
        and the vectorized totals are exact."""
        return not self._extra_pairs and not self._nonbid_count

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _addition_violation(
        self, event_id: int, user_id: int, explain: bool
    ) -> str | None:
        """The single rule set behind ``can_add`` and checked ``add``.

        Returns None when the pair is addable; otherwise a violation marker —
        the full message when ``explain``, the empty string when the caller
        only needs a boolean (skipping the f-string work on hot paths).
        """
        index = self._idx
        vpos = index.event_pos.get(event_id)
        if vpos is None:
            return f"unknown event id {event_id}" if explain else ""
        upos = index.user_pos.get(user_id)
        if upos is None:
            return f"unknown user id {user_id}" if explain else ""
        if self._assigned[upos, vpos]:
            return (
                f"pair ({event_id}, {user_id}) already present" if explain else ""
            )
        if not index.is_bid_pair(upos, vpos):
            return (
                f"bid constraint: user {user_id} did not bid for event {event_id}"
                if explain
                else ""
            )
        if self._attendance[vpos] >= index.event_capacity[vpos]:
            return (
                f"capacity constraint: event {event_id} is full "
                f"(c_v = {int(index.event_capacity[vpos])})"
                if explain
                else ""
            )
        if self._load[upos] >= index.user_capacity[upos]:
            return (
                f"capacity constraint: user {user_id} is at capacity "
                f"(c_u = {int(index.user_capacity[upos])})"
                if explain
                else ""
            )
        row = index.conflict_matrix[vpos]
        for assigned in self._user_events[upos]:
            if row[assigned]:
                return (
                    f"conflict constraint: events {event_id} and "
                    f"{int(index.event_ids[assigned])} conflict for user {user_id}"
                    if explain
                    else ""
                )
        return None

    def can_add(self, event_id: int, user_id: int) -> bool:
        """Whether adding the pair keeps the arrangement feasible."""
        return self._addition_violation(event_id, user_id, explain=False) is None

    def _check_addition(self, event_id: int, user_id: int) -> None:
        problem = self._addition_violation(event_id, user_id, explain=True)
        if problem is not None:
            raise ArrangementError(problem)

    def add(self, event_id: int, user_id: int, check: bool = True) -> None:
        """Add a pair.

        Raises:
            ArrangementError: when ``check`` and the pair violates a
                constraint of Definition 4 (or is already present).
        """
        if check:
            self._check_addition(event_id, user_id)
        index = self._idx
        vpos = index.event_pos.get(event_id)
        upos = index.user_pos.get(user_id)
        self._pairs.add((event_id, user_id))
        if vpos is None or upos is None:
            self._extra_pairs.add((event_id, user_id))
            return
        if self._assigned[upos, vpos]:
            return  # unchecked re-add: keep set semantics, counters untouched
        self._assigned[upos, vpos] = True
        self._attendance[vpos] += 1
        self._load[upos] += 1
        self._user_events[upos].append(vpos)
        if not index.is_bid_pair(upos, vpos):
            self._nonbid_count += 1

    def remove(self, event_id: int, user_id: int) -> None:
        """Remove a pair.

        Raises:
            ArrangementError: if the pair is not present.
        """
        if (event_id, user_id) not in self._pairs:
            raise ArrangementError(f"pair ({event_id}, {user_id}) not in arrangement")
        self._pairs.discard((event_id, user_id))
        if (event_id, user_id) in self._extra_pairs:
            self._extra_pairs.discard((event_id, user_id))
            return
        index = self._idx
        vpos = index.event_pos[event_id]
        upos = index.user_pos[user_id]
        self._assigned[upos, vpos] = False
        self._attendance[vpos] -= 1
        self._load[upos] -= 1
        self._user_events[upos].remove(vpos)
        if not index.is_bid_pair(upos, vpos):
            self._nonbid_count -= 1

    @classmethod
    def from_pairs(
        cls,
        instance: IGEPAInstance,
        pairs: Iterable[tuple[int, int]],
        check: bool = True,
    ) -> "Arrangement":
        """Build an arrangement from ``(event_id, user_id)`` pairs."""
        arrangement = cls(instance)
        for event_id, user_id in pairs:
            arrangement.add(event_id, user_id, check=check)
        return arrangement

    # ------------------------------------------------------------------
    # Feasibility audit (full re-check, independent of incremental guards)
    # ------------------------------------------------------------------
    def _has_violation(self) -> bool:
        """Vectorized any-violation probe over the array state."""
        if self._extra_pairs or self._nonbid_count:
            return True
        index = self._idx
        if np.any(self._attendance > index.event_capacity):
            return True
        if np.any(self._load > index.user_capacity):
            return True
        multi = np.flatnonzero(self._load >= 2)
        if multi.size:
            # A user attends conflicting events iff their assignment row hits
            # the conflict matrix: (B C) ∘ B has a positive entry.  Only rows
            # with two or more events can hit, so the product is restricted
            # to them — O(multi · |V|²) instead of O(|U| · |V|²).
            rows = self._assigned[multi]
            hits = rows.astype(np.float32) @ index.conflict_f32
            if bool(np.any(hits[rows] > 0.0)):
                return True
        return False

    def violations(self) -> list[str]:
        """All constraint violations in the current pair set."""
        if not self._has_violation():
            return []
        instance = self.instance
        problems: list[str] = []
        for event_id, user_id in sorted(self._pairs):
            user = instance.user_by_id.get(user_id)
            if user is None:
                problems.append(f"unknown user {user_id}")
                continue
            if event_id not in instance.event_by_id:
                problems.append(f"unknown event {event_id}")
                continue
            if event_id not in user.bid_set:
                problems.append(
                    f"bid: user {user_id} assigned to non-bid event {event_id}"
                )
        by_event: dict[int, set[int]] = {}
        by_user: dict[int, set[int]] = {}
        for event_id, user_id in self._pairs:
            by_event.setdefault(event_id, set()).add(user_id)
            by_user.setdefault(user_id, set()).add(event_id)
        for event_id, users in sorted(by_event.items()):
            event = instance.event_by_id.get(event_id)
            if event is not None and len(users) > event.capacity:
                problems.append(
                    f"capacity: event {event_id} has {len(users)} attendees, "
                    f"c_v = {event.capacity}"
                )
        for user_id, events in sorted(by_user.items()):
            user = instance.user_by_id.get(user_id)
            if user is not None and len(events) > user.capacity:
                problems.append(
                    f"capacity: user {user_id} attends {len(events)} events, "
                    f"c_u = {user.capacity}"
                )
            ordered = sorted(e for e in events if e in instance.event_by_id)
            for i, first in enumerate(ordered):
                for second in ordered[i + 1 :]:
                    if instance.conflicts(first, second):
                        problems.append(
                            f"conflict: user {user_id} attends conflicting events "
                            f"{first} and {second}"
                        )
        return problems

    def is_feasible(self) -> bool:
        """Full feasibility audit (Definition 4)."""
        return not self._has_violation()

    # ------------------------------------------------------------------
    # Utility (Definition 7)
    # ------------------------------------------------------------------
    def utility(self) -> float:
        """``β·Σ SI + (1-β)·Σ D`` over all assigned pairs.

        The clean path gathers the pair weights from the index and sums them
        with :func:`math.fsum` — correctly rounded and independent of pair
        insertion order, so equal arrangements always report equal utility.
        """
        if not self._pairs:
            return 0.0
        if self.is_clean():
            return math.fsum(self._idx.assigned_weight_total(self._assigned))
        return sum(
            self.instance.weight(user_id, event_id)
            for event_id, user_id in self._pairs
        )

    def interest_total(self) -> float:
        """The Σ SI part of the utility (before the β weighting)."""
        if not self._pairs:
            return 0.0
        if self.is_clean():
            return math.fsum(self._idx.assigned_si_total(self._assigned))
        return sum(
            self.instance.interest_of(event_id, user_id)
            for event_id, user_id in self._pairs
        )

    def interaction_total(self) -> float:
        """The Σ D part of the utility (before the 1-β weighting)."""
        if not self._pairs:
            return 0.0
        if self.is_clean():
            return float(self._idx.degrees @ self._load)
        return sum(
            self.instance.degree(user_id) for _, user_id in self._pairs
        )

    def copy(self) -> "Arrangement":
        clone = Arrangement.__new__(Arrangement)
        clone.instance = self.instance
        clone._idx = self._idx
        clone._pairs = set(self._pairs)
        clone._assigned = self._assigned.copy()
        clone._attendance = self._attendance.copy()
        clone._load = self._load.copy()
        clone._user_events = [list(events) for events in self._user_events]
        clone._extra_pairs = set(self._extra_pairs)
        clone._nonbid_count = self._nonbid_count
        return clone

    def __repr__(self) -> str:
        return (
            f"Arrangement(pairs={len(self._pairs)}, "
            f"utility={self.utility():.4f})"
        )
