"""Result type shared by every arrangement algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.arrangement import Arrangement


@dataclass
class ArrangementResult:
    """Outcome of one algorithm run on one instance.

    Attributes:
        algorithm: algorithm display name (``lp-packing``, ``gg``, ...).
        arrangement: the produced feasible arrangement.
        utility: ``arrangement.utility()`` (cached at construction).
        runtime_seconds: wall-clock time of the solve call.
        details: algorithm-specific diagnostics (LP objective, sampled pairs,
            dropped pairs, solver backend, ...).
    """

    algorithm: str
    arrangement: Arrangement
    utility: float
    runtime_seconds: float = 0.0
    details: dict = field(default_factory=dict)

    @property
    def pairs(self) -> set[tuple[int, int]]:
        """The ``(event_id, user_id)`` pairs of the arrangement."""
        return self.arrangement.pairs

    @property
    def num_pairs(self) -> int:
        return len(self.arrangement)

    def __repr__(self) -> str:
        return (
            f"ArrangementResult({self.algorithm!r}, utility={self.utility:.4f}, "
            f"pairs={self.num_pairs}, {self.runtime_seconds * 1e3:.1f} ms)"
        )
