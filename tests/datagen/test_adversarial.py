"""Unit tests for the adversarial / stress workloads."""

import numpy as np
import pytest

from repro.core import ExactILP, GGGreedy, LPPacking, RandomU, lp_upper_bound
from repro.core.admissible import enumerate_admissible_sets
from repro.datagen import (
    INTEGRALITY_GAP_SEEDS,
    conflict_clique,
    greedy_trap,
    hotspot,
    integrality_gap_instance,
    small_tight_instance,
)


class TestGreedyTrap:
    def test_gg_loses_the_designed_amount(self):
        instance = greedy_trap(num_copies=4)
        gg = GGGreedy().solve(instance).utility
        optimum = ExactILP().solve(instance).utility
        assert gg == pytest.approx(4 * 0.6)
        assert optimum == pytest.approx(4 * 1.05)
        assert gg / optimum == pytest.approx(0.6 / 1.05)

    def test_lp_packing_finds_the_optimum(self):
        instance = greedy_trap(num_copies=4)
        result = LPPacking(alpha=1.0).solve(instance, seed=0)
        assert result.utility == pytest.approx(4 * 1.05)

    def test_scales_with_copies(self):
        for copies in (1, 3, 7):
            instance = greedy_trap(num_copies=copies)
            assert instance.num_events == 2 * copies
            assert instance.num_users == 2 * copies


class TestIntegralityGap:
    @pytest.mark.parametrize("rank", range(len(INTEGRALITY_GAP_SEEDS)))
    def test_lp_strictly_above_ilp(self, rank):
        instance = integrality_gap_instance(rank)
        bound = lp_upper_bound(instance)
        optimum = ExactILP().solve(instance).utility
        assert bound > optimum + 1e-6, (
            f"seed {INTEGRALITY_GAP_SEEDS[rank]} lost its gap: "
            f"LP*={bound}, OPT={optimum}"
        )

    def test_lp_packing_still_feasible_and_bounded(self):
        instance = integrality_gap_instance(0)
        optimum = ExactILP().solve(instance).utility
        utilities = [
            LPPacking(alpha=1.0).solve(instance, seed=s).utility for s in range(30)
        ]
        assert all(u <= optimum + 1e-9 for u in utilities)
        assert float(np.mean(utilities)) >= 0.25 * lp_upper_bound(instance)

    def test_small_tight_instance_determinism(self):
        a = small_tight_instance(90)
        b = small_tight_instance(90)
        assert [u.bids for u in a.users] == [u.bids for u in b.users]


class TestHotspot:
    def test_hotspot_oversubscription(self):
        instance = hotspot(num_users=50, hotspot_capacity=3, seed=0)
        assert len(instance.bidders(0)) == 50
        assert instance.event_by_id[0].capacity == 3

    def test_repair_enforces_hotspot_capacity(self):
        instance = hotspot(num_users=50, hotspot_capacity=3, seed=0)
        result = LPPacking(alpha=1.0).solve(instance, seed=0)
        assert result.arrangement.attendance(0) <= 3
        assert result.arrangement.is_feasible()

    def test_lp_routes_surplus_to_fillers_better_than_random(self):
        instance = hotspot(num_users=100, hotspot_capacity=5, seed=1)
        lp_mean = np.mean(
            [LPPacking().solve(instance, seed=s).utility for s in range(10)]
        )
        random_mean = np.mean(
            [RandomU().solve(instance, seed=s).utility for s in range(10)]
        )
        assert lp_mean > random_mean


class TestConflictClique:
    def test_admissible_sets_are_singletons(self):
        instance = conflict_clique(seed=0)
        for user in instance.users:
            sets = enumerate_admissible_sets(instance, user)
            assert all(len(events) == 1 for events in sets)

    def test_each_user_attends_at_most_one_event(self):
        instance = conflict_clique(seed=0)
        result = LPPacking().solve(instance, seed=0)
        for user in instance.users:
            assert result.arrangement.load(user.user_id) <= 1

    def test_gg_is_competitive_in_matching_regime(self):
        """With singleton sets the LP is a b-matching; GG must land within
        a few percent of LP-packing (the 'no LP advantage' control)."""
        instance = conflict_clique(seed=0)
        lp = LPPacking().solve(instance, seed=0).utility
        gg = GGGreedy().solve(instance).utility
        assert gg >= 0.9 * lp
