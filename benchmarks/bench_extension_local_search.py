"""Extension: local-search post-processing on top of each algorithm.

Quantifies how much the add/upgrade/evict improvement layer lifts every
algorithm of the paper.  Expected shape: large lifts for the random
baselines (they leave obvious moves on the table), small lifts for GG and
LP-packing (already near locally-optimal).
"""

import numpy as np

from benchmarks.conftest import BENCH_SEED, write_report
from repro.core import GGGreedy, LocalSearch, LPPacking, RandomU, RandomV
from repro.datagen import SyntheticConfig, generate_synthetic

RUNS = 5
CONFIG = SyntheticConfig(num_events=40, num_users=400, max_event_capacity=5)


def _run_comparison():
    instance = generate_synthetic(CONFIG, seed=BENCH_SEED)
    rows = []
    for base_factory in (LPPacking, GGGreedy, RandomU, RandomV):
        base = base_factory()
        wrapped = LocalSearch(base_factory())
        base_mean = float(
            np.mean([base.solve(instance, seed=s).utility for s in range(RUNS)])
        )
        improved_mean = float(
            np.mean([wrapped.solve(instance, seed=s).utility for s in range(RUNS)])
        )
        rows.append((base.name, base_mean, improved_mean))
    return rows


def bench_extension_local_search(bench_once):
    rows = bench_once(_run_comparison)

    for name, base_mean, improved_mean in rows:
        assert improved_mean >= base_mean - 1e-9, f"{name}: local search hurt"
    lifts = {name: improved / base - 1.0 for name, base, improved in rows}
    # Random baselines must gain more than the LP-guided algorithm.
    assert lifts["random-u"] >= lifts["lp-packing"]
    assert lifts["random-v"] >= lifts["lp-packing"]

    lines = [
        f"Extension: local-search post-processing ({RUNS} runs each)",
        f"{'base':>12} {'utility':>10} {'+local search':>14} {'lift':>7}",
    ]
    for name, base_mean, improved_mean in rows:
        lines.append(
            f"{name:>12} {base_mean:>10.2f} {improved_mean:>14.2f} "
            f"{improved_mean / base_mean - 1:>6.1%}"
        )
    write_report("extension_local_search", "\n".join(lines))
