"""Minimal pure-NumPy sparse (CSC) matrix for the LP solver stack.

The benchmark LP (1)-(4) is *wide* and extremely sparse: one column per
(user, admissible set) pair with only ``1 + |S|`` nonzeros each, over
``|U| + |V|`` rows.  Materializing it densely costs ``m x n`` doubles
(gigabytes at |U| = 4000+) and makes every simplex pricing pass O(m*n).
This module provides just enough compressed-sparse-column machinery for the
revised simplex:

* :meth:`CSCMatrix.from_coo` — build from triplets (duplicates are summed),
* :meth:`CSCMatrix.price` / :meth:`CSCMatrix.price_block` — the pricing
  product ``duals @ A[:, :allowed]`` as a single ``bincount`` segment sum,
* :meth:`CSCMatrix.column` — O(nnz_j) column extraction for the eta update,
* :meth:`CSCMatrix.gather_dense` — dense basis matrix for refactorization,
* :meth:`CSCMatrix.with_identity` — ``[A | I]`` for the phase-1 basis.

scipy.sparse is deliberately not used: the from-scratch backends must work
with NumPy alone (scipy is an optional dependency of this repository).

:class:`DenseMatrix` wraps an ``np.ndarray`` behind the same interface so
:class:`~repro.solver.revised_simplex._RevisedCore` is representation-
agnostic; :func:`repro.solver.api.solve_lp` picks the representation by
problem size.
"""

from __future__ import annotations

import numpy as np


class CSCMatrix:
    """An immutable ``m x n`` sparse matrix in compressed-sparse-column form.

    Attributes:
        shape: ``(m, n)``.
        indptr: ``(n + 1,)`` column pointers into ``indices``/``data``.
        indices: ``(nnz,)`` row index of each stored entry, ascending within
            a column.
        data: ``(nnz,)`` entry values.
    """

    __slots__ = ("shape", "indptr", "indices", "data", "_col_ids")

    def __init__(
        self,
        shape: tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ):
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=float)
        self._col_ids: np.ndarray | None = None  # lazy, for price()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        shape: tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        *,
        presorted: bool = False,
    ) -> "CSCMatrix":
        """Build from COO triplets; duplicate ``(row, col)`` entries are summed.

        ``presorted=True`` asserts the triplets are already in ``(col, row)``
        lexicographic order and skips the lexsort — the caller's contract
        (e.g. :func:`~repro.solver.standard_form.to_standard_form` reusing a
        cached sort order); duplicates must then be adjacent, which sorted
        order guarantees.
        """
        m, n = shape
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=float)
        if rows.size == 0:
            return cls((m, n), np.zeros(n + 1, dtype=np.int64),
                       np.empty(0, dtype=np.int64), np.empty(0))
        if not presorted:
            order = np.lexsort((rows, cols))
            rows, cols, vals = rows[order], cols[order], vals[order]
        # Collapse duplicates: boundaries of (col, row) runs.
        new_run = np.empty(rows.size, dtype=bool)
        new_run[0] = True
        np.logical_or(cols[1:] != cols[:-1], rows[1:] != rows[:-1], out=new_run[1:])
        starts = np.flatnonzero(new_run)
        data = np.add.reduceat(vals, starts)
        rows = rows[starts]
        cols = cols[starts]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, cols + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls((m, n), indptr, rows, data)

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def _column_ids(self) -> np.ndarray:
        """Column index of every stored entry (cached)."""
        if self._col_ids is None:
            self._col_ids = np.repeat(
                np.arange(self.shape[1], dtype=np.int64), np.diff(self.indptr)
            )
        return self._col_ids

    # ------------------------------------------------------------------
    # Solver operations
    # ------------------------------------------------------------------
    def price(self, duals: np.ndarray, allowed: int) -> np.ndarray:
        """``duals @ A[:, :allowed]`` as one segment sum over the nonzeros."""
        end = int(self.indptr[allowed])
        contrib = duals[self.indices[:end]] * self.data[:end]
        return np.bincount(
            self._column_ids()[:end], weights=contrib, minlength=allowed
        )

    def price_block(self, duals: np.ndarray, start: int, stop: int) -> np.ndarray:
        """``duals @ A[:, start:stop]`` (partial pricing window)."""
        lo, hi = int(self.indptr[start]), int(self.indptr[stop])
        contrib = duals[self.indices[lo:hi]] * self.data[lo:hi]
        return np.bincount(
            self._column_ids()[lo:hi] - start, weights=contrib, minlength=stop - start
        )

    def column(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Row indices and values of column ``j`` (views, not copies)."""
        lo, hi = int(self.indptr[j]), int(self.indptr[j + 1])
        return self.indices[lo:hi], self.data[lo:hi]

    def direction(self, basis_inverse: np.ndarray, j: int) -> np.ndarray:
        """``basis_inverse @ A[:, j]`` without densifying the column."""
        rows, vals = self.column(j)
        return basis_inverse[:, rows] @ vals

    def gather_dense(self, cols: np.ndarray) -> np.ndarray:
        """Dense ``m x k`` matrix of the selected columns (basis matrix)."""
        cols = np.asarray(cols, dtype=np.int64)
        out = np.zeros((self.shape[0], cols.size))
        for k, j in enumerate(cols.tolist()):
            rows, vals = self.column(j)
            out[rows, k] = vals
        return out

    def gather_csc(
        self, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSC arrays ``(indptr, indices, data)`` of the selected columns.

        The O(nnz-of-selection) sparse sibling of :meth:`gather_dense`,
        sized for handing a 4200-column basis matrix to a sparse LU without
        ever materializing the ``m x m`` dense form.
        """
        cols = np.asarray(cols, dtype=np.int64)
        starts = self.indptr[cols]
        counts = self.indptr[cols + 1] - starts
        indptr = np.zeros(cols.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        # Entry t of the output comes from self position
        # starts[k] + (t - indptr[k]) for its column k — one vectorized
        # gather over all selected columns.
        positions = np.repeat(starts - indptr[:-1], counts) + np.arange(
            total, dtype=np.int64
        )
        return indptr, self.indices[positions], self.data[positions]

    def with_identity(self) -> "CSCMatrix":
        """``[A | I_m]`` — the phase-1 extension with artificial columns."""
        m, n = self.shape
        indptr = np.concatenate(
            [self.indptr, self.indptr[-1] + np.arange(1, m + 1, dtype=np.int64)]
        )
        indices = np.concatenate([self.indices, np.arange(m, dtype=np.int64)])
        data = np.concatenate([self.data, np.ones(m)])
        return CSCMatrix((m, n + m), indptr, indices, data)

    def with_column(self, column: np.ndarray) -> "CSCMatrix":
        """``[A | column]`` — the warm-start single-artificial extension."""
        m, n = self.shape
        rows = np.flatnonzero(column)
        indptr = np.concatenate(
            [self.indptr, [self.indptr[-1] + rows.size]]
        )
        indices = np.concatenate([self.indices, rows])
        data = np.concatenate([self.data, column[rows]])
        return CSCMatrix((m, n + 1), indptr, indices, data)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (small problems / tests only)."""
        m, n = self.shape
        out = np.zeros((m, n))
        if self.nnz:
            out[self.indices, self._column_ids()] = self.data
        return out


class DenseMatrix:
    """Dense ``np.ndarray`` behind the :class:`CSCMatrix` solver interface."""

    __slots__ = ("a", "shape")

    def __init__(self, a: np.ndarray):
        self.a = a
        self.shape = a.shape

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.a))

    def price(self, duals: np.ndarray, allowed: int) -> np.ndarray:
        return duals @ self.a[:, :allowed]

    def price_block(self, duals: np.ndarray, start: int, stop: int) -> np.ndarray:
        return duals @ self.a[:, start:stop]

    def column(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        col = self.a[:, j]
        rows = np.flatnonzero(col)
        return rows, col[rows]

    def direction(self, basis_inverse: np.ndarray, j: int) -> np.ndarray:
        return basis_inverse @ self.a[:, j]

    def gather_dense(self, cols: np.ndarray) -> np.ndarray:
        return self.a[:, np.asarray(cols, dtype=np.int64)]

    def gather_csc(
        self, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        dense = self.gather_dense(cols)
        nz_col, nz_row = np.nonzero(dense.T)  # transpose: column-major walk
        indptr = np.zeros(dense.shape[1] + 1, dtype=np.int64)
        np.add.at(indptr, nz_col + 1, 1)
        np.cumsum(indptr, out=indptr)
        return indptr, nz_row.astype(np.int64), dense[nz_row, nz_col]

    def with_identity(self) -> "DenseMatrix":
        return DenseMatrix(np.hstack([self.a, np.eye(self.shape[0])]))

    def with_column(self, column: np.ndarray) -> "DenseMatrix":
        return DenseMatrix(np.hstack([self.a, column[:, None]]))

    def to_dense(self) -> np.ndarray:
        return self.a
