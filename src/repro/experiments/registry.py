"""Experiment registry: every table and figure of the paper by id.

``EXPERIMENTS`` maps experiment ids (``fig1a`` ... ``fig1f``, ``table2``) to
runnable :class:`Experiment` objects.  ``run_experiment("fig1c")`` reproduces
the corresponding artefact and returns a formatted report; the CLI and the
benchmark suite are thin wrappers over this registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.datagen.meetup import MeetupConfig, generate_meetup
from repro.experiments.reporting import (
    format_ranking,
    format_sweep_table,
    format_utility_table,
)
from repro.experiments.runner import default_algorithms, run_on_instance
from repro.experiments.sweeps import FIG1_SWEEPS, run_figure


@dataclass
class ExperimentReport:
    """Outcome of one experiment run.

    Attributes:
        experiment_id: registry id.
        text: human-readable report (paper-shaped table).
        data: raw statistics for programmatic use.
        ranking: algorithms by decreasing mean utility.
    """

    experiment_id: str
    text: str
    data: object
    ranking: str


@dataclass
class Experiment:
    """A registered, runnable paper artefact.

    Attributes:
        experiment_id: e.g. ``fig1b``.
        description: what the paper's artefact shows.
        paper_expectation: the qualitative result the paper reports (used by
            EXPERIMENTS.md and the shape-checking tests).
        runner: callable implementing the experiment.
    """

    experiment_id: str
    description: str
    paper_expectation: str
    runner: Callable[..., ExperimentReport]

    def run(self, repetitions: int = 3, seed: int = 0, **kwargs) -> ExperimentReport:
        return self.runner(repetitions=repetitions, seed=seed, **kwargs)


def _figure_runner(figure_id: str) -> Callable[..., ExperimentReport]:
    parameter, label, values = FIG1_SWEEPS[figure_id]

    def run(repetitions: int = 3, seed: int = 0, **kwargs) -> ExperimentReport:
        sweep = run_figure(
            figure_id, repetitions=repetitions, base_seed=seed, **kwargs
        )
        title = f"Fig. 1 ({figure_id[-1]}): utility when varying {label}"
        text = format_sweep_table(sweep, title=title)
        last_point = sweep.stats[-1]
        return ExperimentReport(
            experiment_id=figure_id,
            text=text,
            data=sweep,
            ranking=format_ranking(last_point),
        )

    return run


def _table2_runner(
    repetitions: int = 3, seed: int = 0, config: MeetupConfig | None = None, **kwargs
) -> ExperimentReport:
    instance = generate_meetup(config, seed=seed)
    stats = run_on_instance(
        instance,
        algorithms=default_algorithms(),
        repetitions=repetitions,
        base_seed=seed,
    )
    title = (
        "Table II: results on the Meetup-like dataset "
        f"({instance.num_events} events, {instance.num_users} users)"
    )
    text = format_utility_table(stats, title=title)
    return ExperimentReport(
        experiment_id="table2",
        text=text,
        data=stats,
        ranking=format_ranking(stats),
    )


_FIGURE_EXPECTATIONS = {
    "fig1a": "utility grows with |V|; LP-packing wins at every grid point",
    "fig1b": "utility grows with |U|; GG approaches LP-packing at |U| = 10000",
    "fig1c": "utility falls as pcf grows; LP-packing wins throughout",
    "fig1d": "utility grows with pdeg (interaction term); LP-packing wins",
    "fig1e": "utility grows with max cv; LP-packing wins",
    "fig1f": "utility grows with max cu; LP-packing wins",
}

EXPERIMENTS: dict[str, Experiment] = {}
for _figure_id, (_parameter, _label, _values) in FIG1_SWEEPS.items():
    EXPERIMENTS[_figure_id] = Experiment(
        experiment_id=_figure_id,
        description=f"Fig. 1 panel varying {_label} over {_values}",
        paper_expectation=_FIGURE_EXPECTATIONS[_figure_id],
        runner=_figure_runner(_figure_id),
    )
EXPERIMENTS["table2"] = Experiment(
    experiment_id="table2",
    description="Real-dataset utilities (Meetup-like SF: 190 events, 2811 users)",
    paper_expectation=(
        "LP-packing 2129.86 > GG 2099.88 > Random-U 2019.60 > Random-V 2000.92 "
        "(ordering and few-percent margins; absolute values depend on the crawl)"
    ),
    runner=_table2_runner,
)


def run_experiment(
    experiment_id: str, repetitions: int = 3, seed: int = 0, **kwargs
) -> ExperimentReport:
    """Run a registered experiment by id.

    Raises:
        KeyError: for unknown experiment ids.
    """
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[experiment_id].run(repetitions=repetitions, seed=seed, **kwargs)
