"""Table II: utilities on the (simulated) Meetup San Francisco dataset.

Paper values: LP-packing 2129.86 > GG 2099.88 > Random-U 2019.60 >
Random-V 2000.92.  The absolute numbers depend on the private crawl; the
reproduction checks the ordering — LP-packing first, GG a close second,
the random baselines behind — on a simulator that applies the paper's
§IV construction to Meetup-shaped synthetic raw data (190 events,
2811 users).
"""

from benchmarks.conftest import BENCH_REPS, BENCH_SEED, write_report
from repro.experiments import run_experiment


def bench_table2(bench_once):
    report = bench_once(
        run_experiment, "table2", repetitions=BENCH_REPS, seed=BENCH_SEED
    )
    stats = report.data
    lp = stats["lp-packing"].mean_utility
    gg = stats["gg"].mean_utility
    random_u = stats["random-u"].mean_utility
    random_v = stats["random-v"].mean_utility

    # Paper ordering: LP-packing first, GG second, randoms behind.
    assert lp >= gg, f"LP-packing {lp:.2f} must beat GG {gg:.2f}"
    assert gg >= max(random_u, random_v), (
        f"GG {gg:.2f} must beat both random baselines "
        f"({random_u:.2f}, {random_v:.2f})"
    )
    # The paper's margins are a few percent — the randoms must stay within
    # 15% of LP-packing (gross deviations would mean the simulator drifted).
    assert min(random_u, random_v) >= 0.85 * lp

    paper_line = (
        "paper Table II: LP-packing 2129.86 > GG 2099.88 > "
        "Random-U 2019.60 > Random-V 2000.92"
    )
    write_report(
        "table2", report.text + f"\nranking: {report.ranking}\n{paper_line}"
    )
