"""Baseline algorithms from the paper's evaluation (§IV "Baselines").

* :class:`RandomU` — "Random-U [4]": scan users in random order; each user
  greedily joins a random feasible subset of their bids.
* :class:`RandomV` — "Random-V [4]": scan events in random order; each event
  admits random feasible bidders until full.
* :class:`GGGreedy` — "GG (an extension of the Greedy-GEACC algorithm [4])":
  globally greedy on the pair weight ``w(u, v)``, which extends
  Greedy-GEACC's interest-greedy rule to IGEPA's interaction-aware weight.

All three produce feasible arrangements by construction (each insertion is
checked against the bid, capacity and conflict constraints).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import ArrangementAlgorithm
from repro.model.arrangement import Arrangement
from repro.model.instance import IGEPAInstance


class RandomU(ArrangementAlgorithm):
    """Random user-side baseline.

    Users are visited in a uniformly random order; each user walks their bid
    list in a uniformly random order and joins every event that keeps the
    arrangement feasible (until the user's capacity is exhausted).
    """

    name = "random-u"

    def _solve(
        self, instance: IGEPAInstance, rng: np.random.Generator
    ) -> tuple[Arrangement, dict]:
        arrangement = Arrangement(instance)
        users = list(instance.users)
        rng.shuffle(users)
        attempts = 0
        for user in users:
            bids = list(user.bids)
            rng.shuffle(bids)
            for event_id in bids:
                if arrangement.load(user.user_id) >= user.capacity:
                    break
                attempts += 1
                if arrangement.can_add(event_id, user.user_id):
                    arrangement.add(event_id, user.user_id, check=False)
        return arrangement, {"attempted_pairs": attempts}


class RandomV(ArrangementAlgorithm):
    """Random event-side baseline.

    Events are visited in a uniformly random order; each event admits
    bidders drawn in a uniformly random order while it has remaining
    capacity and the bidder can feasibly attend.
    """

    name = "random-v"

    def _solve(
        self, instance: IGEPAInstance, rng: np.random.Generator
    ) -> tuple[Arrangement, dict]:
        arrangement = Arrangement(instance)
        events = list(instance.events)
        rng.shuffle(events)
        attempts = 0
        for event in events:
            bidders = instance.bidders(event.event_id)
            rng.shuffle(bidders)
            for user_id in bidders:
                if arrangement.attendance(event.event_id) >= event.capacity:
                    break
                attempts += 1
                if arrangement.can_add(event.event_id, user_id):
                    arrangement.add(event.event_id, user_id, check=False)
        return arrangement, {"attempted_pairs": attempts}


class GGGreedy(ArrangementAlgorithm):
    """GG: global greedy on ``w(u, v)`` (extension of Greedy-GEACC [4]).

    All candidate (event, user) bid pairs are ordered by decreasing weight
    and inserted when feasible.  Because weights are static and feasibility
    only shrinks as pairs are added, a single pass over the sorted pairs is
    exactly the iterated "take the best feasible pair" greedy.

    Deterministic: ties break on (event id, user id); the RNG is unused.
    """

    name = "gg"

    def _solve(
        self, instance: IGEPAInstance, rng: np.random.Generator
    ) -> tuple[Arrangement, dict]:
        candidates: list[tuple[float, int, int]] = []
        for user in instance.users:
            for event_id in user.bids:
                weight = instance.weight(user.user_id, event_id)
                candidates.append((weight, event_id, user.user_id))
        candidates.sort(key=lambda t: (-t[0], t[1], t[2]))
        arrangement = Arrangement(instance)
        for _, event_id, user_id in candidates:
            if arrangement.can_add(event_id, user_id):
                arrangement.add(event_id, user_id, check=False)
        return arrangement, {"candidate_pairs": len(candidates)}
