"""Fig. 1(a): utility when varying the number of events |V|.

Paper expectation: utility grows with |V| (more events, more feasible
assignments) and LP-packing has the highest utility at every grid point.
"""

from benchmarks.conftest import (
    BENCH_REPS,
    BENCH_SEED,
    assert_lp_packing_wins,
    assert_monotone,
    write_report,
)
from repro.experiments import run_experiment


def bench_fig1a(bench_once):
    report = bench_once(
        run_experiment, "fig1a", repetitions=BENCH_REPS, seed=BENCH_SEED
    )
    sweep = report.data
    assert_lp_packing_wins(sweep)
    assert_monotone(sweep.series("lp-packing"), increasing=True)
    write_report("fig1a", report.text + f"\nranking at |V|=300: {report.ranking}")
