"""LP presolve: cheap reductions applied before any backend runs.

Implemented reductions (applied to a fixed point):

1. **Bound sanity** — a variable with ``lower > upper`` makes the program
   infeasible immediately.
2. **Fixed variables** (``lower == upper``) are substituted into every
   constraint and the objective.
3. **Empty constraints** (no nonzero coefficients) are checked against their
   right-hand side and dropped, or declare infeasibility.
4. **Singleton rows** (one nonzero coefficient) are converted into variable
   bounds, possibly fixing the variable and triggering another pass.
5. **Implied (redundant) upper bounds** — a ``<=``/``==`` row whose minimum
   activity already caps a variable below its declared upper bound makes
   that bound redundant, and it is dropped (relaxed to ``+inf``).  This is
   what keeps the wide benchmark LP small: every ``x_{u,S} <= 1`` bound is
   implied by the user's row (2), so no per-variable bound row reaches the
   standard form and the simplex runs over ``|U| + |V|`` rows instead of
   ``|U| + |V| + n``.

When no reduction applies, the *original* program object is returned
untouched (no O(nnz) defensive copy).  When only variable bounds changed
(the benchmark LP root relaxation: the implied-bound pass fires, nothing
else does), the rebuilt program inherits the original's COO triplet cache,
so a cache primed by ``build_benchmark_lp`` survives presolve and
``to_standard_form`` never re-walks the coefficient dicts.

The result keeps a recovery recipe so a solution of the reduced program can
be lifted back to the original variable space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.solver.problem import Constraint, LinearProgram, Sense, Variable

_TOL = 1e-9
#: Primal feasibility tolerance for *infeasibility declarations*: matches
#: ``Constraint.is_satisfied`` and the HiGHS default, so presolve never
#: declares infeasible a program the reference backend would solve (e.g. a
#: singleton row ``x <= -6e-8`` against ``x >= 0``).
_FEAS_TOL = 1e-7


class PresolveStatus(Enum):
    REDUCED = "reduced"
    INFEASIBLE = "infeasible"


@dataclass
class PresolveResult:
    """Outcome of :func:`presolve`.

    Attributes:
        status: ``REDUCED`` (use ``lp``) or ``INFEASIBLE``.
        lp: the reduced program (None when infeasible).
        fixed_values: original variable index -> value pinned by presolve.
        kept_variables: original indices of the reduced program's variables,
            in order.
        objective_offset: objective contribution of the fixed variables.
        infeasibility_reason: human-readable explanation when infeasible.
    """

    status: PresolveStatus
    lp: LinearProgram | None = None
    fixed_values: dict[int, float] = field(default_factory=dict)
    kept_variables: list[int] = field(default_factory=list)
    objective_offset: float = 0.0
    infeasibility_reason: str = ""

    def recover_x(self, reduced_x: np.ndarray, num_original: int) -> np.ndarray:
        """Lift a reduced-space solution back to the original variables."""
        x = np.zeros(num_original, dtype=float)
        for original_index, value in self.fixed_values.items():
            x[original_index] = value
        for reduced_index, original_index in enumerate(self.kept_variables):
            x[original_index] = reduced_x[reduced_index]
        return x


def _tighten(
    lower: float, upper: float, sense: Sense, bound: float
) -> tuple[float, float]:
    """Apply a singleton-row bound ``x sense bound`` to ``[lower, upper]``."""
    if sense is Sense.LE:
        upper = min(upper, bound)
    elif sense is Sense.GE:
        lower = max(lower, bound)
    else:
        lower = max(lower, bound)
        upper = min(upper, bound)
    return lower, upper


def _drop_implied_upper_bounds(
    rows: list[Constraint], bounds: list[tuple[float, float]]
) -> bool:
    """Relax variable upper bounds that a ``<=``/``==`` row already implies.

    For a row ``sum_j a_j x_j <= r`` the minimum activity excluding ``x_i``
    (lower bounds where ``a_j > 0``, upper bounds where ``a_j < 0``) yields
    ``x_i <= (r - min_act_other) / a_i`` whenever ``a_i > 0``; if that cap is
    at or below the declared upper bound, the bound is redundant and is
    dropped.  Returns whether any bound was dropped.
    """
    changed = False
    for row in rows:
        if row.sense is Sense.GE or len(row.coefficients) < 2:
            continue
        min_activity = 0.0
        for index, coeff in row.coefficients.items():
            lower, upper = bounds[index]
            contribution = coeff * (lower if coeff > 0.0 else upper)
            if not math.isfinite(contribution):
                min_activity = -math.inf
                break
            min_activity += contribution
        if not math.isfinite(min_activity):
            continue
        for index, coeff in row.coefficients.items():
            if coeff <= 0.0:
                continue
            lower, upper = bounds[index]
            if not math.isfinite(upper):
                continue
            implied = (row.rhs - (min_activity - coeff * lower)) / coeff
            if implied <= upper + _TOL:
                bounds[index] = (lower, math.inf)
                changed = True
    return changed


def presolve(lp: LinearProgram, max_passes: int = 10) -> PresolveResult:
    """Run the reduction passes on a copy of ``lp``.

    The input program is never mutated — and when nothing reduces, it is
    returned as-is (``result.lp is lp``), skipping the defensive rebuild.
    ``max_passes`` bounds the fix-substitute-tighten loop (each pass either
    fixes at least one more variable or is the last).
    """
    bounds = [(v.lower, v.upper) for v in lp.variables]
    fixed: dict[int, float] = {}
    active_rows: list[Constraint] = [
        Constraint(c.name, dict(c.coefficients), c.sense, c.rhs)
        for c in lp.constraints
    ]
    any_change = False

    for _ in range(max_passes):
        changed = False

        # Pass A: bound sanity and newly fixed variables.  A slightly
        # inverted domain (within the feasibility tolerance) is treated as
        # fixed at the midpoint, not infeasible — each bound is then violated
        # by at most _FEAS_TOL / 2.
        for index, (lower, upper) in enumerate(bounds):
            if index in fixed:
                continue
            if lower > upper + _FEAS_TOL:
                return PresolveResult(
                    PresolveStatus.INFEASIBLE,
                    infeasibility_reason=(
                        f"variable {lp.variables[index].name!r} has empty domain "
                        f"[{lower}, {upper}]"
                    ),
                )
            if math.isfinite(lower) and upper - lower <= _TOL:
                fixed[index] = lower if upper >= lower else 0.5 * (lower + upper)
                changed = True

        # Pass B: substitute fixed variables into rows.
        for row in active_rows:
            for index in [i for i in row.coefficients if i in fixed]:
                row.rhs -= row.coefficients.pop(index) * fixed[index]

        # Pass C: empty rows and singleton rows.
        remaining: list[Constraint] = []
        for row in active_rows:
            if not row.coefficients:
                satisfied = (
                    (row.sense is Sense.LE and 0.0 <= row.rhs + _FEAS_TOL)
                    or (row.sense is Sense.GE and 0.0 >= row.rhs - _FEAS_TOL)
                    or (row.sense is Sense.EQ and abs(row.rhs) <= _FEAS_TOL)
                )
                if not satisfied:
                    return PresolveResult(
                        PresolveStatus.INFEASIBLE,
                        infeasibility_reason=(
                            f"constraint {row.name!r} reduced to 0 {row.sense.value} "
                            f"{row.rhs}"
                        ),
                    )
                changed = True
                continue
            if len(row.coefficients) == 1:
                ((index, coeff),) = row.coefficients.items()
                bound = row.rhs / coeff
                sense = row.sense
                if coeff < 0 and sense is Sense.LE:
                    sense = Sense.GE
                elif coeff < 0 and sense is Sense.GE:
                    sense = Sense.LE
                lower, upper = bounds[index]
                bounds[index] = _tighten(lower, upper, sense, bound)
                changed = True
                continue
            remaining.append(row)
        active_rows = remaining

        any_change = any_change or changed
        if not changed:
            break

    # One final pass (outside the fixpoint loop: dropping an upper bound can
    # never enable reductions 1-4) that strips redundant upper bounds.
    any_change = _drop_implied_upper_bounds(active_rows, bounds) or any_change

    if not any_change:
        # Nothing reduced: hand back the original program object.
        return PresolveResult(
            PresolveStatus.REDUCED,
            lp=lp,
            kept_variables=list(range(lp.num_variables)),
        )

    # Assemble the reduced program.
    kept = [i for i in range(lp.num_variables) if i not in fixed]
    offset = sum(lp.variables[i].objective * value for i, value in fixed.items())
    reduced = LinearProgram(name=f"{lp.name}:presolved", maximize=lp.maximize)
    old_to_new: dict[int, int] = {}
    for new_index, old_index in enumerate(kept):
        original = lp.variables[old_index]
        lower, upper = bounds[old_index]
        reduced.add_variable(
            original.name,
            lower=lower,
            upper=upper,
            objective=original.objective,
            is_integer=original.is_integer,
        )
        old_to_new[old_index] = new_index
    for row in active_rows:
        reduced.add_constraint(
            {old_to_new[i]: coeff for i, coeff in row.coefficients.items()},
            row.sense,
            row.rhs,
            name=row.name,
        )
    if not fixed and len(active_rows) == lp.num_constraints:
        # Only variable bounds changed (the implied-bound pass, typically):
        # every row survived with its coefficients and column indices intact,
        # so the original program's COO triplet cache — if primed, e.g. by
        # build_benchmark_lp — still describes the reduced constraint matrix
        # (and any cached sort order of it remains valid).
        reduced._coo = lp._coo
        reduced._coo_order = lp._coo_order
    return PresolveResult(
        PresolveStatus.REDUCED,
        lp=reduced,
        fixed_values=dict(fixed),
        kept_variables=kept,
        objective_offset=offset,
    )
