"""Fig. 1(f): utility when varying the maximum user capacity max c_u.

Paper expectation: utility grows with max c_u (users can serve more of
their bids), capped by conflicts among the bid lists; LP-packing wins.
"""

from benchmarks.conftest import (
    BENCH_REPS,
    BENCH_SEED,
    assert_lp_packing_wins,
    assert_monotone,
    write_report,
)
from repro.experiments import run_experiment


def bench_fig1f(bench_once):
    report = bench_once(
        run_experiment, "fig1f", repetitions=BENCH_REPS, seed=BENCH_SEED
    )
    sweep = report.data
    assert_lp_packing_wins(sweep)
    assert_monotone(sweep.series("lp-packing"), increasing=True)
    write_report("fig1f", report.text + f"\nranking at max cu=6: {report.ranking}")
