"""Unit tests for the dynamic delta kinds: capacity changes + interest drift.

Parity with from-scratch rebuilds across index implementations and shard
sizes lives in ``tests/integration/test_dynamic_parity.py``; this file
covers the delta semantics on hand-checkable instances.
"""

import pytest

from repro.core.baselines import GGGreedy
from repro.core.repair import repair
from repro.model import Arrangement, Delta, DeltaError, apply_delta
from tests.util import random_instance, tiny_instance


class TestDeltaObject:
    def test_capacity_only_delta_is_not_empty(self):
        assert not Delta(set_user_capacity=((10, 3),)).is_empty()
        assert not Delta(set_event_capacity=((1, 3),)).is_empty()

    def test_summary_counts_capacity_updates(self):
        summary = Delta(
            set_user_capacity=((10, 3), (11, 1)),
            set_event_capacity=((1, 0),),
        ).summary()
        assert summary["user_capacity_updates"] == 2
        assert summary["event_capacity_updates"] == 1

    def test_entries_coerced_to_int(self):
        delta = Delta(set_event_capacity=[(1.0, 5.0)])
        assert delta.set_event_capacity == ((1, 5),)


class TestValidation:
    def test_unknown_user_rejected(self):
        with pytest.raises(DeltaError, match="surviving pre-existing user"):
            apply_delta(tiny_instance(), Delta(set_user_capacity=((99, 2),)))

    def test_unknown_event_rejected(self):
        with pytest.raises(DeltaError, match="surviving pre-existing event"):
            apply_delta(tiny_instance(), Delta(set_event_capacity=((99, 2),)))

    def test_removed_target_rejected(self):
        with pytest.raises(DeltaError, match="surviving pre-existing user"):
            apply_delta(
                tiny_instance(),
                Delta(remove_users=(10,), set_user_capacity=((10, 2),)),
            )
        with pytest.raises(DeltaError, match="surviving pre-existing event"):
            apply_delta(
                tiny_instance(),
                Delta(remove_events=(1,), set_event_capacity=((1, 2),)),
            )

    def test_duplicate_targets_rejected(self):
        with pytest.raises(DeltaError, match="duplicate capacity change"):
            apply_delta(
                tiny_instance(), Delta(set_user_capacity=((10, 2), (10, 3)))
            )
        with pytest.raises(DeltaError, match="duplicate capacity change"):
            apply_delta(
                tiny_instance(), Delta(set_event_capacity=((1, 2), (1, 3)))
            )

    def test_negative_capacity_rejected(self):
        with pytest.raises(DeltaError, match="expected >= 0"):
            apply_delta(tiny_instance(), Delta(set_user_capacity=((10, -1),)))
        with pytest.raises(DeltaError, match="expected >= 0"):
            apply_delta(tiny_instance(), Delta(set_event_capacity=((1, -1),)))


class TestSuccessor:
    def test_entities_carry_new_capacity(self):
        instance = tiny_instance()
        result = apply_delta(
            instance,
            Delta(set_user_capacity=((11, 5),), set_event_capacity=((2, 7),)),
        )
        successor = result.instance
        assert successor.user_by_id[11].capacity == 5
        assert successor.event_by_id[2].capacity == 7
        # Untouched entities carry their objects over unchanged.
        assert successor.user_by_id[10] is instance.user_by_id[10]
        assert successor.event_by_id[1] is instance.event_by_id[1]
        # The patched index agrees.
        index = successor.index
        assert int(index.user_capacity[index.user_pos[11]]) == 5
        assert int(index.event_capacity[index.event_pos[2]]) == 7

    def test_touched_sets_include_capacity_targets(self):
        result = apply_delta(
            tiny_instance(),
            Delta(set_user_capacity=((11, 5),), set_event_capacity=((2, 7),)),
        )
        assert 11 in result.touched_users
        assert 2 in result.touched_events


class TestCarryShedding:
    def test_event_shrink_sheds_lightest_pair(self):
        instance = tiny_instance()
        # Event 1 (cap 2) holds users 10 (w_10,1 heavier) and 11.
        arrangement = Arrangement.from_pairs(instance, [(1, 10), (1, 11)])
        w10 = instance.weight(10, 1)
        w11 = instance.weight(11, 1)
        assert w10 != w11  # hand-checkable: distinct weights
        lighter = 10 if w10 < w11 else 11
        result = apply_delta(
            instance, Delta(set_event_capacity=((1, 1),)), arrangement
        )
        assert result.arrangement.is_feasible()
        assert result.arrangement.attendance(1) == 1
        assert (1, lighter) in result.dropped_pairs
        assert lighter in result.touched_users

    def test_user_shrink_to_zero_sheds_everything(self):
        instance = tiny_instance()
        arrangement = Arrangement.from_pairs(instance, [(1, 11), (3, 11)])
        result = apply_delta(
            instance, Delta(set_user_capacity=((11, 0),)), arrangement
        )
        assert result.arrangement.is_feasible()
        assert result.arrangement.load(11) == 0
        assert sorted(result.dropped_pairs) == [(1, 11), (3, 11)]

    def test_capacity_raise_sheds_nothing(self):
        instance = tiny_instance()
        arrangement = Arrangement.from_pairs(instance, [(1, 10), (1, 11)])
        result = apply_delta(
            instance,
            Delta(set_event_capacity=((1, 10),), set_user_capacity=((10, 4),)),
            arrangement,
        )
        assert result.dropped_pairs == []
        assert len(result.arrangement) == 2

    def test_shrink_with_churn_in_same_delta(self):
        """Capacity shrink composes with removals/conflict edits."""
        instance = random_instance(7, num_events=8, num_users=16)
        arrangement = GGGreedy().solve(instance, seed=0).arrangement
        busiest = max(
            (e.event_id for e in instance.events),
            key=lambda e: arrangement.attendance(e),
        )
        target = max(0, arrangement.attendance(busiest) - 2)
        victim_user = instance.users[0].user_id
        delta = Delta(
            remove_users=(victim_user,),
            set_event_capacity=((busiest, target),),
        )
        result = apply_delta(instance, delta, arrangement)
        assert result.arrangement.is_feasible()
        assert result.arrangement.attendance(busiest) <= target


class TestRepairAfterShrink:
    def test_repair_keeps_shrink_satisfied(self):
        """Repair must never re-violate a tightened capacity."""
        instance = random_instance(3, num_events=10, num_users=24)
        arrangement = GGGreedy().solve(instance, seed=0).arrangement
        shrinks = tuple(
            (event.event_id, max(0, arrangement.attendance(event.event_id) - 1))
            for event in instance.events[:4]
        )
        result = apply_delta(
            instance, Delta(set_event_capacity=shrinks), arrangement
        )
        repair(result)
        assert result.arrangement.is_feasible()
        for event_id, capacity in shrinks:
            assert result.arrangement.attendance(event_id) <= capacity


class TestInterestDrift:
    def test_drift_reweights_existing_pair(self):
        instance = tiny_instance()
        result = apply_delta(instance, Delta(interest=((1, 10, 0.05),)))
        successor = result.instance
        assert successor.interest_of(1, 10) == 0.05
        index = successor.index
        assert index.si_at(index.user_pos[10], index.event_pos[1]) == 0.05
        assert 10 in result.touched_users
        assert 1 in result.touched_events
