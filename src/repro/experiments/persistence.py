"""JSON persistence for experiment results.

Sweeps take minutes at paper-scale repetitions; persisting the raw
statistics lets reports be re-rendered, diffed across code versions, and
checked into EXPERIMENTS.md without re-running.  Formats are plain JSON
with a version tag, so archived results stay readable.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.runner import AlgorithmStats
from repro.experiments.sweeps import SweepResult

FORMAT_VERSION = 1


def report_to_dict(
    kind: str,
    summary: dict,
    records: list[dict],
    records_key: str = "batches",
) -> dict:
    """Shared serialization shape for per-batch/per-tick reports.

    One helper behind :meth:`~repro.experiments.replay.ReplayReport.to_dict`
    and :meth:`~repro.experiments.simulate.SimulationReport.to_dict`, so
    every bench artifact carries the same envelope: the ``format_version``
    tag, a ``kind`` discriminator, the aggregate summary fields at the top
    level and the per-record list under ``records_key``.
    """
    payload: dict = {"format_version": FORMAT_VERSION, "kind": kind}
    payload.update(summary)
    payload[records_key] = list(records)
    return payload


def save_serve_report(report, path: str | Path) -> None:
    """Write a :class:`~repro.service.report.ServeReport` as JSON (the
    BENCH_serve.json / nightly-soak artifact)."""
    Path(path).write_text(json.dumps(report.to_dict(), indent=1))


def load_serve_payload(path: str | Path) -> dict:
    """Read a serve report written by :func:`save_serve_report`.

    Returns the raw envelope dict (summary fields at the top level, tick
    records under ``ticks``), validated for version and kind.

    Raises:
        ValueError: on unknown format versions or non-serve payloads.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format version {payload.get('format_version')!r}"
        )
    if payload.get("kind") != "serve":
        raise ValueError(f"not a serve payload (kind={payload.get('kind')!r})")
    return payload


def stats_to_dict(stats: AlgorithmStats) -> dict:
    """Serialize one algorithm's repetition statistics."""
    return {
        "algorithm": stats.algorithm,
        "utilities": list(stats.utilities),
        "runtimes": list(stats.runtimes),
        "pair_counts": list(stats.pair_counts),
    }


def stats_from_dict(payload: dict) -> AlgorithmStats:
    """Inverse of :func:`stats_to_dict`."""
    return AlgorithmStats(
        algorithm=payload["algorithm"],
        utilities=[float(u) for u in payload["utilities"]],
        runtimes=[float(r) for r in payload["runtimes"]],
        pair_counts=[int(p) for p in payload["pair_counts"]],
    )


def sweep_to_dict(result: SweepResult) -> dict:
    """Serialize a full sweep (all grid points, all algorithms)."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "sweep",
        "parameter": result.parameter,
        "label": result.label,
        "values": list(result.values),
        "repetitions": result.repetitions,
        "stats": [
            {name: stats_to_dict(stat) for name, stat in point.items()}
            for point in result.stats
        ],
    }


def sweep_from_dict(payload: dict) -> SweepResult:
    """Inverse of :func:`sweep_to_dict`.

    Raises:
        ValueError: on unknown format versions or non-sweep payloads.
    """
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported result format version {version!r}")
    if payload.get("kind") != "sweep":
        raise ValueError(f"not a sweep payload (kind={payload.get('kind')!r})")
    return SweepResult(
        parameter=payload["parameter"],
        label=payload["label"],
        values=list(payload["values"]),
        repetitions=payload["repetitions"],
        stats=[
            {name: stats_from_dict(stat) for name, stat in point.items()}
            for point in payload["stats"]
        ],
    )


def save_sweep(result: SweepResult, path: str | Path) -> None:
    """Write a sweep result as JSON."""
    Path(path).write_text(json.dumps(sweep_to_dict(result), indent=1))


def load_sweep(path: str | Path) -> SweepResult:
    """Read a sweep result written by :func:`save_sweep`."""
    return sweep_from_dict(json.loads(Path(path).read_text()))


def save_stats(
    stats: dict[str, AlgorithmStats], path: str | Path, label: str = ""
) -> None:
    """Write fixed-instance statistics (e.g. Table II runs) as JSON."""
    payload = {
        "format_version": FORMAT_VERSION,
        "kind": "stats",
        "label": label,
        "stats": {name: stats_to_dict(stat) for name, stat in stats.items()},
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_stats(path: str | Path) -> dict[str, AlgorithmStats]:
    """Read statistics written by :func:`save_stats`.

    Raises:
        ValueError: on unknown format versions or non-stats payloads.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format version {payload.get('format_version')!r}"
        )
    if payload.get("kind") != "stats":
        raise ValueError(f"not a stats payload (kind={payload.get('kind')!r})")
    return {
        name: stats_from_dict(stat) for name, stat in payload["stats"].items()
    }
