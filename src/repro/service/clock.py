"""The service's two notions of time: decision time vs measurement time.

The serving loop needs time for two very different jobs:

* **decision time** — when to flush a micro-batch, whether a queued arrival
  has missed its deadline.  Decisions must be *deterministic per seed*:
  replaying the same timestamped request trace must form the same ticks and
  give the same answers, bit for bit.  Decision time therefore comes from
  the **trace's own virtual timestamps** (:class:`VirtualClock`), never
  from the machine.
* **measurement time** — how long one arrival waited for its answer, how
  many arrivals per second the loop sustains.  Measurements ride on the
  monotonic timer and land in :class:`~repro.service.report.ServeReport`;
  they are *never* consulted by a decision.

:class:`Clock` fixes that split in the API itself: ``now()`` is decision
time, ``perf()`` is measurement time.  Under :class:`VirtualClock` the two
are independent (virtual decisions, real measurements); under
:class:`MonotonicClock` (live serving off stdin) both read the monotonic
timer.

This module is the **only** place in ``repro.service`` allowed to touch
:func:`time.monotonic`/:func:`time.perf_counter` — the IGP007 lint rule
whitelists exactly this file, so any timer read elsewhere in the service
fails ``igepa lint``.  Wall-clock (``time.time``) stays banned here too.
"""

from __future__ import annotations

import time
from typing import Protocol


class Clock(Protocol):
    """Decision time (``now``) and measurement time (``perf``)."""

    def now(self) -> float:
        """Decision time, in seconds.  Deterministic under replay."""
        ...

    def perf(self) -> float:
        """Measurement time, in seconds.  Monotonic; report-only."""
        ...


class VirtualClock:
    """Deterministic decision time driven by the request trace.

    The replay driver advances the clock to each request's timestamp before
    offering it to the micro-batcher, so flush-on-max-wait and
    queue-deadline decisions depend only on the trace — fixed-seed runs are
    bit-reproducible.  ``perf()`` still reads the monotonic timer, so
    latency *measurements* stay real while decisions stay virtual.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move decision time forward (monotonically) to ``timestamp``."""
        if timestamp > self._now:
            self._now = float(timestamp)

    def advance(self, seconds: float) -> None:
        """Move decision time forward by ``seconds`` (negative: no-op)."""
        if seconds > 0:
            self._now += float(seconds)

    def perf(self) -> float:
        return time.perf_counter()

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f})"


class MonotonicClock:
    """Live serving: decisions and measurements both monotonic.

    Used by the stdin front end (``igepa serve --stdin``), where requests
    arrive in real time and there is no trace to replay.  Runs under this
    clock are *not* reproducible — that is inherent to live traffic, not a
    bug; every correctness audit (feasibility, parity) still applies.
    """

    def now(self) -> float:
        return time.monotonic()

    def perf(self) -> float:
        return time.perf_counter()

    def __repr__(self) -> str:
        return "MonotonicClock()"
