"""LP presolve: cheap reductions applied before any backend runs.

Implemented reductions (applied to a fixed point):

1. **Bound sanity** — a variable with ``lower > upper`` makes the program
   infeasible immediately.
2. **Fixed variables** (``lower == upper``) are substituted into every
   constraint and the objective.
3. **Empty constraints** (no nonzero coefficients) are checked against their
   right-hand side and dropped, or declare infeasibility.
4. **Singleton rows** (one nonzero coefficient) are converted into variable
   bounds, possibly fixing the variable and triggering another pass.

The result keeps a recovery recipe so a solution of the reduced program can
be lifted back to the original variable space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.solver.problem import Constraint, LinearProgram, Sense, Variable

_TOL = 1e-9


class PresolveStatus(Enum):
    REDUCED = "reduced"
    INFEASIBLE = "infeasible"


@dataclass
class PresolveResult:
    """Outcome of :func:`presolve`.

    Attributes:
        status: ``REDUCED`` (use ``lp``) or ``INFEASIBLE``.
        lp: the reduced program (None when infeasible).
        fixed_values: original variable index -> value pinned by presolve.
        kept_variables: original indices of the reduced program's variables,
            in order.
        objective_offset: objective contribution of the fixed variables.
        infeasibility_reason: human-readable explanation when infeasible.
    """

    status: PresolveStatus
    lp: LinearProgram | None = None
    fixed_values: dict[int, float] = field(default_factory=dict)
    kept_variables: list[int] = field(default_factory=list)
    objective_offset: float = 0.0
    infeasibility_reason: str = ""

    def recover_x(self, reduced_x: np.ndarray, num_original: int) -> np.ndarray:
        """Lift a reduced-space solution back to the original variables."""
        x = np.zeros(num_original, dtype=float)
        for original_index, value in self.fixed_values.items():
            x[original_index] = value
        for reduced_index, original_index in enumerate(self.kept_variables):
            x[original_index] = reduced_x[reduced_index]
        return x


def _tighten(
    lower: float, upper: float, sense: Sense, bound: float
) -> tuple[float, float]:
    """Apply a singleton-row bound ``x sense bound`` to ``[lower, upper]``."""
    if sense is Sense.LE:
        upper = min(upper, bound)
    elif sense is Sense.GE:
        lower = max(lower, bound)
    else:
        lower = max(lower, bound)
        upper = min(upper, bound)
    return lower, upper


def presolve(lp: LinearProgram, max_passes: int = 10) -> PresolveResult:
    """Run the reduction passes on a copy of ``lp``.

    The input program is never mutated.  ``max_passes`` bounds the
    fix-substitute-tighten loop (each pass either fixes at least one more
    variable or is the last).
    """
    bounds = [(v.lower, v.upper) for v in lp.variables]
    fixed: dict[int, float] = {}
    active_rows: list[Constraint] = [
        Constraint(c.name, dict(c.coefficients), c.sense, c.rhs)
        for c in lp.constraints
    ]

    for _ in range(max_passes):
        changed = False

        # Pass A: bound sanity and newly fixed variables.
        for index, (lower, upper) in enumerate(bounds):
            if index in fixed:
                continue
            if lower > upper + _TOL:
                return PresolveResult(
                    PresolveStatus.INFEASIBLE,
                    infeasibility_reason=(
                        f"variable {lp.variables[index].name!r} has empty domain "
                        f"[{lower}, {upper}]"
                    ),
                )
            if math.isfinite(lower) and abs(upper - lower) <= _TOL:
                fixed[index] = lower
                changed = True

        # Pass B: substitute fixed variables into rows.
        for row in active_rows:
            for index in [i for i in row.coefficients if i in fixed]:
                row.rhs -= row.coefficients.pop(index) * fixed[index]

        # Pass C: empty rows and singleton rows.
        remaining: list[Constraint] = []
        for row in active_rows:
            if not row.coefficients:
                satisfied = (
                    (row.sense is Sense.LE and 0.0 <= row.rhs + _TOL)
                    or (row.sense is Sense.GE and 0.0 >= row.rhs - _TOL)
                    or (row.sense is Sense.EQ and abs(row.rhs) <= _TOL)
                )
                if not satisfied:
                    return PresolveResult(
                        PresolveStatus.INFEASIBLE,
                        infeasibility_reason=(
                            f"constraint {row.name!r} reduced to 0 {row.sense.value} "
                            f"{row.rhs}"
                        ),
                    )
                changed = True
                continue
            if len(row.coefficients) == 1:
                ((index, coeff),) = row.coefficients.items()
                bound = row.rhs / coeff
                sense = row.sense
                if coeff < 0 and sense is Sense.LE:
                    sense = Sense.GE
                elif coeff < 0 and sense is Sense.GE:
                    sense = Sense.LE
                lower, upper = bounds[index]
                bounds[index] = _tighten(lower, upper, sense, bound)
                changed = True
                continue
            remaining.append(row)
        active_rows = remaining

        if not changed:
            break

    # Assemble the reduced program.
    kept = [i for i in range(lp.num_variables) if i not in fixed]
    offset = sum(lp.variables[i].objective * value for i, value in fixed.items())
    reduced = LinearProgram(name=f"{lp.name}:presolved", maximize=lp.maximize)
    old_to_new: dict[int, int] = {}
    for new_index, old_index in enumerate(kept):
        original = lp.variables[old_index]
        lower, upper = bounds[old_index]
        reduced.add_variable(
            original.name,
            lower=lower,
            upper=upper,
            objective=original.objective,
            is_integer=original.is_integer,
        )
        old_to_new[old_index] = new_index
    for row in active_rows:
        reduced.add_constraint(
            {old_to_new[i]: coeff for i, coeff in row.coefficients.items()},
            row.sense,
            row.rhs,
            name=row.name,
        )
    return PresolveResult(
        PresolveStatus.REDUCED,
        lp=reduced,
        fixed_values=dict(fixed),
        kept_variables=kept,
        objective_offset=offset,
    )
