"""Fluent builder for hand-constructed IGEPA instances.

Generators cover the paper's workloads; applications embedding this library
usually have *their own* events and users.  :class:`InstanceBuilder` grows
an instance incrementally with validation at ``build()`` time::

    instance = (
        InstanceBuilder(beta=0.6)
        .event(1, capacity=30, start=18.0, duration=2.0)
        .event(2, capacity=10, start=19.0, duration=2.0)
        .user(100, capacity=1, bids=[1, 2])
        .friends(100, 101)
        .interest(1, 100, 0.9)
        .build()
    )

Conflicts default to time-interval overlap when any event has temporal
attributes, and to explicitly declared pairs otherwise; both can be
combined.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.model.columnar import ColumnarStore
from repro.model.conflicts import (
    CompositeConflict,
    ConflictFunction,
    MatrixConflict,
    NoConflict,
    TimeIntervalConflict,
)
from repro.model.entities import Event, User
from repro.model.instance import IGEPAInstance
from repro.model.interest import InterestFunction, TabulatedInterest
from repro.social.graph import Graph


class InstanceBuilder:
    """Accumulates events, users, ties and interests; validates on build.

    Args:
        beta: utility balance parameter (Definition 7).
        name: label for the built instance.
    """

    def __init__(self, beta: float = 0.5, name: str = "custom") -> None:
        self._beta = beta
        self._name = name
        self._events: list[Event] = []
        self._users: list[User] = []
        self._edges: list[tuple[int, int]] = []
        self._interest: dict[tuple[int, int], float] = {}
        self._conflict_pairs: list[tuple[int, int]] = []
        self._interest_function: InterestFunction | None = None
        self._default_interest = 0.0

    # ------------------------------------------------------------------
    # Entities
    # ------------------------------------------------------------------
    def event(
        self,
        event_id: int,
        capacity: int,
        *,
        start: float | None = None,
        duration: float | None = None,
        attributes: Iterable[float] = (),
        categories: Iterable[str] = (),
    ) -> "InstanceBuilder":
        """Add an event (chainable)."""
        self._events.append(
            Event(
                event_id=event_id,
                capacity=capacity,
                attributes=np.asarray(list(attributes), dtype=float),
                start_time=start,
                duration=duration,
                categories=frozenset(categories),
            )
        )
        return self

    def user(
        self,
        user_id: int,
        capacity: int,
        bids: Iterable[int] = (),
        *,
        attributes: Iterable[float] = (),
        categories: Iterable[str] = (),
    ) -> "InstanceBuilder":
        """Add a user with their bid list (chainable)."""
        self._users.append(
            User(
                user_id=user_id,
                capacity=capacity,
                attributes=np.asarray(list(attributes), dtype=float),
                bids=tuple(bids),
                categories=frozenset(categories),
            )
        )
        return self

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def friends(self, first: int, second: int) -> "InstanceBuilder":
        """Declare a social tie between two users."""
        self._edges.append((first, second))
        return self

    def friend_group(self, user_ids: Iterable[int]) -> "InstanceBuilder":
        """Declare a clique of mutual ties (e.g. a Meetup group)."""
        members = list(user_ids)
        for i, first in enumerate(members):
            for second in members[i + 1 :]:
                self._edges.append((first, second))
        return self

    def interest(self, event_id: int, user_id: int, value: float) -> "InstanceBuilder":
        """Set SI(event, user) explicitly (tabulated interest mode)."""
        self._interest[(event_id, user_id)] = value
        return self

    def interest_function(self, function: InterestFunction) -> "InstanceBuilder":
        """Use an attribute-driven interest function instead of a table.

        Overrides any values set via :meth:`interest`.
        """
        self._interest_function = function
        return self

    def default_interest(self, value: float) -> "InstanceBuilder":
        """Default SI for pairs not covered by :meth:`interest`."""
        self._default_interest = value
        return self

    def conflict(self, first_event: int, second_event: int) -> "InstanceBuilder":
        """Declare an explicit conflict between two events."""
        self._conflict_pairs.append((first_event, second_event))
        return self

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def _conflict_function(self, temporal: bool) -> ConflictFunction:
        members: list[ConflictFunction] = []
        if temporal:
            members.append(TimeIntervalConflict())
        if self._conflict_pairs:
            members.append(MatrixConflict(self._conflict_pairs))
        if not members:
            return NoConflict()
        if len(members) == 1:
            return members[0]
        return CompositeConflict(members)

    def build(self) -> IGEPAInstance:
        """Validate and return the instance.

        Raises:
            InstanceValidationError: via :class:`IGEPAInstance` on duplicate
                ids, dangling bids or ties to unknown users.
        """
        interest: InterestFunction
        if self._interest_function is not None:
            interest = self._interest_function
        else:
            interest = TabulatedInterest(
                self._interest, default=self._default_interest
            )
        # One packing pass replaces the per-entity generator scans: the
        # temporal check is the presence of the store's start column, the
        # social node list is the id column, and the instance reuses the
        # store instead of packing a second time.
        store = ColumnarStore.from_entities(self._users, self._events)
        social = Graph(nodes=store.user_ids.tolist())
        for first, second in self._edges:
            social.add_edge(first, second)
        return IGEPAInstance(
            events=self._events,
            users=self._users,
            conflict=self._conflict_function(store.event_start is not None),
            interest=interest,
            social=social,
            beta=self._beta,
            name=self._name,
            store=store,
        )
