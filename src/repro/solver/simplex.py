"""Two-phase primal simplex on the dense tableau.

This is the reference from-scratch LP backend (the paper used Gurobi; see
DESIGN.md §2).  It favours clarity and numerical robustness over speed:

* phase 1 starts from a full artificial basis and minimizes infeasibility;
* phase 2 optimizes the true objective from the feasible basis;
* the pivot rule is Dantzig's (most negative reduced cost) with an automatic,
  permanent switch to Bland's rule after ``bland_after`` pivots, which
  guarantees termination even on degenerate, cycling-prone inputs;
* unboundedness and infeasibility are detected and reported via
  :class:`~repro.solver.result.SolveStatus`.

The solver consumes :class:`~repro.solver.standard_form.StandardForm`
(``min c@y, A@y == b, y >= 0, b >= 0``) and reports back in that space;
:func:`solve_lp_simplex` wraps the conversion and recovery for a full
:class:`~repro.solver.problem.LinearProgram`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solver.problem import LinearProgram
from repro.solver.result import LPSolution, SolveStatus
from repro.solver.standard_form import StandardForm, to_standard_form

_TOL = 1e-9


@dataclass
class SimplexOptions:
    """Tuning knobs for the tableau simplex.

    Attributes:
        max_iterations: hard pivot cap; 0 means "auto" (``50 * (m + n) + 1000``).
        bland_after: pivot count after which the rule switches from Dantzig to
            Bland (anti-cycling).
        tol: numerical tolerance for reduced costs, ratios and feasibility.
    """

    max_iterations: int = 0
    bland_after: int = 10_000
    tol: float = _TOL

    def resolved_max_iterations(self, m: int, n: int) -> int:
        if self.max_iterations > 0:
            return self.max_iterations
        return 50 * (m + n) + 1000

    def degenerate_run_limit(self, m: int) -> int:
        """Consecutive degenerate (zero-step) pivots tolerated before the
        pivot rule switches to Bland permanently.

        ``bland_after`` alone cannot guarantee termination — it may exceed
        the iteration cap — and a cycle only ever makes degenerate pivots,
        so a long zero-progress run is the reliable trigger.
        """
        return m + 16


@dataclass
class _TableauResult:
    status: SolveStatus
    y: np.ndarray
    objective: float
    iterations: int
    #: Basic column indices at termination (revised backends only).
    basis: np.ndarray | None = None
    #: Whether a caller-supplied warm basis actually started the solve
    #: (revised backends; False also when the warm repair was abandoned).
    warm_used: bool = False


def _pivot(tableau: np.ndarray, basis: list[int], row: int, col: int) -> None:
    """Gauss-Jordan pivot on (row, col), updating the basis bookkeeping."""
    tableau[row] /= tableau[row, col]
    column = tableau[:, col].copy()
    column[row] = 0.0
    tableau -= np.outer(column, tableau[row])
    # The outer-product update leaves tiny residues in the pivot column; pin
    # it to the exact unit vector to stop error accumulating across pivots.
    tableau[:, col] = 0.0
    tableau[row, col] = 1.0
    basis[row] = col


def _choose_entering(
    objective_row: np.ndarray, allowed: int, use_bland: bool, tol: float
) -> int | None:
    """Index of the entering column, or None when optimal.

    ``allowed`` restricts the choice to the first ``allowed`` columns (used to
    exclude artificial columns in phase 2).
    """
    candidates = objective_row[:allowed]
    if use_bland:
        below = np.nonzero(candidates < -tol)[0]
        return int(below[0]) if below.size else None
    best = int(np.argmin(candidates))
    return best if candidates[best] < -tol else None


def min_ratio_row(
    column: np.ndarray, rhs: np.ndarray, basis: np.ndarray, tol: float
) -> int | None:
    """Row of the leaving variable by the vectorized minimum ratio test.

    Computes the *true* minimum ratio over the rows with ``column > tol``,
    then breaks ties — rows within ``tol`` of that minimum — by the smallest
    basis index (the Bland tie-break, which is also what makes the full Bland
    rule cycle-free).  Anchoring ties against the true minimum matters: the
    historical per-row loop re-anchored on every accepted tie, letting the
    accepted ratio ratchet upward by up to ``tol`` per row, so a row far from
    the minimum could win the pivot and take a feasibility-destroying step.

    Returns None when the column is nonpositive, i.e. the LP is unbounded
    along it.
    """
    eligible = column > tol
    if not eligible.any():
        return None
    ratios = np.full(column.shape[0], np.inf)
    np.divide(rhs, column, out=ratios, where=eligible)
    min_ratio = ratios.min()
    ties = np.flatnonzero(ratios <= min_ratio + tol)
    if ties.size == 1:
        return int(ties[0])
    return int(ties[np.argmin(basis[ties])])


def _choose_leaving(
    tableau: np.ndarray, basis: list[int], col: int, tol: float
) -> int | None:
    """Row index of the leaving variable (see :func:`min_ratio_row`)."""
    m = len(basis)
    return min_ratio_row(
        tableau[:m, col], tableau[:m, -1], np.asarray(basis, dtype=np.int64), tol
    )


def _run_simplex(
    tableau: np.ndarray,
    basis: list[int],
    allowed: int,
    options: SimplexOptions,
    start_iteration: int,
    max_iterations: int,
) -> tuple[SolveStatus, int]:
    """Pivot until optimal / unbounded / iteration limit.

    Returns the terminal status and the cumulative iteration count.
    """
    iterations = start_iteration
    degenerate_run = 0
    run_limit = options.degenerate_run_limit(len(basis))
    force_bland = False
    while True:
        use_bland = force_bland or iterations >= options.bland_after
        entering = _choose_entering(tableau[-1], allowed, use_bland, options.tol)
        if entering is None:
            return SolveStatus.OPTIMAL, iterations
        leaving = _choose_leaving(tableau, basis, entering, options.tol)
        if leaving is None:
            return SolveStatus.UNBOUNDED, iterations
        step = tableau[leaving, -1] / tableau[leaving, entering]
        _pivot(tableau, basis, leaving, entering)
        if step <= options.tol:
            degenerate_run += 1
            force_bland = force_bland or degenerate_run >= run_limit
        else:
            degenerate_run = 0
        iterations += 1
        if iterations >= max_iterations:
            return SolveStatus.ITERATION_LIMIT, iterations


def solve_standard_form(
    sf: StandardForm, options: SimplexOptions | None = None
) -> _TableauResult:
    """Solve ``min c@y, A@y == b, y >= 0`` by the two-phase tableau simplex."""
    options = options or SimplexOptions()
    a, b, c = sf.a, sf.b, sf.c
    m, n = a.shape
    max_iterations = options.resolved_max_iterations(m, n)

    if m == 0:
        # No constraints: each y >= 0, so the minimum puts every variable with
        # a positive cost at 0; any negative cost makes the LP unbounded.
        if np.any(c < -options.tol):
            return _TableauResult(SolveStatus.UNBOUNDED, np.zeros(n), np.nan, 0)
        return _TableauResult(SolveStatus.OPTIMAL, np.zeros(n), 0.0, 0)

    # ------------------------------------------------------------------
    # Phase 1: full artificial basis, minimize the sum of artificials.
    # Tableau layout: [A | I_m | b] with the phase-1 objective row appended.
    # ------------------------------------------------------------------
    tableau = np.zeros((m + 1, n + m + 1), dtype=float)
    tableau[:m, :n] = a
    tableau[:m, n : n + m] = np.eye(m)
    tableau[:m, -1] = b
    tableau[-1, n : n + m] = 1.0
    # Price out the basic artificials so the objective row holds reduced costs.
    tableau[-1] -= tableau[:m].sum(axis=0)
    basis = list(range(n, n + m))

    status, iterations = _run_simplex(
        tableau, basis, n + m, options, 0, max_iterations
    )
    if status is SolveStatus.ITERATION_LIMIT:
        return _TableauResult(status, np.zeros(n), np.nan, iterations)
    if status is SolveStatus.UNBOUNDED:  # phase-1 objective is bounded below by 0
        raise AssertionError("phase 1 of the simplex can never be unbounded")
    phase1_value = -tableau[-1, -1]
    if phase1_value > 1e-7:
        return _TableauResult(SolveStatus.INFEASIBLE, np.zeros(n), np.nan, iterations)

    # Drive any lingering zero-level artificials out of the basis; a row whose
    # structural part is entirely zero is redundant and can be neutralized.
    drop_rows: list[int] = []
    for row in range(m):
        if basis[row] < n:
            continue
        structural = np.abs(tableau[row, :n])
        pivot_col = int(np.argmax(structural))
        if structural[pivot_col] > options.tol:
            _pivot(tableau, basis, row, pivot_col)
            iterations += 1
        else:
            drop_rows.append(row)
    if drop_rows:
        keep = [row for row in range(m) if row not in set(drop_rows)]
        tableau = np.vstack([tableau[keep], tableau[-1:]])
        basis = [basis[row] for row in keep]
        m = len(basis)

    # ------------------------------------------------------------------
    # Phase 2: true objective over structural columns only.
    # ------------------------------------------------------------------
    tableau[-1, :] = 0.0
    tableau[-1, :n] = c
    for row, basic in enumerate(basis):
        if c[basic] != 0.0:
            tableau[-1] -= c[basic] * tableau[row]

    status, iterations = _run_simplex(tableau, basis, n, options, iterations, max_iterations)
    if status is SolveStatus.ITERATION_LIMIT:
        return _TableauResult(status, np.zeros(n), np.nan, iterations)
    if status is SolveStatus.UNBOUNDED:
        return _TableauResult(status, np.zeros(n), np.nan, iterations)

    y = np.zeros(n, dtype=float)
    for row, basic in enumerate(basis):
        if basic < n:
            y[basic] = tableau[row, -1]
    objective = float(-tableau[-1, -1])
    return _TableauResult(SolveStatus.OPTIMAL, y, objective, iterations)


def solve_lp_simplex(
    lp: LinearProgram, options: SimplexOptions | None = None
) -> LPSolution:
    """Solve a :class:`LinearProgram` with the from-scratch tableau simplex.

    Integer markers on variables are ignored (this solves the relaxation);
    use :func:`repro.solver.branch_and_bound.solve_ilp` for integral solves.
    """
    # The tableau is inherently dense; skip the sparse detour.
    sf = to_standard_form(lp, sparse=False)
    result = solve_standard_form(sf, options)
    if result.status is not SolveStatus.OPTIMAL:
        return LPSolution(status=result.status, iterations=result.iterations, backend="simplex")
    x = sf.recover_x(result.y)
    objective = sf.recover_objective(result.objective)
    return LPSolution(
        status=SolveStatus.OPTIMAL,
        objective_value=objective,
        x=x,
        iterations=result.iterations,
        backend="simplex",
    )
