"""The five-stage tick pipeline as a reusable engine.

PR 5's :func:`repro.experiments.simulate.simulate` ran churn → arrivals →
repair → defragmentation → oracle as one closed loop.  :class:`TickEngine`
extracts those stages into methods over explicit live state (instance,
arrangement, RNG, warm LP basis, oracle reference), so two drivers can
share them without re-implementing the invariants:

* the **synchronous driver** (``experiments.simulate``) calls the stages
  back-to-back per churn batch — bit-identical to the PR 5 loop, same seed
  threading, same reports;
* the **asyncio serving loop** (:mod:`repro.service.loop`) interleaves
  them: arrivals are answered per-request between stage boundaries, and
  defragmentation runs through :meth:`iter_defrag_passes` so the loop can
  cancel it at a pass boundary (every pass is feasibility-preserving, so
  cancellation can never strand an infeasible arrangement).

Determinism contract (unchanged from PR 5): the engine's RNG is consumed
*only* by ``serve`` calls in arrival order; the oracle re-solve derives
``seed + 1 + tick`` and the defrag LP ``seed + 100_003 + tick``; the
warm-started LP resolver is one object across the horizon so each defrag's
final simplex basis warm-starts the next.  All timing goes through the
injected :class:`~repro.service.clock.Clock`'s ``perf()`` — measurement
only, never a decision input.

**Revocable assignments** ride on defragmentation: re-seating an
already-served arrival pays ``switching_penalty`` per changed (user, event)
pair into the adoption objective, so the LP candidate wins only on *net*
gain.  With the default penalty of 0 the gate reduces exactly to PR 5's
``lp_utility > utility``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.core.base import ArrangementAlgorithm
from repro.core.baselines import GGGreedy
from repro.core.local_search import LocalSearch, improve
from repro.core.lp_packing import LPPacking
from repro.core.online import OnlineGreedy, _OnlineAlgorithm
from repro.core.repair import repair as targeted_repair
from repro.model.arrangement import Arrangement
from repro.model.delta import Delta, DeltaResult, apply_delta
from repro.model.instance import IGEPAInstance
from repro.service.clock import Clock, MonotonicClock
from repro.service.defrag import DefragSchedule


class TickEngine:
    """Live pipeline state plus the five stages as methods.

    Args:
        initial: the platform's starting instance (the trace's ``initial``).
        online: arrival-serving policy; also produces the bootstrap
            arrangement (default :class:`~repro.core.online.OnlineGreedy`).
        seed: RNG seed; per-tick oracle/defrag seeds derive from it.
        defrag: defragmentation schedule (default: never).
        oracle: full re-solve algorithm for retention (default ``gg+ls``).
        oracle_every: oracle cadence in ticks (0: never).
        defrag_lp: run the warm-started LP re-solve during defrag and adopt
            its arrangement on net gain.
        defrag_lp_backend: backend for that re-solve (see ``simulate``).
        defrag_lp_incremental: maintain the defrag LP incrementally —
            :meth:`apply_churn` feeds every delta into the resolver's
            delta-patched program, so each defrag re-solve starts from the
            previous optimal basis instead of rebuilding (dual simplex for
            capacity shocks, warm primal otherwise).  Overrides
            ``defrag_lp_backend`` for the benchmark solve.  The LP optimum
            is identical either way; the sampled arrangement may differ
            (the solvers can land on different optimal vertices).
        max_passes: local-search pass cap for repair and defrag sweeps.
        executor: process pool for shard-parallel repair (None: serial).
        check_parity: rebuild the index from scratch in :meth:`audit` and
            compare against the patched one.
        clock: time source; ``perf()`` is used for measurements only.
        switching_penalty: utility cost per re-seated (user, event) pair of
            a *served* user during defragmentation (0: revocation is free,
            PR 5 behavior).
    """

    def __init__(
        self,
        initial: IGEPAInstance,
        online: _OnlineAlgorithm | None = None,
        *,
        seed: int = 0,
        defrag: DefragSchedule | None = None,
        oracle: ArrangementAlgorithm | None = None,
        oracle_every: int = 0,
        defrag_lp: bool = True,
        defrag_lp_backend: str = "auto",
        defrag_lp_incremental: bool = False,
        max_passes: int = 20,
        executor=None,
        check_parity: bool = False,
        clock: Clock | None = None,
        switching_penalty: float = 0.0,
    ):
        if switching_penalty < 0.0:
            raise ValueError(
                f"switching_penalty must be >= 0, got {switching_penalty}"
            )
        self.instance = initial
        self.online = online if online is not None else OnlineGreedy()
        self.oracle = oracle if oracle is not None else LocalSearch(GGGreedy())
        self.defrag = defrag if defrag is not None else DefragSchedule()
        self.seed = seed
        self.oracle_every = oracle_every
        self.max_passes = max_passes
        self.executor = executor
        self.check_parity = check_parity
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self.switching_penalty = switching_penalty
        self.rng = np.random.default_rng(seed)
        # One resolver across the horizon: each defrag's final simplex basis
        # warm-starts the next (when a revised-simplex backend runs); in
        # incremental mode the basis persists inside the resolver's
        # delta-patched program instead of riding label hints.
        self.lp_resolver = (
            LPPacking(
                alpha=1.0,
                lp_backend=defrag_lp_backend,
                warm_start=True,
                incremental=defrag_lp_incremental,
            )
            if defrag_lp
            else None
        )
        self.arrangement: Arrangement | None = None
        self.oracle_reference: float | None = None
        self.switching_spend_total = 0.0
        self.switching_pairs_total = 0

    # ------------------------------------------------------------------
    # Stage 0: bootstrap
    # ------------------------------------------------------------------
    def bootstrap(self) -> tuple[float, float]:
        """Solve the initial arrangement (the pre-trace population arrived
        online too).  Returns ``(utility, seconds)``."""
        started = self.clock.perf()
        initial = self.online.solve(self.instance, seed=self.seed)
        self.arrangement = initial.arrangement
        return initial.utility, self.clock.perf() - started

    # ------------------------------------------------------------------
    # Stage 1: churn
    # ------------------------------------------------------------------
    def apply_churn(self, delta: Delta) -> DeltaResult:
        """Apply one churn batch; the engine advances to the successor
        instance and the carried (pair-shed) arrangement."""
        result = apply_delta(self.instance, delta, self.arrangement)
        if self.lp_resolver is not None:
            # Keep the resolver's delta-patched LP in lockstep with the
            # live instance (a no-op outside incremental mode / before the
            # first defrag solve anchors the chain).
            self.lp_resolver.observe_delta(delta, result.instance)
        self.instance = result.instance
        self.arrangement = result.arrangement
        # Cache hygiene: departed users can never be served again, so any
        # memoized per-user serving state (admissible-set cache) is dead.
        if delta.remove_users:
            self.online.forget_users(delta.remove_users)
        return result

    # ------------------------------------------------------------------
    # Stage 2: arrivals
    # ------------------------------------------------------------------
    def serve_one(self, user_id: int) -> list[int]:
        """Serve one arrival against the live arrangement, consuming the
        engine RNG.  Returns the newly assigned event ids (sorted; empty =
        nothing fit)."""
        return self.online.serve(self.instance, self.arrangement, user_id, self.rng)

    def exclude_from_repair(
        self, result: DeltaResult, user_ids: Iterable[int]
    ) -> None:
        """Drop arrivals from the repair's user-side scan so the online
        policy's choice is never improved upon on their behalf (event-side
        refill/evict still treats them like any other bidder)."""
        result.touched_users.difference_update(user_ids)

    def serve_arrivals(self, result: DeltaResult, delta: Delta) -> int:
        """The PR 5 arrival stage: serve the delta's new users in arrival
        order, then exclude them from the repair scan.  Returns the number
        accepted (assigned at least one event at arrival time)."""
        accepted = 0
        for user in delta.add_users:
            if self.serve_one(user.user_id):
                accepted += 1
        self.exclude_from_repair(
            result, (user.user_id for user in delta.add_users)
        )
        return accepted

    # ------------------------------------------------------------------
    # Stage 3: targeted repair
    # ------------------------------------------------------------------
    def repair(self, result: DeltaResult) -> dict:
        """Re-optimize the churned scope (shard-parallel when configured)."""
        if self.executor is not None:
            from repro.core.parallel import parallel_repair

            return parallel_repair(result, self.executor, max_passes=self.max_passes)
        return targeted_repair(result, max_passes=self.max_passes)

    # ------------------------------------------------------------------
    # Stage 4: defragmentation (+ revocation accounting)
    # ------------------------------------------------------------------
    def should_defrag(self, tick: int, utility: float) -> bool:
        return self.defrag.should_run(tick, utility, self.oracle_reference)

    def assignment_snapshot(
        self, user_ids: Iterable[int]
    ) -> dict[int, frozenset[int]]:
        """Snapshot the given users' assignments (for switching-cost diffs
        across a defrag pass).  Unknown ids are skipped — a served arrival
        may have been churned off the platform since."""
        return {
            user_id: frozenset(self.arrangement.events_of(user_id))
            for user_id in user_ids
            if user_id in self.instance.user_by_id
        }

    def switching_pairs(
        self,
        snapshot: dict[int, frozenset[int]],
        arrangement: Arrangement | None = None,
    ) -> int:
        """Count (user, event) pairs that changed against ``snapshot``."""
        arrangement = arrangement if arrangement is not None else self.arrangement
        return sum(
            len(before ^ arrangement.events_of(user_id))
            for user_id, before in snapshot.items()
        )

    def record_switching(
        self, moves: dict, snapshot: dict[int, frozenset[int]]
    ) -> float:
        """Charge switching costs against ``snapshot`` without an LP step
        (a superseded defrag still pays for the re-seating its completed
        passes did).  Mutates ``moves`` and returns the spend."""
        pairs = self.switching_pairs(snapshot)
        spend = self.switching_penalty * pairs
        moves["switching_pairs"] = pairs
        moves["switching_spend"] = spend
        self.switching_pairs_total += pairs
        self.switching_spend_total += spend
        return spend

    def iter_defrag_passes(self, result: DeltaResult) -> Iterator[dict]:
        """Full-scope improvement, one pass per iteration.

        Yields each pass's move counts so the asyncio loop can insert a
        cancellation point between passes; every pass leaves the
        arrangement feasible (all moves are feasibility-checked), so
        abandoning the generator mid-defrag is always safe.  Driving it to
        exhaustion selects exactly the moves of one
        ``improve(max_passes=N)`` call: the pass scans depend only on the
        arrangement state, which each pass leaves exactly where a combined
        run's pass would.
        """
        for _ in range(self.max_passes):
            counts = improve(result.instance, self.arrangement, max_passes=1)
            moved = (
                counts["adds"]
                + counts["refills"]
                + counts["upgrades"]
                + counts["evictions"]
            )
            yield counts
            if moved == 0:
                break

    def adopt_lp(
        self,
        result: DeltaResult,
        tick: int,
        moves: dict,
        utility: float,
        snapshot: dict[int, frozenset[int]] | None = None,
    ) -> float:
        """Defrag's LP step: warm-started re-solve, adopted on net gain.

        With a switching ``snapshot``, each candidate's utility is charged
        ``switching_penalty`` per re-seated pair before comparison; the
        final arrangement's spend is recorded in ``moves`` and accumulated
        on the engine.  Mutates ``moves`` in place and returns the (possibly
        adopted) utility.
        """
        penalty = self.switching_penalty
        spend = (
            penalty * self.switching_pairs(snapshot)
            if snapshot is not None
            else 0.0
        )
        if self.lp_resolver is not None:
            lp_result = self.lp_resolver.solve(
                result.instance, seed=self.seed + 100_003 + tick
            )
            lp_spend = (
                penalty * self.switching_pairs(snapshot, lp_result.arrangement)
                if snapshot is not None
                else 0.0
            )
            moves["lp_utility"] = lp_result.utility
            moves["lp_adopted"] = lp_result.utility - lp_spend > utility - spend
            if moves["lp_adopted"]:
                self.arrangement = lp_result.arrangement
                utility = lp_result.utility
                spend = lp_spend
        if snapshot is not None:
            pairs = self.switching_pairs(snapshot)
            moves["switching_pairs"] = pairs
            moves["switching_spend"] = spend
            self.switching_pairs_total += pairs
            self.switching_spend_total += spend
        result.arrangement = self.arrangement
        return utility

    def defragment(
        self,
        result: DeltaResult,
        tick: int,
        *,
        served_users: Iterable[int] = (),
    ) -> tuple[dict, float]:
        """One full-scope defragmentation pass (PR 5's ``_defragment``).

        Returns ``(moves, utility)`` for the (possibly LP-replaced)
        arrangement.  ``served_users`` are charged switching costs for any
        re-seating when a penalty is configured.
        """
        snapshot = (
            self.assignment_snapshot(served_users)
            if self.switching_penalty > 0.0
            else None
        )
        if self.executor is not None:
            from repro.core.parallel import parallel_repair

            moves = dict(
                parallel_repair(
                    result, self.executor, max_passes=self.max_passes, full_scope=True
                )
            )
        else:
            moves = dict(
                improve(result.instance, self.arrangement, max_passes=self.max_passes)
            )
        utility = self.arrangement.utility()
        utility = self.adopt_lp(result, tick, moves, utility, snapshot)
        return moves, utility

    # ------------------------------------------------------------------
    # Stage 5: oracle + audits
    # ------------------------------------------------------------------
    def should_run_oracle(self, tick: int, last_tick: int) -> bool:
        return bool(self.oracle_every) and (
            (tick + 1) % self.oracle_every == 0 or tick == last_tick
        )

    def oracle_solve(self, tick: int) -> float:
        """Full re-solve of the current instance; updates the running
        reference that retention, repair debt and :class:`RetentionDefrag`
        read."""
        utility = self.oracle.solve(self.instance, seed=self.seed + 1 + tick).utility
        self.oracle_reference = utility
        return utility

    def repair_debt(self, utility: float) -> float | None:
        """Utility a full defragmentation could reclaim (None before the
        first oracle measurement)."""
        if self.oracle_reference is None:
            return None
        return max(0.0, self.oracle_reference - utility)

    def audit(self, result: DeltaResult) -> tuple[bool, list[str] | None]:
        """End-of-tick audits: full Definition 4 feasibility, and (when
        ``check_parity``) patched-vs-fresh index parity."""
        parity: list[str] | None = None
        if self.check_parity:
            from repro.experiments.replay import (
                fresh_index_like,
                index_parity_mismatches,
            )

            parity = index_parity_mismatches(
                result.instance.index,
                fresh_index_like(result.instance.index, result.instance),
            )
        return self.arrangement.is_feasible(), parity

    def utility(self) -> float:
        return self.arrangement.utility()
