"""Sharded-index benchmark: 50k and 500k users end-to-end under memory gates.

Four gates, all on fixed seeds:

1. **Scale + memory** — stream-generate a |U| = 50_000, |V| = 500 instance,
   build its :class:`~repro.model.sharded_index.ShardedInstanceIndex` and
   run the full pipeline (GG+LS, then LP-packing on HiGHS) end to end.
   The dense index cannot even build at this shape (2.5·10⁷ cells is past
   its hard cap — asserted), and the whole run's peak RSS above the
   interpreter baseline must stay under the gate
   ``instance footprint + 17·|U|·|V| bytes`` — i.e. under what a
   dense-index pipeline would occupy the moment its ``W``/``SI``/
   ``bid_mask`` matrices exist, before solving anything.
2. **Columnar 500k** — the arrays-first pipeline at |U| = 500_000: the
   stream generator builds a :class:`~repro.model.columnar.ColumnarStore`
   directly (no entity objects), the large columns spill to memory-mapped
   ``.npy`` files under a small resident budget, and stream-build → GG+LS
   → LP-packing → hand-built churn-delta replay must finish under
   ``COLUMNAR_BUDGET_MB`` of peak RSS above baseline.  A 50k objects-first
   probe is measured and extrapolated linearly; the gate asserts the
   extrapolation *exceeds* the budget — the object layer provably cannot
   meet it before solving anything.
3. **Parity** — at a dense-buildable size, GG / GG+LS / LP-packing must
   produce bit-identical arrangements on the sharded and the dense index
   (hard gate; the property suite covers more shard sizes, and
   ``tests/integration/test_columnar_parity.py`` the columnar/object axis).
4. **Shard-parallel replay** — replay a churn trace over the 50k instance
   with the shard-parallel repair engine at 1 worker and at
   ``max(4, ...)`` workers; on machines with 4+ cores the per-batch
   wall-clock speedup must reach ``--min-speedup`` (default 2x; CI passes
   a looser floor because shared runners add noise — the measured ratio
   lands in the JSON artifact either way).  On smaller machines the ratio
   is recorded but not gated.

Results land in ``benchmarks/output/BENCH_shard.json`` so the scaling
trajectory accumulates across PRs, like the LP and churn benches.  The
columnar row records peak RSS, build time and spill bytes; PR CI passes
``--skip-columnar`` (the 500k shape runs nightly).

Run as a script (CI does)::

    python benchmarks/bench_shard.py --out benchmarks/output/BENCH_shard.json

or through pytest-benchmark with the rest of the bench suite::

    python -m pytest benchmarks/bench_shard.py
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import gc

import numpy as np

from repro.core import GGGreedy, LPPacking, LocalSearch
from repro.core.repair import apply_with_repair
from repro.datagen import (
    ChurnConfig,
    SyntheticConfig,
    generate_churn_trace,
    generate_synthetic,
    generate_synthetic_stream,
)
from repro.experiments.persistence import write_bench_artifact
from repro.experiments.replay import replay_trace
from repro.model import (
    Delta,
    IndexCapacityError,
    InstanceIndex,
    ShardedInstanceIndex,
    User,
)
from repro.solver.scipy_backend import scipy_available

NUM_USERS = 50_000
NUM_EVENTS = 500
#: Bytes per user-by-event cell of the dense index's matrices (W + SI as
#: float64 plus bid_mask as bool) — 425 MB at the bench shape.  The memory
#: gate is ``measured instance footprint + this``: a dense-index pipeline
#: exceeds that the moment its matrices are allocated, before any solve.
DENSE_BYTES_PER_CELL = 17.0
MIN_PARALLEL_SPEEDUP = 2.0
PARALLEL_WORKERS = 4

COLUMNAR_USERS = 500_000
#: Peak-RSS budget (MB above interpreter baseline) for the gated region of
#: the 500k pipeline: objects-first probe, columnar stream-build (+spill),
#: sharded index, GG+LS and the churn-delta replay.  Measured: build +
#: index + GG+LS peak ~590 MB (the arrangement's |U|x|V| bool matrix is
#: the largest single block at 250 MB); each replay batch transiently
#: holds the successor's matrix, store components and index shards
#: alongside the predecessor's, for a region peak of ~745 MB.  The 50k
#: objects-first probe extrapolates to ~970 MB of *instance alone* at
#: 500k — asserted above this budget, so the object layer cannot meet the
#: gate before any algorithm runs.  (LP-packing runs after the gate is
#: read: its peak is the LP backend's internal arena — identical for
#: either entity layer — and is recorded, not budget-gated.)
COLUMNAR_BUDGET_MB = 860.0
#: Resident-bytes budget handed to the stream generator; small enough that
#: the per-user/per-bid columns always spill, exercising the mmap path.
COLUMNAR_SPILL_BUDGET_BYTES = 8 << 20
OBJECT_PROBE_USERS = 50_000
COLUMNAR_CHURN_BATCHES = 2


def _rss_mb() -> float:
    """Peak RSS of this process's address space in MB (``VmHWM``).

    ``VmHWM`` rather than ``ru_maxrss``: the latter survives ``execve`` on
    Linux, so a freshly spawned child (the columnar gate) would inherit its
    parent's high-water mark as a baseline and understate its own peak.
    ``VmHWM`` belongs to the address space, which exec replaces.
    """
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmHWM:"):
                return int(line.split()[1]) / 1024.0
    raise RuntimeError("VmHWM not found in /proc/self/status")


def _current_rss_mb() -> float:
    """Currently-resident RSS in MB (``VmRSS``), not the lifetime peak.

    Used where a *footprint* is measured (bytes held resident by a live
    allocation) rather than a watermark: a ``ru_maxrss`` delta reads zero
    whenever the allocation stays below an earlier transient peak — e.g.
    import-time — no matter how large the object being measured is.
    """
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) / 1024.0
    raise RuntimeError("VmRSS not found in /proc/self/status")


def run_scale_gate(seed: int) -> dict:
    """Build + GG+LS + LP-packing at 50k users under the memory gate."""
    baseline_mb = _rss_mb()
    config = SyntheticConfig(
        num_users=NUM_USERS,
        num_events=NUM_EVENTS,
        max_bids=3,
        max_user_capacity=2,
    )
    started = time.perf_counter()
    instance = generate_synthetic_stream(config, seed=seed)
    generate_seconds = time.perf_counter() - started
    instance_mb = _rss_mb() - baseline_mb

    # The dense index cannot represent this shape at all.
    try:
        InstanceIndex(instance)
        raise AssertionError(
            "dense InstanceIndex unexpectedly accepted a "
            f"{NUM_USERS}x{NUM_EVENTS} instance"
        )
    except IndexCapacityError:
        pass

    started = time.perf_counter()
    index = instance.index
    index_seconds = time.perf_counter() - started
    assert isinstance(index, ShardedInstanceIndex), type(index).__name__

    started = time.perf_counter()
    gg_ls = LocalSearch(GGGreedy()).solve(instance, seed=seed)
    gg_ls_seconds = time.perf_counter() - started
    assert gg_ls.arrangement.is_feasible()

    lp_row = None
    if scipy_available():
        started = time.perf_counter()
        lp = LPPacking(
            alpha=1.0, lp_backend="scipy", lp_presolve=False, cache_lp=False
        ).solve(instance, seed=seed)
        lp_seconds = time.perf_counter() - started
        assert lp.arrangement.is_feasible()
        lp_row = {
            "seconds": lp_seconds,
            "utility": lp.utility,
            "lp_variables": lp.details["num_variables"],
            "lp_backend": lp.details["lp_backend"],
        }

    peak_mb = _rss_mb()
    dense_matrix_mb = DENSE_BYTES_PER_CELL * NUM_USERS * NUM_EVENTS / 1e6
    gate_delta_mb = instance_mb + dense_matrix_mb
    peak_delta_mb = peak_mb - baseline_mb
    row = {
        "num_users": NUM_USERS,
        "num_events": NUM_EVENTS,
        "num_bids": index.num_bids,
        "num_shards": index.num_shards,
        "shard_size": index.shard_size,
        "generate_seconds": generate_seconds,
        "index_seconds": index_seconds,
        "gg_ls_seconds": gg_ls_seconds,
        "gg_ls_utility": gg_ls.utility,
        "lp_packing": lp_row,
        "baseline_mb": baseline_mb,
        "instance_mb": instance_mb,
        "peak_mb": peak_mb,
        "peak_delta_mb": peak_delta_mb,
        "dense_matrix_mb": dense_matrix_mb,
        "memory_gate_delta_mb": gate_delta_mb,
    }
    print(
        f"scale: |U|={NUM_USERS} |V|={NUM_EVENTS} shards="
        f"{index.num_shards}x{index.shard_size} gg+ls={gg_ls_seconds:.1f}s "
        f"lp={'skipped' if lp_row is None else format(lp_row['seconds'], '.1f') + 's'} "
        f"peak delta {peak_delta_mb:.0f}MB < gate {gate_delta_mb:.0f}MB "
        f"(instance {instance_mb:.0f}MB + dense matrices {dense_matrix_mb:.0f}MB)"
    )
    assert peak_delta_mb < gate_delta_mb, (
        f"sharded 50k run peaked {peak_delta_mb:.0f}MB over baseline — not "
        f"below the dense-index floor of {gate_delta_mb:.0f}MB (instance "
        f"{instance_mb:.0f}MB + dense matrices {dense_matrix_mb:.0f}MB)"
    )
    return row


def _hand_built_delta(
    instance, rng: np.random.Generator, next_user_id: int
) -> tuple[Delta, int]:
    """One churn batch assembled straight from the store's columns.

    ``generate_churn_trace`` keeps an O(|U|) id/bid mirror — exactly the
    object-shaped state the columnar gate must not pay for — so the replay
    leg builds its deltas by hand: departures and re-bids sampled from the
    id column, arrivals with fresh ids, all through array reads.
    """
    store = instance.store
    sample = rng.choice(store.user_ids, size=3000, replace=False)
    departures = sample[:1000].tolist()
    rebidders = sample[1000:].tolist()
    user_pos = store.user_pos
    remove_bids, add_bids, interest = [], [], []
    for user_id in rebidders:
        bids = store.user_bids(user_pos[user_id])
        if not bids:
            continue
        new_event = int(rng.integers(NUM_EVENTS))
        if new_event in bids:
            continue
        remove_bids.append((user_id, bids[0]))
        add_bids.append((user_id, new_event))
        interest.append((new_event, user_id, float(rng.uniform())))
    add_users, degrees = [], []
    for _ in range(500):
        user_id = next_user_id
        next_user_id += 1
        bids = tuple(sorted(rng.choice(NUM_EVENTS, size=2, replace=False).tolist()))
        add_users.append(
            User(user_id=user_id, capacity=int(rng.integers(1, 3)), bids=bids)
        )
        for event_id in bids:
            interest.append((int(event_id), user_id, float(rng.uniform())))
        degrees.append((user_id, float(rng.uniform())))
    delta = Delta(
        add_users=tuple(add_users),
        remove_users=tuple(departures),
        add_bids=tuple(add_bids),
        remove_bids=tuple(remove_bids),
        interest=tuple(interest),
        degrees=tuple(degrees),
    )
    return delta, next_user_id


def run_columnar_gate(seed: int) -> dict:
    """The 500k arrays-first pipeline under the columnar peak-RSS budget.

    Runs in a child process: ``ru_maxrss`` is a monotone lifetime peak, so
    measuring RSS deltas in a process that already ran the 50k scale gate
    (dense matrices, an LP solve) would both inflate the columnar peak and
    zero out the objects-first probe (whose allocation never exceeds the
    stale high-water mark).  A fresh interpreter gives both measurements a
    clean baseline.
    """
    with tempfile.NamedTemporaryFile(
        mode="r", suffix=".json", prefix="columnar-gate-", delete=False
    ) as handle:
        out_path = handle.name
    try:
        completed = subprocess.run(
            [
                sys.executable,
                str(Path(__file__).resolve()),
                "--columnar-child",
                "--seed",
                str(seed),
                "--out",
                out_path,
            ],
            check=False,
        )
        if completed.returncode != 0:
            raise AssertionError(
                f"columnar gate child exited {completed.returncode} "
                "(its assertion output is above)"
            )
        with open(out_path) as handle:
            return json.load(handle)
    finally:
        os.unlink(out_path)


def _columnar_gate_impl(seed: int) -> dict:
    """Gate body — runs inside the fresh child process."""
    baseline_mb = _rss_mb()

    # Objects-first floor: measure a 50k entity-mode instance (same config,
    # same draws) and extrapolate linearly.  The object layer's footprint
    # scales with |U| by construction — dataclass + __dict__ + bid tuple per
    # user, dict entries per bid — so the extrapolation is a lower bound on
    # what objects-first would hold resident at 500k before any solve.
    probe_config = SyntheticConfig(
        num_users=OBJECT_PROBE_USERS,
        num_events=NUM_EVENTS,
        max_bids=3,
        max_user_capacity=2,
    )
    gc.collect()
    probe_resident_mb = _current_rss_mb()
    probe = generate_synthetic_stream(probe_config, seed=seed, columnar=False)
    assert not probe.is_columnar
    probe_mb = _current_rss_mb() - probe_resident_mb
    extrapolated_object_mb = probe_mb * (COLUMNAR_USERS / OBJECT_PROBE_USERS)
    del probe
    gc.collect()

    config = SyntheticConfig(
        num_users=COLUMNAR_USERS,
        num_events=NUM_EVENTS,
        max_bids=3,
        max_user_capacity=2,
    )
    started = time.perf_counter()
    instance = generate_synthetic_stream(
        config, seed=seed, spill_budget_bytes=COLUMNAR_SPILL_BUDGET_BYTES
    )
    build_seconds = time.perf_counter() - started
    assert instance.is_columnar
    store = instance.store
    assert store.spilled_bytes > 0, "spill path did not engage"
    store_resident_mb = store.nbytes / 1e6
    spilled_bytes = store.spilled_bytes

    started = time.perf_counter()
    index = instance.index
    index_seconds = time.perf_counter() - started
    assert isinstance(index, ShardedInstanceIndex), type(index).__name__

    started = time.perf_counter()
    gg_ls = LocalSearch(GGGreedy()).solve(instance, seed=seed)
    gg_ls_seconds = time.perf_counter() - started
    assert gg_ls.arrangement.is_feasible()
    gg_ls_utility = gg_ls.utility

    # Churn replay: hand-built delta batches through the columnar patch
    # path (incremental index + carried arrangement + targeted repair).
    # Each successor supersedes its predecessor, so only the rolling
    # (instance, arrangement) pair is kept: the solver result and the
    # original store/index handles would otherwise pin the predecessor's
    # assignment matrix and shard arrays across every batch.
    rng = np.random.default_rng(seed + 1)
    arrangement = gg_ls.arrangement
    del gg_ls, store, index
    gc.collect()
    next_user_id = COLUMNAR_USERS
    started = time.perf_counter()
    for _ in range(COLUMNAR_CHURN_BATCHES):
        delta, next_user_id = _hand_built_delta(instance, rng, next_user_id)
        result, _moves = apply_with_repair(instance, delta, arrangement)
        instance, arrangement = result.instance, result.arrangement
        assert instance.is_columnar
        del result
        gc.collect()
    replay_seconds = time.perf_counter() - started
    assert arrangement.is_feasible()

    # The budget is read here: everything the columnar layer owns has run.
    peak_delta_mb = _rss_mb() - baseline_mb

    lp_row = None
    if scipy_available():
        started = time.perf_counter()
        lp = LPPacking(
            alpha=1.0, lp_backend="scipy", lp_presolve=False, cache_lp=False
        ).solve(instance, seed=seed)
        lp_seconds = time.perf_counter() - started
        assert lp.arrangement.is_feasible()
        lp_row = {
            "seconds": lp_seconds,
            "utility": lp.utility,
            "lp_variables": lp.details["num_variables"],
            "lp_backend": lp.details["lp_backend"],
            "peak_with_lp_mb": _rss_mb() - baseline_mb,
        }

    row = {
        "num_users": COLUMNAR_USERS,
        "num_events": NUM_EVENTS,
        "num_bids": instance.store.num_bids,
        "build_seconds": build_seconds,
        "index_seconds": index_seconds,
        "gg_ls_seconds": gg_ls_seconds,
        "gg_ls_utility": gg_ls_utility,
        "replay_batches": COLUMNAR_CHURN_BATCHES,
        "replay_seconds": replay_seconds,
        "lp_packing": lp_row,
        "baseline_mb": baseline_mb,
        "store_resident_mb": store_resident_mb,
        "spilled_bytes": spilled_bytes,
        "object_probe_users": OBJECT_PROBE_USERS,
        "object_probe_mb": probe_mb,
        "extrapolated_object_mb": extrapolated_object_mb,
        "peak_delta_mb": peak_delta_mb,
        "budget_mb": COLUMNAR_BUDGET_MB,
    }
    print(
        f"columnar: |U|={COLUMNAR_USERS} build={build_seconds:.1f}s "
        f"gg+ls={gg_ls_seconds:.1f}s replay={replay_seconds:.1f}s "
        f"lp={'skipped' if lp_row is None else format(lp_row['seconds'], '.1f') + 's'} "
        f"spilled={spilled_bytes / 1e6:.0f}MB peak delta {peak_delta_mb:.0f}MB "
        f"< budget {COLUMNAR_BUDGET_MB:.0f}MB < objects-first floor "
        f"{extrapolated_object_mb:.0f}MB"
    )
    assert peak_delta_mb < COLUMNAR_BUDGET_MB, (
        f"columnar 500k pipeline peaked {peak_delta_mb:.0f}MB over baseline — "
        f"above the {COLUMNAR_BUDGET_MB:.0f}MB budget"
    )
    assert extrapolated_object_mb > COLUMNAR_BUDGET_MB, (
        f"objects-first extrapolation ({extrapolated_object_mb:.0f}MB from a "
        f"{OBJECT_PROBE_USERS}-user probe) no longer exceeds the "
        f"{COLUMNAR_BUDGET_MB:.0f}MB budget — the columnar gate proves nothing"
    )
    return row


def run_columnar_parity_gate(seed: int) -> dict:
    """Columnar-built vs object-built indexes: identical bits, identical
    decisions (hard gate; runs in PR CI too — it is cheap)."""
    config = SyntheticConfig(num_users=3000, num_events=200)
    columnar = generate_synthetic_stream(config, seed=seed)
    entity = generate_synthetic_stream(config, seed=seed, columnar=False)
    assert columnar.is_columnar and not entity.is_columnar
    ci, ei = columnar.index, entity.index
    assert type(ci) is type(ei), (type(ci).__name__, type(ei).__name__)
    mismatched = [
        name
        for name in type(ci).PARITY_ARRAYS
        if not np.array_equal(getattr(ci, name), getattr(ei, name))
    ]
    assert mismatched == [], f"columnar/object index arrays differ: {mismatched}"
    a = LocalSearch(GGGreedy()).solve(columnar, seed=seed)
    b = LocalSearch(GGGreedy()).solve(entity, seed=seed)
    assert a.arrangement.pairs == b.arrangement.pairs
    assert a.utility == b.utility
    print(
        "columnar parity: index arrays + GG+LS arrangement bit-identical "
        "across entity layers"
    )
    return {"identical_arrays": True, "identical_pairs": True, "utility": a.utility}


def run_parity_gate(seed: int) -> dict:
    """Fixed-seed arrangement parity between the sharded and dense paths."""
    config = SyntheticConfig(num_users=3000, num_events=200)
    algorithms = {
        "gg": lambda: GGGreedy(),
        "gg+ls": lambda: LocalSearch(GGGreedy()),
        "lp-packing": lambda: LPPacking(alpha=1.0),
    }
    rows = {}
    for name, factory in algorithms.items():
        dense_instance = generate_synthetic(config, seed=seed)
        dense_instance.configure_index(sharded=False)
        sharded_instance = generate_synthetic(config, seed=seed)
        sharded_instance.configure_index(sharded=True, shard_size=256)
        dense = factory().solve(dense_instance, seed=seed)
        sharded = factory().solve(sharded_instance, seed=seed)
        identical = dense.arrangement.pairs == sharded.arrangement.pairs
        rows[name] = {
            "utility": dense.utility,
            "identical_pairs": identical,
        }
        assert identical, f"{name}: sharded and dense arrangements differ"
        assert dense.utility == sharded.utility
    print(f"parity: {', '.join(rows)} bit-identical across index implementations")
    return rows


def run_parallel_gate(seed: int, min_speedup: float, workers: int) -> dict:
    """Shard-parallel replay speedup over the single-worker baseline."""
    config = SyntheticConfig(num_users=NUM_USERS, num_events=NUM_EVENTS)
    instance = generate_synthetic_stream(config, seed=seed)
    churn = ChurnConfig(
        num_batches=3,
        user_arrival_rate=NUM_USERS / 1000,
        user_departure_rate=NUM_USERS / 1000,
        rebid_rate=NUM_USERS / 25,
        event_open_rate=1.0,
        event_close_rate=1.0,
        base=config,
    )
    trace = generate_churn_trace(instance, churn, seed=seed + 1)

    single = replay_trace(trace, seed=seed, compare_full=False, workers=1)
    assert single.all_feasible
    parallel = replay_trace(trace, seed=seed, compare_full=False, workers=workers)
    assert parallel.all_feasible

    speedup = (
        single.mean_incremental_seconds / parallel.mean_incremental_seconds
        if parallel.mean_incremental_seconds > 0
        else None
    )
    cores = os.cpu_count() or 1
    gated = cores >= 4
    row = {
        "workers": workers,
        "cpu_cores": cores,
        "single_mean_batch_seconds": single.mean_incremental_seconds,
        "parallel_mean_batch_seconds": parallel.mean_incremental_seconds,
        "speedup": speedup,
        "gated": gated,
        "min_required_speedup": min_speedup if gated else None,
        "single_utilities": [r.incremental_utility for r in single.records],
        "parallel_utilities": [r.incremental_utility for r in parallel.records],
    }
    print(
        f"parallel replay: 1 worker {single.mean_incremental_seconds:.2f}s/batch, "
        f"{workers} workers {parallel.mean_incremental_seconds:.2f}s/batch -> "
        f"{speedup:.2f}x ({'gated' if gated else f'not gated, {cores} core(s)'})"
    )
    if gated:
        assert speedup is not None and speedup >= min_speedup, (
            f"shard-parallel replay reached only {speedup:.2f}x over the "
            f"single-worker baseline at {workers} workers "
            f"(required: {min_speedup}x on {cores} cores)"
        )
    return row


def run_bench(
    seed: int = 0,
    min_speedup: float = MIN_PARALLEL_SPEEDUP,
    workers: int = PARALLEL_WORKERS,
    skip_parallel: bool = False,
    skip_columnar: bool = False,
) -> dict:
    report = {
        "seed": seed,
        "scale": run_scale_gate(seed),
        "parity": run_parity_gate(seed),
        "columnar_parity": run_columnar_parity_gate(seed),
    }
    if not skip_columnar:
        report["columnar"] = run_columnar_gate(seed)
    if not skip_parallel:
        report["parallel_replay"] = run_parallel_gate(seed, min_speedup, workers)
    return report


def bench_shard_scale(bench_once):
    """pytest-benchmark entry: scale + parity gates (the parallel gate is
    hardware-dependent and the columnar 500k gate too slow for the pytest
    path; both run in the script/CI path)."""
    report = bench_once(run_bench, seed=0, skip_parallel=True, skip_columnar=True)
    scale = report["scale"]
    assert scale["peak_delta_mb"] < scale["memory_gate_delta_mb"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=MIN_PARALLEL_SPEEDUP,
        help="floor on the shard-parallel replay speedup (4+ core machines)",
    )
    parser.add_argument(
        "--workers", type=int, default=PARALLEL_WORKERS, help="parallel worker count"
    )
    parser.add_argument(
        "--skip-parallel",
        action="store_true",
        help="skip the shard-parallel replay measurement",
    )
    parser.add_argument(
        "--skip-columnar",
        action="store_true",
        help="skip the |U|=500k columnar peak-RSS gate (PR CI does; "
        "nightly runs it)",
    )
    parser.add_argument(
        "--columnar-child",
        action="store_true",
        help=argparse.SUPPRESS,  # internal: run the 500k gate body and exit
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent / "output" / "BENCH_shard.json",
    )
    args = parser.parse_args()
    if args.columnar_child:
        row = _columnar_gate_impl(args.seed)
        # Parent-child IPC over a temp file, not a persisted artifact —
        # the parent inlines this row into the enveloped report below.
        args.out.write_text(json.dumps(row) + "\n")
        return
    report = run_bench(
        seed=args.seed,
        min_speedup=args.min_speedup,
        workers=args.workers,
        skip_parallel=args.skip_parallel,
        skip_columnar=args.skip_columnar,
    )
    write_bench_artifact("bench_shard", report, path=args.out)
    print(f"[written to {args.out}]")


if __name__ == "__main__":
    main()
