"""Fig. 1(c): utility when varying the event-conflict probability p_cf.

Paper expectation: utility falls as conflicts densify (each user can serve
fewer of their bids) and LP-packing stays on top throughout.
"""

from benchmarks.conftest import (
    BENCH_REPS,
    BENCH_SEED,
    assert_lp_packing_wins,
    assert_monotone,
    write_report,
)
from repro.experiments import run_experiment


def bench_fig1c(bench_once):
    report = bench_once(
        run_experiment, "fig1c", repetitions=BENCH_REPS, seed=BENCH_SEED
    )
    sweep = report.data
    assert_lp_packing_wins(sweep)
    assert_monotone(sweep.series("lp-packing"), increasing=False)
    write_report("fig1c", report.text + f"\nranking at pcf=0.5: {report.ranking}")
