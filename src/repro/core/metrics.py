"""Arrangement quality metrics beyond the paper's single utility number.

An EBSN platform evaluating an arrangement cares about more than the
aggregate objective: how full events are, how fairly utility spreads over
users, how socially cohesive each event's audience is.  These metrics are
used by the reporting layer and the examples, and give the test suite
orthogonal probes into algorithm behaviour.

All functions take the instance and a (feasible) arrangement; none mutate.
"""

from __future__ import annotations

import numpy as np

from repro.model.arrangement import Arrangement
from repro.model.instance import IGEPAInstance


def event_fill_rates(
    instance: IGEPAInstance, arrangement: Arrangement
) -> dict[int, float]:
    """Per event: assigned attendance / capacity (0.0 for capacity-0 events)."""
    index = instance.index
    capacity = index.event_capacity
    if arrangement.is_clean():
        attendance = arrangement.attendance_counts.astype(np.float64)
    else:
        attendance = np.array(
            [arrangement.attendance(event_id) for event_id in index.event_ids.tolist()],
            dtype=np.float64,
        )
    rates = np.divide(
        attendance,
        capacity,
        out=np.zeros(index.num_events, dtype=np.float64),
        where=capacity > 0,
    )
    return dict(zip(index.event_ids.tolist(), rates.tolist()))


def mean_fill_rate(instance: IGEPAInstance, arrangement: Arrangement) -> float:
    """Average fill rate over events with positive capacity."""
    index = instance.index
    rates = np.fromiter(
        event_fill_rates(instance, arrangement).values(),
        dtype=np.float64,
        count=index.num_events,
    )
    positive = index.event_capacity > 0
    return float(rates[positive].mean()) if positive.any() else 0.0


def user_coverage(instance: IGEPAInstance, arrangement: Arrangement) -> float:
    """Fraction of users assigned to at least one event."""
    if instance.num_users == 0:
        return 0.0
    if arrangement.is_clean():
        served = int((arrangement.load_counts > 0).sum())
    else:
        served = sum(
            1
            for user_id in instance.index.user_ids.tolist()
            if arrangement.load(user_id) > 0
        )
    return served / instance.num_users


def user_utilities(
    instance: IGEPAInstance, arrangement: Arrangement
) -> dict[int, float]:
    """Per user: the utility contributed by that user's assignments."""
    index = instance.index
    if arrangement.is_clean():
        assigned = arrangement.assignment_matrix
        totals = np.zeros(index.num_users, dtype=np.float64)
        for shard in index.iter_shards():
            totals[shard.start : shard.stop] = (
                shard.W * assigned[shard.start : shard.stop]
            ).sum(axis=1)
        return dict(zip(index.user_ids.tolist(), totals.tolist()))
    pair_list = sorted(arrangement.pairs)
    dirty_totals = np.zeros(index.num_users, dtype=np.float64)
    if pair_list:
        upos = np.fromiter(
            (index.user_pos[user_id] for _, user_id in pair_list),
            dtype=np.int64,
            count=len(pair_list),
        )
        vpos = np.fromiter(
            (index.event_pos[event_id] for event_id, _ in pair_list),
            dtype=np.int64,
            count=len(pair_list),
        )
        weights = index.pair_weights(upos, vpos)
        # Pairs assigned with check=False may sit off the bid relation,
        # where the gather reads 0.0; only those take the scalar fallback.
        for slot in np.flatnonzero(~index.pair_bid_mask(upos, vpos)).tolist():
            event_id, user_id = pair_list[slot]
            weights[slot] = instance.weight(user_id, event_id)
        np.add.at(dirty_totals, upos, weights)
    return dict(zip(index.user_ids.tolist(), dirty_totals.tolist()))


def jain_fairness(instance: IGEPAInstance, arrangement: Arrangement) -> float:
    """Jain's fairness index over per-user utilities.

    1.0 when every user receives equal utility; approaches ``1/n`` when one
    user takes everything.  Users with no bids are excluded (they cannot
    receive utility by construction).
    """
    index = instance.index
    utilities = user_utilities(instance, arrangement)
    # Both user_utilities branches key their dict in index user order, so the
    # bid-count filter is one vectorized mask instead of a per-user lookup.
    totals = np.fromiter(
        utilities.values(), dtype=np.float64, count=len(utilities)
    )
    values = totals[np.diff(index.bid_indptr) > 0]
    if values.size == 0:
        return 1.0
    denominator = values.size * float(np.sum(values**2))
    if denominator == 0.0:
        return 1.0
    return float(np.sum(values)) ** 2 / denominator


def event_social_cohesion(
    instance: IGEPAInstance, arrangement: Arrangement, event_id: int
) -> float:
    """Fraction of attendee pairs at the event with a social tie.

    Requires a materialized social graph; instances using degree overrides
    (large-scale generators) have no edge structure to measure, in which
    case this raises ``ValueError``.
    """
    if instance.degrees_override is not None:
        raise ValueError(
            "social cohesion needs an explicit social graph; this instance "
            "uses degree overrides (see DESIGN.md §5)"
        )
    attendees = sorted(arrangement.users_of(event_id))
    if len(attendees) < 2:
        return 0.0
    ties = 0
    pairs = 0
    for i, first in enumerate(attendees):
        for second in attendees[i + 1 :]:
            pairs += 1
            if instance.social.has_edge(first, second):
                ties += 1
    return ties / pairs


def interaction_lift(instance: IGEPAInstance, arrangement: Arrangement) -> float:
    """Mean D(G, u) of assigned users relative to the population mean.

    > 1.0 means the arrangement preferentially admitted socially active
    users — the behaviour the interaction term is designed to induce.
    Returns 1.0 when either mean is degenerate (no users / zero degrees).
    """
    if not arrangement.pairs or instance.num_users == 0:
        return 1.0
    degrees = instance.index.degrees
    if arrangement.is_clean():
        assigned_mean = float(degrees[arrangement.load_counts > 0].mean())
    else:
        assigned = {user_id for _, user_id in arrangement.pairs}
        assigned_mean = float(np.mean([instance.degree(u) for u in assigned]))
    population_mean = float(degrees.mean())
    if population_mean == 0.0:
        return 1.0
    return assigned_mean / population_mean


def summarize(instance: IGEPAInstance, arrangement: Arrangement) -> dict:
    """All scalar metrics in one dict (used by reports and examples)."""
    return {
        "utility": arrangement.utility(),
        "pairs": len(arrangement),
        "interest_total": arrangement.interest_total(),
        "interaction_total": arrangement.interaction_total(),
        "mean_fill_rate": mean_fill_rate(instance, arrangement),
        "user_coverage": user_coverage(instance, arrangement),
        "jain_fairness": jain_fairness(instance, arrangement),
        "interaction_lift": interaction_lift(instance, arrangement),
    }
