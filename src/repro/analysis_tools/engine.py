"""The ``igepa lint`` rule engine: AST walking, suppressions, reporting.

The last five PRs made correctness depend on unwritten contracts — the
zero-copy index build off :class:`~repro.model.columnar.ColumnarStore`,
bit-identical delta patches, CSR invariants, seeded-RNG determinism, the
propose/commit discipline of shard workers.  Integration parity tests catch
violations only after the damage is done; this engine enforces them at
review time, on the source itself.

The moving parts:

* :class:`Finding` — one violation: error code, location, message, fix hint.
* :class:`Rule` — a check over one parsed module.  Rules declare the module
  suffixes they apply to (``module_suffixes``); ``None`` means every file.
* :class:`FileContext` — the parsed source a rule sees: path, AST, source
  lines and the per-line suppression table.
* :func:`lint_source` / :func:`lint_file` / :func:`lint_paths` — entry
  points; :func:`main` is the CLI behind ``igepa lint`` and
  ``python -m repro.analysis_tools``.

Suppressions are per line and per code::

    for i in range(store.num_users):  # igepa: ignore[IGP001] -- sanctioned

A suppression names the codes it silences (``ignore[IGP001,IGP005]``);
there is deliberately no file-level or bare ``ignore`` form — every
suppression is a reviewed, per-line decision.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: ``# igepa: ignore[IGP001]`` or ``# igepa: ignore[IGP001,IGP005]``.
_SUPPRESSION_RE = re.compile(r"#\s*igepa:\s*ignore\[([A-Z0-9_,\s]+)\]")

#: Code used for files the engine cannot parse.
PARSE_ERROR_CODE = "IGP000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: str
    source: str
    tree: ast.Module
    #: line number -> set of suppressed codes on that line.
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, path: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            source=source,
            tree=tree,
            suppressions=parse_suppressions(source),
        )

    def matches_module(self, suffixes: Sequence[str] | None) -> bool:
        """Whether this file is in a rule's module scope.

        Suffix matching (``repro/model/index.py``) keeps rules independent
        of where the tree is checked out — and lets fixture tests trigger
        module-scoped rules by naming their virtual file accordingly.
        """
        if suffixes is None:
            return True
        normalized = Path(self.path).as_posix()
        return any(
            normalized == suffix or normalized.endswith("/" + suffix)
            for suffix in suffixes
        )

    def is_suppressed(self, finding: Finding) -> bool:
        codes = self.suppressions.get(finding.line)
        return codes is not None and finding.code in codes


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Per-line ``# igepa: ignore[...]`` table (1-based line numbers)."""
    table: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(line)
        if match:
            codes = frozenset(
                code.strip() for code in match.group(1).split(",") if code.strip()
            )
            table[lineno] = codes
    return table


class Rule:
    """Base class: one named check over one parsed module."""

    #: Error code, e.g. ``"IGP001"``.  Unique across the registry.
    code: str = ""
    #: Short kebab-case name for listings.
    name: str = ""
    #: One-line fix hint attached to every finding.
    hint: str = ""
    #: Module-path suffixes the rule applies to; ``None`` = every file.
    module_suffixes: tuple[str, ...] | None = None

    def check(self, ctx: FileContext) -> list[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str, hint: str | None = None
    ) -> Finding:
        return Finding(
            code=self.code,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint if hint is None else hint,
        )


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> str | None:
    """The last component of a Name/Attribute chain (``c`` of ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def root_name(node: ast.AST) -> str | None:
    """The first component of a Name/Attribute/Subscript/Call chain."""
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            return node.id
        else:
            return None


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files/directories into ``.py`` files, sorted, deduplicated."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_source(
    source: str, path: str = "<string>", rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """Lint one source string (the testing/fixture entry point).

    ``path`` both labels findings and selects module-scoped rules — pass a
    virtual path like ``repro/model/index.py`` to run hot-path rules on a
    snippet.
    """
    if rules is None:
        rules = default_rules()
    try:
        ctx = FileContext.from_source(source, path)
    except SyntaxError as exc:
        return [
            Finding(
                code=PARSE_ERROR_CODE,
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"cannot parse file: {exc.msg}",
            )
        ]
    findings: list[Finding] = []
    for rule in rules:
        if not ctx.matches_module(rule.module_suffixes):
            continue
        findings.extend(
            f for f in rule.check(ctx) if not ctx.is_suppressed(f)
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_file(path: Path, rules: Sequence[Rule] | None = None) -> list[Finding]:
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [
            Finding(
                code=PARSE_ERROR_CODE,
                path=str(path),
                line=1,
                col=0,
                message=f"cannot read file: {exc}",
            )
        ]
    return lint_source(source, path=str(path), rules=rules)


def lint_paths(
    paths: Iterable[str], rules: Sequence[Rule] | None = None
) -> tuple[list[Finding], int]:
    """Lint files and directories.  Returns (findings, files scanned)."""
    if rules is None:
        rules = default_rules()
    findings: list[Finding] = []
    scanned = 0
    for path in iter_python_files(paths):
        scanned += 1
        findings.extend(lint_file(path, rules=rules))
    return findings, scanned


def default_rules() -> list[Rule]:
    """The registered repo-specific rules, in code order."""
    from repro.analysis_tools.rules import ALL_RULES

    return [cls() for cls in ALL_RULES]


def format_text(findings: Sequence[Finding], scanned: int) -> str:
    lines = [finding.render() for finding in findings]
    noun = "file" if scanned == 1 else "files"
    lines.append(
        f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
        f"in {scanned} {noun}"
    )
    return "\n".join(lines)


def format_json(findings: Sequence[Finding], scanned: int) -> str:
    payload = {
        "format_version": 1,
        "tool": "igepa-lint",
        "files_scanned": scanned,
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="igepa lint",
        description=(
            "AST-based invariant checker for the igepa codebase: guards the "
            "array/columnar contracts (zero-copy builds, delta purity, RNG "
            "discipline, shard-worker isolation, ...)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (json is machine-readable for CI annotation)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated list of codes to enable (default: all)",
    )
    parser.add_argument("--out", help="also write the report to this file")
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            scope = (
                "all files"
                if rule.module_suffixes is None
                else ", ".join(rule.module_suffixes)
            )
            print(f"{rule.code}  {rule.name}\n    scope: {scope}")
        return 0
    if args.select:
        wanted = {code.strip() for code in args.select.split(",") if code.strip()}
        unknown = wanted - {rule.code for rule in rules}
        if unknown:
            print(f"unknown rule codes: {sorted(unknown)}", file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.code in wanted]
    findings, scanned = lint_paths(args.paths, rules=rules)
    report = (
        format_json(findings, scanned)
        if args.format == "json"
        else format_text(findings, scanned)
    )
    print(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + "\n")
    if any(finding.code == PARSE_ERROR_CODE for finding in findings):
        return 2
    return 1 if findings else 0
