"""Social-network substrate.

The IGEPA utility rewards socially active participants via the *degree of
potential interaction* ``D(G, u)`` (Definition 6 of the paper), computed over a
social network ``G = (U, E)``.  This subpackage provides the graph data
structure, seeded random-graph generators used by the synthetic workloads, and
the network metrics the paper relies on.
"""

from repro.social.generators import (
    barabasi_albert_graph,
    complete_graph,
    empty_graph,
    erdos_renyi_graph,
    graph_from_edges,
    watts_strogatz_graph,
)
from repro.social.graph import EdgelessGraph, Graph
from repro.social.metrics import (
    average_degree,
    clustering_coefficient,
    connected_components,
    degree_centrality,
    degree_histogram,
    degree_of_potential_interaction,
    density,
    interaction_vector,
)

__all__ = [
    "EdgelessGraph",
    "Graph",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "complete_graph",
    "empty_graph",
    "graph_from_edges",
    "degree_of_potential_interaction",
    "interaction_vector",
    "degree_centrality",
    "clustering_coefficient",
    "connected_components",
    "density",
    "average_degree",
    "degree_histogram",
]
