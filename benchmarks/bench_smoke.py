"""Scaling-pipeline smoke: every default algorithm completes and stays feasible.

The former inline CI heredoc, extracted so the exact same gates run locally
and in CI: at each reduced instance size every algorithm of
:func:`repro.experiments.default_algorithms` must produce a feasible
arrangement.  Wall-clock and utilities are recorded (not gated) so the
artifact stays comparable across runs.

Run as a script (CI does)::

    python benchmarks/bench_smoke.py --seed 0

or through pytest-benchmark with the rest of the bench suite::

    python -m pytest benchmarks/bench_smoke.py
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.datagen import SyntheticConfig, generate_synthetic
from repro.experiments import default_algorithms, write_bench_artifact

DEFAULT_SIZES = (200, 500)


def run_smoke(sizes=DEFAULT_SIZES, seed: int = 0) -> dict:
    """Run the smoke ladder; returns the JSON-ready report.

    Raises:
        AssertionError: when any algorithm yields an infeasible arrangement.
    """
    rows = []
    for num_users in sizes:
        instance = generate_synthetic(
            SyntheticConfig(num_users=num_users), seed=seed
        )
        for algorithm in default_algorithms():
            result = algorithm.solve(instance, seed=seed)
            assert result.arrangement.is_feasible(), (
                f"|U|={num_users} {algorithm.name}: infeasible arrangement"
            )
            print(
                f"|U|={num_users} {algorithm.name}: "
                f"{result.runtime_seconds:.3f}s utility={result.utility:.2f}"
            )
            rows.append(
                {
                    "num_users": num_users,
                    "algorithm": algorithm.name,
                    "runtime_seconds": result.runtime_seconds,
                    "utility": result.utility,
                    "num_pairs": result.num_pairs,
                }
            )
    return {"seed": seed, "sizes": list(sizes), "runs": rows}


def bench_scaling_smoke(bench_once):
    """pytest-benchmark entry: same ladder and assertions as the script."""
    report = bench_once(run_smoke, seed=0)
    assert report["runs"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=list(DEFAULT_SIZES),
        help="instance sizes (|U|) to smoke",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="optional JSON report path"
    )
    args = parser.parse_args()
    report = run_smoke(sizes=tuple(args.sizes), seed=args.seed)
    if args.out is not None:
        write_bench_artifact(
            "bench_smoke", report, report.pop("runs"), path=args.out
        )
        print(f"[written to {args.out}]")


if __name__ == "__main__":
    main()
