"""Fig. 1(e): utility when varying the maximum event capacity max c_v.

Paper expectation: utility grows with max c_v (roomier events admit more
bidders) with diminishing returns once the user side binds; LP-packing wins.
"""

from benchmarks.conftest import (
    BENCH_REPS,
    BENCH_SEED,
    assert_lp_packing_wins,
    assert_monotone,
    write_report,
)
from repro.experiments import run_experiment


def bench_fig1e(bench_once):
    report = bench_once(
        run_experiment, "fig1e", repetitions=BENCH_REPS, seed=BENCH_SEED
    )
    sweep = report.data
    assert_lp_packing_wins(sweep)
    assert_monotone(sweep.series("lp-packing"), increasing=True)
    write_report("fig1e", report.text + f"\nranking at max cv=90: {report.ranking}")
