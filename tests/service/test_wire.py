"""JSON-lines wire format round trips for ``igepa serve --stdin``."""

import json

import pytest

from repro.service.requests import ArrivalRequest, ChurnRequest, ServeResponse
from repro.service.wire import (
    delta_from_dict,
    request_from_dict,
    response_to_dict,
)


class TestRequests:
    def test_arrival_parses(self):
        request = request_from_dict(
            {
                "type": "arrival",
                "timestamp": 0.4,
                "user": {"user_id": 2000, "capacity": 2, "bids": [3, 200]},
                "interest": [[3, 2000, 0.8], [200, 2000, 0.5]],
            }
        )
        assert isinstance(request, ArrivalRequest)
        assert request.user.user_id == 2000
        assert request.user.bids == (3, 200)
        assert request.interest == ((3, 2000, 0.8), (200, 2000, 0.5))
        registration = request.registration()
        assert registration.add_users[0].user_id == 2000

    def test_churn_parses(self):
        request = request_from_dict(
            {
                "type": "churn",
                "timestamp": 0.0,
                "delta": {
                    "add_events": [{"event_id": 200, "capacity": 30}],
                    "add_conflicts": [[3, 200]],
                    "set_event_capacity": [[3, 7]],
                },
            }
        )
        assert isinstance(request, ChurnRequest)
        assert request.delta.add_events[0].event_id == 200
        assert request.delta.add_conflicts == ((3, 200),)
        assert request.delta.set_event_capacity == ((3, 7),)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            request_from_dict({"type": "mystery", "timestamp": 0.0})

    def test_unknown_delta_field_rejected(self):
        # Typos must fail loudly, not silently drop operations.
        with pytest.raises(KeyError):
            delta_from_dict({"add_bid": [[1, 2]]})


class TestResponses:
    def test_response_serializes_to_json(self):
        response = ServeResponse(
            user_id=7,
            outcome="accepted",
            events=(2, 5),
            latency_seconds=0.001,
            tick=3,
            timestamp=4.5,
            requeues=1,
        )
        payload = json.loads(json.dumps(response_to_dict(response)))
        assert payload["type"] == "response"
        assert payload["user_id"] == 7
        assert payload["events"] == [2, 5]
        assert payload["requeues"] == 1
