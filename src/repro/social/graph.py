"""A minimal undirected simple-graph data structure.

The social network in IGEPA only needs neighbourhood queries and degrees, so
the implementation keeps an adjacency mapping of node -> set of neighbours.
Nodes may be any hashable value; the library uses integer user ids.

Self-loops and parallel edges are rejected: Definition 6 of the paper counts
*distinct* social ties ``(u, u')`` with ``u' != u``.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Any

Node = Hashable


class Graph:
    """An undirected simple graph backed by adjacency sets.

    >>> g = Graph()
    >>> g.add_edge(1, 2)
    >>> g.add_edge(2, 3)
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> g.degree(2)
    2
    """

    def __init__(self, nodes: Iterable[Node] = (), edges: Iterable[tuple[Node, Node]] = ()):
        self._adj: dict[Node, set[Node]] = {}
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node`` if not present (idempotent)."""
        if node not in self._adj:
            self._adj[node] = set()

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Add every node in ``nodes`` (idempotent)."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the undirected edge ``(u, v)``, creating endpoints as needed.

        Raises:
            ValueError: if ``u == v`` (self-loops are not social ties).
        """
        if u == v:
            raise ValueError(f"self-loop rejected: ({u!r}, {v!r})")
        self.add_node(u)
        self.add_node(v)
        self._adj[u].add(v)
        self._adj[v].add(u)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``(u, v)``.

        Raises:
            KeyError: if the edge is not present.
        """
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every incident edge.

        Raises:
            KeyError: if the node is not present.
        """
        neighbors = self._adj.pop(node)  # raises KeyError when absent
        for other in neighbors:
            self._adj[other].discard(node)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_node(self, node: Node) -> bool:
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, node: Node) -> set[Node]:
        """Return a *copy* of the neighbour set of ``node``.

        Raises:
            KeyError: if the node is not present.
        """
        return set(self._adj[node])

    def degree(self, node: Node) -> int:
        """Number of distinct neighbours of ``node``."""
        return len(self._adj[node])

    def nodes(self) -> list[Node]:
        """All nodes, in insertion order."""
        return list(self._adj)

    def edges(self) -> list[tuple[Node, Node]]:
        """Each undirected edge exactly once."""
        seen: set[frozenset[Node]] = set()
        result: list[tuple[Node, Node]] = []
        for u, neighbors in self._adj.items():
            for v in neighbors:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    result.append((u, v))
        return result

    @property
    def number_of_nodes(self) -> int:
        return len(self._adj)

    @property
    def number_of_edges(self) -> int:
        return sum(len(neighbors) for neighbors in self._adj.values()) // 2

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __eq__(self, other: Any) -> bool:
        # Structural comparison (node set + edge set) rather than comparing
        # adjacency dicts directly, so Graph and EdgelessGraph instances with
        # the same nodes and no edges compare equal.
        if not isinstance(other, Graph):
            return NotImplemented
        if set(self) != set(other):
            return False
        mine = {frozenset(edge) for edge in self.edges()}
        theirs = {frozenset(edge) for edge in other.edges()}
        return mine == theirs

    def __repr__(self) -> str:
        return (
            f"Graph(nodes={self.number_of_nodes}, edges={self.number_of_edges})"
        )

    # ------------------------------------------------------------------
    # Derivations
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """An independent deep copy of the graph."""
        clone = Graph()
        clone._adj = {node: set(neighbors) for node, neighbors in self._adj.items()}
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """The induced subgraph on ``nodes`` (unknown nodes are ignored)."""
        keep = {node for node in nodes if node in self._adj}
        sub = Graph()
        for node in keep:
            sub.add_node(node)
        for node in keep:
            for other in self._adj[node] & keep:
                sub.add_edge(node, other)
        return sub

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (requires networkx)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self.nodes())
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, g) -> "Graph":
        """Build from a :class:`networkx.Graph` (ignores attributes)."""
        return cls(nodes=g.nodes(), edges=g.edges())


class EdgelessGraph(Graph):
    """A graph that holds nodes only — edges are structurally impossible.

    ``Graph`` pays a dict entry plus an empty adjacency ``set`` per node
    (~400 bytes each); for the stream-generated instances whose social
    network carries no ties that is pure overhead — ~200 MB of empty sets
    at 500k users, copied wholesale on every churn batch.  This subclass
    stores a bare node set instead, so construction and :meth:`copy` cost
    one set, and :meth:`remove_node`/:meth:`add_node` are plain set ops.

    Edge mutation raises ``TypeError``: callers that intend to add ties
    should build a :class:`Graph` (or call :meth:`to_graph` first).  All
    read queries behave exactly like an edge-free :class:`Graph`.
    """

    def __init__(self, nodes: Iterable[Node] = (), edges: Iterable[tuple[Node, Node]] = ()):
        if tuple(edges):
            raise TypeError("EdgelessGraph cannot hold edges")
        self._nodes: set[Node] = set(nodes)

    # -- mutation ------------------------------------------------------
    def add_node(self, node: Node) -> None:
        self._nodes.add(node)

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        self._nodes.update(nodes)

    def add_edge(self, u: Node, v: Node) -> None:
        raise TypeError(
            "EdgelessGraph cannot hold edges; use to_graph() for an "
            "edge-capable copy"
        )

    def remove_edge(self, u: Node, v: Node) -> None:
        raise KeyError(f"edge ({u!r}, {v!r}) not in graph")

    def remove_node(self, node: Node) -> None:
        self._nodes.remove(node)  # raises KeyError when absent

    # -- queries -------------------------------------------------------
    def has_node(self, node: Node) -> bool:
        return node in self._nodes

    def has_edge(self, u: Node, v: Node) -> bool:
        return False

    def neighbors(self, node: Node) -> set[Node]:
        if node not in self._nodes:
            raise KeyError(node)
        return set()

    def degree(self, node: Node) -> int:
        if node not in self._nodes:
            raise KeyError(node)
        return 0

    def nodes(self) -> list[Node]:
        """All nodes (set-backed: order is arbitrary, not insertion order)."""
        return list(self._nodes)

    def edges(self) -> list[tuple[Node, Node]]:
        return []

    @property
    def number_of_nodes(self) -> int:
        return len(self._nodes)

    @property
    def number_of_edges(self) -> int:
        return 0

    def __contains__(self, node: Node) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __repr__(self) -> str:
        return f"EdgelessGraph(nodes={self.number_of_nodes})"

    # -- derivations ---------------------------------------------------
    def copy(self) -> "EdgelessGraph":
        clone = EdgelessGraph()
        clone._nodes = set(self._nodes)
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "EdgelessGraph":
        return EdgelessGraph(node for node in nodes if node in self._nodes)

    def to_graph(self) -> Graph:
        """An edge-capable :class:`Graph` over the same nodes."""
        return Graph(nodes=self._nodes)
