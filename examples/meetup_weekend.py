"""Meetup-style weekend arrangement: the paper's real-data scenario.

Simulates a city EBSN (groups, events with times and durations, users with
attendance histories) following the paper's §IV real-data construction, then
arranges participants with LP-packing and inspects the outcome from the
platform's point of view: per-event fill rates, the social activity of the
audiences, and how many users got events they bid for.

Run:  python examples/meetup_weekend.py
"""

from collections import Counter

from repro import LPPacking, MeetupConfig, generate_meetup


def main() -> None:
    # A weekend-sized slice of the SF-scale simulation (full scale in the
    # benchmarks: 190 events, 2811 users).
    config = MeetupConfig(
        num_events=40,
        num_users=400,
        num_groups=10,
        horizon_days=2.0,  # one weekend
        mean_duration_hours=2.0,
    )
    instance = generate_meetup(config, seed=42)
    print("instance:", instance)
    overlapping = sum(
        1
        for i, first in enumerate(instance.events)
        for second in instance.events[i + 1 :]
        if instance.conflicts(first.event_id, second.event_id)
    )
    print(f"time-overlapping event pairs: {overlapping}")

    result = LPPacking(alpha=1.0).solve(instance, seed=0)
    arrangement = result.arrangement
    assert arrangement.is_feasible()
    print(f"\narranged {result.num_pairs} (event, user) pairs, "
          f"utility {result.utility:.2f}")

    # Platform view 1: best-attended events.
    attendance = Counter(
        {event.event_id: arrangement.attendance(event.event_id)
         for event in instance.events}
    )
    print("\ntop 5 events by assigned attendance:")
    for event_id, count in attendance.most_common(5):
        event = instance.event_by_id[event_id]
        capacity = event.capacity if event.capacity < instance.num_users else "inf"
        day = int(event.start_time // 24)
        hour = event.start_time % 24
        print(
            f"  event {event_id:>3}: {count:>3} attendees "
            f"(capacity {capacity}), day {day} at {hour:04.1f}h, "
            f"{event.duration:.1f}h long"
        )

    # Platform view 2: social engagement — the paper's motivation for the
    # interaction term is that socially active users make events lively.
    assigned_users = {user_id for _, user_id in arrangement.pairs}
    if assigned_users:
        mean_assigned = sum(instance.degree(u) for u in assigned_users) / len(
            assigned_users
        )
        mean_all = sum(instance.degree(u.user_id) for u in instance.users) / (
            instance.num_users
        )
        print(
            f"\nmean degree-of-interaction: assigned users {mean_assigned:.4f} "
            f"vs all users {mean_all:.4f}"
        )

    # Platform view 3: user satisfaction.
    served = sum(1 for user in instance.users if arrangement.load(user.user_id) > 0)
    print(
        f"users with at least one arranged event: {served}/{instance.num_users} "
        f"({served / instance.num_users:.0%})"
    )
    full_load = sum(
        1
        for user in instance.users
        if arrangement.load(user.user_id) == user.capacity
    )
    print(f"users arranged to their full capacity: {full_load}")


if __name__ == "__main__":
    main()
