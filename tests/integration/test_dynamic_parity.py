"""Property tests for the dynamic delta kinds (capacity changes, drift).

The tentpole guarantees, enforced across *both* index implementations and
shard sizes {1, 7, |U|}:

* a delta-patched index is bit-identical to a from-scratch rebuild for
  capacity/drift deltas (alone and mixed with structural churn);
* a carried arrangement is feasible after any capacity shrink, and repair
  never leaves a shrink violation standing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import GGGreedy
from repro.core.local_search import LocalSearch
from repro.core.repair import repair
from repro.datagen import (
    ChurnConfig,
    SyntheticConfig,
    generate_churn_trace,
    generate_synthetic,
)
from repro.experiments.replay import (
    fresh_index_like,
    index_parity_mismatches,
    replay_trace,
)
from repro.model.delta import Delta, apply_delta

CONFIG = SyntheticConfig(num_users=160, num_events=30)
#: (sharded, shard_size) per the acceptance matrix; None = all users.
INDEX_CONFIGS = [
    ("dense", None),
    ("sharded", 1),
    ("sharded", 7),
    ("sharded", "all"),
]
DYNAMIC_CHURN = ChurnConfig(
    num_batches=6,
    user_arrival_rate=8.0,
    user_departure_rate=8.0,
    rebid_rate=16.0,
    event_open_rate=1.0,
    event_close_rate=1.0,
    conflict_toggle_rate=1.0,
    drift_rate=12.0,
    capacity_shock_rate=3.0,
    user_capacity_shock_rate=2.0,
    burst_every=3,
    burst_capacity_shrink_fraction=0.3,
)


def _instance(seed: int, kind: str, shard_size):
    instance = generate_synthetic(CONFIG, seed=seed)
    if kind == "dense":
        instance.configure_index(sharded=False)
    else:
        size = CONFIG.num_users if shard_size == "all" else shard_size
        instance.configure_index(sharded=True, shard_size=size)
    return instance


def _capacity_drift_delta(instance, arrangement, rng) -> Delta:
    """A delta mixing shrinks, raises and drift against the live state."""
    index = instance.index
    events = [e.event_id for e in instance.events]
    users = [u.user_id for u in instance.users]
    shrink_targets = rng.choice(events, size=4, replace=False)
    set_event_capacity = tuple(
        (int(e), int(max(0, arrangement.attendance(int(e)) - 1)))
        if i < 2
        else (int(e), int(index.event_capacity[index.event_pos[int(e)]]) + 3)
        for i, e in enumerate(shrink_targets)
    )
    user_targets = rng.choice(users, size=3, replace=False)
    set_user_capacity = tuple(
        (int(u), int(rng.integers(0, 4))) for u in user_targets
    )
    drift = []
    for user in instance.users[:: max(1, len(users) // 8)]:
        if user.bids:
            drift.append(
                (int(user.bids[0]), user.user_id, float(rng.uniform()))
            )
    return Delta(
        set_event_capacity=set_event_capacity,
        set_user_capacity=set_user_capacity,
        interest=tuple(drift),
    )


@pytest.mark.parametrize("kind,shard_size", INDEX_CONFIGS)
def test_capacity_drift_patch_bit_identical(kind, shard_size):
    for seed in range(3):
        instance = _instance(seed, kind, shard_size)
        arrangement = GGGreedy().solve(instance, seed=seed).arrangement
        rng = np.random.default_rng(seed + 100)
        delta = _capacity_drift_delta(instance, arrangement, rng)
        result = apply_delta(instance, delta, arrangement)
        patched = result.instance.index
        assert type(patched) is type(instance.index)
        mismatches = index_parity_mismatches(
            patched, fresh_index_like(patched, result.instance)
        )
        assert mismatches == [], (kind, shard_size, seed, mismatches)


@pytest.mark.parametrize("kind,shard_size", INDEX_CONFIGS)
def test_shrink_carry_feasible_and_repair_leaves_no_violation(kind, shard_size):
    for seed in range(3):
        instance = _instance(seed, kind, shard_size)
        arrangement = LocalSearch(GGGreedy()).solve(instance, seed=seed).arrangement
        rng = np.random.default_rng(seed + 200)
        delta = _capacity_drift_delta(instance, arrangement, rng)
        result = apply_delta(instance, delta, arrangement)
        assert result.arrangement.is_feasible(), (kind, shard_size, seed)
        repair(result)
        assert result.arrangement.is_feasible(), (kind, shard_size, seed)
        index = result.instance.index
        for event_id, capacity in delta.set_event_capacity:
            if event_id in index.event_pos:
                assert result.arrangement.attendance(event_id) <= capacity
        for user_id, capacity in delta.set_user_capacity:
            if user_id in index.user_pos:
                assert result.arrangement.load(user_id) <= capacity


@pytest.mark.parametrize("kind,shard_size", INDEX_CONFIGS)
def test_dynamic_trace_replay_parity_and_feasibility(kind, shard_size):
    """A full generated trace (drift + shocks + shrink bursts) replays with
    per-batch index parity and feasibility on every index configuration."""
    instance = _instance(11, kind, shard_size)
    trace = generate_churn_trace(instance, DYNAMIC_CHURN, seed=12)
    summary = trace.summary()
    assert summary["event_capacity_updates"] > 0
    assert summary["user_capacity_updates"] > 0
    report = replay_trace(trace, seed=0, compare_full=False, check_parity=True)
    assert report.all_feasible
    assert report.all_parity


def test_dynamic_trace_identical_across_implementations():
    """Replaying one dynamic trace must produce identical arrangements on
    the dense and the sharded index (fixed seed, same moves)."""
    dense = _instance(5, "dense", None)
    trace = generate_churn_trace(dense, DYNAMIC_CHURN, seed=6)
    report_dense = replay_trace(trace, seed=0, compare_full=False)

    sharded = _instance(5, "sharded", 7)
    trace_sharded = generate_churn_trace(sharded, DYNAMIC_CHURN, seed=6)
    report_sharded = replay_trace(trace_sharded, seed=0, compare_full=False)

    for dense_record, sharded_record in zip(
        report_dense.records, report_sharded.records
    ):
        assert dense_record.num_pairs == sharded_record.num_pairs
        assert dense_record.incremental_utility == sharded_record.incremental_utility
