"""Unit tests for the unified solve_lp entry point and backend cross-checks."""

import numpy as np
import pytest

from repro.solver import (
    BACKENDS,
    LinearProgram,
    Sense,
    SolveStatus,
    resolve_backend,
    scipy_available,
    solve_lp,
)

CONCRETE_BACKENDS = [
    "simplex",
    "revised-simplex",
    "revised-simplex-dense",
    "revised-simplex-sparse",
] + (["scipy"] if scipy_available() else [])


def _sample_lp():
    lp = LinearProgram(maximize=True)
    x = lp.add_variable("x", objective=3.0)
    y = lp.add_variable("y", objective=5.0)
    lp.add_constraint({x: 1.0}, Sense.LE, 4.0)
    lp.add_constraint({y: 2.0}, Sense.LE, 12.0)
    lp.add_constraint({x: 3.0, y: 2.0}, Sense.LE, 18.0)
    return lp


class TestBackendSelection:
    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gurobi")

    def test_auto_resolves_to_concrete(self):
        assert resolve_backend("auto") in ("scipy", "revised-simplex")

    def test_concrete_names_pass_through(self):
        for name in BACKENDS:
            if name != "auto":
                assert resolve_backend(name) == name


class TestSolveLP:
    @pytest.mark.parametrize("backend", CONCRETE_BACKENDS)
    def test_all_backends_agree(self, backend):
        solution = solve_lp(_sample_lp(), backend=backend)
        assert solution.is_optimal
        assert solution.objective_value == pytest.approx(36.0)

    @pytest.mark.parametrize("backend", CONCRETE_BACKENDS)
    def test_presolve_toggle_gives_same_answer(self, backend):
        with_presolve = solve_lp(_sample_lp(), backend=backend, presolve=True)
        without = solve_lp(_sample_lp(), backend=backend, presolve=False)
        assert with_presolve.objective_value == pytest.approx(without.objective_value)

    def test_presolve_detects_infeasibility_before_backend(self):
        lp = LinearProgram()
        x = lp.add_variable("x", objective=1.0)
        lp.add_constraint({x: 1.0}, Sense.LE, 1.0)
        lp.add_constraint({x: 1.0}, Sense.GE, 2.0)
        solution = solve_lp(lp, backend="simplex")
        assert solution.status is SolveStatus.INFEASIBLE
        assert solution.backend == "presolve"

    def test_fully_presolved_program(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", lower=2.0, upper=2.0, objective=3.0)
        solution = solve_lp(lp)
        assert solution.is_optimal
        assert solution.objective_value == pytest.approx(6.0)
        assert solution.x == pytest.approx([2.0])
        assert solution.backend == "presolve"

    def test_solution_x_aligned_with_original_variables(self):
        lp = LinearProgram(maximize=True)
        fixed = lp.add_variable("fixed", lower=1.0, upper=1.0, objective=1.0)
        free = lp.add_variable("free", upper=2.0, objective=1.0)
        lp.add_constraint({fixed: 1.0, free: 1.0}, Sense.LE, 3.0)
        solution = solve_lp(lp, backend="simplex")
        assert solution.x[fixed] == pytest.approx(1.0)
        assert solution.x[free] == pytest.approx(2.0)


@pytest.mark.skipif(not scipy_available(), reason="scipy not installed")
class TestScipyCrossCheck:
    """The from-scratch backends must match HiGHS on random LPs."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_packing_lps(self, seed):
        rng = np.random.default_rng(seed)
        lp = LinearProgram(maximize=True)
        n = int(rng.integers(3, 10))
        m = int(rng.integers(2, 8))
        for j in range(n):
            lp.add_variable(f"x{j}", upper=1.0, objective=float(rng.uniform(0, 1)))
        for _ in range(m):
            coeffs = {
                j: 1.0 for j in range(n) if rng.random() < 0.5
            }
            if coeffs:
                lp.add_constraint(coeffs, Sense.LE, float(rng.integers(1, 4)))
        ours = solve_lp(lp, backend="simplex")
        revised = solve_lp(lp, backend="revised-simplex")
        reference = solve_lp(lp, backend="scipy")
        assert ours.is_optimal and revised.is_optimal and reference.is_optimal
        assert ours.objective_value == pytest.approx(
            reference.objective_value, abs=1e-6
        )
        assert revised.objective_value == pytest.approx(
            reference.objective_value, abs=1e-6
        )

    @pytest.mark.parametrize("seed", range(8, 12))
    def test_random_mixed_sense_lps(self, seed):
        rng = np.random.default_rng(seed)
        lp = LinearProgram(maximize=bool(rng.integers(2)))
        n = int(rng.integers(2, 7))
        for j in range(n):
            lp.add_variable(
                f"x{j}",
                lower=float(rng.uniform(-2, 0)),
                upper=float(rng.uniform(1, 4)),
                objective=float(rng.uniform(-2, 2)),
            )
        senses = [Sense.LE, Sense.GE, Sense.EQ]
        for _ in range(int(rng.integers(1, 4))):
            coeffs = {
                j: float(rng.uniform(-1, 1)) for j in range(n) if rng.random() < 0.8
            }
            if not coeffs:
                continue
            # Keep the RHS generous so the instance stays feasible.
            lp.add_constraint(coeffs, senses[int(rng.integers(3))], float(rng.uniform(2, 6)))
        reference = solve_lp(lp, backend="scipy")
        ours = solve_lp(lp, backend="simplex")
        assert ours.status == reference.status
        if reference.is_optimal:
            assert ours.objective_value == pytest.approx(
                reference.objective_value, abs=1e-6
            )
