"""Unit tests for the benchmark LP (1)-(4) construction."""

import numpy as np
import pytest

from repro.core import build_benchmark_lp, lp_upper_bound
from repro.core.exact import ExactILP
from repro.solver import Sense, solve_lp
from tests.util import random_instance, tiny_instance


class TestStructure:
    def test_one_variable_per_admissible_set(self):
        instance = tiny_instance()
        benchmark = build_benchmark_lp(instance)
        # A_10 = {(1,), (2,)}; A_11 = {(1,), (3,), (1,3)}; A_12 = {(2,), (3,),
        # (2,3)}; A_13 = {(3,)} -> 9 variables.
        assert benchmark.lp.num_variables == 9
        assert len(benchmark.assignments) == 9

    def test_constraint_counts(self):
        instance = tiny_instance()
        benchmark = build_benchmark_lp(instance)
        # One per user with sets (4) + one per event with bidders (3).
        assert benchmark.lp.num_constraints == 7

    def test_user_constraints_are_at_most_one(self):
        benchmark = build_benchmark_lp(tiny_instance())
        user_rows = [c for c in benchmark.lp.constraints if c.name.startswith("user[")]
        assert len(user_rows) == 4
        for row in user_rows:
            assert row.sense is Sense.LE
            assert row.rhs == 1.0
            assert all(coeff == 1.0 for coeff in row.coefficients.values())

    def test_event_constraints_use_capacity(self):
        instance = tiny_instance()
        benchmark = build_benchmark_lp(instance)
        event_rows = {
            c.name: c for c in benchmark.lp.constraints if c.name.startswith("event[")
        }
        assert event_rows["event[2]"].rhs == 1.0  # capacity of event 2
        assert event_rows["event[1]"].rhs == 2.0

    def test_objective_is_set_weight(self):
        instance = tiny_instance()
        benchmark = build_benchmark_lp(instance)
        for index, (user_id, events) in enumerate(benchmark.assignments):
            expected = sum(instance.weight(user_id, e) for e in events)
            assert benchmark.lp.variables[index].objective == pytest.approx(expected)

    def test_variables_bounded_zero_one(self):
        benchmark = build_benchmark_lp(tiny_instance())
        for variable in benchmark.lp.variables:
            assert variable.lower == 0.0
            assert variable.upper == 1.0

    def test_integer_flag(self):
        relaxed = build_benchmark_lp(tiny_instance())
        assert not relaxed.lp.has_integer_variables
        integral = build_benchmark_lp(tiny_instance(), integer=True)
        assert integral.lp.has_integer_variables

    def test_by_user_partitions_variables(self):
        benchmark = build_benchmark_lp(tiny_instance())
        all_indices = sorted(
            index for indices in benchmark.by_user.values() for index in indices
        )
        assert all_indices == list(range(benchmark.lp.num_variables))

    def test_empty_instance_gives_empty_lp(self):
        from repro.model import IGEPAInstance, NoConflict, TabulatedInterest
        from repro.social import Graph

        instance = IGEPAInstance([], [], NoConflict(), TabulatedInterest({}), Graph())
        benchmark = build_benchmark_lp(instance)
        assert benchmark.lp.num_variables == 0
        assert benchmark.lp.num_constraints == 0

    def test_precomputed_admissible_sets_are_used(self):
        instance = tiny_instance()
        restricted = {10: [(1,)], 11: [], 12: [], 13: []}
        benchmark = build_benchmark_lp(instance, admissible=restricted)
        assert benchmark.lp.num_variables == 1
        assert benchmark.assignments[0] == (10, (1,))


class TestLemma1:
    """LP optimum >= ILP optimum == OPT."""

    @pytest.mark.parametrize("seed", range(5))
    def test_lp_bounds_exact_optimum(self, seed):
        instance = random_instance(
            seed=seed, num_events=4, num_users=6, max_bids=3
        )
        bound = lp_upper_bound(instance)
        exact = ExactILP().solve(instance)
        assert bound >= exact.utility - 1e-7

    def test_lp_solution_respects_constraints(self):
        instance = tiny_instance()
        benchmark = build_benchmark_lp(instance)
        solution = solve_lp(benchmark.lp)
        assert solution.is_optimal
        assert benchmark.lp.is_feasible(solution.x)

    def test_pairs_from_integral_solution(self):
        instance = tiny_instance()
        benchmark = build_benchmark_lp(instance, integer=True)
        x = np.zeros(benchmark.lp.num_variables)
        # Choose (10, (1,)) and (11, (1, 3)).
        target_indices = [
            i
            for i, (user_id, events) in enumerate(benchmark.assignments)
            if (user_id, events) in {(10, (1,)), (11, (1, 3))}
        ]
        x[target_indices] = 1.0
        pairs = benchmark.pairs_from_solution(x)
        assert sorted(pairs) == [(1, 10), (1, 11), (3, 11)]


def test_caller_supplied_set_with_repeated_event_id():
    """Regression: a duplicated event inside an admissible set must not
    desynchronize the primed COO cache from the constraint dicts."""
    from repro.datagen import SyntheticConfig, generate_synthetic

    instance = generate_synthetic(
        SyntheticConfig(num_users=6, num_events=3), seed=0
    )
    user_id = instance.users[0].user_id
    event_id = instance.events[0].event_id
    benchmark = build_benchmark_lp(
        instance, admissible={user_id: [(event_id, event_id)]}
    )
    assert benchmark.lp.num_variables == 1
    rows, cols, vals = benchmark.lp.constraints_coo()
    assert rows.size == sum(
        len(c.coefficients) for c in benchmark.lp.constraints
    )


def test_coo_cache_is_primed_and_survives_presolve():
    """The triplets emitted by build_benchmark_lp must reach the solver:
    presolve's bound-only reduction keeps the cache alive."""
    from repro.datagen import SyntheticConfig, generate_synthetic
    from repro.solver.presolve import presolve

    instance = generate_synthetic(
        SyntheticConfig(num_users=20, num_events=5), seed=1
    )
    benchmark = build_benchmark_lp(instance)
    assert benchmark.lp._coo is not None
    reduced = presolve(benchmark.lp).lp
    assert reduced._coo is not None
