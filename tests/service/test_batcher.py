"""Micro-batcher tick boundaries: size-capped and age-capped flushes."""

import pytest

from repro.model import Delta
from repro.service import ChurnRequest, MicroBatcher


def churn(timestamp):
    return ChurnRequest(timestamp=timestamp, delta=Delta())


class TestValidation:
    def test_zero_batch_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0, max_wait=1.0)

    def test_negative_wait_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=4, max_wait=-0.1)


class TestSizeFlush:
    def test_size_cap_flushes_with_triggering_request(self):
        batcher = MicroBatcher(max_batch=3, max_wait=100.0)
        assert batcher.offer(churn(0.0)) == []
        assert batcher.offer(churn(0.1)) == []
        flushed = batcher.offer(churn(0.2))
        assert len(flushed) == 1
        assert [r.timestamp for r in flushed[0]] == [0.0, 0.1, 0.2]
        assert len(batcher) == 0

    def test_batch_of_one(self):
        batcher = MicroBatcher(max_batch=1, max_wait=100.0)
        flushed = batcher.offer(churn(5.0))
        assert len(flushed) == 1 and len(flushed[0]) == 1


class TestAgeFlush:
    def test_aged_batch_flushes_without_triggering_request(self):
        batcher = MicroBatcher(max_batch=100, max_wait=1.0)
        batcher.offer(churn(0.0))
        batcher.offer(churn(0.5))
        flushed = batcher.offer(churn(1.5))
        assert len(flushed) == 1
        assert [r.timestamp for r in flushed[0]] == [0.0, 0.5]
        # The late request seeds the next batch.
        assert len(batcher) == 1
        assert batcher.oldest_timestamp == 1.5

    def test_due_at_tracks_oldest_request(self):
        batcher = MicroBatcher(max_batch=100, max_wait=2.0)
        assert batcher.due_at() is None
        batcher.offer(churn(3.0))
        batcher.offer(churn(4.0))
        assert batcher.due_at() == 5.0
        assert not batcher.due(4.9)
        assert batcher.due(5.0)

    def test_poll_only_flushes_when_due(self):
        batcher = MicroBatcher(max_batch=100, max_wait=1.0)
        batcher.offer(churn(0.0))
        assert batcher.poll(0.5) is None
        batch = batcher.poll(1.0)
        assert batch is not None and len(batch) == 1

    def test_both_bounds_in_one_offer(self):
        # An aged pending batch flushes first, then the new request fills
        # a size-1 batch — two flushes from a single offer.
        batcher = MicroBatcher(max_batch=1, max_wait=1.0)
        flushed = batcher.offer(churn(0.0))
        assert len(flushed) == 1

    def test_flush_empties_unconditionally(self):
        batcher = MicroBatcher(max_batch=100, max_wait=100.0)
        batcher.offer(churn(0.0))
        assert len(batcher.flush()) == 1
        assert batcher.flush() == []
