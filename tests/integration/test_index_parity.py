"""Parity tests: array-backed hot paths vs scalar reference implementations.

The InstanceIndex refactor promises bit-identical algorithm behaviour: the
dense ``W`` matrix, the vectorized utility/feasibility paths and the
argsort-based repair order must agree with the definitional, per-pair scalar
computations on arbitrary instances.  Each test here re-implements the
scalar rule from the paper's definitions and checks the array path against
it on randomized instances.
"""

import math

import numpy as np
import pytest

from repro.core import GGGreedy, LPPacking, RandomU, improve
from repro.model import Arrangement
from tests.util import random_instance, tiny_instance


def scalar_weight(instance, user_id, event_id):
    """w(u, v) from Definition 7, computed from first principles."""
    user = instance.user_by_id[user_id]
    event = instance.event_by_id[event_id]
    if instance.degrees_override is not None:
        degree = instance.degrees_override.get(user_id, 0.0)
    elif instance.num_users <= 1 or not instance.social.has_node(user_id):
        degree = 0.0
    else:
        degree = instance.social.degree(user_id) / (instance.num_users - 1)
    interest = instance.interest.interest(event, user)
    return instance.beta * interest + (1.0 - instance.beta) * degree


def scalar_utility(instance, pairs):
    return math.fsum(scalar_weight(instance, u, e) for e, u in pairs)


def scalar_violations(instance, pairs):
    """Definition 4 audit, written directly against the constraint list."""
    problems = []
    for event_id, user_id in pairs:
        if event_id not in instance.user_by_id.get(user_id).bid_set:
            problems.append(("bid", event_id, user_id))
    by_event = {}
    by_user = {}
    for event_id, user_id in pairs:
        by_event.setdefault(event_id, set()).add(user_id)
        by_user.setdefault(user_id, set()).add(event_id)
    for event_id, users in by_event.items():
        if len(users) > instance.event_by_id[event_id].capacity:
            problems.append(("event-capacity", event_id))
    for user_id, events in by_user.items():
        if len(events) > instance.user_by_id[user_id].capacity:
            problems.append(("user-capacity", user_id))
        events = sorted(events)
        for i, first in enumerate(events):
            for second in events[i + 1 :]:
                if instance.conflict.conflicts(
                    instance.event_by_id[first], instance.event_by_id[second]
                ):
                    problems.append(("conflict", user_id, first, second))
    return problems


class TestWeightParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_dense_w_equals_first_principles(self, seed):
        instance = random_instance(seed=seed, num_users=15, num_events=7)
        index = instance.index
        for i, user in enumerate(instance.users):
            for event_id in user.bids:
                j = index.event_pos[event_id]
                assert index.W[i, j] == scalar_weight(
                    instance, user.user_id, event_id
                )

    def test_beta_extremes(self):
        for beta in (0.0, 0.25, 1.0):
            instance = random_instance(seed=3, beta=beta)
            index = instance.index
            for i, user in enumerate(instance.users):
                for event_id in user.bids:
                    j = index.event_pos[event_id]
                    assert index.W[i, j] == scalar_weight(
                        instance, user.user_id, event_id
                    )


class TestUtilityParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_vectorized_utility_equals_scalar_fsum(self, seed):
        instance = random_instance(seed=seed)
        arrangement = RandomU().solve(instance, seed=seed).arrangement
        assert arrangement.utility() == scalar_utility(instance, arrangement.pairs)

    def test_utility_after_mutations(self):
        instance = tiny_instance()
        arrangement = Arrangement(instance)
        arrangement.add(1, 10)
        arrangement.add(3, 11)
        arrangement.add(3, 13)
        arrangement.remove(3, 11)
        assert arrangement.utility() == pytest.approx(
            scalar_utility(instance, arrangement.pairs)
        )


class TestFeasibilityAuditParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_feasible_arrangements_audit_clean(self, seed):
        instance = random_instance(seed=seed, conflict_probability=0.4)
        arrangement = GGGreedy().solve(instance, seed=seed).arrangement
        assert arrangement.is_feasible()
        assert scalar_violations(instance, arrangement.pairs) == []

    @pytest.mark.parametrize("seed", range(8))
    def test_violation_detection_matches_scalar_audit(self, seed):
        """Unchecked random pair dumps: the vectorized probe and the scalar
        audit must agree on whether anything is wrong."""
        rng = np.random.default_rng(seed)
        instance = random_instance(seed=seed, conflict_probability=0.4)
        pairs = set()
        for _ in range(12):
            event = instance.events[rng.integers(instance.num_events)]
            user = instance.users[rng.integers(instance.num_users)]
            pairs.add((event.event_id, user.user_id))
        arrangement = Arrangement.from_pairs(instance, pairs, check=False)
        expected = bool(scalar_violations(instance, pairs))
        assert (not arrangement.is_feasible()) == expected
        assert bool(arrangement.violations()) == expected

    def test_can_add_agrees_with_audit(self):
        """can_add must accept exactly the pairs whose addition stays clean."""
        for seed in range(4):
            instance = random_instance(seed=seed, conflict_probability=0.5)
            arrangement = RandomU().solve(instance, seed=seed).arrangement
            for user in instance.users:
                for event_id in user.bids:
                    if (event_id, user.user_id) in arrangement:
                        continue
                    candidate = arrangement.pairs | {(event_id, user.user_id)}
                    clean = not scalar_violations(instance, candidate)
                    assert arrangement.can_add(event_id, user.user_id) == clean


class TestRepairOrderParity:
    @pytest.mark.parametrize("repair_order", ["user", "weight"])
    def test_argsort_repair_matches_tuple_sort(self, repair_order):
        """The lexsort-based repair ordering must reproduce the tuple-key
        sort of the scalar implementation."""
        instance = random_instance(seed=5, num_users=20, num_events=8)
        algorithm = LPPacking(repair_order=repair_order)
        benchmark, x_star, _, _, _ = algorithm._solved_benchmark(instance)
        rng = np.random.default_rng(0)
        sampled = algorithm.sample_sets(benchmark, x_star, rng)

        # Scalar reference: the original tuple-sort repair.
        user_position = {u.user_id: i for i, u in enumerate(instance.users)}
        pairs = []
        for user_id, events in sampled.items():
            pairs.extend((event_id, user_id) for event_id in sorted(events))
        if repair_order == "user":
            pairs.sort(key=lambda p: (user_position[p[1]], p[0]))
        else:
            pairs.sort(
                key=lambda p: (
                    -instance.weight(p[1], p[0]),
                    user_position[p[1]],
                    p[0],
                )
            )
        remaining = {e.event_id: e.capacity for e in instance.events}
        expected = []
        for event_id, user_id in pairs:
            if remaining[event_id] > 0:
                remaining[event_id] -= 1
                expected.append((event_id, user_id))

        actual = algorithm.repair(instance, sampled, np.random.default_rng(0))
        assert actual == expected


class TestPathologicalInputs:
    def test_no_eviction_at_over_capacity_event(self):
        """An event pushed over capacity via unchecked adds must not evict:
        after removing one attendee it is still full, exactly as the scalar
        remove/can_add probe concluded."""
        from repro.model import Event, IGEPAInstance, MatrixConflict, TabulatedInterest, User
        from repro.social import Graph

        events = [Event(event_id=1, capacity=1)]
        users = [
            User(user_id=1, capacity=1, bids=(1,)),
            User(user_id=2, capacity=1, bids=(1,)),
            User(user_id=3, capacity=1, bids=(1,)),
        ]
        instance = IGEPAInstance(
            events,
            users,
            MatrixConflict([]),
            TabulatedInterest({(1, 1): 0.1, (1, 2): 0.2, (1, 3): 0.9}),
            Graph(nodes=[1, 2, 3]),
        )
        arrangement = Arrangement.from_pairs(
            instance, [(1, 1), (1, 2)], check=False
        )
        moves = improve(instance, arrangement)
        assert moves["evictions"] == 0
        assert arrangement.pairs == {(1, 1), (1, 2)}

    def test_weight_repair_uses_true_weight_for_out_of_bid_pairs(self):
        """Caller-supplied admissible sets may reach outside the bid list;
        the 'weight' repair order must rank those by their real w(u, v),
        not the masked-to-zero W entry."""
        from repro.model import Event, IGEPAInstance, MatrixConflict, TabulatedInterest, User
        from repro.social import Graph

        events = [Event(event_id=1, capacity=1)]
        users = [
            User(user_id=1, capacity=1, bids=()),  # did not bid for event 1
            User(user_id=2, capacity=1, bids=(1,)),
        ]
        # User 1's true interest in event 1 dominates user 2's.
        instance = IGEPAInstance(
            events,
            users,
            MatrixConflict([]),
            TabulatedInterest({(1, 2): 0.1}, default=0.9),
            Graph(nodes=[1, 2]),
        )
        algorithm = LPPacking(repair_order="weight")
        survivors = algorithm.repair(
            instance, {1: (1,), 2: (1,)}, np.random.default_rng(0)
        )
        assert survivors == [(1, 1)]  # the heavier out-of-bid pair wins


class TestLocalSearchParity:
    @pytest.mark.parametrize("seed", range(5))
    def test_improve_preserves_feasibility_and_monotonicity(self, seed):
        instance = random_instance(seed=seed, conflict_probability=0.4)
        arrangement = RandomU().solve(instance, seed=seed).arrangement
        before = arrangement.utility()
        improve(instance, arrangement)
        assert arrangement.utility() >= before - 1e-9
        assert arrangement.is_feasible()
        assert scalar_violations(instance, arrangement.pairs) == []

    @pytest.mark.parametrize("seed", range(5))
    def test_improve_reaches_maximality(self, seed):
        """At a local optimum no positive-weight pair can still be added."""
        instance = random_instance(seed=seed)
        arrangement = RandomU().solve(instance, seed=seed).arrangement
        improve(instance, arrangement)
        for user in instance.users:
            for event_id in user.bids:
                if (event_id, user.user_id) in arrangement:
                    continue
                if instance.weight(user.user_id, event_id) <= 1e-9:
                    continue
                assert not arrangement.can_add(event_id, user.user_id)
