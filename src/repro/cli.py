"""Command-line interface: ``python -m repro`` or the ``igepa`` script.

Subcommands:

* ``list`` — show every registered experiment (id, description, expectation).
* ``experiment ID`` — regenerate a paper figure/table and print the report.
* ``generate {synthetic,meetup}`` — write a dataset to JSON.
* ``solve INSTANCE.json`` — run one algorithm on a saved instance.
* ``replay`` — churn a synthetic instance and compare incremental repair
  against full recompute, batch by batch.
* ``simulate`` — the dynamic platform: online arrivals under event churn,
  capacity/interest deltas and a defragmentation schedule, tick by tick.
* ``serve`` — arrangement as a service: the same pipeline as an asyncio
  serving loop with micro-batching, admission control and latency SLOs;
  replays a generated request trace, or JSON-lines requests from stdin.
* ``lint`` — the AST-based invariant checker guarding the array/columnar
  contracts (codes IGP001-IGP010; see ``repro.analysis_tools``).
* ``metrics`` — the perf-trajectory pipeline: ingest report artifacts
  into the cross-run JSONL history, render trend reports, and gate CI on
  regression rules (see ``repro.metrics``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.baselines import GGGreedy, RandomU, RandomV
from repro.core.exact import ExactILP
from repro.core.local_search import LocalSearch
from repro.core.lp_packing import LPPacking
from repro.core.online import OnlineGreedy, OnlineRandom
from repro.datagen.churn import ChurnConfig, generate_churn_trace
from repro.datagen.meetup import MeetupConfig, generate_meetup
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.replay import format_replay_table, replay_trace
from repro.experiments.simulate import (
    DefragSchedule,
    PeriodicDefrag,
    RetentionDefrag,
    format_simulation_table,
    simulate,
)
from repro.metrics.cli import add_metrics_parser
from repro.model.instance import IGEPAInstance

ALGORITHMS = {
    "lp-packing": lambda args: LPPacking(alpha=args.alpha),
    "gg": lambda args: GGGreedy(),
    "random-u": lambda args: RandomU(),
    "random-v": lambda args: RandomV(),
    "exact": lambda args: ExactILP(),
}


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(e) for e in EXPERIMENTS)
    for experiment_id in sorted(EXPERIMENTS):
        experiment = EXPERIMENTS[experiment_id]
        print(f"{experiment_id:<{width}}  {experiment.description}")
        print(f"{'':<{width}}  paper: {experiment.paper_expectation}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    report = run_experiment(args.id, repetitions=args.reps, seed=args.seed)
    print(report.text)
    print(f"\nranking: {report.ranking}")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report.text + "\n")
        print(f"report written to {args.out}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset == "synthetic":
        config = SyntheticConfig(
            num_events=args.events,
            num_users=args.users,
            conflict_probability=args.pcf,
            friend_probability=args.pdeg,
        )
        instance = generate_synthetic(config, seed=args.seed)
    else:
        config = MeetupConfig(num_events=args.events, num_users=args.users)
        instance = generate_meetup(config, seed=args.seed)
    instance.save(args.out)
    stats = instance.statistics()
    print(f"wrote {args.out}: {stats}")
    return 0


def _configure_shards(instance: IGEPAInstance, shards: int) -> None:
    """Apply a ``--shards N`` request: N user shards (0 = size heuristic)."""
    if shards > 0:
        shard_size = max(1, -(-instance.num_users // shards))
        instance.configure_index(sharded=True, shard_size=shard_size)


def _cmd_solve(args: argparse.Namespace) -> int:
    instance = IGEPAInstance.load(args.instance)
    _configure_shards(instance, args.shards)
    algorithm = ALGORITHMS[args.algorithm](args)
    result = algorithm.solve(instance, seed=args.seed)
    print(f"algorithm : {result.algorithm}")
    print(f"utility   : {result.utility:.4f}")
    print(f"pairs     : {result.num_pairs}")
    print(f"runtime   : {result.runtime_seconds * 1e3:.1f} ms")
    for key, value in sorted(result.details.items()):
        print(f"  {key}: {value}")
    return 0


REPLAY_ALGORITHMS = {
    "gg": lambda: GGGreedy(),
    "gg+ls": lambda: LocalSearch(GGGreedy()),
    "random-u": lambda: RandomU(),
    "random-u+ls": lambda: LocalSearch(RandomU()),
    # LP-packing as the full re-solve baseline; the warm variant threads
    # each batch's final simplex basis into the next re-solve.
    "lp-packing": lambda: LPPacking(alpha=1.0),
    "lp-packing-warm": lambda: LPPacking(
        alpha=1.0, lp_backend="revised-simplex", warm_start=True
    ),
}


def _cmd_replay(args: argparse.Namespace) -> int:
    synthetic = SyntheticConfig(
        num_events=args.events,
        num_users=args.users,
        conflict_probability=args.pcf,
    )
    instance = generate_synthetic(synthetic, seed=args.seed)
    _configure_shards(instance, args.shards)
    config = ChurnConfig(
        num_batches=args.batches,
        user_arrival_rate=args.arrival_rate,
        user_departure_rate=args.departure_rate,
        rebid_rate=args.rebid_rate,
        event_open_rate=args.event_rate,
        event_close_rate=args.event_rate,
        burst_every=args.burst_every,
        # Churned entities (new events' conflicts, new users' bid shapes)
        # sample from the same config as the initial instance.
        base=synthetic,
    )
    trace = generate_churn_trace(instance, config, seed=args.seed + 1)
    report = replay_trace(
        trace,
        algorithm=REPLAY_ALGORITHMS[args.algorithm](),
        seed=args.seed,
        compare_full=not args.no_full,
        check_parity=args.check_parity,
        workers=args.workers,
    )
    print(format_replay_table(report))
    if args.check_parity:
        print(f"index parity (bit-identical): {report.all_parity}")
    if args.out:
        from repro.experiments.persistence import save_report

        save_report(report, args.out)
        print(f"report written to {args.out}")
    # A failed parity check must fail the command, not just print False.
    return 0 if (not args.check_parity or report.all_parity) else 1


ONLINE_ALGORITHMS = {
    "online-greedy": lambda: OnlineGreedy(),
    "online-random": lambda: OnlineRandom(),
}


def _build_defrag(args: argparse.Namespace) -> DefragSchedule:
    if args.defrag == "periodic":
        return PeriodicDefrag(args.defrag_period)
    if args.defrag == "retention":
        return RetentionDefrag(args.defrag_threshold)
    return DefragSchedule()


def _cmd_simulate(args: argparse.Namespace) -> int:
    synthetic = SyntheticConfig(
        num_events=args.events,
        num_users=args.users,
        conflict_probability=args.pcf,
    )
    instance = generate_synthetic(synthetic, seed=args.seed)
    _configure_shards(instance, args.shards)
    config = ChurnConfig(
        num_batches=args.batches,
        user_arrival_rate=args.arrival_rate,
        user_departure_rate=args.departure_rate,
        rebid_rate=args.rebid_rate,
        event_open_rate=args.event_rate,
        event_close_rate=args.event_rate,
        drift_rate=args.drift_rate,
        capacity_shock_rate=args.capacity_shock_rate,
        user_capacity_shock_rate=args.user_capacity_shock_rate,
        burst_every=args.burst_every,
        burst_capacity_shrink_fraction=args.burst_shrink,
        base=synthetic,
    )
    trace = generate_churn_trace(instance, config, seed=args.seed + 1)
    report = simulate(
        trace,
        online=ONLINE_ALGORITHMS[args.algorithm](),
        seed=args.seed,
        defrag=_build_defrag(args),
        oracle=REPLAY_ALGORITHMS[args.oracle](),
        oracle_every=args.oracle_every,
        defrag_lp=not args.no_defrag_lp,
        defrag_lp_backend=args.defrag_lp_backend,
        defrag_lp_incremental=args.defrag_lp_incremental,
        workers=args.workers,
        check_parity=args.check_parity,
    )
    print(format_simulation_table(report))
    if args.check_parity:
        print(f"index parity (bit-identical): {report.all_parity}")
    if args.out:
        from repro.experiments.persistence import save_report

        save_report(report, args.out)
        print(f"report written to {args.out}")
    # A failed parity check must fail the command, not just print False.
    return 0 if (not args.check_parity or report.all_parity) else 1


ADMISSION_POLICIES = ["admit-all", "reject", "degrade", "queue"]


def _build_admission(args: argparse.Namespace):
    from repro.service import (
        AdmitAll,
        DeadlineQueue,
        DegradeOnOverload,
        RejectOnOverload,
    )

    if args.admission == "reject":
        return RejectOnOverload(args.max_serve)
    if args.admission == "degrade":
        return DegradeOnOverload(args.max_serve)
    if args.admission == "queue":
        return DeadlineQueue(args.max_serve, args.deadline)
    return AdmitAll()


def _cmd_serve(args: argparse.Namespace) -> int:
    # Lazy: the service stack (asyncio loop, wire format) is only needed
    # here.
    from repro.datagen.churn import generate_request_trace
    from repro.experiments.persistence import save_report
    from repro.experiments.reporting import format_serve_table
    from repro.service import ServiceConfig, TickEngine, VirtualClock, serve_requests
    from repro.service.wire import request_from_dict, response_to_dict

    config = ServiceConfig(
        max_batch=args.max_batch,
        max_wait=args.max_wait,
        admission=_build_admission(args),
        defrag_grace=args.defrag_grace,
    )

    def build_engine(initial):
        _configure_shards(initial, args.shards)
        return TickEngine(
            initial,
            online=ONLINE_ALGORITHMS[args.algorithm](),
            seed=args.seed,
            defrag=_build_defrag(args),
            oracle=REPLAY_ALGORITHMS[args.oracle](),
            oracle_every=args.oracle_every,
            defrag_lp=not args.no_defrag_lp,
            defrag_lp_backend=args.defrag_lp_backend,
            defrag_lp_incremental=args.defrag_lp_incremental,
            check_parity=args.check_parity,
            clock=VirtualClock(),
            switching_penalty=args.switching_penalty,
        )

    if args.stdin:
        if not args.instance:
            print("--stdin requires --instance INSTANCE.json", file=sys.stderr)
            return 2
        instance = IGEPAInstance.load(args.instance)
        requests = (
            request_from_dict(json.loads(line))
            for line in sys.stdin
            if line.strip()
        )
        report, responses = serve_requests(
            build_engine(instance), requests, config=config
        )
        for response in responses:
            print(json.dumps(response_to_dict(response)))
        print(format_serve_table(report), file=sys.stderr)
    else:
        synthetic = SyntheticConfig(
            num_events=args.events,
            num_users=args.users,
            conflict_probability=args.pcf,
        )
        instance = generate_synthetic(synthetic, seed=args.seed)
        churn = ChurnConfig(
            num_batches=args.batches,
            user_arrival_rate=args.arrival_rate,
            user_departure_rate=args.departure_rate,
            rebid_rate=args.rebid_rate,
            event_open_rate=args.event_rate,
            event_close_rate=args.event_rate,
            drift_rate=args.drift_rate,
            capacity_shock_rate=args.capacity_shock_rate,
            burst_every=args.burst_every,
            base=synthetic,
        )
        trace = generate_churn_trace(instance, churn, seed=args.seed + 1)
        request_trace = generate_request_trace(
            trace, batch_seconds=args.batch_seconds, seed=args.seed + 2
        )
        report, _responses = serve_requests(
            build_engine(request_trace.initial),
            request_trace.requests,
            config=config,
        )
        print(format_serve_table(report))
    if args.check_parity:
        print(f"index parity (bit-identical): {report.all_parity}")
    if args.out:
        save_report(report, args.out)
        print(f"report written to {args.out}")
    if not report.all_feasible:
        return 1
    return 0 if (not args.check_parity or report.all_parity) else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    # Lazy import: the lint engine is pure stdlib but there is no reason to
    # parse rule tables for every `igepa solve`.
    from repro.analysis_tools.engine import main as lint_main

    forwarded: list[str] = list(args.paths)
    if args.list_rules:
        forwarded.append("--list-rules")
    if args.format != "text":
        forwarded.extend(["--format", args.format])
    if args.select:
        forwarded.extend(["--select", args.select])
    if args.out:
        forwarded.extend(["--out", args.out])
    return lint_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="igepa",
        description=(
            "Reproduction of 'Interaction-Aware Arrangement for Event-Based "
            "Social Networks' (ICDE 2019)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub = subparsers.add_parser("list", help="list registered experiments")
    sub.set_defaults(func=_cmd_list)

    sub = subparsers.add_parser("experiment", help="run a paper figure/table")
    sub.add_argument("id", choices=sorted(EXPERIMENTS), help="experiment id")
    sub.add_argument("--reps", type=int, default=3, help="repetitions (paper: 50)")
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument("--out", help="also write the report to this file")
    sub.set_defaults(func=_cmd_experiment)

    sub = subparsers.add_parser("generate", help="write a dataset to JSON")
    sub.add_argument("dataset", choices=["synthetic", "meetup"])
    sub.add_argument("--out", required=True, help="output JSON path")
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument("--events", type=int, default=None)
    sub.add_argument("--users", type=int, default=None)
    sub.add_argument("--pcf", type=float, default=0.3, help="conflict probability")
    sub.add_argument("--pdeg", type=float, default=0.5, help="friend probability")
    sub.set_defaults(func=_cmd_generate)

    sub = subparsers.add_parser("solve", help="run one algorithm on a saved instance")
    sub.add_argument("instance", help="instance JSON written by 'generate'")
    sub.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="lp-packing"
    )
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument("--alpha", type=float, default=1.0, help="LP-packing alpha")
    sub.add_argument(
        "--shards",
        type=int,
        default=0,
        help="partition users into N index shards (0: size heuristic)",
    )
    sub.set_defaults(func=_cmd_solve)

    sub = subparsers.add_parser(
        "replay",
        help="churn a synthetic instance: incremental repair vs full recompute",
    )
    sub.add_argument("--users", type=int, default=2000, help="initial |U|")
    sub.add_argument("--events", type=int, default=200, help="initial |V|")
    sub.add_argument("--batches", type=int, default=10, help="churn batches")
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument(
        "--algorithm",
        choices=sorted(REPLAY_ALGORITHMS),
        default="gg+ls",
        help="base solver (initial arrangement + full-recompute side)",
    )
    sub.add_argument(
        "--arrival-rate", type=float, default=20.0, help="user arrivals/batch"
    )
    sub.add_argument(
        "--departure-rate", type=float, default=20.0, help="user departures/batch"
    )
    sub.add_argument("--rebid-rate", type=float, default=40.0, help="re-bids/batch")
    sub.add_argument(
        "--event-rate", type=float, default=1.0, help="event opens and closes/batch"
    )
    sub.add_argument(
        "--burst-every",
        type=int,
        default=0,
        help="every k-th batch is an adversarial burst (0: never)",
    )
    sub.add_argument("--pcf", type=float, default=0.3, help="conflict probability")
    sub.add_argument(
        "--shards",
        type=int,
        default=0,
        help="partition users into N index shards (0: size heuristic)",
    )
    sub.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard-parallel repair across N worker processes (0: serial)",
    )
    sub.add_argument(
        "--no-full",
        action="store_true",
        help="skip the full-recompute comparison side",
    )
    sub.add_argument(
        "--check-parity",
        action="store_true",
        help="verify the patched index equals a from-scratch build per batch",
    )
    sub.add_argument("--out", help="also write the report as JSON")
    sub.set_defaults(func=_cmd_replay)

    sub = subparsers.add_parser(
        "simulate",
        help=(
            "dynamic platform: online arrivals under churn, capacity/interest "
            "deltas and a defragmentation schedule"
        ),
    )
    sub.add_argument("--users", type=int, default=2000, help="initial |U|")
    sub.add_argument("--events", type=int, default=200, help="initial |V|")
    sub.add_argument("--batches", type=int, default=20, help="simulation ticks")
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument(
        "--algorithm",
        choices=sorted(ONLINE_ALGORITHMS),
        default="online-greedy",
        help="online policy serving each tick's arrivals",
    )
    sub.add_argument(
        "--oracle",
        choices=sorted(REPLAY_ALGORITHMS),
        default="gg+ls",
        help="full re-solve algorithm behind the retention curve",
    )
    sub.add_argument(
        "--oracle-every",
        type=int,
        default=5,
        help="run the oracle every k-th tick (0: never)",
    )
    sub.add_argument(
        "--defrag",
        choices=["none", "periodic", "retention"],
        default="none",
        help="defragmentation schedule",
    )
    sub.add_argument(
        "--defrag-period",
        type=int,
        default=10,
        help="ticks between periodic defrags",
    )
    sub.add_argument(
        "--defrag-threshold",
        type=float,
        default=0.95,
        help="retention fraction that trips the retention schedule",
    )
    sub.add_argument(
        "--no-defrag-lp",
        action="store_true",
        help="skip the warm-started LP re-solve during defrag passes",
    )
    sub.add_argument(
        "--defrag-lp-backend",
        default="auto",
        help=(
            "LP backend for the defrag re-solve (auto prefers scipy/HiGHS; "
            "revised-simplex consumes the warm-start basis)"
        ),
    )
    sub.add_argument(
        "--defrag-lp-incremental",
        action="store_true",
        help=(
            "maintain the defrag LP as one delta-patched program re-solved "
            "from the previous basis (dual simplex for capacity shocks)"
        ),
    )
    sub.add_argument(
        "--arrival-rate", type=float, default=20.0, help="user arrivals/tick"
    )
    sub.add_argument(
        "--departure-rate", type=float, default=20.0, help="user departures/tick"
    )
    sub.add_argument("--rebid-rate", type=float, default=40.0, help="re-bids/tick")
    sub.add_argument(
        "--event-rate", type=float, default=1.0, help="event opens and closes/tick"
    )
    sub.add_argument(
        "--drift-rate",
        type=float,
        default=20.0,
        help="existing bid pairs re-sampling their SI value per tick",
    )
    sub.add_argument(
        "--capacity-shock-rate",
        type=float,
        default=2.0,
        help="events re-sampling their capacity per tick",
    )
    sub.add_argument(
        "--user-capacity-shock-rate",
        type=float,
        default=0.0,
        help="users re-sampling their capacity per tick",
    )
    sub.add_argument(
        "--burst-every",
        type=int,
        default=0,
        help="every k-th tick is an adversarial burst (0: never)",
    )
    sub.add_argument(
        "--burst-shrink",
        type=float,
        default=0.2,
        help="fraction of events a burst halves the capacity of",
    )
    sub.add_argument("--pcf", type=float, default=0.3, help="conflict probability")
    sub.add_argument(
        "--shards",
        type=int,
        default=0,
        help="partition users into N index shards (0: size heuristic)",
    )
    sub.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard-parallel repair across N worker processes (0: serial)",
    )
    sub.add_argument(
        "--check-parity",
        action="store_true",
        help="verify the patched index equals a from-scratch build per tick",
    )
    sub.add_argument("--out", help="also write the report as JSON")
    sub.set_defaults(func=_cmd_simulate)

    sub = subparsers.add_parser(
        "serve",
        help=(
            "arrangement as a service: asyncio loop with micro-batching, "
            "admission control and latency SLOs"
        ),
    )
    sub.add_argument("--users", type=int, default=2000, help="initial |U|")
    sub.add_argument("--events", type=int, default=200, help="initial |V|")
    sub.add_argument(
        "--batches", type=int, default=20, help="churn batches behind the trace"
    )
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument(
        "--algorithm",
        choices=sorted(ONLINE_ALGORITHMS),
        default="online-greedy",
        help="online policy serving admitted arrivals",
    )
    sub.add_argument(
        "--oracle",
        choices=sorted(REPLAY_ALGORITHMS),
        default="gg+ls",
        help="full re-solve algorithm behind the retention curve",
    )
    sub.add_argument(
        "--oracle-every",
        type=int,
        default=5,
        help="run the oracle every k-th tick (0: never)",
    )
    sub.add_argument(
        "--defrag",
        choices=["none", "periodic", "retention"],
        default="none",
        help="defragmentation schedule (background, cancellable)",
    )
    sub.add_argument(
        "--defrag-period", type=int, default=10, help="ticks between defrags"
    )
    sub.add_argument(
        "--defrag-threshold",
        type=float,
        default=0.95,
        help="retention fraction that trips the retention schedule",
    )
    sub.add_argument(
        "--no-defrag-lp",
        action="store_true",
        help="skip the warm-started LP re-solve during defrag passes",
    )
    sub.add_argument(
        "--defrag-lp-backend",
        default="auto",
        help="LP backend for the defrag re-solve",
    )
    sub.add_argument(
        "--defrag-lp-incremental",
        action="store_true",
        help=(
            "maintain the defrag LP as one delta-patched program re-solved "
            "from the previous basis (dual simplex for capacity shocks)"
        ),
    )
    sub.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="micro-batch size cap (flush on reaching it)",
    )
    sub.add_argument(
        "--max-wait",
        type=float,
        default=1.0,
        help="decision-time seconds before a pending batch flushes",
    )
    sub.add_argument(
        "--admission",
        choices=ADMISSION_POLICIES,
        default="admit-all",
        help="admission-control policy under burst",
    )
    sub.add_argument(
        "--max-serve",
        type=int,
        default=32,
        help="arrivals served in full per tick (overload policies)",
    )
    sub.add_argument(
        "--deadline",
        type=float,
        default=2.0,
        help="queue deadline in decision-time seconds (queue policy)",
    )
    sub.add_argument(
        "--switching-penalty",
        type=float,
        default=0.0,
        help="utility cost per re-seated (user, event) pair during defrag",
    )
    sub.add_argument(
        "--defrag-grace",
        type=float,
        default=None,
        help=(
            "supersede a running defrag when the next batch lands within "
            "this many seconds (default: --max-wait)"
        ),
    )
    sub.add_argument(
        "--batch-seconds",
        type=float,
        default=1.0,
        help="decision-time window of one generated churn batch",
    )
    sub.add_argument(
        "--arrival-rate", type=float, default=20.0, help="user arrivals/batch"
    )
    sub.add_argument(
        "--departure-rate", type=float, default=20.0, help="user departures/batch"
    )
    sub.add_argument("--rebid-rate", type=float, default=40.0, help="re-bids/batch")
    sub.add_argument(
        "--event-rate", type=float, default=1.0, help="event opens and closes/batch"
    )
    sub.add_argument(
        "--drift-rate",
        type=float,
        default=20.0,
        help="existing bid pairs re-sampling their SI value per batch",
    )
    sub.add_argument(
        "--capacity-shock-rate",
        type=float,
        default=2.0,
        help="events re-sampling their capacity per batch",
    )
    sub.add_argument(
        "--burst-every",
        type=int,
        default=0,
        help="every k-th batch is an adversarial burst (0: never)",
    )
    sub.add_argument("--pcf", type=float, default=0.3, help="conflict probability")
    sub.add_argument(
        "--shards",
        type=int,
        default=0,
        help="partition users into N index shards (0: size heuristic)",
    )
    sub.add_argument(
        "--check-parity",
        action="store_true",
        help="verify the patched index equals a from-scratch build per tick",
    )
    sub.add_argument(
        "--stdin",
        action="store_true",
        help=(
            "read JSON-lines requests from stdin instead of generating a "
            "trace (answers stream to stdout; table to stderr)"
        ),
    )
    sub.add_argument(
        "--instance",
        help="instance JSON written by 'generate' (required with --stdin)",
    )
    sub.add_argument("--out", help="also write the serve report as JSON")
    sub.set_defaults(func=_cmd_serve)

    sub = subparsers.add_parser(
        "lint",
        help=(
            "check the source tree against the array/columnar contracts "
            "(IGP001-IGP010)"
        ),
    )
    sub.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    sub.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (json is machine-readable for CI annotation)",
    )
    sub.add_argument(
        "--select", help="comma-separated list of codes to enable"
    )
    sub.add_argument("--out", help="also write the report to this file")
    sub.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    sub.set_defaults(func=_cmd_lint)

    add_metrics_parser(subparsers)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "generate":
        defaults = {"synthetic": (200, 2000), "meetup": (190, 2811)}
        default_events, default_users = defaults[args.dataset]
        if args.events is None:
            args.events = default_events
        if args.users is None:
            args.users = default_users
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe (igepa list | head): normal.
        return 0


if __name__ == "__main__":
    sys.exit(main())
