"""JSON persistence for experiment results: one envelope, one loader.

Sweeps take minutes at paper-scale repetitions and bench artifacts
accumulate across CI runs; persisting the raw statistics lets reports be
re-rendered, diffed across code versions, and aggregated into the
perf-history store (:mod:`repro.metrics`) without re-running.

Every payload this module writes shares a single versioned **envelope**:

* ``format_version`` — the envelope schema version (:data:`ENVELOPE_VERSION`;
  version-1 payloads, written before the provenance block existed, still
  load through the same entry point);
* ``kind`` — a discriminator registered in :data:`KIND_REGISTRY`
  (``replay``, ``simulation``, ``serve``, ``sweep``, ``stats``, ``ratio``
  and the ``bench_*`` artifact kinds);
* ``provenance`` — where the payload came from (git sha, UTC timestamp,
  host, python/numpy versions), attached at *write* time by
  :func:`save_report` / :func:`write_bench_artifact` so ``to_dict()``
  snapshots stay deterministic;
* the aggregate summary fields, flattened at the top level, and the
  per-record list under the kind's ``records_key``.

:func:`load_report` is the single entry point: it validates the version,
dispatches on ``kind`` and returns an :class:`Envelope` view.  The
per-kind helpers (:func:`load_sweep`, :func:`load_stats`,
:func:`load_serve_payload`) are thin shims over it, kept so archived
payloads and existing call sites keep working.

Report classes participate through the :class:`ReportEnvelope` protocol:
an ``envelope_kind`` class attribute plus a ``to_dict()`` that routes
through :func:`report_to_dict`.

This module is the only sanctioned place to serialize bench/report
payloads — lint rule IGP010 flags raw ``json.dump`` of report payloads
anywhere else.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import ClassVar, Mapping, Protocol, runtime_checkable

from repro.experiments.runner import AlgorithmStats
from repro.experiments.sweeps import SweepResult

#: Current envelope schema version.  Version 2 added the ``provenance``
#: block; version-1 payloads (no provenance) still load.
ENVELOPE_VERSION = 2

#: Versions :func:`load_report` accepts.
SUPPORTED_VERSIONS = (1, 2)

#: Back-compat alias: written payloads carry ``format_version ==
#: FORMAT_VERSION``.  Kept under the old name because earlier PRs' tests
#: and call sites compare against it.
FORMAT_VERSION = ENVELOPE_VERSION

#: Envelope keys no summary may shadow.
_RESERVED_KEYS = frozenset({"format_version", "kind", "provenance"})


# ----------------------------------------------------------------------
# Kind registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KindSpec:
    """One registered envelope kind.

    Attributes:
        kind: the ``kind`` discriminator value.
        records_key: key holding the per-record list (None: the kind is
            summary-only, e.g. the composite bench artifacts).
        description: one-line description for tooling.
    """

    kind: str
    records_key: str | None
    description: str = ""


#: ``kind`` -> :class:`KindSpec`.  ``igepa metrics`` and
#: :func:`load_report` dispatch on this table.
KIND_REGISTRY: dict[str, KindSpec] = {}


def register_kind(
    kind: str, records_key: str | None = None, description: str = ""
) -> KindSpec:
    """Register an envelope kind (idempotent for identical specs).

    Raises:
        ValueError: when the kind is already registered with a different
            ``records_key`` — two writers disagreeing on the schema.
    """
    spec = KindSpec(kind=kind, records_key=records_key, description=description)
    existing = KIND_REGISTRY.get(kind)
    if existing is not None and existing.records_key != records_key:
        raise ValueError(
            f"envelope kind {kind!r} already registered with records_key="
            f"{existing.records_key!r} (got {records_key!r})"
        )
    KIND_REGISTRY[kind] = spec
    return spec


# The report kinds (one per report class / per-kind saver below).
register_kind("replay", "batches", "churn replay: incremental vs full")
register_kind("simulation", "ticks", "dynamic-platform simulation")
register_kind("serve", "ticks", "asyncio serving session")
register_kind("sweep", "stats", "Fig. 1 parameter sweep")
register_kind("stats", None, "fixed-instance repetition statistics")
register_kind("ratio", None, "empirical approximation ratio")

# The bench artifact kinds (``benchmarks/bench_*.py`` writers).
register_kind("bench_lp", "instances", "LP backend ladder")
register_kind("bench_churn", "instances", "churn engine ladder")
register_kind("bench_shard", None, "sharded/columnar scale gates")
register_kind("bench_dynamic", None, "dynamic platform defrag pair")
register_kind("bench_serve", None, "serving loop SLO gates")
register_kind("bench_smoke", "runs", "scaling-pipeline smoke ladder")


@runtime_checkable
class ReportEnvelope(Protocol):
    """The one serialization seam every report class implements.

    ``to_dict()`` must return a payload built by :func:`report_to_dict`
    under the class's ``envelope_kind`` — :func:`save_report` validates
    the pairing before writing.
    """

    envelope_kind: ClassVar[str]

    def to_dict(self) -> dict: ...


# ----------------------------------------------------------------------
# Provenance
# ----------------------------------------------------------------------
_GIT_SHA_CACHE: str | None = None


def _git_sha() -> str:
    """The repo HEAD sha (cached per process; ``unknown`` off-repo)."""
    global _GIT_SHA_CACHE
    if _GIT_SHA_CACHE is None:
        try:
            _GIT_SHA_CACHE = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA_CACHE = "unknown"
    return _GIT_SHA_CACHE


def provenance() -> dict[str, str]:
    """The provenance block stamped onto written payloads.

    Keys the history store aggregates on: ``git_sha`` (HEAD at write
    time), ``timestamp_utc`` (ISO-8601), ``host``, plus the python/numpy
    versions that produced the numbers.
    """
    import numpy

    # Provenance stamps *reports* at write time and never feeds a
    # decision; the envelope is the sanctioned wall-clock reader.
    now = datetime.now(timezone.utc)  # igepa: ignore[IGP007]
    return {
        "git_sha": _git_sha(),
        "timestamp_utc": now.isoformat(timespec="seconds"),
        "host": platform.node() or "unknown",
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": sys.platform,
    }


# ----------------------------------------------------------------------
# Envelope construction
# ----------------------------------------------------------------------
def report_to_dict(
    kind: str,
    summary: dict,
    records: list[dict],
    records_key: str = "batches",
) -> dict:
    """Shared serialization shape for per-batch/per-tick reports.

    One helper behind every report class's ``to_dict`` (the
    :class:`ReportEnvelope` protocol), so each payload carries the same
    envelope: the ``format_version`` tag, a registered ``kind``
    discriminator, the aggregate summary fields at the top level and the
    per-record list under ``records_key``.  Deterministic — provenance is
    attached only at write time (:func:`save_report`).

    Raises:
        ValueError: on unregistered kinds, a ``records_key`` disagreeing
            with the registry, or summary fields shadowing envelope keys.
    """
    spec = KIND_REGISTRY.get(kind)
    if spec is None:
        raise ValueError(
            f"unknown report kind {kind!r} (register_kind first; "
            f"known: {sorted(KIND_REGISTRY)})"
        )
    if spec.records_key is not None and records_key != spec.records_key:
        raise ValueError(
            f"kind {kind!r} stores records under {spec.records_key!r}, "
            f"not {records_key!r}"
        )
    clashes = _RESERVED_KEYS.intersection(summary)
    if clashes:
        raise ValueError(
            f"summary fields shadow envelope keys: {sorted(clashes)}"
        )
    payload: dict = {"format_version": ENVELOPE_VERSION, "kind": kind}
    payload.update(summary)
    if spec.records_key is not None:
        payload[spec.records_key] = list(records)
    return payload


@dataclass(frozen=True)
class Envelope:
    """A loaded payload: validated version + kind, raw dict attached."""

    kind: str
    version: int
    payload: dict
    spec: KindSpec

    @property
    def records(self) -> list:
        """The per-record list ([] for summary-only kinds)."""
        if self.spec.records_key is None:
            return []
        return list(self.payload.get(self.spec.records_key, []))

    @property
    def provenance(self) -> dict | None:
        """The provenance block (None on version-1 payloads)."""
        block = self.payload.get("provenance")
        return dict(block) if isinstance(block, Mapping) else None

    @property
    def summary(self) -> dict:
        """Top-level summary fields (envelope keys and records stripped)."""
        skip = set(_RESERVED_KEYS)
        if self.spec.records_key is not None:
            skip.add(self.spec.records_key)
        return {k: v for k, v in self.payload.items() if k not in skip}


def envelope_from_payload(payload: dict, expect_kind: str | None = None) -> Envelope:
    """Validate a raw payload dict into an :class:`Envelope`.

    Raises:
        ValueError: on unsupported versions, unregistered kinds, or a
            kind differing from ``expect_kind``.
    """
    version = payload.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported result format version {version!r}")
    kind = payload.get("kind")
    if expect_kind is not None and kind != expect_kind:
        raise ValueError(f"not a {expect_kind} payload (kind={kind!r})")
    spec = KIND_REGISTRY.get(kind) if isinstance(kind, str) else None
    if spec is None:
        raise ValueError(
            f"unknown report kind {kind!r} (known: {sorted(KIND_REGISTRY)})"
        )
    return Envelope(kind=kind, version=int(version), payload=payload, spec=spec)


def load_report(path: str | Path, expect_kind: str | None = None) -> Envelope:
    """The single loader every persisted report/artifact goes through.

    Reads JSON, validates ``format_version`` against
    :data:`SUPPORTED_VERSIONS` and dispatches on the registered ``kind``.

    Args:
        path: a payload written by :func:`save_report`,
            :func:`write_bench_artifact` or any of the per-kind savers
            (version-1 payloads from earlier PRs load too).
        expect_kind: require this kind (the per-kind shims pass it).

    Raises:
        ValueError: unsupported version, unknown kind, or kind mismatch.
    """
    return envelope_from_payload(
        json.loads(Path(path).read_text()), expect_kind=expect_kind
    )


def _write_payload(payload: dict, path: str | Path) -> None:
    """The one place persisted payloads hit disk."""
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=1) + "\n")


def save_report(report: "ReportEnvelope | dict", path: str | Path) -> dict:
    """Write any report through the envelope, stamping provenance.

    Accepts a :class:`ReportEnvelope` implementation (``ReplayReport``,
    ``SimulationReport``, ``ServeReport``, ``RatioReport``) or an
    already-enveloped payload dict.  Returns the written payload.

    Raises:
        ValueError: when the payload's ``kind`` is unregistered or
            disagrees with the report class's ``envelope_kind``.
    """
    if isinstance(report, Mapping):
        payload = dict(report)
    else:
        payload = report.to_dict()
        declared = getattr(type(report), "envelope_kind", None)
        if declared is not None and payload.get("kind") != declared:
            raise ValueError(
                f"{type(report).__name__}.to_dict() produced kind "
                f"{payload.get('kind')!r}, expected {declared!r}"
            )
    envelope_from_payload(payload)  # validate before writing
    payload.setdefault("provenance", provenance())
    _write_payload(payload, path)
    return payload


def write_bench_artifact(
    kind: str,
    summary: dict,
    records: list[dict] | None = None,
    *,
    path: str | Path,
) -> dict:
    """Write a ``BENCH_*.json`` artifact through the shared envelope.

    The one writer behind every ``benchmarks/bench_*.py`` ``--out``: the
    summary fields land flattened at the top level, ``records`` under the
    kind's registered ``records_key``, and the provenance block (git sha,
    UTC timestamp, host, python/numpy versions) is stamped so the history
    store (:mod:`repro.metrics.store`) can key runs across time.

    Returns the written payload.
    """
    spec = KIND_REGISTRY.get(kind)
    if spec is None:
        raise ValueError(
            f"unknown bench kind {kind!r} (register_kind first; "
            f"known: {sorted(KIND_REGISTRY)})"
        )
    payload = report_to_dict(
        kind, summary, records or [], records_key=spec.records_key or "records"
    )
    payload["provenance"] = provenance()
    _write_payload(payload, path)
    return payload


# ----------------------------------------------------------------------
# Serve shims (pre-envelope call sites)
# ----------------------------------------------------------------------
def save_serve_report(report: "ReportEnvelope", path: str | Path) -> None:
    """Deprecated shim: :func:`save_report` for a ``ServeReport``."""
    save_report(report, path)


def load_serve_payload(path: str | Path) -> dict:
    """Deprecated shim: the raw serve payload via :func:`load_report`.

    Raises:
        ValueError: on unknown format versions or non-serve payloads.
    """
    return load_report(path, expect_kind="serve").payload


# ----------------------------------------------------------------------
# Sweep / fixed-instance statistics (typed round trips)
# ----------------------------------------------------------------------
def stats_to_dict(stats: AlgorithmStats) -> dict:
    """Serialize one algorithm's repetition statistics."""
    return {
        "algorithm": stats.algorithm,
        "utilities": list(stats.utilities),
        "runtimes": list(stats.runtimes),
        "pair_counts": list(stats.pair_counts),
    }


def stats_from_dict(payload: dict) -> AlgorithmStats:
    """Inverse of :func:`stats_to_dict`."""
    return AlgorithmStats(
        algorithm=payload["algorithm"],
        utilities=[float(u) for u in payload["utilities"]],
        runtimes=[float(r) for r in payload["runtimes"]],
        pair_counts=[int(p) for p in payload["pair_counts"]],
    )


def sweep_to_dict(result: SweepResult) -> dict:
    """Serialize a full sweep (all grid points, all algorithms)."""
    return report_to_dict(
        "sweep",
        {
            "parameter": result.parameter,
            "label": result.label,
            "values": list(result.values),
            "repetitions": result.repetitions,
        },
        [
            {name: stats_to_dict(stat) for name, stat in point.items()}
            for point in result.stats
        ],
        records_key="stats",
    )


def sweep_from_dict(payload: dict) -> SweepResult:
    """Inverse of :func:`sweep_to_dict` (version-1 payloads included).

    Raises:
        ValueError: on unknown format versions or non-sweep payloads.
    """
    envelope = envelope_from_payload(payload, expect_kind="sweep")
    return SweepResult(
        parameter=payload["parameter"],
        label=payload["label"],
        values=list(payload["values"]),
        repetitions=payload["repetitions"],
        stats=[
            {name: stats_from_dict(stat) for name, stat in point.items()}
            for point in envelope.records
        ],
    )


def save_sweep(result: SweepResult, path: str | Path) -> None:
    """Write a sweep result as JSON (enveloped, provenance-stamped)."""
    save_report(sweep_to_dict(result), path)


def load_sweep(path: str | Path) -> SweepResult:
    """Read a sweep result written by :func:`save_sweep`."""
    return sweep_from_dict(load_report(path, expect_kind="sweep").payload)


def save_stats(
    stats: dict[str, AlgorithmStats], path: str | Path, label: str = ""
) -> None:
    """Write fixed-instance statistics (e.g. Table II runs) as JSON."""
    payload = report_to_dict(
        "stats",
        {
            "label": label,
            "stats": {name: stats_to_dict(stat) for name, stat in stats.items()},
        },
        [],
    )
    save_report(payload, path)


def load_stats(path: str | Path) -> dict[str, AlgorithmStats]:
    """Read statistics written by :func:`save_stats`.

    Raises:
        ValueError: on unknown format versions or non-stats payloads.
    """
    envelope = load_report(path, expect_kind="stats")
    return {
        name: stats_from_dict(stat)
        for name, stat in envelope.payload["stats"].items()
    }
