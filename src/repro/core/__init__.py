"""The paper's contribution: LP-packing and everything around it.

* :mod:`repro.core.admissible` — admissible event sets (``A_u``).
* :mod:`repro.core.lp_formulation` — the benchmark LP (1)-(4).
* :mod:`repro.core.lp_packing` — Algorithm 1 (LP-packing).
* :mod:`repro.core.baselines` — Random-U, Random-V, GG.
* :mod:`repro.core.exact` — exact ILP solver (Lemma 1).
* :mod:`repro.core.analysis` — LP bounds and empirical approximation ratios.
* :mod:`repro.core.repair` — targeted arrangement repair after churn deltas.
* :mod:`repro.core.parallel` — shard-parallel repair (propose in workers,
  commit serially at the event-side sync).
"""

from repro.core.admissible import (
    DEFAULT_MAX_SETS_PER_USER,
    AdmissibleSetExplosion,
    enumerate_admissible_sets,
    enumerate_all_admissible_sets,
    is_admissible,
)
from repro.core.analysis import (
    RatioReport,
    empirical_approximation_ratio,
    lp_upper_bound,
)
from repro.core.base import ArrangementAlgorithm
from repro.core.baselines import GGGreedy, RandomU, RandomV
from repro.core.exact import ExactILP, ExactSolveError
from repro.core.local_search import LocalSearch, improve
from repro.core.lp_formulation import BenchmarkLP, build_benchmark_lp
from repro.core.lp_packing import REPAIR_ORDERS, LPPacking, LPPackingError
from repro.core.metrics import (
    event_fill_rates,
    interaction_lift,
    jain_fairness,
    mean_fill_rate,
    summarize,
    user_coverage,
    user_utilities,
)
from repro.core.online import OnlineGreedy, OnlineRandom, competitive_ratio
from repro.core.parallel import parallel_repair
from repro.core.repair import apply_with_repair, repair
from repro.core.result import ArrangementResult

__all__ = [
    "ArrangementAlgorithm",
    "ArrangementResult",
    "LPPacking",
    "LPPackingError",
    "REPAIR_ORDERS",
    "RandomU",
    "RandomV",
    "GGGreedy",
    "ExactILP",
    "ExactSolveError",
    "LocalSearch",
    "improve",
    "repair",
    "apply_with_repair",
    "parallel_repair",
    "OnlineGreedy",
    "OnlineRandom",
    "competitive_ratio",
    "BenchmarkLP",
    "build_benchmark_lp",
    "enumerate_admissible_sets",
    "enumerate_all_admissible_sets",
    "is_admissible",
    "AdmissibleSetExplosion",
    "DEFAULT_MAX_SETS_PER_USER",
    "lp_upper_bound",
    "empirical_approximation_ratio",
    "RatioReport",
    "summarize",
    "event_fill_rates",
    "mean_fill_rate",
    "user_coverage",
    "user_utilities",
    "jain_fairness",
    "interaction_lift",
]
