"""Conference session assignment built by hand with the public data model.

A two-day conference runs talks in parallel tracks; attendees bid on talks,
talks in overlapping slots conflict, and each room has limited seats.  This
is IGEPA with a time-interval conflict function — the example builds the
instance from raw domain objects (no generator) and compares LP-packing
against the exact optimum, checking the 1/4 guarantee along the way.

Run:  python examples/conference_scheduling.py
"""

import numpy as np

from repro import (
    CosineInterest,
    Event,
    ExactILP,
    Graph,
    IGEPAInstance,
    LPPacking,
    TimeIntervalConflict,
    User,
    lp_upper_bound,
)

TOPICS = ["databases", "ml", "systems", "theory"]


def topic_vector(weights: dict[str, float]) -> list[float]:
    return [weights.get(topic, 0.0) for topic in TOPICS]


def build_conference() -> IGEPAInstance:
    # Two days x three slots x two parallel tracks; seats are scarce.
    talks = []
    talk_id = 0
    rng = np.random.default_rng(11)
    for day in range(2):
        for slot in range(3):
            start = day * 24.0 + 9.0 + slot * 2.5
            for track in range(2):
                focus = TOPICS[(slot + track + day) % len(TOPICS)]
                weights = {focus: 1.0, TOPICS[(slot + track) % len(TOPICS)]: 0.4}
                talks.append(
                    Event(
                        event_id=talk_id,
                        capacity=int(rng.integers(3, 7)),  # small rooms
                        attributes=topic_vector(weights),
                        start_time=start,
                        duration=2.0,  # overlaps within a slot, not across
                    )
                )
                talk_id += 1

    attendees = []
    for user_id in range(30):
        favourite = TOPICS[user_id % len(TOPICS)]
        second = TOPICS[(user_id + 1) % len(TOPICS)]
        profile = topic_vector({favourite: 1.0, second: 0.5})
        # Attendees bid on talks matching their profile (top 6 by cosine).
        scores = []
        for talk in talks:
            a = np.asarray(profile)
            b = talk.attributes
            scores.append(
                float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))
            )
        bids = tuple(int(i) for i in np.argsort(scores)[::-1][:6])
        attendees.append(
            User(
                user_id=user_id,
                capacity=4,  # can attend at most 4 talks over the conference
                attributes=profile,
                bids=bids,
            )
        )

    # Colleagues know each other: a ring of research groups of five.
    social = Graph(nodes=[u.user_id for u in attendees])
    for user_id in range(30):
        group = user_id // 5
        for other in range(group * 5, group * 5 + 5):
            if other != user_id:
                social.add_edge(user_id, other)
        social.add_edge(user_id, (user_id + 5) % 30)  # cross-group tie

    return IGEPAInstance(
        events=talks,
        users=attendees,
        conflict=TimeIntervalConflict(),
        interest=CosineInterest(),
        social=social,
        beta=0.6,  # interest matters slightly more than networking
        name="conference",
    )


def main() -> None:
    instance = build_conference()
    print("instance:", instance)
    print("parallel-track conflicts:",
          sum(instance.conflicts(a.event_id, b.event_id)
              for i, a in enumerate(instance.events)
              for b in instance.events[i + 1:]))

    bound = lp_upper_bound(instance)
    exact = ExactILP().solve(instance)
    print(f"\nLP upper bound : {bound:.3f}")
    print(f"exact optimum  : {exact.utility:.3f} "
          f"({exact.details['nodes_explored']} B&B nodes)")

    for alpha in (0.5, 1.0):
        utilities = [
            LPPacking(alpha=alpha).solve(instance, seed=seed).utility
            for seed in range(30)
        ]
        mean = float(np.mean(utilities))
        print(
            f"LP-packing α={alpha:>3}: mean utility {mean:.3f} over 30 runs "
            f"({mean / exact.utility:.1%} of OPT; guarantee at α=1/2 is 25%)"
        )
        assert mean >= 0.25 * bound, "Theorem 2 violated!"

    # Inspect one arrangement: which talks filled up?
    result = LPPacking(alpha=1.0).solve(instance, seed=1)
    arrangement = result.arrangement
    print("\nseats filled per talk (capacity):")
    for talk in instance.events:
        filled = arrangement.attendance(talk.event_id)
        print(f"  talk {talk.event_id:>2} "
              f"[day {int(talk.start_time // 24)} "
              f"{talk.start_time % 24:04.1f}h]: {filled}/{talk.capacity}")


if __name__ == "__main__":
    main()
