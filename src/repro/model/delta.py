"""Churn deltas: mutate an IGEPA instance without rebuilding its index.

The paper solves a one-shot offline arrangement; a production EBSN platform
instead sees *sustained traffic*: users register and cancel, re-bid their
event lists, events open and close, and the conflict relation evolves.
:class:`Delta` captures one batch of such changes, and :func:`apply_delta`
produces the successor :class:`~repro.model.instance.IGEPAInstance` together
with

* an **incrementally maintained** :class:`~repro.model.index.InstanceIndex`
  — ``W``/``SI``/CSR bid incidence/conflict matrix/capacity vectors are
  patched from the predecessor's arrays instead of rebuilt, skipping the
  per-bid interest loop, the conflict-relation materialization and the
  degree pass for untouched entities; and
* a **carried-over arrangement**: the predecessor's assignment with every
  pair the delta invalidated dropped (removed users/events/bids, newly
  conflicting event pairs), plus the touched user/event sets a targeted
  repair (:func:`repro.core.repair.apply_with_repair`) should re-optimize.

The patched index is *bit-identical* to a from-scratch
``InstanceIndex(successor)`` build: surviving entries are copied (IEEE-754
bit patterns preserved), new entries are computed by the exact expressions
the from-scratch build uses, and every derived array goes through the shared
:meth:`InstanceIndex._finalize`.  ``tests/model/test_delta.py`` and the
churn property suite enforce this array by array.

Application order within one delta is fixed and documented on
:func:`apply_delta`; generators (:mod:`repro.datagen.churn`) rely on it.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field, replace

import numpy as np

from repro.analysis_tools.sanitize import sanitize_index
from repro.model.arrangement import Arrangement
from repro.model.columnar import (
    ColumnarInterest,
    ColumnarStore,
    carry_attributes,
    carry_categories,
    carry_temporal,
)
from repro.model.conflicts import ConflictFunction, MatrixConflict
from repro.model.entities import Event, User
from repro.model.errors import ModelError
from repro.model.index import (
    DENSE_CELL_CAP,
    BaseInstanceIndex,
    InstanceIndex,
    build_degrees,
    validated_interest,
)
from repro.model.instance import IGEPAInstance
from repro.model.interest import InterestFunction, TabulatedInterest
from repro.model.sharded_index import ShardedInstanceIndex
from repro.social.graph import Graph


class DeltaError(ModelError):
    """A churn delta references unknown ids, duplicates existing ones, or
    mixes operations the instance's conflict/interest functions cannot
    absorb."""


@dataclass(frozen=True)
class Delta:
    """One batch of churn against an IGEPA instance.

    Attributes:
        add_users: new :class:`User` objects (fresh ids; their ``bids`` may
            reference surviving *or* newly added events).
        remove_users: ids of users leaving the platform.
        add_events: new :class:`Event` objects (fresh ids).
        remove_events: ids of events closing; surviving users' bids for them
            are dropped implicitly.
        add_bids: ``(user_id, event_id)`` bids for *surviving* users (bids of
            new users belong on their :class:`User` objects).  Appended to
            the user's bid list in the given order.
        remove_bids: ``(user_id, event_id)`` bids withdrawn by surviving
            users.  The event may be closing in the same delta.
        add_conflicts: new conflicting event pairs (requires a
            :class:`MatrixConflict` instance).
        remove_conflicts: conflicting event pairs dissolved (requires a
            :class:`MatrixConflict` instance).
        set_user_capacity: ``(user_id, new_capacity)`` changes for surviving,
            pre-existing users (new users carry their own capacity).  A
            shrink below the user's carried load sheds their lightest pairs.
        set_event_capacity: ``(event_id, new_capacity)`` changes for
            surviving, pre-existing events.  A shrink below the carried
            attendance sheds the event's lightest pairs.
        interest: ``(event_id, user_id) -> SI`` values backing new bids
            *and* interest drift — entries on existing bid pairs re-weight
            them in place (requires a :class:`TabulatedInterest` instance;
            functional interest needs none).
        degrees: ``user_id -> D(G, u)`` overrides for new users on instances
            built with degree overrides (sampled-marginal workloads).
    """

    add_users: tuple[User, ...] = ()
    remove_users: tuple[int, ...] = ()
    add_events: tuple[Event, ...] = ()
    remove_events: tuple[int, ...] = ()
    add_bids: tuple[tuple[int, int], ...] = ()
    remove_bids: tuple[tuple[int, int], ...] = ()
    add_conflicts: tuple[tuple[int, int], ...] = ()
    remove_conflicts: tuple[tuple[int, int], ...] = ()
    set_user_capacity: tuple[tuple[int, int], ...] = ()
    set_event_capacity: tuple[tuple[int, int], ...] = ()
    interest: tuple[tuple[int, int, float], ...] = ()
    degrees: tuple[tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "add_users", tuple(self.add_users))
        object.__setattr__(self, "remove_users", tuple(self.remove_users))
        object.__setattr__(self, "add_events", tuple(self.add_events))
        object.__setattr__(self, "remove_events", tuple(self.remove_events))
        for name in (
            "add_bids",
            "remove_bids",
            "add_conflicts",
            "remove_conflicts",
            "set_user_capacity",
            "set_event_capacity",
        ):
            object.__setattr__(
                self,
                name,
                tuple((int(a), int(b)) for a, b in getattr(self, name)),
            )
        object.__setattr__(
            self,
            "interest",
            tuple((int(e), int(u), float(v)) for e, u, v in self.interest),
        )
        object.__setattr__(
            self,
            "degrees",
            tuple((int(u), float(v)) for u, v in self.degrees),
        )

    def is_empty(self) -> bool:
        """Whether the delta performs no operation at all — including pure
        re-weightings (interest/degree updates), which change utilities
        without touching the entity sets."""
        return not (
            self.add_users
            or self.remove_users
            or self.add_events
            or self.remove_events
            or self.add_bids
            or self.remove_bids
            or self.add_conflicts
            or self.remove_conflicts
            or self.set_user_capacity
            or self.set_event_capacity
            or self.interest
            or self.degrees
        )

    def summary(self) -> dict[str, int]:
        """Operation counts, for reports and replay logs."""
        return {
            "add_users": len(self.add_users),
            "remove_users": len(self.remove_users),
            "add_events": len(self.add_events),
            "remove_events": len(self.remove_events),
            "add_bids": len(self.add_bids),
            "remove_bids": len(self.remove_bids),
            "add_conflicts": len(self.add_conflicts),
            "remove_conflicts": len(self.remove_conflicts),
            "user_capacity_updates": len(self.set_user_capacity),
            "event_capacity_updates": len(self.set_event_capacity),
            "interest_updates": len(self.interest),
            "degree_updates": len(self.degrees),
        }


@dataclass
class DeltaResult:
    """Everything :func:`apply_delta` produces for one batch.

    Attributes:
        instance: the successor instance (patched index attached when the
            incremental path ran).
        arrangement: the carried-over arrangement with invalid pairs
            dropped, or None when no arrangement was passed in.  Feasible by
            construction but typically improvable — run the targeted repair.
        dropped_pairs: ``(event_id, user_id)`` pairs the delta invalidated.
        touched_users: ids of users whose options changed (lost pairs, new
            or changed bids, re-weighted pairs, dissolved conflicts) — the
            add/upgrade scope of a targeted repair.
        touched_events: ids of events whose attendance or bidder pool
            changed — the evict scope of a targeted repair.
        incremental: whether the index was delta-patched (False: the
            successor builds its index from scratch on first use).
    """

    instance: IGEPAInstance
    arrangement: Arrangement | None
    dropped_pairs: list[tuple[int, int]] = field(default_factory=list)
    touched_users: set[int] = field(default_factory=set)
    touched_events: set[int] = field(default_factory=set)
    incremental: bool = True


def _check_delta(instance: IGEPAInstance, delta: Delta) -> None:
    """Validate every operation against the predecessor instance."""
    index = instance.index
    user_pos = index.user_pos
    event_pos = index.event_pos
    removed_users = set(delta.remove_users)
    removed_events = set(delta.remove_events)

    for user_id in removed_users:
        if user_id not in user_pos:
            raise DeltaError(f"cannot remove unknown user {user_id}")
    for event_id in removed_events:
        if event_id not in event_pos:
            raise DeltaError(f"cannot remove unknown event {event_id}")
    if len(removed_users) != len(delta.remove_users):
        raise DeltaError("duplicate user removals")
    if len(removed_events) != len(delta.remove_events):
        raise DeltaError("duplicate event removals")

    new_user_ids = [user.user_id for user in delta.add_users]
    if len(set(new_user_ids)) != len(new_user_ids):
        raise DeltaError("duplicate ids among added users")
    for user_id in new_user_ids:
        if user_id in user_pos:
            raise DeltaError(f"added user {user_id} already exists")
    new_event_ids = [event.event_id for event in delta.add_events]
    if len(set(new_event_ids)) != len(new_event_ids):
        raise DeltaError("duplicate ids among added events")
    for event_id in new_event_ids:
        if event_id in event_pos:
            raise DeltaError(f"added event {event_id} already exists")

    surviving_events = (set(event_pos) - removed_events) | set(new_event_ids)
    for user in delta.add_users:
        dangling = set(user.bids) - surviving_events
        if dangling:
            raise DeltaError(
                f"added user {user.user_id} bids for events {sorted(dangling)} "
                "that do not survive the delta"
            )

    seen_bid_removals: set[tuple[int, int]] = set()
    for user_id, event_id in delta.remove_bids:
        upos = user_pos.get(user_id)
        if upos is None or user_id in removed_users:
            raise DeltaError(
                f"remove_bids targets user {user_id}, which is not a "
                "surviving user of the delta"
            )
        vpos = event_pos.get(event_id)
        if vpos is None or not index.is_bid_pair(upos, vpos):
            raise DeltaError(
                f"remove_bids: user {user_id} has no bid for event {event_id}"
            )
        if (user_id, event_id) in seen_bid_removals:
            raise DeltaError(f"duplicate bid removal ({user_id}, {event_id})")
        seen_bid_removals.add((user_id, event_id))

    seen_bid_additions: set[tuple[int, int]] = set()
    for user_id, event_id in delta.add_bids:
        upos = user_pos.get(user_id)
        if upos is None or user_id in removed_users:
            raise DeltaError(
                f"add_bids targets user {user_id}, which is not a surviving "
                "user of the delta (bids of new users belong on their User)"
            )
        if event_id not in surviving_events:
            raise DeltaError(
                f"add_bids: event {event_id} does not survive the delta"
            )
        vpos = event_pos.get(event_id)
        already = (
            vpos is not None
            and index.is_bid_pair(upos, vpos)
            and (user_id, event_id) not in seen_bid_removals
        )
        if already or (user_id, event_id) in seen_bid_additions:
            raise DeltaError(
                f"add_bids: user {user_id} already bids for event {event_id}"
            )
        seen_bid_additions.add((user_id, event_id))

    if delta.add_conflicts or delta.remove_conflicts:
        if not isinstance(instance.conflict, MatrixConflict):
            raise DeltaError(
                "conflict additions/removals require a MatrixConflict "
                f"instance, got {type(instance.conflict).__name__}"
            )
        for first, second in (*delta.add_conflicts, *delta.remove_conflicts):
            if first == second:
                raise DeltaError(f"event {first} cannot conflict with itself")
            for event_id in (first, second):
                if event_id not in surviving_events:
                    raise DeltaError(
                        f"conflict edit references event {event_id}, which "
                        "does not survive the delta"
                    )
        conflict: MatrixConflict = instance.conflict
        for first, second in delta.add_conflicts:
            both_old = first in event_pos and second in event_pos
            if both_old and conflict.conflicts_ids(first, second):
                raise DeltaError(
                    f"conflict ({first}, {second}) already present"
                )
        for first, second in delta.remove_conflicts:
            if not conflict.conflicts_ids(first, second):
                raise DeltaError(
                    f"conflict ({first}, {second}) not present"
                )

    seen_user_caps: set[int] = set()
    for user_id, capacity in delta.set_user_capacity:
        if user_id not in user_pos or user_id in removed_users:
            raise DeltaError(
                f"set_user_capacity targets user {user_id}, which is not a "
                "surviving pre-existing user of the delta (new users carry "
                "their own capacity)"
            )
        if user_id in seen_user_caps:
            raise DeltaError(f"duplicate capacity change for user {user_id}")
        seen_user_caps.add(user_id)
        if capacity < 0:
            raise DeltaError(
                f"capacity for user {user_id} is {capacity}, expected >= 0"
            )
    seen_event_caps: set[int] = set()
    for event_id, capacity in delta.set_event_capacity:
        if event_id not in event_pos or event_id in removed_events:
            raise DeltaError(
                f"set_event_capacity targets event {event_id}, which is not "
                "a surviving pre-existing event of the delta (new events "
                "carry their own capacity)"
            )
        if event_id in seen_event_caps:
            raise DeltaError(f"duplicate capacity change for event {event_id}")
        seen_event_caps.add(event_id)
        if capacity < 0:
            raise DeltaError(
                f"capacity for event {event_id} is {capacity}, expected >= 0"
            )

    if delta.interest:
        if not isinstance(instance.interest, TabulatedInterest):
            raise DeltaError(
                "interest updates require a TabulatedInterest instance, got "
                f"{type(instance.interest).__name__}"
            )
        for event_id, user_id, value in delta.interest:
            if not 0.0 <= value <= 1.0:
                raise DeltaError(
                    f"interest for event {event_id}, user {user_id} is "
                    f"{value}, expected a value in [0, 1]"
                )
    if delta.degrees and not instance.has_degree_overrides:
        raise DeltaError(
            "degree overrides require an instance built with degree "
            "overrides (degrees_override is None)"
        )
    if delta.degrees:
        surviving_users = (
            set(user_pos) - removed_users
        ) | set(new_user_ids)
        for user_id, value in delta.degrees:
            if user_id not in surviving_users:
                raise DeltaError(
                    f"degree override for user {user_id}, which does not "
                    "survive the delta"
                )
            if not 0.0 <= value <= 1.0:
                raise DeltaError(
                    f"degree override for user {user_id} is {value}, "
                    "expected a value in [0, 1]"
                )


def _successor_users(instance: IGEPAInstance, delta: Delta) -> list[User]:
    """Surviving users (bid lists rewritten where they churned) + additions.

    A rewritten bid tuple keeps surviving bids in the old order and appends
    added bids in delta order — the exact order the CSR patcher splices, so
    a from-scratch index build over the successor users agrees entry for
    entry.
    """
    removed_users = set(delta.remove_users)
    removed_events = set(delta.remove_events)
    drops: dict[int, set[int]] = {}
    for user_id, event_id in delta.remove_bids:
        drops.setdefault(user_id, set()).add(event_id)
    adds: dict[int, list[int]] = {}
    for user_id, event_id in delta.add_bids:
        adds.setdefault(user_id, []).append(event_id)
    capacities = dict(delta.set_user_capacity)

    # Only users whose bid list or capacity actually changes need a rewrite;
    # everyone else carries their (immutable) User object over untouched.
    affected: set[int] = set(drops) | set(adds) | set(capacities)
    if removed_events:
        index = instance.index
        for event_id in removed_events:
            vpos = index.event_pos[event_id]
            affected.update(
                int(u) for u in index.user_ids[index.event_bidder_positions(vpos)]
            )

    users: list[User] = []
    for user in instance.users:
        if user.user_id in removed_users:
            continue
        if user.user_id in affected:
            dropped = drops.get(user.user_id, set())
            new_bids = tuple(
                event_id
                for event_id in user.bids
                if event_id not in dropped and event_id not in removed_events
            ) + tuple(adds.get(user.user_id, ()))
            user = User(
                user_id=user.user_id,
                capacity=capacities.get(user.user_id, user.capacity),
                attributes=user.attributes,
                bids=new_bids,
                categories=user.categories,
            )
        users.append(user)
    users.extend(delta.add_users)
    return users


def _successor_conflict(
    instance: IGEPAInstance, delta: Delta
) -> ConflictFunction:
    """The successor conflict function (a new MatrixConflict when edited).

    Besides applying the explicit edits, pairs referencing removed events
    are pruned so successor serialization stays free of dangling ids.
    """
    edited = bool(delta.add_conflicts or delta.remove_conflicts)
    if not isinstance(instance.conflict, MatrixConflict):
        return instance.conflict
    if not edited and not delta.remove_events:
        return instance.conflict
    return instance.conflict.with_edits(
        add=delta.add_conflicts,
        remove=delta.remove_conflicts,
        drop_events=delta.remove_events,
    )


def _successor_interest(
    instance: IGEPAInstance, delta: Delta
) -> InterestFunction:
    """The successor interest function (TabulatedInterest merged).

    New entries (already range-checked by ``_check_delta``) are merged over
    a copy of the table — a single C-level dict copy (milliseconds at 10⁵
    entries).  Entries of removed users/events are *not* pruned: they are
    never read (SI is only consulted on bid pairs), and pruning would turn
    the flat copy into a per-entry filtered rebuild on every batch.
    Callers that re-use an id after removing it therefore resurrect its
    stale values; the churn generator never re-uses ids.
    """
    interest = instance.interest
    if not delta.interest or not isinstance(interest, TabulatedInterest):
        return interest
    values = interest.items()
    values.update(
        ((event_id, user_id), value)
        for event_id, user_id, value in delta.interest
    )
    return TabulatedInterest._from_trusted(values, interest.default)


def _successor_social(instance: IGEPAInstance, delta: Delta) -> Graph:
    """The successor social graph (copied only when the user set changes)."""
    if not delta.add_users and not delta.remove_users:
        return instance.social
    social = instance.social.copy()
    for user_id in delta.remove_users:
        if social.has_node(user_id):
            social.remove_node(user_id)
    for user in delta.add_users:
        social.add_node(user.user_id)
    return social


@dataclass
class _PositionMaps:
    """Old-to-successor position bookkeeping shared by patch and carryover.

    ``user_map`` / ``event_map`` send old positions to successor positions
    (-1 for removed entities); survivors keep their relative order, so the
    first ``keep_users.sum()`` successor positions are exactly the old
    survivors.
    """

    keep_users: np.ndarray
    keep_events: np.ndarray
    user_map: np.ndarray
    event_map: np.ndarray


def _position_maps(old: InstanceIndex, delta: Delta) -> _PositionMaps:
    keep_users = np.ones(old.num_users, dtype=bool)
    for user_id in delta.remove_users:
        keep_users[old.user_pos[user_id]] = False
    keep_events = np.ones(old.num_events, dtype=bool)
    for event_id in delta.remove_events:
        keep_events[old.event_pos[event_id]] = False
    user_map = np.full(old.num_users, -1, dtype=np.int64)
    user_map[keep_users] = np.arange(int(keep_users.sum()), dtype=np.int64)
    event_map = np.full(old.num_events, -1, dtype=np.int64)
    event_map[keep_events] = np.arange(int(keep_events.sum()), dtype=np.int64)
    return _PositionMaps(keep_users, keep_events, user_map, event_map)


def _patch_components(
    instance: IGEPAInstance,
    delta: Delta,
    maps: _PositionMaps,
    *,
    conflict_fn: Callable[[Event, Event], bool],
    successor_events: Sequence[Event],
    interest_fn: Callable[[Event, User], float],
    event_lookup: Callable[[int], Event],
    user_lookup: Callable[[int], User],
) -> dict:
    """Patch the predecessor's primary arrays into the successor's.

    Every surviving entry is copied bit for bit; new entries run the same
    expressions the from-scratch build would (``validated_interest`` for SI,
    the conflict function for new rows).  The caller supplies the successor's
    conflict/interest machinery — as objects on the entity path, as
    view/delta-backed closures on the columnar path — so this function never
    needs the successor instance itself.

    The patch is expressed at the CSR-entry level (``bid_indices`` /
    ``bid_si`` splicing), so its cost is O(bids + delta + |V|²) regardless
    of the index implementation: on a :class:`ShardedInstanceIndex` no
    O(cells) work happens at all — churn effectively routes to the touched
    shards only, since untouched shards' slabs are never materialized and
    their CSR segments are copied wholesale by the vectorized splice.

    Returns the primary components minus ``degrees`` (built against the
    successor by the caller).
    """
    old = instance.index
    keep_users = maps.keep_users
    keep_events = maps.keep_events
    user_map = maps.user_map
    event_map = maps.event_map

    events = successor_events
    n_survivor_users = int(keep_users.sum())
    n_survivor_events = int(keep_events.sum())
    n_users = n_survivor_users + len(delta.add_users)
    n_events = n_survivor_events + len(delta.add_events)

    user_ids = np.concatenate(
        [
            old.user_ids[keep_users],
            np.fromiter(
                (u.user_id for u in delta.add_users),
                dtype=np.int64,
                count=len(delta.add_users),
            ),
        ]
    )
    event_ids = np.concatenate(
        [
            old.event_ids[keep_events],
            np.fromiter(
                (e.event_id for e in delta.add_events),
                dtype=np.int64,
                count=len(delta.add_events),
            ),
        ]
    )
    user_capacity = np.concatenate(
        [
            old.user_capacity[keep_users],
            np.fromiter(
                (u.capacity for u in delta.add_users),
                dtype=np.int64,
                count=len(delta.add_users),
            ),
        ]
    )
    event_capacity = np.concatenate(
        [
            old.event_capacity[keep_events],
            np.fromiter(
                (e.capacity for e in delta.add_events),
                dtype=np.int64,
                count=len(delta.add_events),
            ),
        ]
    )
    # Capacity changes overwrite the copied entries in place (concatenate
    # returned fresh arrays); the successor entities carry the same values,
    # so a from-scratch build produces identical int64 bits.
    for user_id, capacity in delta.set_user_capacity:
        user_capacity[user_map[old.user_pos[user_id]]] = capacity
    for event_id, capacity in delta.set_event_capacity:
        event_capacity[event_map[old.event_pos[event_id]]] = capacity
    event_pos = {int(e): j for j, e in enumerate(event_ids.tolist())}
    user_pos = (
        {int(u): i for i, u in enumerate(user_ids.tolist())}
        if delta.interest
        else None
    )

    # Conflict matrix: slice survivors, evaluate new events' rows with the
    # successor conflict function, then toggle edited survivor pairs.
    conflict_matrix = np.zeros((n_events, n_events), dtype=bool)
    conflict_matrix[:n_survivor_events, :n_survivor_events] = old.conflict_matrix[
        np.ix_(keep_events, keep_events)
    ]
    for offset, event in enumerate(delta.add_events):
        j = n_survivor_events + offset
        for i, other in enumerate(events):
            if i == j:
                continue
            if conflict_fn.conflicts(other, event):
                conflict_matrix[i, j] = True
                conflict_matrix[j, i] = True
    for first, second in delta.remove_conflicts:
        i, j = event_pos[first], event_pos[second]
        conflict_matrix[i, j] = False
        conflict_matrix[j, i] = False
    for first, second in delta.add_conflicts:
        i, j = event_pos[first], event_pos[second]
        conflict_matrix[i, j] = True
        conflict_matrix[j, i] = True

    # CSR bid incidence: keep surviving entries (preserving each user's bid
    # order), splice appended bids of rewritten users, then append the new
    # users' rows.  SI values ride along entry for entry: survivors are
    # copied bit for bit, added bids run the constructor's own validated
    # interest evaluation.
    old_entry_user = old.bid_user_positions
    old_entry_event = old.bid_indices
    keep_entries = keep_users[old_entry_user] & keep_events[old_entry_event]
    if delta.remove_bids:
        for user_id, event_id in delta.remove_bids:
            upos = old.user_pos[user_id]
            vpos = old.event_pos[event_id]
            start, stop = old.bid_indptr[upos], old.bid_indptr[upos + 1]
            offsets = np.flatnonzero(old_entry_event[start:stop] == vpos)
            keep_entries[start + int(offsets[0])] = False

    kept_users_new = user_map[old_entry_user[keep_entries]]
    kept_events_new = event_map[old_entry_event[keep_entries]]
    kept_si = old.bid_si[keep_entries]
    counts = np.bincount(kept_users_new, minlength=n_users).astype(np.int64)

    adds_by_upos: dict[int, list[int]] = {}
    for user_id, event_id in delta.add_bids:
        new_upos = int(user_map[old.user_pos[user_id]])
        adds_by_upos.setdefault(new_upos, []).append(event_pos[event_id])
    for offset, user in enumerate(delta.add_users):
        new_upos = n_survivor_users + offset
        adds_by_upos[new_upos] = [event_pos[event_id] for event_id in user.bids]

    if adds_by_upos:
        kept_indptr = np.zeros(n_users + 1, dtype=np.int64)
        np.cumsum(counts, out=kept_indptr[1:])
        insert_at: list[int] = []
        insert_values: list[int] = []
        insert_si: list[float] = []
        for new_upos in sorted(adds_by_upos):
            row_end = int(kept_indptr[new_upos + 1])
            user = user_lookup(int(user_ids[new_upos]))
            for vpos in adds_by_upos[new_upos]:
                insert_at.append(row_end)
                insert_values.append(vpos)
                insert_si.append(
                    validated_interest(
                        interest_fn, event_lookup(int(event_ids[vpos])), user
                    )
                )
            counts[new_upos] += len(adds_by_upos[new_upos])
        bid_indices = np.insert(kept_events_new, insert_at, insert_values)
        bid_si = np.insert(kept_si, insert_at, insert_si)
    else:
        bid_indices = kept_events_new
        bid_si = kept_si
    bid_indptr = np.zeros(n_users + 1, dtype=np.int64)
    np.cumsum(counts, out=bid_indptr[1:])

    # Interest updates may also re-weight *existing* bid pairs; write those
    # through so the patched SI matches the successor's merged table.  (A
    # from-scratch build reads the merged table for every bid pair; entries
    # on non-bid pairs only back the interest_of fallback and never reach
    # the index either way.)
    if delta.interest:
        for event_id, user_id, value in delta.interest:
            upos = user_pos.get(user_id)
            vpos = event_pos.get(event_id)
            if upos is None or vpos is None:
                continue
            start, stop = int(bid_indptr[upos]), int(bid_indptr[upos + 1])
            offsets = np.flatnonzero(bid_indices[start:stop] == vpos)
            if offsets.size:
                bid_si[start + int(offsets[0])] = value

    return dict(
        user_ids=user_ids,
        event_ids=event_ids,
        user_capacity=user_capacity,
        event_capacity=event_capacity,
        conflict_matrix=conflict_matrix,
        bid_indptr=bid_indptr,
        bid_indices=bid_indices,
        bid_si=bid_si,
    )


def _successor_degrees(
    instance: IGEPAInstance, successor: IGEPAInstance, delta: Delta
) -> np.ndarray:
    """The successor index's degree vector.

    When the user set or the overrides change, run the constructor's own
    builder on the successor (O(|U|) lookups, no interest/conflict work) —
    one shared implementation, so the patched vector cannot drift from a
    from-scratch build.  Otherwise copy the predecessor's.
    """
    if delta.add_users or delta.remove_users or delta.degrees:
        return build_degrees(successor)
    return instance.index.degrees.copy()


def _index_from_components(
    old: BaseInstanceIndex, successor: IGEPAInstance, components: dict
) -> BaseInstanceIndex:
    """Assemble the successor's index, keeping the predecessor's
    implementation (and shard size) unless growth forces a switch."""
    if isinstance(old, ShardedInstanceIndex):
        patched = ShardedInstanceIndex.from_components(
            successor, shard_size=old.shard_size, **components
        )
    else:
        cells = components["user_ids"].size * components["event_ids"].size
        if cells > DENSE_CELL_CAP:
            # Churn grew a dense-indexed instance past the dense cap: switch
            # the successor to the sharded implementation instead of
            # allocating matrices the from-scratch constructor would refuse.
            patched = ShardedInstanceIndex.from_components(
                successor, **components
            )
        else:
            patched = InstanceIndex.from_components(successor, **components)
    sanitize_index(patched)
    return patched


def _patch_index(
    instance: IGEPAInstance,
    successor: IGEPAInstance,
    delta: Delta,
    maps: _PositionMaps,
) -> BaseInstanceIndex:
    """Derive the successor's index from the predecessor's by array patching
    (entity-path wiring around :func:`_patch_components`)."""
    components = _patch_components(
        instance,
        delta,
        maps,
        conflict_fn=successor.conflict,
        successor_events=successor.events,
        interest_fn=successor.interest.interest,
        event_lookup=successor.event_by_id.__getitem__,
        user_lookup=successor.user_by_id.__getitem__,
    )
    components["degrees"] = _successor_degrees(instance, successor, delta)
    return _index_from_components(instance.index, successor, components)


def _columnar_successor(
    instance: IGEPAInstance, delta: Delta, maps: _PositionMaps
) -> tuple[IGEPAInstance, dict]:
    """Build the successor of a store-backed instance by patching columns.

    No per-entity object is touched for surviving users: the successor's
    store is assembled from the patched component arrays (which double as
    the index's primary arrays), added entities come straight from the
    delta, and interest evaluation for spliced bids resolves through the
    predecessor's CSR — overlaid with the delta's interest entries exactly
    as the entity path's merged table would.

    Returns the successor instance plus the patched components (sans
    degrees) for the caller to attach an index from.
    """
    store = instance.store
    conflict_fn = _successor_conflict(instance, delta)
    social = _successor_social(instance, delta)

    # Sequence of successor events for the new-event conflict rows: O(|V|)
    # views plus the added Event objects, never a full entity list.
    successor_events = [
        store.event(int(row))
        for row in np.flatnonzero(maps.keep_events).tolist()
    ]
    successor_events.extend(delta.add_events)

    added_users = {user.user_id: user for user in delta.add_users}
    added_events = {event.event_id: event for event in delta.add_events}
    pred_user_by_id = instance.user_by_id
    pred_event_by_id = instance.event_by_id

    def user_lookup(user_id: int) -> User:
        added = added_users.get(user_id)
        return added if added is not None else pred_user_by_id[user_id]

    def event_lookup(event_id: int) -> Event:
        added = added_events.get(event_id)
        return added if added is not None else pred_event_by_id[event_id]

    # SI for spliced bids: the delta's interest entries take precedence
    # (they would sit on top of the merged table a from-scratch entity
    # build reads), then the predecessor's interest — for ColumnarInterest
    # a CSR/extra lookup, so withdrawn-and-re-added pairs resurrect their
    # stored value exactly as the unpruned dict table does.
    base_interest = instance.interest.interest
    delta_map = {
        (event_id, user_id): value
        for event_id, user_id, value in delta.interest
    }
    if delta_map:

        def interest_fn(event: Event, user: User) -> float:
            value = delta_map.get((event.event_id, user.user_id))
            return value if value is not None else base_interest(event, user)

    else:
        interest_fn = base_interest

    components = _patch_components(
        instance,
        delta,
        maps,
        conflict_fn=conflict_fn,
        successor_events=successor_events,
        interest_fn=interest_fn,
        event_lookup=event_lookup,
        user_lookup=user_lookup,
    )

    # Degree-override column: splice the vector (same dict.get(., 0.0)
    # semantics per added user as the entity path's merged override dict).
    store_degrees = None
    if store.degrees is not None:
        delta_degrees = dict(delta.degrees)
        added_values = np.fromiter(
            (delta_degrees.get(user.user_id, 0.0) for user in delta.add_users),
            dtype=np.float64,
            count=len(delta.add_users),
        )
        store_degrees = np.concatenate(
            [store.degrees[maps.keep_users], added_values]
        )
        for user_id, value in delta.degrees:
            row = store.user_pos.get(user_id)
            if row is not None and maps.keep_users[row]:
                store_degrees[maps.user_map[row]] = value

    event_start, event_duration = carry_temporal(
        store.event_start, store.event_duration, maps.keep_events, delta.add_events
    )
    successor_store = ColumnarStore(
        user_ids=components["user_ids"],
        user_capacity=components["user_capacity"],
        event_ids=components["event_ids"],
        event_capacity=components["event_capacity"],
        bid_indptr=components["bid_indptr"],
        bid_event_pos=components["bid_indices"],
        bid_si=components["bid_si"] if store.bid_si is not None else None,
        degrees=store_degrees,
        user_attributes=carry_attributes(
            store.user_attributes,
            maps.keep_users,
            [user.attributes for user in delta.add_users],
        ),
        user_categories=carry_categories(
            store.user_categories,
            maps.keep_users,
            [user.categories for user in delta.add_users],
        ),
        event_attributes=carry_attributes(
            store.event_attributes,
            maps.keep_events,
            [event.attributes for event in delta.add_events],
        ),
        event_categories=carry_categories(
            store.event_categories,
            maps.keep_events,
            [event.categories for event in delta.add_events],
        ),
        event_start=event_start,
        event_duration=event_duration,
        conflict_matrix=components["conflict_matrix"],
    )

    if isinstance(instance.interest, ColumnarInterest):
        extra = dict(instance.interest._extra)
        extra.update(delta_map)
        interest = ColumnarInterest(
            successor_store, instance.interest.default, extra=extra or None
        )
    else:
        interest = _successor_interest(instance, delta)

    successor = IGEPAInstance.from_store(
        successor_store,
        conflict=conflict_fn,
        interest=interest,
        social=social,
        beta=instance.beta,
        name=instance.name,
        validate=False,
    )
    return successor, components


def _carry_arrangement(
    instance: IGEPAInstance,
    successor: IGEPAInstance,
    arrangement: Arrangement,
    delta: Delta,
    maps: _PositionMaps,
) -> tuple[Arrangement, list[tuple[int, int]], set[int], set[int]]:
    """Carry the predecessor's pairs over, dropping whatever turned invalid.

    Invalidation sources: removed users/events, withdrawn bids, newly
    conflicting event pairs (for each affected user, the lighter pair of the
    two is dropped; ties drop the higher event id), and capacity shrinks —
    an event whose capacity fell below its carried attendance (or a user
    whose capacity fell below their carried load) sheds its lightest pairs
    until the tightened budget holds, ties dropping the higher user/event
    id.  The result is feasible by construction: every way a delta can
    tighten a Definition 4 constraint is resolved here, so repair always
    starts from a feasible arrangement.

    The survivor transfer is pure array work on the assignment matrix: old
    pair positions are remapped through ``maps`` and invalidated against the
    successor's ``bid_mask``, so carry cost scales with the pair count, not
    with re-running per-pair feasibility checks.
    """
    if not arrangement.is_clean():
        raise DeltaError(
            "cannot carry over an arrangement with unknown or non-bid pairs"
        )
    old_index = instance.index
    index = successor.index

    old_upos, old_vpos = np.nonzero(arrangement.assignment_matrix)
    new_upos = maps.user_map[old_upos]
    new_vpos = maps.event_map[old_vpos]
    keep = (new_upos >= 0) & (new_vpos >= 0)
    # Withdrawn bids invalidate surviving-entity pairs.
    keep[keep] = index.pair_bid_mask(new_upos[keep], new_vpos[keep])

    dropped = list(
        zip(
            old_index.event_ids[old_vpos[~keep]].tolist(),
            old_index.user_ids[old_upos[~keep]].tolist(),
        )
    )

    carried = Arrangement(successor)
    assigned = carried.assignment_matrix  # live view
    assigned[new_upos[keep], new_vpos[keep]] = True

    if delta.add_conflicts:
        event_pos = index.event_pos
        for first, second in delta.add_conflicts:
            pa, pb = event_pos[first], event_pos[second]
            both = np.flatnonzero(assigned[:, pa] & assigned[:, pb])
            for upos in both.tolist():
                w_first = index.weight_at(upos, pa)
                w_second = index.weight_at(upos, pb)
                if w_first < w_second or (
                    w_first == w_second and first > second
                ):
                    victim_id, victim_pos = first, pa
                else:
                    victim_id, victim_pos = second, pb
                assigned[upos, victim_pos] = False
                dropped.append((victim_id, int(index.user_ids[upos])))

    # Capacity shrinks shed the lightest pairs until the tightened budgets
    # hold.  Event side first — it only lowers user loads, so the user-side
    # pass afterwards cannot re-create an event overflow.
    for event_id, _capacity in delta.set_event_capacity:
        vpos = index.event_pos[event_id]
        over = int(assigned[:, vpos].sum()) - int(index.event_capacity[vpos])
        if over <= 0:
            continue
        attendees = np.flatnonzero(assigned[:, vpos])
        weights = index.pair_weights(
            attendees, np.full(attendees.size, vpos, dtype=np.int64)
        )
        attendee_ids = index.user_ids[attendees]
        # Ascending weight, ties dropping the higher user id (mirrors the
        # conflict-drop tie rule above).
        order = np.lexsort((-attendee_ids, weights))
        for k in order[:over].tolist():
            assigned[int(attendees[k]), vpos] = False
            dropped.append((event_id, int(attendee_ids[k])))
    for user_id, _capacity in delta.set_user_capacity:
        upos = index.user_pos[user_id]
        over = int(assigned[upos].sum()) - int(index.user_capacity[upos])
        if over <= 0:
            continue
        attended = np.flatnonzero(assigned[upos])
        weights = index.pair_weights(
            np.full(attended.size, upos, dtype=np.int64), attended
        )
        attended_ids = index.event_ids[attended]
        order = np.lexsort((-attended_ids, weights))
        for k in order[:over].tolist():
            assigned[upos, int(attended[k])] = False
            dropped.append((int(attended_ids[k]), user_id))

    carried.attendance_counts[:] = assigned.sum(axis=0)
    carried.load_counts[:] = assigned.sum(axis=1)
    rows, cols = np.nonzero(assigned)
    if rows.size:
        boundaries = np.searchsorted(rows, np.arange(index.num_users + 1))
        cols_list = cols.tolist()
        user_events = carried._user_events
        for upos in range(index.num_users):
            start, stop = boundaries[upos], boundaries[upos + 1]
            if stop > start:
                user_events[upos] = cols_list[start:stop]
        carried._pairs = set(
            zip(index.event_ids[cols].tolist(), index.user_ids[rows].tolist())
        )

    touched_users = {user_id for _event_id, user_id in dropped}
    touched_events = {event_id for event_id, _user_id in dropped}
    return carried, dropped, touched_users, touched_events


def coalesce_deltas(deltas: Sequence[Delta]) -> Delta:
    """Fold a sequence of deltas into one equivalent batch.

    The serving loop's micro-batcher groups several ingress operations —
    churn requests plus per-arrival registrations — into one tick, which
    must apply as a *single* delta.  Given deltas that would be valid
    applied sequentially from some instance, the coalesced delta is valid
    against that same instance and produces a successor whose index is
    bit-identical to the sequential application's
    (``tests/model/test_delta.py`` asserts this array by array).

    Folding rules (everything else concatenates in encounter order):

    * operations on entities *added within the window* fold into their
      :class:`User`/:class:`Event` objects — later bids, bid withdrawals
      and capacity changes rewrite the added object; removing a
      window-added entity erases it and every pending operation on it;
    * a bid **added then removed** within the window cancels; a bid
      **removed then re-added** keeps *both* operations — cancelling the
      pair would splice the bid back at its old list position, while the
      sequential application re-appends it at the end (``add_bids`` after
      an earlier removal of the same pair is explicitly legal);
    * a conflict **removed then re-added** (or added then removed) cancels
      — the relation is a set, so net-unchanged pairs need no edit;
    * conflict edits and bids referencing events that do not survive the
      window are dropped (the sequential application prunes them when the
      event closes; a coalesced delta carrying them would fail
      validation);
    * capacity changes on pre-window entities are last-wins;
    * ``interest`` entries all survive (later entries overwrite earlier
      ones in application order, and entries on removed entities merge
      into the unpruned interest table exactly as sequential application
      leaves them); ``degrees`` entries are filtered to users surviving
      the window.

    Raises:
        DeltaError: when an id removed within the window is re-added later
            in it (id reuse; the churn generator never emits this, and a
            coalesced delta cannot express it).
    """
    added_users: dict[int, User] = {}
    added_user_bids: dict[int, list[int]] = {}
    ever_added_users: set[int] = set()
    removed_users: list[int] = []
    removed_user_set: set[int] = set()
    added_events: dict[int, Event] = {}
    removed_events: list[int] = []
    removed_event_set: set[int] = set()
    add_bids: list[tuple[int, int]] = []
    remove_bids: list[tuple[int, int]] = []
    added_conflicts: list[tuple[int, int]] = []
    removed_conflicts: list[tuple[int, int]] = []
    user_caps: dict[int, int] = {}
    event_caps: dict[int, int] = {}
    interest: list[tuple[int, int, float]] = []
    degrees: list[tuple[int, float]] = []

    def drop_event_refs(event_id: int) -> None:
        """Prune pending operations referencing a closing event."""
        nonlocal add_bids, added_conflicts, removed_conflicts, added_user_bids
        add_bids = [pair for pair in add_bids if pair[1] != event_id]
        added_user_bids = {
            user_id: [e for e in bids if e != event_id]
            for user_id, bids in added_user_bids.items()
        }
        added_conflicts = [
            pair for pair in added_conflicts if event_id not in pair
        ]
        removed_conflicts = [
            pair for pair in removed_conflicts if event_id not in pair
        ]
        event_caps.pop(event_id, None)

    for delta in deltas:
        for user_id, event_id in delta.remove_bids:
            if user_id in added_users:
                added_user_bids[user_id].remove(event_id)
            elif (user_id, event_id) in add_bids:
                # added-then-removed within the window: cancels
                add_bids.remove((user_id, event_id))
            else:
                remove_bids.append((user_id, event_id))
        for user_id, event_id in delta.add_bids:
            if user_id in added_users:
                added_user_bids[user_id].append(event_id)
            else:
                # kept even after a same-pair removal above: the sequential
                # application appends the re-added bid at the end of the
                # user's list, which is exactly what remove+add expresses
                add_bids.append((user_id, event_id))
        for user_id in delta.remove_users:
            if user_id in added_users:
                del added_users[user_id]
                del added_user_bids[user_id]
            else:
                removed_users.append(user_id)
                removed_user_set.add(user_id)
                add_bids[:] = [p for p in add_bids if p[0] != user_id]
                remove_bids[:] = [p for p in remove_bids if p[0] != user_id]
                user_caps.pop(user_id, None)
        for event_id in delta.remove_events:
            if event_id in added_events:
                del added_events[event_id]
            else:
                if event_id in removed_event_set:
                    raise DeltaError(
                        f"event {event_id} removed twice in one window "
                        "(id reuse cannot be coalesced)"
                    )
                removed_events.append(event_id)
                removed_event_set.add(event_id)
            drop_event_refs(event_id)
        for event in delta.add_events:
            if event.event_id in removed_event_set:
                raise DeltaError(
                    f"event id {event.event_id} reused within a coalescing "
                    "window"
                )
            added_events[event.event_id] = event
        for user in delta.add_users:
            if user.user_id in removed_user_set:
                raise DeltaError(
                    f"user id {user.user_id} reused within a coalescing "
                    "window"
                )
            added_users[user.user_id] = user
            added_user_bids[user.user_id] = list(user.bids)
            ever_added_users.add(user.user_id)
        for pair in delta.add_conflicts:
            mirror = (pair[1], pair[0])
            if pair in removed_conflicts or mirror in removed_conflicts:
                # removed-then-re-added: net unchanged against the base
                if pair in removed_conflicts:
                    removed_conflicts.remove(pair)
                else:
                    removed_conflicts.remove(mirror)
            else:
                added_conflicts.append(pair)
        for pair in delta.remove_conflicts:
            mirror = (pair[1], pair[0])
            if pair in added_conflicts or mirror in added_conflicts:
                # added-then-removed: net unchanged against the base
                if pair in added_conflicts:
                    added_conflicts.remove(pair)
                else:
                    added_conflicts.remove(mirror)
            else:
                removed_conflicts.append(pair)
        for user_id, capacity in delta.set_user_capacity:
            if user_id in added_users:
                added_users[user_id] = replace(
                    added_users[user_id], capacity=capacity
                )
            else:
                user_caps[user_id] = capacity
        for event_id, capacity in delta.set_event_capacity:
            if event_id in added_events:
                added_events[event_id] = replace(
                    added_events[event_id], capacity=capacity
                )
            else:
                event_caps[event_id] = capacity
        interest.extend(delta.interest)
        degrees.extend(delta.degrees)

    return Delta(
        add_users=tuple(
            replace(user, bids=tuple(added_user_bids[user_id]))
            for user_id, user in added_users.items()
        ),
        remove_users=tuple(removed_users),
        add_events=tuple(added_events.values()),
        remove_events=tuple(removed_events),
        add_bids=tuple(add_bids),
        remove_bids=tuple(remove_bids),
        add_conflicts=tuple(added_conflicts),
        remove_conflicts=tuple(removed_conflicts),
        set_user_capacity=tuple(user_caps.items()),
        set_event_capacity=tuple(event_caps.items()),
        interest=tuple(interest),
        degrees=tuple(
            (user_id, value)
            for user_id, value in degrees
            # survivors: window-added users still present, or pre-window
            # users not removed (added-then-removed users are in neither)
            if user_id in added_users
            or (
                user_id not in removed_user_set
                and user_id not in ever_added_users
            )
        ),
    )


def apply_delta(
    instance: IGEPAInstance,
    delta: Delta,
    arrangement: Arrangement | None = None,
    *,
    incremental: bool = True,
) -> DeltaResult:
    """Apply one churn batch, patching the index and carrying the arrangement.

    Operations apply in a fixed order: bid removals, user removals, event
    removals (dropping surviving users' bids on them), event additions, user
    additions, bid additions, conflict edits, capacity changes,
    interest/degree merges.  A bid
    removal may therefore target an event closing in the same delta, and bid
    additions (including new users' bid lists) may reference newly opened
    events.

    Args:
        instance: the predecessor instance (not mutated).
        delta: the churn batch; validated against the predecessor.
        arrangement: optional current arrangement to carry over; must belong
            to ``instance`` and be clean (all pairs known bid pairs).
        incremental: patch the predecessor's index arrays (the default).
            When False the successor instance is returned without an index —
            its first use builds one from scratch (the "full rebuild"
            comparison path of the replay driver and churn bench).

    Returns:
        A :class:`DeltaResult`; see its attribute docs.

    Raises:
        DeltaError: on invalid operations (unknown/duplicate ids, bids on
            non-surviving events, conflict edits on non-matrix conflict
            functions, ...).
    """
    if arrangement is not None and arrangement.instance is not instance:
        raise DeltaError("arrangement belongs to a different instance")
    _check_delta(instance, delta)

    if instance.is_columnar:
        # Store-backed path: patch the columns, never materialize entity
        # objects for surviving users.  The patched components double as the
        # successor store and (with degrees added) the index's primary
        # arrays, so incremental=False still hands the successor a store a
        # from-scratch index build reproduces bit for bit.
        maps = _position_maps(instance.index, delta)
        successor, components = _columnar_successor(instance, delta, maps)
        successor._index_config = instance._index_config
        if incremental:
            components["degrees"] = _successor_degrees(
                instance, successor, delta
            )
            successor._index = _index_from_components(
                instance.index, successor, components
            )
    else:
        users = _successor_users(instance, delta)
        removed_events = set(delta.remove_events)
        event_capacities = dict(delta.set_event_capacity)
        events = [
            event
            if event.event_id not in event_capacities
            else replace(event, capacity=event_capacities[event.event_id])
            for event in instance.events
            if event.event_id not in removed_events
        ]
        events.extend(delta.add_events)

        degrees_override = None
        if instance.degrees_override is not None:
            if delta.remove_users:
                removed_users = set(delta.remove_users)
                degrees_override = {
                    user_id: value
                    for user_id, value in instance.degrees_override.items()
                    if user_id not in removed_users
                }
            else:
                degrees_override = dict(instance.degrees_override)
            degrees_override.update(delta.degrees)

        # _check_delta already validated every operation incrementally, so
        # the successor skips the full structural re-validation.
        successor = IGEPAInstance(
            events=events,
            users=users,
            conflict=_successor_conflict(instance, delta),
            interest=_successor_interest(instance, delta),
            social=_successor_social(instance, delta),
            beta=instance.beta,
            name=instance.name,
            degrees=degrees_override,
            validate=False,
        )
        # The successor inherits the index configuration (sharded/dense,
        # shard size), so the full-rebuild comparison path builds the same
        # kind of index the predecessor used.
        successor._index_config = instance._index_config
        # The maps feed the index patch and the carryover; the plain
        # content-rebuild path (incremental=False, no arrangement) skips
        # them.
        maps = (
            _position_maps(instance.index, delta)
            if incremental or arrangement is not None
            else None
        )
        if incremental:
            successor._index = _patch_index(instance, successor, delta, maps)

    result = DeltaResult(
        instance=successor, arrangement=None, incremental=incremental
    )
    # Touched sets: entities whose local neighbourhood changed, independent
    # of the arrangement — repair scans these even when nothing was dropped.
    result.touched_users.update(user.user_id for user in delta.add_users)
    result.touched_users.update(user_id for user_id, _e in delta.add_bids)
    result.touched_events.update(event.event_id for event in delta.add_events)
    result.touched_events.update(event_id for _u, event_id in delta.add_bids)
    for user in delta.add_users:
        # A new user joins the bidder pool of every event they bid on —
        # those events must be rescanned (evict/refill) even when the delta
        # carries no interest entries for the pairs.
        result.touched_events.update(user.bids)
    old_index = instance.index
    for first, second in delta.remove_conflicts:
        for event_id in (first, second):
            result.touched_events.add(event_id)
            vpos = old_index.event_pos.get(event_id)
            if vpos is not None:
                result.touched_users.update(
                    int(u)
                    for u in old_index.user_ids[
                        old_index.event_bidder_positions(vpos)
                    ]
                )
    # Capacity changes: a raise opens room (add moves for the user, refill
    # over the event's bidder pool); a shrink sheds pairs, whose endpoints
    # join the touched sets through the carryover below.
    for user_id, _capacity in delta.set_user_capacity:
        result.touched_users.add(user_id)
    for event_id, _capacity in delta.set_event_capacity:
        result.touched_events.add(event_id)
    # Re-weightings change which moves are improving without changing the
    # entity sets: the affected users (and, for evict consideration, the
    # affected events) must be rescanned.
    for event_id, user_id, _value in delta.interest:
        result.touched_users.add(user_id)
        result.touched_events.add(event_id)
    for user_id, _value in delta.degrees:
        result.touched_users.add(user_id)
        upos = old_index.user_pos.get(user_id)
        if upos is not None:  # a degree change re-weights every bid pair
            result.touched_events.update(
                int(e)
                for e in old_index.event_ids[old_index.user_bid_positions(upos)]
            )

    if arrangement is not None:
        carried, dropped, drop_users, drop_events = _carry_arrangement(
            instance, successor, arrangement, delta, maps
        )
        result.arrangement = carried
        result.dropped_pairs = dropped
        result.touched_users |= drop_users
        result.touched_events |= drop_events

    # Clamp to entities that exist in the successor.
    result.touched_users &= successor.user_by_id.keys()
    result.touched_events &= successor.event_by_id.keys()
    return result
