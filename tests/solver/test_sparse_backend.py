"""Tests for the sparse LP substrate: CSC matrix, sparse standard form,
dense/sparse revised-simplex parity, and the ratio-test regression."""

import numpy as np
import pytest

from repro.solver import (
    CSCMatrix,
    DenseMatrix,
    LinearProgram,
    RevisedSimplexOptions,
    Sense,
    prefer_sparse,
    scipy_available,
    solve_lp,
    solve_lp_revised_simplex,
    to_standard_form,
)
from repro.solver.simplex import min_ratio_row


def _random_coo(rng, m, n, density=0.3):
    mask = rng.random((m, n)) < density
    rows, cols = np.nonzero(mask)
    vals = rng.uniform(-2.0, 2.0, rows.size)
    dense = np.zeros((m, n))
    dense[rows, cols] = vals
    return rows, cols, vals, dense


class TestCSCMatrix:
    @pytest.mark.parametrize("seed", range(4))
    def test_roundtrip_matches_dense(self, seed):
        rng = np.random.default_rng(seed)
        m, n = int(rng.integers(1, 12)), int(rng.integers(1, 12))
        rows, cols, vals, dense = _random_coo(rng, m, n)
        csc = CSCMatrix.from_coo((m, n), rows, cols, vals)
        np.testing.assert_allclose(csc.to_dense(), dense)
        assert csc.nnz == rows.size

    def test_duplicate_triplets_are_summed(self):
        csc = CSCMatrix.from_coo(
            (2, 2), rows=[0, 0, 1], cols=[1, 1, 0], vals=[2.0, 3.0, 4.0]
        )
        np.testing.assert_allclose(csc.to_dense(), [[0.0, 5.0], [4.0, 0.0]])
        assert csc.nnz == 2

    @pytest.mark.parametrize("seed", range(4))
    def test_price_matches_dense_matvec(self, seed):
        rng = np.random.default_rng(seed)
        m, n = 7, 11
        rows, cols, vals, dense = _random_coo(rng, m, n)
        csc = CSCMatrix.from_coo((m, n), rows, cols, vals)
        duals = rng.standard_normal(m)
        for allowed in (0, 1, 5, n):
            np.testing.assert_allclose(
                csc.price(duals, allowed), duals @ dense[:, :allowed]
            )
        np.testing.assert_allclose(
            csc.price_block(duals, 3, 9), duals @ dense[:, 3:9]
        )

    def test_column_and_direction(self):
        rng = np.random.default_rng(1)
        rows, cols, vals, dense = _random_coo(rng, 5, 6, density=0.5)
        csc = CSCMatrix.from_coo((5, 6), rows, cols, vals)
        inverse = rng.standard_normal((5, 5))
        for j in range(6):
            r, v = csc.column(j)
            col = np.zeros(5)
            col[r] = v
            np.testing.assert_allclose(col, dense[:, j])
            np.testing.assert_allclose(
                csc.direction(inverse, j), inverse @ dense[:, j]
            )

    def test_gather_and_identity_extension(self):
        rng = np.random.default_rng(2)
        rows, cols, vals, dense = _random_coo(rng, 4, 6, density=0.5)
        csc = CSCMatrix.from_coo((4, 6), rows, cols, vals)
        picks = np.array([5, 0, 3, 3])
        np.testing.assert_allclose(csc.gather_dense(picks), dense[:, picks])
        ext = csc.with_identity()
        np.testing.assert_allclose(
            ext.to_dense(), np.hstack([dense, np.eye(4)])
        )

    def test_dense_wrapper_matches(self):
        rng = np.random.default_rng(3)
        dense = rng.standard_normal((4, 7))
        wrapper = DenseMatrix(dense)
        duals = rng.standard_normal(4)
        np.testing.assert_allclose(wrapper.price(duals, 5), duals @ dense[:, :5])
        rows, vals = wrapper.column(2)
        col = np.zeros(4)
        col[rows] = vals
        np.testing.assert_allclose(col, dense[:, 2])


def _random_lp(seed, free_vars=False):
    rng = np.random.default_rng(seed)
    lp = LinearProgram(maximize=bool(rng.integers(2)))
    n = int(rng.integers(3, 9))
    for j in range(n):
        kind = rng.random()
        if free_vars and kind < 0.2:
            lower, upper = -np.inf, np.inf
        elif kind < 0.4:
            lower, upper = float(rng.uniform(-3, 0)), np.inf
        elif kind < 0.6:
            lower, upper = -np.inf, float(rng.uniform(0, 3))
        else:
            lower, upper = 0.0, float(rng.uniform(1, 4))
        lp.add_variable(
            f"x{j}", lower=lower, upper=upper, objective=float(rng.uniform(-2, 2))
        )
    senses = [Sense.LE, Sense.GE, Sense.EQ]
    for _ in range(int(rng.integers(1, 5))):
        coeffs = {
            j: float(rng.uniform(-1, 1)) for j in range(n) if rng.random() < 0.7
        }
        if coeffs:
            lp.add_constraint(
                coeffs, senses[int(rng.integers(3))], float(rng.uniform(2, 6))
            )
    return lp


class TestSparseStandardForm:
    @pytest.mark.parametrize("seed", range(10))
    def test_sparse_and_dense_paths_build_the_same_matrix(self, seed):
        lp = _random_lp(seed, free_vars=True)
        dense_sf = to_standard_form(lp, sparse=False)
        sparse_sf = to_standard_form(lp, sparse=True)
        assert sparse_sf.is_sparse and not dense_sf.is_sparse
        np.testing.assert_array_equal(sparse_sf.a, dense_sf.a)
        np.testing.assert_array_equal(sparse_sf.b, dense_sf.b)
        np.testing.assert_array_equal(sparse_sf.c, dense_sf.c)
        np.testing.assert_array_equal(sparse_sf.basis_hint, dense_sf.basis_hint)
        assert sparse_sf.objective_offset == dense_sf.objective_offset

    def test_basis_hint_marks_usable_slacks(self):
        lp = LinearProgram(maximize=False)
        x = lp.add_variable("x", objective=1.0)
        lp.add_constraint({x: 1.0}, Sense.LE, 4.0)   # slack +1: usable
        lp.add_constraint({x: 1.0}, Sense.GE, 1.0)   # surplus -1: not usable
        lp.add_constraint({x: 1.0}, Sense.EQ, 2.0)   # no slack at all
        lp.add_constraint({x: -1.0}, Sense.GE, -5.0)  # row flips: slack +1
        sf = to_standard_form(lp)
        hint = sf.basis_hint
        assert hint[0] >= 0
        assert hint[1] == -1
        assert hint[2] == -1
        assert hint[3] >= 0

    def test_prefer_sparse_threshold(self):
        assert not prefer_sparse(10, 10)
        assert prefer_sparse(1000, 10_000)


class TestDenseSparseParity:
    """Same pivots, same optimum — the representation must be invisible."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_lps_agree(self, seed):
        lp = _random_lp(seed)
        dense = solve_lp_revised_simplex(lp, RevisedSimplexOptions(sparse=False))
        sparse = solve_lp_revised_simplex(lp, RevisedSimplexOptions(sparse=True))
        assert dense.status == sparse.status
        assert dense.iterations == sparse.iterations  # identical pivot path
        if dense.is_optimal:
            assert sparse.objective_value == pytest.approx(
                dense.objective_value, abs=1e-9
            )
            np.testing.assert_allclose(sparse.x, dense.x, atol=1e-7)

    @pytest.mark.parametrize("seed", range(6))
    def test_wide_packing_lps_agree(self, seed):
        rng = np.random.default_rng(seed)
        lp = LinearProgram(maximize=True)
        n, m = 60, 8
        for j in range(n):
            lp.add_variable(f"x{j}", upper=1.0, objective=float(rng.uniform(0, 1)))
        for i in range(m):
            coeffs = {j: 1.0 for j in range(n) if rng.random() < 0.3}
            if coeffs:
                lp.add_constraint(coeffs, Sense.LE, float(rng.integers(1, 5)))
        dense = solve_lp(lp, backend="revised-simplex-dense")
        sparse = solve_lp(lp, backend="revised-simplex-sparse")
        assert dense.is_optimal and sparse.is_optimal
        assert dense.iterations == sparse.iterations
        assert sparse.objective_value == pytest.approx(
            dense.objective_value, abs=1e-9
        )

    def test_benchmark_lp_parity(self):
        from repro.core.lp_formulation import build_benchmark_lp
        from repro.datagen import SyntheticConfig, generate_synthetic

        instance = generate_synthetic(
            SyntheticConfig(num_users=60, num_events=10), seed=0
        )
        bench = build_benchmark_lp(instance)
        dense = solve_lp(bench.lp, backend="revised-simplex-dense")
        sparse = solve_lp(bench.lp, backend="revised-simplex-sparse")
        tableau = solve_lp(bench.lp, backend="simplex")
        assert dense.is_optimal and sparse.is_optimal and tableau.is_optimal
        assert sparse.objective_value == pytest.approx(
            dense.objective_value, abs=1e-8
        )
        assert sparse.objective_value == pytest.approx(
            tableau.objective_value, abs=1e-6
        )
        if scipy_available():
            reference = solve_lp(bench.lp, backend="scipy")
            assert sparse.objective_value == pytest.approx(
                reference.objective_value, abs=1e-6
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_partial_pricing_toggle_reaches_same_optimum(self, seed):
        lp = _random_lp(seed)
        on = solve_lp_revised_simplex(
            lp, RevisedSimplexOptions(sparse=True, partial_pricing=True, pricing_block=2)
        )
        off = solve_lp_revised_simplex(
            lp, RevisedSimplexOptions(sparse=True, partial_pricing=False)
        )
        assert on.status == off.status
        if on.is_optimal:
            assert on.objective_value == pytest.approx(off.objective_value, abs=1e-8)


class TestRatioTestRegression:
    """The tie ratchet: ties must be anchored at the true minimum ratio."""

    def _drifting_case(self):
        # Ratios climb by 0.8*tol per row while basis indices descend, so the
        # historical loop re-anchored on every row and walked away from the
        # true minimum; only rows 0 and 1 are genuine ties of the minimum.
        tol = 1e-3
        direction = np.ones(4)
        rhs = np.array([0.0, 0.0008, 0.0016, 0.0024])
        basis = np.array([40, 30, 20, 10], dtype=np.int64)
        return direction, rhs, basis, tol

    def _legacy_ratio_test(self, direction, rhs, basis, tol):
        best_row, best_ratio = None, np.inf
        for row in range(direction.shape[0]):
            if direction[row] > tol:
                ratio = rhs[row] / direction[row]
                better = ratio < best_ratio - tol
                tie = ratio < best_ratio + tol and (
                    best_row is None or basis[row] < basis[best_row]
                )
                if better or tie:
                    best_ratio = ratio
                    best_row = row
        return best_row

    def test_legacy_loop_drifts_off_the_minimum(self):
        direction, rhs, basis, tol = self._drifting_case()
        assert self._legacy_ratio_test(direction, rhs, basis, tol) == 3

    def test_fixed_ratio_test_stays_on_the_minimum(self):
        direction, rhs, basis, tol = self._drifting_case()
        row = min_ratio_row(direction, rhs, basis, tol)
        # True minimum is row 0; row 1 is within tol of it and has the
        # smaller basis index, so the Bland tie-break picks it.
        assert row == 1
        # The pivot step from the chosen row must keep every basic value
        # feasible — the drifted row 3 would have driven rows 0-2 negative.
        step = rhs[row] / direction[row]
        assert np.all(rhs - step * direction >= -tol)

    def test_unbounded_column_returns_none(self):
        basis = np.array([0, 1], dtype=np.int64)
        assert min_ratio_row(np.array([-1.0, 0.0]), np.ones(2), basis, 1e-9) is None

    def test_unique_minimum_needs_no_tie_break(self):
        basis = np.array([5, 4, 3], dtype=np.int64)
        row = min_ratio_row(
            np.array([1.0, 2.0, 1.0]), np.array([5.0, 2.0, 4.0]), basis, 1e-9
        )
        assert row == 1
