"""Unit tests for the LP-packing algorithm (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import LPPacking, build_benchmark_lp, lp_upper_bound
from repro.core.lp_packing import REPAIR_ORDERS, LPPackingError
from repro.model import Event, IGEPAInstance, MatrixConflict, TabulatedInterest, User
from repro.social import Graph
from tests.util import random_instance, tiny_instance


class TestConfiguration:
    def test_alpha_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            LPPacking(alpha=0.0)
        with pytest.raises(ValueError, match="alpha"):
            LPPacking(alpha=1.2)

    def test_unknown_repair_order_rejected(self):
        with pytest.raises(ValueError, match="repair_order"):
            LPPacking(repair_order="sideways")

    def test_defaults_match_paper_empirical_setting(self):
        algorithm = LPPacking()
        assert algorithm.alpha == 1.0  # §IV: "We empirically set α = 1"
        assert algorithm.repair_order == "user"


class TestFeasibility:
    @pytest.mark.parametrize("alpha", [0.25, 0.5, 1.0])
    @pytest.mark.parametrize("seed", range(4))
    def test_always_feasible(self, alpha, seed):
        instance = random_instance(seed=seed)
        result = LPPacking(alpha=alpha).solve(instance, seed=seed)
        assert result.arrangement.is_feasible()

    @pytest.mark.parametrize("repair_order", REPAIR_ORDERS)
    def test_feasible_for_all_repair_orders(self, repair_order):
        instance = random_instance(seed=3)
        result = LPPacking(repair_order=repair_order).solve(instance, seed=7)
        assert result.arrangement.is_feasible()

    def test_empty_instance(self):
        instance = IGEPAInstance(
            [], [], MatrixConflict([]), TabulatedInterest({}), Graph()
        )
        result = LPPacking().solve(instance)
        assert result.utility == 0.0
        assert result.num_pairs == 0

    def test_users_with_no_bids_are_skipped(self):
        events = [Event(event_id=1, capacity=1)]
        users = [
            User(user_id=1, capacity=1, bids=(1,)),
            User(user_id=2, capacity=1, bids=()),
        ]
        instance = IGEPAInstance(
            events,
            users,
            MatrixConflict([]),
            TabulatedInterest({(1, 1): 0.8}),
            Graph(nodes=[1, 2]),
        )
        result = LPPacking().solve(instance, seed=0)
        assert result.arrangement.is_feasible()
        assert all(user_id != 2 for _, user_id in result.pairs)


class TestDeterminism:
    def test_same_seed_same_result(self):
        instance = random_instance(seed=1)
        algorithm = LPPacking()
        first = algorithm.solve(instance, seed=42)
        second = algorithm.solve(instance, seed=42)
        assert first.pairs == second.pairs
        assert first.utility == pytest.approx(second.utility)

    def test_different_seeds_can_differ(self):
        instance = random_instance(seed=1, num_users=20, num_events=8)
        algorithm = LPPacking(alpha=0.5)
        results = {
            frozenset(algorithm.solve(instance, seed=s).pairs) for s in range(10)
        }
        assert len(results) > 1  # sampling actually randomizes

    def test_constructor_seed_used_when_no_override(self):
        instance = random_instance(seed=1)
        first = LPPacking(seed=5).solve(instance)
        second = LPPacking(seed=5).solve(instance)
        assert first.pairs == second.pairs


class TestSampling:
    def test_sampling_probabilities_respected(self):
        """With a single user and one set at x* = 1, α scales the take rate."""
        events = [Event(event_id=1, capacity=1)]
        users = [User(user_id=1, capacity=1, bids=(1,))]
        instance = IGEPAInstance(
            events,
            users,
            MatrixConflict([]),
            TabulatedInterest({(1, 1): 1.0}),
            Graph(nodes=[1]),
        )
        algorithm = LPPacking(alpha=0.5)
        taken = sum(
            1 for s in range(400) if algorithm.solve(instance, seed=s).num_pairs
        )
        # Binomial(400, 0.5): mean 200, std 10 -> 5 sigma band.
        assert 150 <= taken <= 250

    def test_alpha_one_with_integral_lp_keeps_everything(self):
        """When the LP optimum is integral and capacities are loose, α = 1
        reproduces the LP solution exactly."""
        events = [Event(event_id=i, capacity=5) for i in (1, 2)]
        users = [
            User(user_id=1, capacity=1, bids=(1,)),
            User(user_id=2, capacity=1, bids=(2,)),
        ]
        instance = IGEPAInstance(
            events,
            users,
            MatrixConflict([]),
            TabulatedInterest({(1, 1): 0.9, (2, 2): 0.8}),
            Graph(nodes=[1, 2]),
        )
        result = LPPacking(alpha=1.0).solve(instance, seed=0)
        assert result.pairs == {(1, 1), (2, 2)}
        assert result.utility == pytest.approx(lp_upper_bound(instance))

    def test_sample_sets_handles_probability_overflow(self):
        """Solver noise pushing Σ α·x* above 1 must rescale, not crash."""
        instance = tiny_instance()
        benchmark = build_benchmark_lp(instance)
        algorithm = LPPacking(alpha=1.0)
        x = np.zeros(benchmark.lp.num_variables)
        indices = benchmark.by_user[11]
        x[indices] = (1.0 + 1e-9) / len(indices)  # sums to slightly above 1
        sampled = algorithm.sample_sets(benchmark, x, np.random.default_rng(0))
        assert set(sampled) <= {11}


class TestRepair:
    def _crowded_instance(self):
        """Three users all bidding the same capacity-1 event."""
        events = [Event(event_id=1, capacity=1)]
        users = [User(user_id=u, capacity=1, bids=(1,)) for u in (1, 2, 3)]
        return IGEPAInstance(
            events,
            users,
            MatrixConflict([]),
            TabulatedInterest({(1, 1): 0.9, (1, 2): 0.5, (1, 3): 0.1}),
            Graph(nodes=[1, 2, 3]),
        )

    def test_repair_enforces_event_capacity(self):
        instance = self._crowded_instance()
        algorithm = LPPacking(alpha=1.0)
        sampled = {1: (1,), 2: (1,), 3: (1,)}
        survivors = algorithm.repair(instance, sampled, np.random.default_rng(0))
        assert len(survivors) == 1

    def test_user_order_repair_keeps_first_user(self):
        instance = self._crowded_instance()
        algorithm = LPPacking(repair_order="user")
        survivors = algorithm.repair(
            instance, {2: (1,), 1: (1,), 3: (1,)}, np.random.default_rng(0)
        )
        assert survivors == [(1, 1)]  # instance user order: 1, 2, 3

    def test_weight_order_repair_keeps_heaviest(self):
        instance = self._crowded_instance()
        algorithm = LPPacking(repair_order="weight")
        survivors = algorithm.repair(
            instance, {3: (1,), 2: (1,), 1: (1,)}, np.random.default_rng(0)
        )
        assert survivors == [(1, 1)]  # user 1 has interest 0.9

    def test_random_order_repair_varies(self):
        instance = self._crowded_instance()
        algorithm = LPPacking(repair_order="random")
        sampled = {1: (1,), 2: (1,), 3: (1,)}
        kept = {
            algorithm.repair(instance, sampled, np.random.default_rng(s))[0][1]
            for s in range(30)
        }
        assert len(kept) > 1

    def test_repair_no_violations_is_identity(self):
        instance = tiny_instance()
        algorithm = LPPacking()
        sampled = {11: (1, 3), 13: (3,)}
        survivors = algorithm.repair(instance, sampled, np.random.default_rng(0))
        assert sorted(survivors) == [(1, 11), (3, 11), (3, 13)]


class TestLPCache:
    def test_cache_hit_on_same_instance(self):
        instance = random_instance(seed=1)
        algorithm = LPPacking()
        algorithm.solve(instance, seed=0)
        second = algorithm.solve(instance, seed=1)
        assert second.details["lp_backend"] == "cache"

    def test_cache_disabled(self):
        instance = random_instance(seed=1)
        algorithm = LPPacking(cache_lp=False)
        algorithm.solve(instance, seed=0)
        second = algorithm.solve(instance, seed=1)
        assert second.details["lp_backend"] != "cache"

    def test_no_stale_hit_after_instance_is_garbage_collected(self):
        """Regression: CPython reuses the ids of collected objects, so an
        id()-keyed cache can serve instance B the LP solution of a dead
        instance A.  The weak-keyed cache must never do that — repeated
        fresh-instance runs must match fresh-algorithm runs exactly."""
        import gc

        algorithm = LPPacking()
        cached_utilities = []
        for seed in range(6):
            instance = random_instance(seed=seed, num_users=20, num_events=8)
            cached_utilities.append(algorithm.solve(instance, seed=0).utility)
            del instance
            gc.collect()
        fresh_utilities = [
            LPPacking().solve(
                random_instance(seed=seed, num_users=20, num_events=8), seed=0
            ).utility
            for seed in range(6)
        ]
        assert cached_utilities == pytest.approx(fresh_utilities)

    def test_cache_entry_released_with_instance(self):
        import gc

        algorithm = LPPacking()
        instance = random_instance(seed=2)
        algorithm.solve(instance, seed=0)
        assert len(algorithm._lp_cache) == 1
        del instance
        gc.collect()
        assert len(algorithm._lp_cache) == 0


class TestDiagnostics:
    def test_details_fields(self):
        instance = random_instance(seed=2)
        result = LPPacking().solve(instance, seed=0)
        details = result.details
        assert details["lp_objective"] >= result.utility - 1e-9
        assert details["num_variables"] > 0
        assert details["num_sampled_pairs"] >= details["num_surviving_pairs"]
        assert details["num_surviving_pairs"] == result.num_pairs
        assert details["alpha"] == 1.0
        assert details["lp_backend"]

    def test_unsolvable_backend_raises_lp_packing_error(self):
        instance = random_instance(seed=2, num_users=30, num_events=10)
        from repro.solver.simplex import SimplexOptions

        algorithm = LPPacking(lp_backend="simplex")

        # Force an iteration-limit failure by monkeypatching options through
        # a tiny backend wrapper.
        import repro.core.lp_packing as module

        original = module.solve_lp

        def failing_solve(lp, backend="auto", **kwargs):
            from repro.solver.result import LPSolution, SolveStatus

            return LPSolution(SolveStatus.ITERATION_LIMIT, backend="stub")

        module.solve_lp = failing_solve
        try:
            with pytest.raises(LPPackingError, match="iteration_limit"):
                algorithm.solve(instance, seed=0)
        finally:
            module.solve_lp = original


class TestQuality:
    """LP-packing with α = 1 should beat or match the random baselines."""

    def test_utility_never_exceeds_lp_bound(self):
        for seed in range(5):
            instance = random_instance(seed=seed)
            result = LPPacking().solve(instance, seed=seed)
            assert result.utility <= lp_upper_bound(instance) + 1e-7

    def test_mean_utility_beats_random_baselines(self):
        from repro.core import RandomU, RandomV

        instance = random_instance(seed=9, num_users=25, num_events=8)
        reps = 30
        lp_mean = np.mean(
            [LPPacking().solve(instance, seed=s).utility for s in range(reps)]
        )
        ru_mean = np.mean(
            [RandomU().solve(instance, seed=s).utility for s in range(reps)]
        )
        rv_mean = np.mean(
            [RandomV().solve(instance, seed=s).utility for s in range(reps)]
        )
        assert lp_mean >= ru_mean * 0.95
        assert lp_mean >= rv_mean * 0.95
