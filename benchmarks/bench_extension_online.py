"""Extension: online IGEPA (irrevocable assignment at user arrival).

Measures the price of online-ness — the gap between online algorithms over
random arrival orders and the offline LP bound — plus the offline
LP-packing reference on the same instance.
"""

from benchmarks.conftest import BENCH_SEED, write_report
from repro.core import LPPacking, OnlineGreedy, OnlineRandom, competitive_ratio, lp_upper_bound
from repro.datagen import SyntheticConfig, generate_synthetic

RUNS = 10
CONFIG = SyntheticConfig(num_events=30, num_users=300, max_event_capacity=5)


def _run_comparison():
    instance = generate_synthetic(CONFIG, seed=BENCH_SEED)
    bound = lp_upper_bound(instance)
    offline = LPPacking(alpha=1.0).solve(instance, seed=0).utility
    greedy = competitive_ratio(instance, OnlineGreedy(), repetitions=RUNS, seed=0)
    random_online = competitive_ratio(
        instance, OnlineRandom(), repetitions=RUNS, seed=0
    )
    return bound, offline, greedy, random_online


def _run_cache_microbench():
    """Before/after the admissible-set cache, counted not timed.

    The same users are served across all repetitions, so from repetition
    two onward every enumeration should come from the cache (nothing
    churns between runs).  Counting enumerations instead of wall time
    keeps the assertion load-independent.
    """
    instance = generate_synthetic(CONFIG, seed=BENCH_SEED)
    cached = OnlineGreedy(cache_admissible=True)
    uncached = OnlineGreedy(cache_admissible=False)
    with_cache = competitive_ratio(instance, cached, repetitions=RUNS, seed=0)
    without_cache = competitive_ratio(instance, uncached, repetitions=RUNS, seed=0)
    return cached, uncached, with_cache, without_cache


def bench_extension_online(bench_once):
    bound, offline, greedy, random_online = bench_once(_run_comparison)

    assert greedy["mean_utility"] <= bound + 1e-7
    assert greedy["mean_ratio"] >= random_online["mean_ratio"] * 0.98
    # Online greedy should retain a large fraction of the offline value on
    # these workloads (no adversarial arrival order).
    assert greedy["mean_ratio"] >= 0.5

    # Count-based, not timed — pytest-benchmark allows one timed call per
    # test, and enumeration counts are what the cache contract promises.
    cached, uncached, with_cache, without_cache = _run_cache_microbench()
    # Identical decisions: the cache may only skip recomputation.
    assert with_cache["utilities"] == without_cache["utilities"]
    assert uncached.cache_hits == 0 and uncached.cache_misses == 0
    # Every user enumerates once; repetitions 2..N hit the memoized sets.
    assert cached.cache_misses == CONFIG.num_users
    assert cached.cache_hits == (RUNS - 1) * CONFIG.num_users
    enumerations_saved = cached.cache_hits / (
        cached.cache_hits + cached.cache_misses
    )

    lines = [
        f"Extension: online arrivals ({RUNS} random orders; offline LP* = {bound:.2f})",
        f"{'algorithm':>16} {'mean utility':>13} {'mean vs LP*':>12} {'worst vs LP*':>13}",
        f"{'offline lp-packing':>16} {offline:>13.2f} {offline / bound:>11.1%} {'-':>13}",
    ]
    for name, report in (("online-greedy", greedy), ("online-random", random_online)):
        lines.append(
            f"{name:>16} {report['mean_utility']:>13.2f} "
            f"{report['mean_ratio']:>11.1%} {report['worst_ratio']:>12.1%}"
        )
    lines.append(
        f"admissible-set cache: {cached.cache_misses} enumerations with cache "
        f"vs {RUNS * CONFIG.num_users} without "
        f"({enumerations_saved:.1%} saved, identical utilities)"
    )
    write_report("extension_online", "\n".join(lines))
