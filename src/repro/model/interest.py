"""Interest functions ``SI(l_v, l_u) ∈ [0, 1]`` (Definition 5).

The paper's real-data pipeline computes interest "based on their attributes
as in [4]" (She et al., ICDE 2015), which uses the similarity of event/user
attribute vectors — realized here as :class:`CosineInterest`.  The synthetic
pipeline samples interest values uniformly — realized as
:class:`TabulatedInterest` filled by the generator.  :class:`JaccardInterest`
covers category-tag data.

Every implementation guarantees values in ``[0, 1]``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping

import numpy as np

from repro.model.entities import Event, User


class InterestFunction(ABC):
    """Interface for SI: (event, user) -> [0, 1]."""

    @abstractmethod
    def interest(self, event: Event, user: User) -> float:
        """The user's interest in the event, in ``[0, 1]``."""

    def __call__(self, event: Event, user: User) -> float:
        return self.interest(event, user)

    def to_dict(self) -> dict:
        """JSON-serializable representation (see :func:`interest_from_dict`)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support serialization"
        )


class CosineInterest(InterestFunction):
    """Cosine similarity of the attribute vectors, clipped to ``[0, 1]``.

    Vectors of unequal length or zero norm yield interest 0 — a user with no
    attribute profile expresses no measurable interest.
    """

    def interest(self, event: Event, user: User) -> float:
        a, b = event.attributes, user.attributes
        if a.shape != b.shape or a.size == 0:
            return 0.0
        norm = float(np.linalg.norm(a) * np.linalg.norm(b))
        if norm == 0.0:
            return 0.0
        return float(np.clip(float(a @ b) / norm, 0.0, 1.0))

    def to_dict(self) -> dict:
        return {"kind": "cosine"}


class JaccardInterest(InterestFunction):
    """Jaccard similarity of the category tag sets.

    ``|categories_v ∩ categories_u| / |categories_v ∪ categories_u|``; 0 when
    both sets are empty.
    """

    def interest(self, event: Event, user: User) -> float:
        union = event.categories | user.categories
        if not union:
            return 0.0
        return len(event.categories & user.categories) / len(union)

    def to_dict(self) -> dict:
        return {"kind": "jaccard"}


class TabulatedInterest(InterestFunction):
    """Explicit interest values keyed by ``(event_id, user_id)``.

    Used by the synthetic generator ("the interest values of users in events
    are uniformly sampled").  Missing pairs default to ``default`` (0.0),
    covering non-bid pairs that are never queried by feasible arrangements.

    Raises:
        ValueError: if any stored value is outside ``[0, 1]``.
    """

    def __init__(
        self, values: Mapping[tuple[int, int], float], default: float = 0.0
    ) -> None:
        self._values: dict[tuple[int, int], float] = {}
        for (event_id, user_id), value in values.items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"interest for event {event_id}, user {user_id} is {value}, "
                    "expected a value in [0, 1]"
                )
            self._values[(int(event_id), int(user_id))] = float(value)
        if not 0.0 <= default <= 1.0:
            raise ValueError(f"default interest {default} outside [0, 1]")
        self.default = float(default)

    @classmethod
    def _from_trusted(
        cls, values: dict[tuple[int, int], float], default: float
    ) -> "TabulatedInterest":
        """Internal: wrap an already-validated table without re-checking.

        Delta maintenance merges thousands of validated entries per batch;
        re-running the range check on every carry-over would dominate the
        merge.  Callers must pass int-keyed, float-valued, in-range data.
        """
        interest = cls.__new__(cls)
        interest._values = values
        interest.default = default
        return interest

    def interest(self, event: Event, user: User) -> float:
        return self._values.get((event.event_id, user.user_id), self.default)

    def items(self) -> dict[tuple[int, int], float]:
        """A copy of the stored ``(event_id, user_id) -> value`` table.

        Delta maintenance (:mod:`repro.model.delta`) derives a successor
        table from it when bids churn.
        """
        return dict(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def to_dict(self) -> dict:
        return {
            "kind": "tabulated",
            "default": self.default,
            "values": [
                [event_id, user_id, value]
                for (event_id, user_id), value in sorted(self._values.items())
            ],
        }


class ScaledDotInterest(InterestFunction):
    """Dot product of attribute vectors squashed into ``[0, 1]``.

    ``SI = clip(a @ b, 0, 1)`` — appropriate when attribute vectors are
    normalized topic distributions (each sums to 1), where the dot product is
    the probability two topic draws coincide.
    """

    def interest(self, event: Event, user: User) -> float:
        a, b = event.attributes, user.attributes
        if a.shape != b.shape or a.size == 0:
            return 0.0
        return float(np.clip(float(a @ b), 0.0, 1.0))

    def to_dict(self) -> dict:
        return {"kind": "scaled-dot"}


def interest_from_dict(payload: dict) -> InterestFunction:
    """Inverse of the ``to_dict`` methods above."""
    kind = payload.get("kind")
    if kind == "cosine":
        return CosineInterest()
    if kind == "jaccard":
        return JaccardInterest()
    if kind == "scaled-dot":
        return ScaledDotInterest()
    if kind == "tabulated":
        values = {
            (int(event_id), int(user_id)): float(value)
            for event_id, user_id, value in payload["values"]
        }
        return TabulatedInterest(values, default=payload.get("default", 0.0))
    raise ValueError(f"unknown interest function kind {kind!r}")
