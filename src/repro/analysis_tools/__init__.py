"""Static analysis + runtime sanitizers guarding the array/columnar contracts.

* ``igepa lint`` / ``python -m repro.analysis_tools`` — the AST-based
  invariant checker (:mod:`repro.analysis_tools.engine` drives the rules in
  :mod:`repro.analysis_tools.rules`, codes IGP001-IGP008).
* :mod:`repro.analysis_tools.sanitize` — the runtime side: frozen store /
  index arrays and CSR invariant checks behind ``IGEPA_SANITIZE=1``.
"""

from repro.analysis_tools.engine import (
    Finding,
    Rule,
    default_rules,
    format_json,
    format_text,
    lint_file,
    lint_paths,
    lint_source,
    main,
)
from repro.analysis_tools.rules import ALL_RULES
from repro.analysis_tools.sanitize import (
    SanitizeError,
    check_csr_invariants,
    check_store_invariants,
    freeze_index_arrays,
    freeze_store_arrays,
    sanitize_enabled,
    sanitize_index,
    sanitize_store,
)

__all__ = [
    "Finding",
    "Rule",
    "ALL_RULES",
    "default_rules",
    "lint_source",
    "lint_file",
    "lint_paths",
    "format_text",
    "format_json",
    "main",
    "SanitizeError",
    "sanitize_enabled",
    "sanitize_store",
    "sanitize_index",
    "freeze_store_arrays",
    "freeze_index_arrays",
    "check_csr_invariants",
    "check_store_invariants",
]
