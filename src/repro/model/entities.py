"""Events and users (Definitions 1 and 2 of the paper).

An event carries a capacity ``c_v``, an attribute vector ``l_v`` and —
implicitly, via the users' bid lists — a bidder set ``N_v``.  A user carries
a capacity ``c_u``, an attribute vector ``l_u`` and a bid set ``N_u``.

The attribute vector is split into the pieces the paper says it contains:

* ``attributes`` — the numeric part used by interest functions
  (e.g. category weights);
* ``start_time`` / ``duration`` — the temporal part used by time-overlap
  conflict functions (optional; synthetic instances may instead use an
  explicit conflict matrix);
* ``categories`` — the tag part used by Jaccard-style interest.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np


def _as_attribute_vector(values: "np.ndarray | Sequence[float]") -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError(f"attribute vector must be 1-D, got shape {array.shape}")
    return array


@dataclass(frozen=True)
class Event:
    """An EBSN event (Definition 1).

    Attributes:
        event_id: unique identifier within an instance.
        capacity: maximum number of attendees ``c_v`` (>= 0).
        attributes: numeric attribute vector ``l_v`` for interest computation.
        start_time: optional start timestamp (time-overlap conflicts).
        duration: optional duration (> 0 when ``start_time`` is set).
        categories: optional category tags for set-based interest.
    """

    event_id: int
    capacity: int
    attributes: np.ndarray = field(default_factory=lambda: np.empty(0))
    start_time: float | None = None
    duration: float | None = None
    categories: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(f"event {self.event_id}: capacity must be >= 0")
        object.__setattr__(self, "attributes", _as_attribute_vector(self.attributes))
        object.__setattr__(self, "categories", frozenset(self.categories))
        if (self.start_time is None) != (self.duration is None):
            raise ValueError(
                f"event {self.event_id}: start_time and duration must be set together"
            )
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"event {self.event_id}: duration must be > 0")

    @property
    def end_time(self) -> float | None:
        """Exclusive end timestamp, when temporal attributes are set."""
        if self.start_time is None or self.duration is None:
            return None
        return self.start_time + self.duration

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.event_id == other.event_id
            and self.capacity == other.capacity
            and np.array_equal(self.attributes, other.attributes)
            and self.start_time == other.start_time
            and self.duration == other.duration
            and self.categories == other.categories
        )

    def __hash__(self) -> int:
        return hash(("event", self.event_id))


@dataclass(frozen=True)
class User:
    """An EBSN user (Definition 2).

    Attributes:
        user_id: unique identifier within an instance.
        capacity: maximum number of events ``c_u`` the user can attend (>= 0).
        attributes: numeric attribute vector ``l_u`` for interest computation.
        bids: the bid set ``N_u`` as event ids — the only events this user may
            be assigned (Bid Constraint of Definition 4).
        categories: optional category tags for set-based interest.
    """

    user_id: int
    capacity: int
    attributes: np.ndarray = field(default_factory=lambda: np.empty(0))
    bids: tuple[int, ...] = ()
    categories: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(f"user {self.user_id}: capacity must be >= 0")
        object.__setattr__(self, "attributes", _as_attribute_vector(self.attributes))
        object.__setattr__(self, "categories", frozenset(self.categories))
        bids = tuple(int(b) for b in self.bids)
        if len(set(bids)) != len(bids):
            raise ValueError(f"user {self.user_id}: duplicate bids {bids}")
        object.__setattr__(self, "bids", bids)

    @property
    def bid_set(self) -> frozenset[int]:
        """``N_u`` as a set for membership tests."""
        return frozenset(self.bids)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, User):
            return NotImplemented
        return (
            self.user_id == other.user_id
            and self.capacity == other.capacity
            and np.array_equal(self.attributes, other.attributes)
            and self.bids == other.bids
            and self.categories == other.categories
        )

    def __hash__(self) -> int:
        return hash(("user", self.user_id))
