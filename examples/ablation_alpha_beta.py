"""Ablation walkthrough: the α and β parameters of IGEPA / LP-packing.

* α scales the sampling probabilities in Algorithm 1.  Theory picks α = 1/2
  (maximizing the α(1-α) bound); the paper's experiments use α = 1.  This
  script shows the empirical utility across α and where the theoretical
  bound sits.
* β balances interest against social interaction in the utility.  The script
  decomposes the utility of LP-packing arrangements at several β values.

Run:  python examples/ablation_alpha_beta.py
"""

import numpy as np

from repro import (
    LPPacking,
    SyntheticConfig,
    generate_synthetic,
    lp_upper_bound,
)

CONFIG = SyntheticConfig(num_events=30, num_users=200)
REPS = 20


def alpha_sweep() -> None:
    instance = generate_synthetic(CONFIG, seed=3)
    bound = lp_upper_bound(instance)
    print(f"α sweep on {instance.name} (LP* = {bound:.2f}, {REPS} runs each)")
    print(f"{'α':>6} {'mean utility':>13} {'ratio vs LP*':>13} {'α(1-α) bound':>13}")
    for alpha in (0.25, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0):
        algorithm = LPPacking(alpha=alpha)
        utilities = [
            algorithm.solve(instance, seed=seed).utility for seed in range(REPS)
        ]
        mean = float(np.mean(utilities))
        print(
            f"{alpha:>6.2f} {mean:>13.2f} {mean / bound:>12.1%} "
            f"{alpha * (1 - alpha):>12.1%}"
        )
    print(
        "note: the ratio decreases only via repair losses; with loose event\n"
        "capacities α = 1 dominates, which is why the paper uses it.\n"
    )


def beta_sweep() -> None:
    print("β sweep: utility decomposition of LP-packing arrangements")
    print(
        f"{'β':>6} {'utility':>10} {'Σ interest':>12} {'Σ interaction':>14} "
        f"{'pairs':>7}"
    )
    for beta in (0.0, 0.25, 0.5, 0.75, 1.0):
        instance = generate_synthetic(CONFIG.with_overrides(beta=beta), seed=3)
        result = LPPacking(alpha=1.0).solve(instance, seed=0)
        arrangement = result.arrangement
        print(
            f"{beta:>6.2f} {result.utility:>10.2f} "
            f"{arrangement.interest_total():>12.2f} "
            f"{arrangement.interaction_total():>14.2f} {result.num_pairs:>7}"
        )
    print(
        "note: at β = 0 the arrangement chases socially active users only;\n"
        "at β = 1 IGEPA degenerates to the conflict-aware GEACC objective."
    )


def main() -> None:
    alpha_sweep()
    beta_sweep()


if __name__ == "__main__":
    main()
