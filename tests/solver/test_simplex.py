"""Unit tests for both from-scratch simplex backends.

Every test is parametrized over the tableau and revised implementations —
they must agree with each other (and, in the cross-check module, with scipy).
"""

import math

import numpy as np
import pytest

from repro.solver import (
    LinearProgram,
    RevisedSimplexOptions,
    Sense,
    SimplexOptions,
    SolveStatus,
    solve_lp_revised_simplex,
    solve_lp_simplex,
)

SOLVERS = [
    pytest.param(solve_lp_simplex, id="tableau"),
    pytest.param(solve_lp_revised_simplex, id="revised"),
]


@pytest.fixture(params=SOLVERS)
def solver(request):
    return request.param


class TestTextbookProblems:
    def test_two_variable_max(self, solver):
        # max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> opt 36 at (2, 6)
        lp = LinearProgram(maximize=True)
        x = lp.add_variable("x", objective=3.0)
        y = lp.add_variable("y", objective=5.0)
        lp.add_constraint({x: 1.0}, Sense.LE, 4.0)
        lp.add_constraint({y: 2.0}, Sense.LE, 12.0)
        lp.add_constraint({x: 3.0, y: 2.0}, Sense.LE, 18.0)
        solution = solver(lp)
        assert solution.is_optimal
        assert solution.objective_value == pytest.approx(36.0)
        assert solution.x == pytest.approx([2.0, 6.0])

    def test_minimization(self, solver):
        # min 2x + 3y  s.t. x + y >= 4, x >= 1 -> opt at (4, 0) value 8
        lp = LinearProgram(maximize=False)
        x = lp.add_variable("x", objective=2.0)
        y = lp.add_variable("y", objective=3.0)
        lp.add_constraint({x: 1.0, y: 1.0}, Sense.GE, 4.0)
        lp.add_constraint({x: 1.0}, Sense.GE, 1.0)
        solution = solver(lp)
        assert solution.is_optimal
        assert solution.objective_value == pytest.approx(8.0)

    def test_equality_constraints(self, solver):
        # max x + y  s.t. x + y == 5, x <= 3 -> value 5
        lp = LinearProgram(maximize=True)
        x = lp.add_variable("x", objective=1.0)
        y = lp.add_variable("y", objective=1.0)
        lp.add_constraint({x: 1.0, y: 1.0}, Sense.EQ, 5.0)
        lp.add_constraint({x: 1.0}, Sense.LE, 3.0)
        solution = solver(lp)
        assert solution.is_optimal
        assert solution.objective_value == pytest.approx(5.0)

    def test_degenerate_lp(self, solver):
        # Multiple constraints meeting at the optimum (degeneracy).
        lp = LinearProgram(maximize=True)
        x = lp.add_variable("x", objective=1.0)
        y = lp.add_variable("y", objective=1.0)
        lp.add_constraint({x: 1.0, y: 1.0}, Sense.LE, 2.0)
        lp.add_constraint({x: 1.0}, Sense.LE, 1.0)
        lp.add_constraint({y: 1.0}, Sense.LE, 1.0)
        lp.add_constraint({x: 2.0, y: 1.0}, Sense.LE, 3.0)
        solution = solver(lp)
        assert solution.is_optimal
        assert solution.objective_value == pytest.approx(2.0)

    def test_beale_cycling_example(self, solver):
        """Beale's classic cycling LP must terminate (Bland fallback)."""
        lp = LinearProgram(maximize=False)
        x1 = lp.add_variable("x1", objective=-0.75)
        x2 = lp.add_variable("x2", objective=150.0)
        x3 = lp.add_variable("x3", objective=-0.02)
        x4 = lp.add_variable("x4", objective=6.0)
        lp.add_constraint({x1: 0.25, x2: -60.0, x3: -0.04, x4: 9.0}, Sense.LE, 0.0)
        lp.add_constraint({x1: 0.5, x2: -90.0, x3: -0.02, x4: 3.0}, Sense.LE, 0.0)
        lp.add_constraint({x3: 1.0}, Sense.LE, 1.0)
        solution = solver(lp)
        assert solution.is_optimal
        assert solution.objective_value == pytest.approx(-0.05)


class TestStatuses:
    def test_infeasible(self, solver):
        lp = LinearProgram(maximize=True)
        x = lp.add_variable("x", objective=1.0)
        lp.add_constraint({x: 1.0}, Sense.LE, 1.0)
        lp.add_constraint({x: 1.0}, Sense.GE, 2.0)
        assert solver(lp).status is SolveStatus.INFEASIBLE

    def test_unbounded(self, solver):
        lp = LinearProgram(maximize=True)
        x = lp.add_variable("x", objective=1.0)
        y = lp.add_variable("y", objective=0.0)
        lp.add_constraint({y: 1.0}, Sense.LE, 1.0)
        assert solver(lp).status is SolveStatus.UNBOUNDED

    def test_unbounded_minimization_with_free_variable(self, solver):
        lp = LinearProgram(maximize=False)
        x = lp.add_variable("x", lower=-math.inf, objective=1.0)
        y = lp.add_variable("y")
        lp.add_constraint({y: 1.0}, Sense.LE, 5.0)
        assert solver(lp).status is SolveStatus.UNBOUNDED

    def test_no_constraints_bounded(self, solver):
        lp = LinearProgram(maximize=False)
        lp.add_variable("x", objective=2.0)
        solution = solver(lp)
        assert solution.is_optimal
        assert solution.objective_value == pytest.approx(0.0)

    def test_no_constraints_unbounded(self, solver):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=2.0)
        assert solver(lp).status is SolveStatus.UNBOUNDED

    def test_iteration_limit_reported(self):
        lp = LinearProgram(maximize=True)
        variables = [lp.add_variable(f"x{i}", objective=1.0) for i in range(10)]
        for i in range(9):
            lp.add_constraint(
                {variables[i]: 1.0, variables[i + 1]: 1.0}, Sense.LE, 1.0
            )
        options = SimplexOptions(max_iterations=1)
        solution = solve_lp_simplex(lp, options)
        assert solution.status is SolveStatus.ITERATION_LIMIT


class TestBoundsHandling:
    def test_variable_bounds_respected(self, solver):
        lp = LinearProgram(maximize=True)
        x = lp.add_variable("x", lower=1.0, upper=3.0, objective=1.0)
        y = lp.add_variable("y", lower=0.5, upper=2.0, objective=1.0)
        lp.add_constraint({x: 1.0, y: 1.0}, Sense.LE, 4.0)
        solution = solver(lp)
        assert solution.is_optimal
        assert solution.objective_value == pytest.approx(4.0)
        assert 1.0 - 1e-7 <= solution.x[0] <= 3.0 + 1e-7
        assert 0.5 - 1e-7 <= solution.x[1] <= 2.0 + 1e-7

    def test_negative_lower_bounds(self, solver):
        # min x + y with x, y >= -2 and x + y >= -3.
        lp = LinearProgram(maximize=False)
        x = lp.add_variable("x", lower=-2.0, objective=1.0)
        y = lp.add_variable("y", lower=-2.0, objective=1.0)
        lp.add_constraint({x: 1.0, y: 1.0}, Sense.GE, -3.0)
        solution = solver(lp)
        assert solution.is_optimal
        assert solution.objective_value == pytest.approx(-3.0)

    def test_free_variable_reaches_negative_optimum(self, solver):
        lp = LinearProgram(maximize=False)
        x = lp.add_variable("x", lower=-math.inf, objective=1.0)
        lp.add_constraint({x: 1.0}, Sense.GE, -10.0)
        solution = solver(lp)
        assert solution.is_optimal
        assert solution.objective_value == pytest.approx(-10.0)
        assert solution.x[0] == pytest.approx(-10.0)

    def test_fixed_variable(self, solver):
        lp = LinearProgram(maximize=True)
        x = lp.add_variable("x", lower=2.0, upper=2.0, objective=5.0)
        y = lp.add_variable("y", upper=1.0, objective=1.0)
        lp.add_constraint({x: 1.0, y: 1.0}, Sense.LE, 10.0)
        solution = solver(lp)
        assert solution.is_optimal
        assert solution.objective_value == pytest.approx(11.0)
        assert solution.x[0] == pytest.approx(2.0)


class TestSolutionValidity:
    """The returned point must always satisfy the program it solved."""

    def test_solution_is_feasible_for_original_program(self, solver):
        rng = np.random.default_rng(0)
        for trial in range(20):
            lp = LinearProgram(maximize=True)
            n = int(rng.integers(2, 6))
            for j in range(n):
                lp.add_variable(f"x{j}", upper=float(rng.uniform(1, 5)),
                                objective=float(rng.uniform(0, 3)))
            for _ in range(int(rng.integers(1, 5))):
                coeffs = {
                    j: float(rng.uniform(0.1, 2.0))
                    for j in range(n)
                    if rng.random() < 0.7
                }
                if coeffs:
                    lp.add_constraint(coeffs, Sense.LE, float(rng.uniform(2, 10)))
            solution = solver(lp)
            assert solution.is_optimal, f"trial {trial} not optimal"
            assert lp.is_feasible(solution.x), f"trial {trial} infeasible point"
            assert solution.objective_value == pytest.approx(
                lp.objective_value(solution.x)
            )

    def test_revised_refactorization_consistency(self):
        """Frequent refactorization must not change the answer."""
        lp = LinearProgram(maximize=True)
        variables = [lp.add_variable(f"x{j}", objective=float(j + 1)) for j in range(8)]
        for i in range(8):
            coeffs = {variables[j]: 1.0 for j in range(8) if (i + j) % 3 != 0}
            lp.add_constraint(coeffs, Sense.LE, float(5 + i))
        every_pivot = solve_lp_revised_simplex(
            lp, RevisedSimplexOptions(refactor_every=1)
        )
        rarely = solve_lp_revised_simplex(
            lp, RevisedSimplexOptions(refactor_every=10_000)
        )
        assert every_pivot.objective_value == pytest.approx(rarely.objective_value)
