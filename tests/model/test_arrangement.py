"""Unit tests for Arrangement: feasibility constraints and utility."""

import pytest

from repro.model import Arrangement, ArrangementError
from tests.util import tiny_instance


@pytest.fixture
def instance():
    return tiny_instance()


class TestBidConstraint:
    def test_assigned_event_must_be_bid(self, instance):
        arrangement = Arrangement(instance)
        with pytest.raises(ArrangementError, match="bid constraint"):
            arrangement.add(3, 10)  # user 10 bids only for 1, 2

    def test_bid_event_is_accepted(self, instance):
        arrangement = Arrangement(instance)
        arrangement.add(1, 10)
        assert (1, 10) in arrangement


class TestCapacityConstraints:
    def test_event_capacity_enforced(self, instance):
        arrangement = Arrangement(instance)
        arrangement.add(2, 10)  # event 2 has capacity 1
        with pytest.raises(ArrangementError, match="event 2 is full"):
            arrangement.add(2, 12)

    def test_user_capacity_enforced(self, instance):
        arrangement = Arrangement(instance)
        arrangement.add(1, 10)  # user 10 has capacity 1
        with pytest.raises(ArrangementError, match="user 10 is at capacity"):
            arrangement.add(2, 10)

    def test_capacity_frees_after_removal(self, instance):
        arrangement = Arrangement(instance)
        arrangement.add(2, 10)
        arrangement.remove(2, 10)
        arrangement.add(2, 12)  # capacity 1 slot reusable
        assert (2, 12) in arrangement


class TestConflictConstraint:
    def test_conflicting_events_rejected_for_same_user(self, instance):
        # Events 1 and 2 conflict; user 12 bids {2, 3} so use a user who bids both.
        arrangement = Arrangement(instance)
        arrangement.add(1, 11)
        arrangement.add(3, 11)  # 1 and 3 do not conflict
        assert len(arrangement) == 2

    def test_conflict_detected(self, instance):
        # Give user 10 capacity 2 via a fresh check: bids (1, 2) conflict.
        arrangement = Arrangement(instance)
        arrangement.add(1, 10)
        # user 10 capacity is 1, so capacity triggers first; use user 12 for
        # the conflict path instead: bids (2, 3), no conflict there, so build
        # a direct conflict via user 11? 11 bids (1, 3) non-conflicting.
        # The tiny instance has only users 10 with both conflicting bids, so
        # check can_add reports False for the second conflicting event.
        assert not arrangement.can_add(2, 10)

    def test_conflict_error_message(self):
        from repro.model import Event, IGEPAInstance, MatrixConflict, TabulatedInterest, User
        from repro.social import Graph

        events = [Event(event_id=1, capacity=2), Event(event_id=2, capacity=2)]
        users = [User(user_id=5, capacity=2, bids=(1, 2))]
        instance = IGEPAInstance(
            events,
            users,
            MatrixConflict([(1, 2)]),
            TabulatedInterest({(1, 5): 0.5, (2, 5): 0.5}),
            Graph(nodes=[5]),
        )
        arrangement = Arrangement(instance)
        arrangement.add(1, 5)
        with pytest.raises(ArrangementError, match="conflict constraint"):
            arrangement.add(2, 5)


class TestMutationBookkeeping:
    def test_duplicate_pair_rejected(self, instance):
        arrangement = Arrangement(instance)
        arrangement.add(1, 10)
        with pytest.raises(ArrangementError, match="already present"):
            arrangement.add(1, 10)

    def test_unknown_ids_rejected(self, instance):
        arrangement = Arrangement(instance)
        with pytest.raises(ArrangementError, match="unknown event"):
            arrangement.add(99, 10)
        with pytest.raises(ArrangementError, match="unknown user"):
            arrangement.add(1, 999)

    def test_remove_missing_pair_raises(self, instance):
        with pytest.raises(ArrangementError, match="not in arrangement"):
            Arrangement(instance).remove(1, 10)

    def test_views(self, instance):
        arrangement = Arrangement(instance)
        arrangement.add(1, 11)
        arrangement.add(3, 11)
        arrangement.add(3, 13)
        assert arrangement.events_of(11) == {1, 3}
        assert arrangement.users_of(3) == {11, 13}
        assert arrangement.attendance(3) == 2
        assert arrangement.load(11) == 2
        assert arrangement.load(10) == 0

    def test_iteration_and_len(self, instance):
        arrangement = Arrangement(instance)
        arrangement.add(1, 10)
        arrangement.add(3, 13)
        assert len(arrangement) == 2
        assert set(arrangement) == {(1, 10), (3, 13)}

    def test_from_pairs(self, instance):
        arrangement = Arrangement.from_pairs(instance, [(1, 10), (3, 13)])
        assert len(arrangement) == 2

    def test_copy_is_independent(self, instance):
        arrangement = Arrangement.from_pairs(instance, [(1, 10)])
        clone = arrangement.copy()
        clone.add(3, 13)
        assert len(arrangement) == 1
        assert len(clone) == 2


class TestFeasibilityAudit:
    def test_feasible_arrangement_has_no_violations(self, instance):
        arrangement = Arrangement.from_pairs(instance, [(1, 10), (1, 11), (3, 12)])
        assert arrangement.is_feasible()
        assert arrangement.violations() == []

    def test_unchecked_bid_violation_detected(self, instance):
        arrangement = Arrangement(instance)
        arrangement.add(3, 10, check=False)  # 10 did not bid for 3
        assert not arrangement.is_feasible()
        assert any("bid" in v for v in arrangement.violations())

    def test_unchecked_capacity_violation_detected(self, instance):
        arrangement = Arrangement(instance)
        arrangement.add(2, 10, check=False)
        arrangement.add(2, 12, check=False)  # event 2 capacity 1
        assert any("capacity: event 2" in v for v in arrangement.violations())

    def test_unchecked_user_capacity_violation_detected(self, instance):
        arrangement = Arrangement(instance)
        arrangement.add(1, 10, check=False)
        arrangement.add(2, 10, check=False)  # user 10 capacity 1 (also conflict)
        violations = arrangement.violations()
        assert any("capacity: user 10" in v for v in violations)
        assert any("conflict" in v for v in violations)


class TestUtility:
    def test_empty_arrangement_utility_is_zero(self, instance):
        assert Arrangement(instance).utility() == 0.0

    def test_utility_matches_definition(self, instance):
        arrangement = Arrangement.from_pairs(instance, [(1, 10), (3, 11)])
        beta = instance.beta
        expected = (
            beta * (0.9 + 0.8)
            + (1 - beta) * (instance.degree(10) + instance.degree(11))
        )
        assert arrangement.utility() == pytest.approx(expected)

    def test_utility_decomposition(self, instance):
        arrangement = Arrangement.from_pairs(instance, [(1, 10), (3, 11)])
        assert arrangement.interest_total() == pytest.approx(1.7)
        assert arrangement.interaction_total() == pytest.approx(1.0)
        assert arrangement.utility() == pytest.approx(
            instance.beta * arrangement.interest_total()
            + (1 - instance.beta) * arrangement.interaction_total()
        )

    def test_utility_additivity_under_removal(self, instance):
        arrangement = Arrangement.from_pairs(instance, [(1, 10), (3, 11)])
        before = arrangement.utility()
        arrangement.remove(3, 11)
        assert arrangement.utility() == pytest.approx(
            before - instance.weight(11, 3)
        )

    def test_repr_contains_utility(self, instance):
        arrangement = Arrangement.from_pairs(instance, [(1, 10)])
        assert "pairs=1" in repr(arrangement)
