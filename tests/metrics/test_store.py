"""The history store: JSONL append, dedupe-by-(sha, kind), ingestion."""

import json

import pytest

from repro.experiments.persistence import write_bench_artifact
from repro.metrics import HistoryFrame, HistoryStore, Sample, sample_from_payload


def sample(sha="abc", kind="simulation", ts="2026-08-01T00:00:00+00:00", **metrics):
    return Sample(
        sha=sha,
        timestamp_utc=ts,
        kind=kind,
        metrics=metrics or {"retention_auc": 0.9},
    )


class TestAppendAndDedupe:
    def test_append_then_load_round_trips(self, tmp_path):
        store = HistoryStore(tmp_path / "history.jsonl")
        assert store.append(sample())
        frame = store.load()
        assert len(frame) == 1
        assert frame.samples[0].sha == "abc"
        assert frame.samples[0].metrics == {"retention_auc": 0.9}

    def test_same_sha_and_kind_dedupes(self, tmp_path):
        store = HistoryStore(tmp_path / "history.jsonl")
        assert store.append(sample())
        assert not store.append(sample(retention_auc=0.1))
        assert len(store.load()) == 1

    def test_same_sha_different_kind_both_kept(self, tmp_path):
        store = HistoryStore(tmp_path / "history.jsonl")
        assert store.append(sample(kind="simulation"))
        assert store.append(sample(kind="serve"))
        assert len(store.load()) == 2

    def test_unknown_sha_never_dedupes(self, tmp_path):
        # Local runs without git metadata must still accumulate.
        store = HistoryStore(tmp_path / "history.jsonl")
        assert store.append(sample(sha="unknown", ts=""))
        assert store.append(sample(sha="unknown", ts=""))
        assert len(store.load()) == 2

    def test_last_line_wins_within_key(self, tmp_path):
        # A force-pushed sha's corrected numbers supersede on load even
        # though the file is append-only.
        path = tmp_path / "history.jsonl"
        rows = [
            sample(retention_auc=0.5).to_dict(),
            sample(retention_auc=0.9).to_dict(),
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        frame = HistoryStore(path).load()
        assert len(frame) == 1
        assert frame.samples[0].metrics["retention_auc"] == 0.9

    def test_chronological_order_on_load(self, tmp_path):
        path = tmp_path / "history.jsonl"
        rows = [
            sample(sha="b", ts="2026-08-02T00:00:00+00:00").to_dict(),
            sample(sha="a", ts="2026-08-01T00:00:00+00:00").to_dict(),
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        frame = HistoryStore(path).load()
        assert [s.sha for s in frame] == ["a", "b"]

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(json.dumps(sample().to_dict()) + "\nnot json\n")
        with pytest.raises(ValueError, match="history.jsonl:2"):
            HistoryStore(path).load()

    def test_missing_file_loads_empty(self, tmp_path):
        assert len(HistoryStore(tmp_path / "absent.jsonl").load()) == 0


class TestSampleFromPayload:
    def test_provenance_keys_the_sample(self):
        payload = {
            "kind": "simulation",
            "final_retention": 0.9,
            "provenance": {
                "git_sha": "deadbeef",
                "timestamp_utc": "2026-08-08T00:00:00+00:00",
                "host": "runner-1",
            },
        }
        out = sample_from_payload(payload, source="SOAK_simulate.json")
        assert out.sha == "deadbeef"
        assert out.host == "runner-1"
        assert out.source == "SOAK_simulate.json"
        assert out.metrics == {"final_retention": 0.9}

    def test_v1_payload_without_provenance_records_unknown(self):
        out = sample_from_payload({"kind": "simulation", "final_retention": 0.9})
        assert out.sha == "unknown"

    def test_payload_without_metrics_returns_none(self):
        assert sample_from_payload({"kind": "stats", "label": "x"}) is None


class TestIngest:
    def test_ingest_bench_artifact_end_to_end(self, tmp_path):
        artifact = tmp_path / "BENCH_smoke.json"
        write_bench_artifact(
            "bench_smoke",
            {"seed": 0, "sizes": [100]},
            [
                {
                    "num_users": 100,
                    "algorithm": "gg",
                    "runtime_seconds": 0.01,
                    "utility": 50.0,
                }
            ],
            path=artifact,
        )
        store = HistoryStore(tmp_path / "history.jsonl")
        appended, skipped = store.ingest([artifact])
        assert (appended, skipped) == (1, 0)
        # Same artifact, same sha: idempotent.
        appended, skipped = store.ingest([artifact])
        assert (appended, skipped) == (0, 1)
        frame = store.load()
        assert frame.samples[0].kind == "bench_smoke"
        assert frame.samples[0].source == "BENCH_smoke.json"
        assert frame.samples[0].metrics["smoke_runtime_ms"] == pytest.approx(10.0)

    def test_ingest_rejects_unenveloped_artifact(self, tmp_path):
        bad = tmp_path / "raw.json"
        bad.write_text(json.dumps({"speedup": 3.0}))
        with pytest.raises(ValueError, match="version"):
            HistoryStore(tmp_path / "history.jsonl").ingest([bad])


class TestFrameSeries:
    def test_series_is_chronological_and_kind_filterable(self):
        frame = HistoryFrame(
            [
                sample(sha="a", ts="2026-08-01T00:00:00+00:00", retention_auc=0.9),
                sample(
                    sha="b",
                    ts="2026-08-02T00:00:00+00:00",
                    kind="bench_dynamic",
                    retention_auc=0.8,
                ),
                sample(sha="c", ts="2026-08-03T00:00:00+00:00", retention_auc=0.95),
            ]
        )
        all_points = [v for _, v in frame.series("retention_auc")]
        assert all_points == [0.9, 0.8, 0.95]
        sim_only = [v for _, v in frame.series("retention_auc", kind="simulation")]
        assert sim_only == [0.9, 0.95]
        assert frame.metric_names() == ["retention_auc"]
        assert frame.kinds() == ["bench_dynamic", "simulation"]
