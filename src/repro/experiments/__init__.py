"""Experiment harness: repetition runner, Fig. 1 sweeps, registry, reports,
the churn replay driver and the dynamic-platform simulator."""

from repro.experiments.persistence import (
    load_stats,
    load_sweep,
    report_to_dict,
    save_stats,
    save_sweep,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    Experiment,
    ExperimentReport,
    run_experiment,
)
from repro.experiments.replay import (
    BatchRecord,
    ReplayInfeasibleError,
    ReplayReport,
    format_replay_table,
    index_parity_mismatches,
    replay_trace,
)
from repro.experiments.reporting import (
    TABLE2_ORDER,
    format_ranking,
    format_sweep_table,
    format_utility_table,
    sweep_to_csv,
)
from repro.experiments.runner import (
    AlgorithmStats,
    default_algorithms,
    run_on_instance,
    run_repetitions,
)
from repro.experiments.shapes import (
    FIG1_EXPECTATIONS,
    ShapeExpectation,
    check_figure,
    check_sweep_shape,
)
from repro.experiments.simulate import (
    DefragSchedule,
    PeriodicDefrag,
    RetentionDefrag,
    SimulationInfeasibleError,
    SimulationReport,
    TickRecord,
    format_simulation_table,
    simulate,
)
from repro.experiments.sweeps import (
    FIG1_SWEEPS,
    SweepResult,
    run_figure,
    run_sweep,
)

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ExperimentReport",
    "run_experiment",
    "AlgorithmStats",
    "default_algorithms",
    "run_repetitions",
    "run_on_instance",
    "FIG1_SWEEPS",
    "SweepResult",
    "run_sweep",
    "run_figure",
    "format_sweep_table",
    "format_utility_table",
    "format_ranking",
    "sweep_to_csv",
    "TABLE2_ORDER",
    "save_sweep",
    "load_sweep",
    "save_stats",
    "load_stats",
    "ShapeExpectation",
    "FIG1_EXPECTATIONS",
    "check_sweep_shape",
    "check_figure",
    "BatchRecord",
    "ReplayReport",
    "ReplayInfeasibleError",
    "replay_trace",
    "format_replay_table",
    "index_parity_mismatches",
    "report_to_dict",
    "DefragSchedule",
    "PeriodicDefrag",
    "RetentionDefrag",
    "SimulationInfeasibleError",
    "SimulationReport",
    "TickRecord",
    "format_simulation_table",
    "simulate",
]
