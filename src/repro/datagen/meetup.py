"""Meetup-like real-dataset simulator (§IV "Real Dataset").

The paper evaluates on a crawl of Meetup San Francisco: **190 events and 2811
users**, with event start times and durations, user groups, and attendance
histories.  The raw crawl is not redistributable; this module generates raw
Meetup-shaped fields with realistic marginals and then applies the paper's
own construction *verbatim* (see DESIGN.md §2 for the substitution argument):

1. events carry a start time and a duration; **two events conflict iff they
   overlap in time**;
2. "only some events specify their capacities.  For those without capacity
   information, we set it to the total number of users";
3. "we set each user's capacity as twice the number of events he/she
   attended";
4. interests are computed from attribute vectors (topic-weight vectors +
   cosine similarity, following GEACC [4]);
5. "for a user u, we use the events that he/she actually attended and
   another c_u/2 most interesting events for u as his/her bid";
6. "if two users join at least one common group, they have an edge in G".

The simulated raw fields: groups with category-affinity profiles, events
organized by groups at evening-skewed times, users joining size-biased
groups, and attendance drawn by interest from the user's groups with a
no-overlap constraint (one cannot attend two overlapping events).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.model.conflicts import TimeIntervalConflict
from repro.model.entities import Event, User
from repro.model.instance import IGEPAInstance
from repro.model.interest import CosineInterest
from repro.social.generators import empty_graph
from repro.social.graph import Graph

HOURS_PER_DAY = 24.0


@dataclass(frozen=True)
class MeetupConfig:
    """Knobs of the Meetup-like simulator (defaults = the paper's SF crawl).

    Attributes:
        num_events: number of events (paper: 190).
        num_users: number of users (paper: 2811).
        num_groups: Meetup groups organizing the events.
        num_categories: dimension of the topic/attribute vectors.
        horizon_days: event start times spread over this horizon.
        mean_duration_hours: lognormal mean of event durations.
        capacity_specified_fraction: fraction of events that specify a
            capacity ("only some events specify their capacities").
        min_specified_capacity / max_specified_capacity: uniform range for
            specified capacities.
        mean_events_attended: Poisson mean (shifted to >= 1) of each user's
            attendance-history length.
        max_events_attended: hard cap on attendance-history length.  A user
            who attended ``k`` events gets ``c_u = 2k`` and ``2k`` bids, so
            their admissible-set collection can reach ``2^{2k}``; a one-month
            crawl has small ``k``, and the cap keeps the benchmark LP at the
            size the paper's "users do not bid for too many events"
            assumption implies.
        mean_groups_per_user: Poisson mean (shifted to >= 1) of group
            memberships per user.
        beta: utility balance parameter.
        materialize_social_graph: build the explicit common-group graph
            (quadratic in group sizes); otherwise exact degrees are computed
            from group membership unions without materializing edges.
    """

    num_events: int = 190
    num_users: int = 2811
    num_groups: int = 40
    num_categories: int = 12
    horizon_days: float = 30.0
    mean_duration_hours: float = 2.5
    capacity_specified_fraction: float = 0.4
    min_specified_capacity: int = 10
    max_specified_capacity: int = 60
    mean_events_attended: float = 2.5
    max_events_attended: int = 4
    mean_groups_per_user: float = 2.0
    beta: float = 0.5
    materialize_social_graph: bool = False

    def __post_init__(self) -> None:
        if self.num_events < 0 or self.num_users < 0:
            raise ValueError("num_events and num_users must be >= 0")
        if self.num_groups < 1:
            raise ValueError("need at least one group")
        if self.num_categories < 1:
            raise ValueError("need at least one category")
        if not 0.0 <= self.capacity_specified_fraction <= 1.0:
            raise ValueError("capacity_specified_fraction must be in [0, 1]")
        if not 1 <= self.min_specified_capacity <= self.max_specified_capacity:
            raise ValueError(
                "need 1 <= min_specified_capacity <= max_specified_capacity"
            )
        if self.mean_events_attended < 1.0:
            raise ValueError("mean_events_attended must be >= 1")
        if self.max_events_attended < 1:
            raise ValueError("max_events_attended must be >= 1")

    def with_overrides(self, **kwargs) -> "MeetupConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


SF_DEFAULTS = MeetupConfig()


def _topic_vector(
    rng: np.random.Generator, dimension: int, focus: int, concentration: float = 6.0
) -> np.ndarray:
    """A normalized topic-weight vector peaked at category ``focus``."""
    alpha = np.ones(dimension)
    alpha[focus] = concentration
    return rng.dirichlet(alpha)


def _evening_skewed_start(rng: np.random.Generator, horizon_days: float) -> float:
    """An event start time (hours): uniform day, evening-biased hour."""
    day = float(rng.integers(int(horizon_days)))
    # Meetup events cluster around 18:00-20:00; mix a daytime tail in.
    if rng.random() < 0.7:
        hour = float(rng.normal(19.0, 1.5))
    else:
        hour = float(rng.uniform(9.0, 22.0))
    hour = float(np.clip(hour, 7.0, 22.5))
    return day * HOURS_PER_DAY + hour


def generate_meetup(
    config: MeetupConfig | None = None,
    seed: int | None = None,
    **overrides,
) -> IGEPAInstance:
    """Generate a Meetup-like IGEPA instance following the paper's recipe.

    Args:
        config: simulator configuration (SF-crawl scale when omitted).
        seed: RNG seed.
        **overrides: convenience field overrides applied to ``config``.
    """
    if config is None:
        config = SF_DEFAULTS
    if overrides:
        config = config.with_overrides(**overrides)
    rng = np.random.default_rng(seed)
    dimension = config.num_categories

    # ------------------------------------------------------------------
    # Groups: category-affinity profiles and popularity weights.
    # ------------------------------------------------------------------
    group_focus = rng.integers(dimension, size=config.num_groups)
    group_profiles = np.stack(
        [_topic_vector(rng, dimension, int(focus)) for focus in group_focus]
    )
    group_popularity = rng.pareto(1.5, size=config.num_groups) + 1.0
    group_popularity /= group_popularity.sum()

    # ------------------------------------------------------------------
    # Events: organized by groups, evening-skewed times, lognormal durations.
    # ------------------------------------------------------------------
    event_group = (
        rng.choice(config.num_groups, size=config.num_events, p=group_popularity)
        if config.num_events
        else np.empty(0, dtype=int)
    )
    events: list[Event] = []
    event_vectors = np.zeros((config.num_events, dimension))
    for event_id in range(config.num_events):
        group = int(event_group[event_id])
        vector = 0.7 * group_profiles[group] + 0.3 * _topic_vector(
            rng, dimension, int(group_focus[group])
        )
        vector /= vector.sum()
        event_vectors[event_id] = vector
        start = _evening_skewed_start(rng, config.horizon_days)
        duration = float(
            np.clip(rng.lognormal(np.log(config.mean_duration_hours), 0.4), 0.5, 8.0)
        )
        if rng.random() < config.capacity_specified_fraction:
            capacity = int(
                rng.integers(
                    config.min_specified_capacity, config.max_specified_capacity + 1
                )
            )
        else:
            capacity = config.num_users  # "set it to the total number of users"
        events.append(
            Event(
                event_id=event_id,
                capacity=capacity,
                attributes=vector,
                start_time=start,
                duration=duration,
            )
        )

    # ------------------------------------------------------------------
    # Users: size-biased group memberships and blended topic profiles.
    # ------------------------------------------------------------------
    user_ids = list(range(config.num_users))
    memberships: list[list[int]] = []
    user_vectors = np.zeros((config.num_users, dimension))
    for user_id in user_ids:
        count = 1 + int(rng.poisson(max(config.mean_groups_per_user - 1.0, 0.0)))
        count = min(count, config.num_groups)
        groups = rng.choice(
            config.num_groups, size=count, replace=False, p=group_popularity
        )
        memberships.append([int(g) for g in groups])
        profile = group_profiles[groups].mean(axis=0)
        noise = rng.dirichlet(np.ones(dimension))
        vector = 0.8 * profile + 0.2 * noise
        user_vectors[user_id] = vector / vector.sum()

    # Interest used for attendance and bid construction: cosine similarity
    # (the same function the instance will expose, vectorized here).
    if config.num_events and config.num_users:
        event_norms = np.linalg.norm(event_vectors, axis=1)
        user_norms = np.linalg.norm(user_vectors, axis=1)
        scores = (user_vectors @ event_vectors.T) / np.outer(
            user_norms, np.where(event_norms == 0.0, 1.0, event_norms)
        )
    else:
        # Degenerate branch: one of the dimensions is zero, so this dense
        # allocation is an empty matrix.
        scores = np.zeros(  # igepa: ignore[IGP002]
            (config.num_users, config.num_events)
        )

    events_by_group: dict[int, list[int]] = {}
    for event_id, group in enumerate(event_group):
        events_by_group.setdefault(int(group), []).append(event_id)

    users: list[User] = []
    conflict = TimeIntervalConflict()
    for user_id in user_ids:
        # Attendance history: interest-weighted draws from the user's groups'
        # events, greedily skipping time overlaps (one body, one place).
        own_events = [
            event_id
            for group in memberships[user_id]
            for event_id in events_by_group.get(group, [])
        ]
        pool = own_events if own_events else list(range(config.num_events))
        attended: list[int] = []
        if pool:
            target = 1 + int(rng.poisson(config.mean_events_attended - 1.0))
            target = min(target, config.max_events_attended)
            weights = scores[user_id, pool]
            weights = np.clip(weights, 1e-9, None)
            order = list(
                rng.choice(
                    pool,
                    size=min(len(pool), max(target * 3, target)),
                    replace=False,
                    p=weights / weights.sum(),
                )
            )
            for event_id in order:
                if len(attended) >= target:
                    break
                event = events[int(event_id)]
                if any(
                    conflict.conflicts(event, events[chosen]) for chosen in attended
                ):
                    continue
                attended.append(int(event_id))
        capacity = 2 * len(attended)  # "twice the number of events attended"
        # Bids: attended events plus the c_u / 2 most interesting others.
        extra = capacity // 2
        ranked = np.argsort(-scores[user_id])
        additions = [
            int(event_id)
            for event_id in ranked
            if int(event_id) not in attended
        ][:extra]
        bids = tuple(sorted(set(attended) | set(additions)))
        users.append(
            User(
                user_id=user_id,
                capacity=capacity,
                attributes=user_vectors[user_id],
                bids=bids,
            )
        )

    # ------------------------------------------------------------------
    # Social network: edge iff at least one common group.
    # ------------------------------------------------------------------
    members_of_group: dict[int, list[int]] = {}
    for user_id, groups in enumerate(memberships):
        for group in groups:
            members_of_group.setdefault(group, []).append(user_id)

    if config.materialize_social_graph:
        social: Graph = Graph(nodes=user_ids)
        for members in members_of_group.values():
            for i, first in enumerate(members):
                for second in members[i + 1 :]:
                    if not social.has_edge(first, second):
                        social.add_edge(first, second)
        degrees = None
    else:
        social = empty_graph(user_ids)
        degrees = {}
        member_sets = {
            group: set(members) for group, members in members_of_group.items()
        }
        denominator = max(config.num_users - 1, 1)
        for user_id, groups in enumerate(memberships):
            neighbours: set[int] = set()
            for group in groups:
                neighbours |= member_sets[group]
            neighbours.discard(user_id)
            degrees[user_id] = len(neighbours) / denominator

    return IGEPAInstance(
        events=events,
        users=users,
        conflict=conflict,
        interest=CosineInterest(),
        social=social,
        beta=config.beta,
        name=f"meetup-sim(|V|={config.num_events},|U|={config.num_users})",
        degrees=degrees,
    )
