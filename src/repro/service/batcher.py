"""Micro-batching: group ingress requests into ticks, deterministically.

The serving loop amortizes per-tick costs (delta application, repair) over
many requests, but cannot hold an arrival forever.  :class:`MicroBatcher`
flushes a pending batch when either bound trips:

* **max_batch** — the batch reached its size cap (flush *with* the
  triggering request);
* **max_wait** — the oldest pending request has waited ``max_wait``
  seconds of *decision time* (flush *without* the triggering request,
  which seeds the next batch).

Both decisions read timestamps only — the request's own stamp and the
clock's ``now()`` — never the machine clock, so a fixed trace flushed
through a :class:`~repro.service.clock.VirtualClock` forms the same ticks
on every run.  The batcher is synchronous and owns no tasks; the asyncio
loop drives it with ``offer``/``poll``/``flush``.
"""

from __future__ import annotations

from repro.service.requests import ArrivalRequest, ChurnRequest

Request = ArrivalRequest | ChurnRequest


class MicroBatcher:
    """Accumulate requests; cut tick boundaries on size or age.

    Args:
        max_batch: flush when a batch reaches this many requests.
        max_wait: flush when the oldest pending request is this many
            decision-time seconds old.
    """

    def __init__(self, *, max_batch: int = 64, max_wait: float = 1.0):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0.0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self.max_batch = max_batch
        self.max_wait = max_wait
        self._pending: list[Request] = []

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def oldest_timestamp(self) -> float | None:
        return self._pending[0].timestamp if self._pending else None

    def due_at(self) -> float | None:
        """Decision time at which the pending batch must flush (None when
        empty).  Live drivers sleep until this; replay drivers compare it
        against the next request's timestamp."""
        if not self._pending:
            return None
        return self._pending[0].timestamp + self.max_wait

    def due(self, now: float) -> bool:
        """Whether the pending batch has aged past ``max_wait``."""
        due_at = self.due_at()
        return due_at is not None and now >= due_at

    def poll(self, now: float) -> list[Request] | None:
        """Flush the pending batch if it is due at ``now``."""
        if self.due(now):
            return self.flush()
        return None

    def offer(self, request: Request) -> list[list[Request]]:
        """Add one request; return every batch it caused to flush (0–2).

        An aged pending batch flushes *before* the new request joins (the
        request arrived after that tick's window closed); a size-capped
        batch flushes *with* it.
        """
        flushed: list[list[Request]] = []
        batch = self.poll(request.timestamp)
        if batch:
            flushed.append(batch)
        self._pending.append(request)
        if len(self._pending) >= self.max_batch:
            flushed.append(self.flush())
        return flushed

    def flush(self) -> list[Request]:
        """Cut the pending batch unconditionally (drain/shutdown path)."""
        batch = self._pending
        self._pending = []
        return batch
