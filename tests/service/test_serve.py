"""The asyncio serving loop end to end: answers, determinism, audits.

Every test replays a fixed request trace through
:func:`repro.service.serve_requests` on a :class:`VirtualClock`, so the
decision-derived side of the report is bit-reproducible and assertable.
"""

import json

import pytest

from repro.datagen.churn import (
    ChurnConfig,
    generate_churn_trace,
    generate_request_trace,
)
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic
from repro.service import (
    AdmitAll,
    DeadlineQueue,
    DegradeOnOverload,
    PeriodicDefrag,
    RejectOnOverload,
    ServiceConfig,
    TickEngine,
    VirtualClock,
    serve_requests,
)
from repro.service.requests import ArrivalRequest, OUTCOMES

CONFIG = ChurnConfig(
    num_batches=8,
    user_arrival_rate=6,
    user_departure_rate=4,
    rebid_rate=8,
    event_open_rate=1,
    event_close_rate=1,
    conflict_toggle_rate=2,
    drift_rate=3,
    capacity_shock_rate=1,
    burst_every=4,
    burst_user_multiplier=5.0,
)


def make_trace(seed=11):
    instance = generate_synthetic(
        SyntheticConfig(num_users=60, num_events=15), seed=seed
    )
    churn = generate_churn_trace(instance, CONFIG, seed=seed + 1)
    return generate_request_trace(churn, batch_seconds=1.0, seed=seed + 2)


def run(trace, *, config=None, **engine_kwargs):
    engine_kwargs.setdefault("clock", VirtualClock())
    engine_kwargs.setdefault("check_parity", True)
    engine = TickEngine(trace.initial, seed=0, **engine_kwargs)
    return serve_requests(engine, trace.requests, config=config)


def num_arrivals(trace):
    return sum(1 for r in trace.requests if isinstance(r, ArrivalRequest))


class TestEveryArrivalAnswered:
    @pytest.mark.parametrize(
        "admission",
        [
            AdmitAll(),
            RejectOnOverload(2),
            DegradeOnOverload(2),
            DeadlineQueue(2, deadline=1.5),
        ],
        ids=lambda policy: policy.name,
    )
    def test_one_terminal_answer_per_arrival(self, admission):
        trace = make_trace()
        report, responses = run(
            trace,
            config=ServiceConfig(max_batch=8, max_wait=1.0, admission=admission),
        )
        expected = num_arrivals(trace)
        assert len(responses) == expected
        assert len(report.arrivals) == expected
        assert report.all_answered
        answered = [response.user_id for response in responses]
        assert len(set(answered)) == expected  # exactly once each
        assert all(response.outcome in OUTCOMES for response in responses)

    def test_drain_answers_queued_leftovers(self):
        # A tight deadline-queue under burst leaves arrivals queued when
        # the stream ends; drain's final tick must answer them anyway.
        trace = make_trace()
        report, responses = run(
            trace,
            config=ServiceConfig(
                max_batch=64,
                max_wait=10.0,  # everything lands in few, huge ticks
                admission=DeadlineQueue(1, deadline=100.0),
            ),
        )
        assert len(responses) == num_arrivals(trace)
        assert report.total_requeues > 0


class TestAudits:
    def test_feasible_and_parity_every_tick(self):
        report, _ = run(
            make_trace(),
            config=ServiceConfig(max_batch=8, max_wait=1.0),
            defrag=PeriodicDefrag(2),
            oracle_every=3,
        )
        assert report.records, "no ticks ran"
        assert report.all_feasible
        assert report.all_parity
        for record in report.records:
            assert record.parity_mismatches == []

    def test_accepted_arrivals_carry_events(self):
        report, responses = run(
            make_trace(), config=ServiceConfig(max_batch=8, max_wait=1.0)
        )
        for response in responses:
            if response.outcome == "accepted":
                assert response.events
                assert list(response.events) == sorted(response.events)
            elif response.outcome in ("rejected", "expired", "empty"):
                assert response.events == ()
            assert response.latency_seconds >= 0.0


class TestDeterminism:
    def test_fixed_seed_fingerprint_is_bit_stable(self):
        fingerprints = []
        for _ in range(2):
            trace = make_trace()
            report, _ = run(
                trace,
                config=ServiceConfig(
                    max_batch=8,
                    max_wait=1.0,
                    admission=DeadlineQueue(3, deadline=2.0),
                ),
                defrag=PeriodicDefrag(2),
                oracle_every=3,
            )
            fingerprints.append(report.determinism_fingerprint())
        assert fingerprints[0] == fingerprints[1]

    def test_different_seed_changes_decisions(self):
        reports = []
        for seed in (11, 12):
            report, _ = run(
                make_trace(seed),
                config=ServiceConfig(max_batch=8, max_wait=1.0),
            )
            reports.append(report.determinism_fingerprint())
        assert reports[0] != reports[1]


class TestSupersession:
    def test_churn_racing_defrag_supersedes_at_pass_boundary(self):
        # With an unbounded grace window every follow-up batch lands
        # "inside" the previous tick's defrag; any defrag that needs more
        # than one improvement pass must be cut short cooperatively — and
        # the arrangement it leaves behind must still pass every audit.
        trace = make_trace()
        report, responses = run(
            trace,
            config=ServiceConfig(
                max_batch=4, max_wait=0.5, defrag_grace=float("inf")
            ),
            defrag=PeriodicDefrag(1),
        )
        assert report.defrag_count > 0
        superseded = [
            record
            for record in report.records
            if record.defrag_moves is not None
            and record.defrag_moves.get("superseded")
        ]
        assert report.superseded_defrags == len(superseded)
        assert superseded, "no defrag was ever cut short under inf grace"
        for record in superseded:
            # Cut short before the LP step: no adoption bookkeeping.
            assert "lp_adopted" not in record.defrag_moves
        assert report.all_feasible
        assert report.all_parity
        assert len(responses) == num_arrivals(trace)

    def test_zero_grace_lets_defrag_converge(self):
        report, _ = run(
            make_trace(),
            config=ServiceConfig(max_batch=4, max_wait=0.5, defrag_grace=0.0),
            defrag=PeriodicDefrag(1),
        )
        assert report.defrag_count > 0
        assert report.superseded_defrags == 0


class TestSwitchingCosts:
    def test_penalty_accounted_when_defrag_reseats(self):
        trace = make_trace()
        free, _ = run(
            trace,
            config=ServiceConfig(max_batch=8, max_wait=1.0),
            defrag=PeriodicDefrag(2),
            switching_penalty=0.0,
        )
        trace = make_trace()
        charged, _ = run(
            trace,
            config=ServiceConfig(max_batch=8, max_wait=1.0),
            defrag=PeriodicDefrag(2),
            switching_penalty=0.05,
        )
        assert free.switching_spend_total == 0.0
        assert charged.switching_spend_total == pytest.approx(
            0.05 * charged.switching_pairs_total
        )

    def test_negative_penalty_rejected(self):
        trace = make_trace()
        with pytest.raises(ValueError):
            TickEngine(trace.initial, switching_penalty=-1.0)


class TestReportEnvelope:
    def test_to_dict_is_json_ready_and_enveloped(self):
        report, _ = run(
            make_trace(),
            config=ServiceConfig(max_batch=8, max_wait=1.0),
            defrag=PeriodicDefrag(2),
            oracle_every=3,
        )
        payload = json.loads(json.dumps(report.to_dict()))
        from repro.experiments.persistence import ENVELOPE_VERSION

        assert payload["format_version"] == ENVELOPE_VERSION
        assert payload["kind"] == "serve"
        assert payload["outcome_counts"]["accepted"] >= 0
        assert len(payload["ticks"]) == len(report.records)
        assert len(payload["arrivals"]) == len(report.arrivals)

    def test_latency_aggregates(self):
        report, _ = run(
            make_trace(), config=ServiceConfig(max_batch=8, max_wait=1.0)
        )
        assert report.p50_latency is not None
        assert report.p99_latency >= report.p50_latency >= 0.0
        assert report.arrivals_per_second > 0.0
