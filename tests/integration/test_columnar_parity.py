"""Columnar vs object parity: one store, identical bits everywhere.

The tentpole guarantee of the columnar layer: for a fixed seed, an index
built from a :class:`~repro.model.columnar.ColumnarStore`-backed instance is
bit-identical to one built from classic entity objects — across shard sizes
— and churn deltas patch the columnar store (and its index) to the same bits
a from-scratch rebuild produces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GGGreedy, LocalSearch, LPPacking
from repro.datagen import (
    ChurnConfig,
    SyntheticConfig,
    generate_churn_trace,
    generate_synthetic_stream,
)
from repro.experiments.replay import fresh_index_like, index_parity_mismatches
from repro.model import ColumnarStore, InstanceIndex, ShardedInstanceIndex
from repro.model.delta import apply_delta

CONFIG = SyntheticConfig(num_users=240, num_events=40)
SHARD_SIZES = (1, 7, None)  # None -> one shard covering all users


def _pair(seed: int):
    columnar = generate_synthetic_stream(CONFIG, seed=seed, columnar=True)
    entity = generate_synthetic_stream(CONFIG, seed=seed, columnar=False)
    assert columnar.is_columnar and not entity.is_columnar
    return columnar, entity


def _assert_index_parity(a, b):
    assert type(a) is type(b)
    for name in type(a).PARITY_ARRAYS:
        left, right = getattr(a, name), getattr(b, name)
        assert left.dtype == right.dtype, name
        assert np.array_equal(left, right), name
    assert a.user_pos == b.user_pos
    assert a.event_pos == b.event_pos


@pytest.mark.parametrize("shard_size", SHARD_SIZES)
def test_sharded_index_bits_identical(shard_size):
    columnar, entity = _pair(3)
    size = CONFIG.num_users if shard_size is None else shard_size
    columnar.configure_index(sharded=True, shard_size=size)
    entity.configure_index(sharded=True, shard_size=size)
    ci, ei = columnar.index, entity.index
    assert isinstance(ci, ShardedInstanceIndex)
    _assert_index_parity(ci, ei)


def test_dense_index_bits_identical():
    columnar, entity = _pair(4)
    columnar.configure_index(sharded=False)
    entity.configure_index(sharded=False)
    ci, ei = columnar.index, entity.index
    assert isinstance(ci, InstanceIndex)
    _assert_index_parity(ci, ei)


def test_store_arrays_shared_with_index():
    # The zero-copy contract: the index's primary arrays ARE the store's
    # columns, and the CSR fast path hands back the store's bid arrays.
    columnar, _ = _pair(5)
    index = columnar.index
    store = columnar.store
    assert index.user_ids is store.user_ids
    assert index.bid_indptr is store.bid_indptr
    assert index.bid_si is store.bid_si


@pytest.mark.parametrize(
    "factory",
    [
        lambda: GGGreedy(),
        lambda: LocalSearch(GGGreedy()),
        lambda: LPPacking(alpha=1.0, lp_backend="revised-simplex"),
    ],
    ids=["gg", "gg+ls", "lp-packing"],
)
def test_fixed_seed_arrangements_identical(factory):
    columnar, entity = _pair(6)
    a = factory().solve(columnar, seed=11)
    b = factory().solve(entity, seed=11)
    assert a.arrangement.pairs == b.arrangement.pairs
    assert a.utility == b.utility


def test_object_built_store_matches_stream_store():
    columnar, entity = _pair(7)
    packed = ColumnarStore.from_entities(
        list(entity.users), list(entity.events), degrees=entity.degrees_override
    )
    native = columnar.store
    np.testing.assert_array_equal(packed.user_ids, native.user_ids)
    np.testing.assert_array_equal(packed.user_capacity, native.user_capacity)
    np.testing.assert_array_equal(packed.bid_indptr, native.bid_indptr)
    np.testing.assert_array_equal(packed.bid_event_pos, native.bid_event_pos)
    np.testing.assert_array_equal(packed.degrees, native.degrees)


def _trace(instance, seed):
    config = ChurnConfig(
        num_batches=4,
        user_arrival_rate=8.0,
        user_departure_rate=8.0,
        rebid_rate=15.0,
        event_open_rate=1.0,
        event_close_rate=1.0,
        conflict_toggle_rate=1.0,
        burst_every=2,
        base=CONFIG,
    )
    return generate_churn_trace(instance, config, seed=seed)


@pytest.mark.parametrize("shard_size", SHARD_SIZES)
def test_churn_deltas_patch_columnar_store_bit_identical(shard_size):
    columnar, _ = _pair(8)
    size = CONFIG.num_users if shard_size is None else shard_size
    columnar.configure_index(sharded=True, shard_size=size)
    trace = _trace(columnar, seed=9)
    instance = trace.initial
    for delta in trace.deltas:
        result = apply_delta(instance, delta)
        successor = result.instance
        assert successor.is_columnar
        patched = successor.index
        assert patched.shard_size == instance.index.shard_size
        assert index_parity_mismatches(patched, fresh_index_like(patched, successor)) == []
        # The successor's store must itself rebuild to the same index bits:
        # its columns double as the patched index's primary arrays.
        rebuilt = ShardedInstanceIndex(successor, shard_size=patched.shard_size)
        _assert_index_parity(patched, rebuilt)
        instance = successor


def test_churn_deltas_on_spilled_store(tmp_path):
    columnar = generate_synthetic_stream(
        CONFIG, seed=10, spill_budget_bytes=0, spill_dir=str(tmp_path)
    )
    assert columnar.store.spilled_bytes > 0
    trace = _trace(columnar, seed=11)
    instance = trace.initial
    for delta in trace.deltas:
        result = apply_delta(instance, delta)
        patched = result.instance.index
        assert index_parity_mismatches(
            patched, fresh_index_like(patched, result.instance)
        ) == []
        instance = result.instance


def test_delta_replay_matches_entity_path():
    columnar, entity = _pair(12)
    trace_c = _trace(columnar, seed=13)
    trace_e = _trace(entity, seed=13)
    inst_c, inst_e = trace_c.initial, trace_e.initial
    for delta_c, delta_e in zip(trace_c.deltas, trace_e.deltas):
        inst_c = apply_delta(inst_c, delta_c).instance
        inst_e = apply_delta(inst_e, delta_e).instance
        _assert_index_parity(inst_c.index, inst_e.index)
        assert [u.bids for u in inst_c.users] == [u.bids for u in inst_e.users]
        # Interest tables agree on every live bid pair (the columnar table
        # deliberately drops values of withdrawn bids, so compare per pair).
        items_c, items_e = inst_c.interest.items(), inst_e.interest.items()
        for user in inst_c.users:
            for event_id in user.bids:
                key = (event_id, user.user_id)
                assert items_c[key] == items_e[key]
