"""Unit tests for the churn replay driver."""

import json

import pytest

from repro.core import GGGreedy
from repro.datagen import (
    ChurnConfig,
    SyntheticConfig,
    generate_churn_trace,
    generate_synthetic,
)
from repro.experiments import format_replay_table, replay_trace


def small_trace(seed=0, num_batches=4):
    instance = generate_synthetic(
        SyntheticConfig(num_events=12, num_users=50), seed=seed
    )
    config = ChurnConfig(
        num_batches=num_batches,
        user_arrival_rate=4.0,
        user_departure_rate=4.0,
        rebid_rate=6.0,
        event_open_rate=1.0,
        event_close_rate=1.0,
        conflict_toggle_rate=1.0,
    )
    return generate_churn_trace(instance, config, seed=seed + 1)


class TestReplay:
    def test_record_per_batch(self):
        report = replay_trace(small_trace(), seed=0)
        assert len(report.records) == 4
        assert report.algorithm == "gg+ls"
        for i, record in enumerate(report.records):
            assert record.batch == i
            assert record.feasible
            assert record.incremental_seconds > 0.0
            assert record.full_seconds > 0.0
            assert record.num_users >= 1
        assert report.all_feasible
        assert report.speedup is not None
        assert report.utility_retention is not None

    def test_parity_check(self):
        report = replay_trace(small_trace(), seed=0, check_parity=True)
        assert report.all_parity
        for record in report.records:
            assert record.parity_mismatches == []

    def test_no_full_side(self):
        report = replay_trace(small_trace(), seed=0, compare_full=False)
        assert report.mean_full_seconds is None
        assert report.speedup is None
        assert report.utility_retention is None
        for record in report.records:
            assert record.full_seconds is None
            assert record.full_utility is None
            assert record.speedup is None

    def test_custom_algorithm(self):
        report = replay_trace(small_trace(), algorithm=GGGreedy(), seed=0)
        assert report.algorithm == "gg"

    def test_to_dict_is_json_ready(self):
        report = replay_trace(small_trace(), seed=0, check_parity=True)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["algorithm"] == "gg+ls"
        assert len(payload["batches"]) == 4
        assert payload["all_feasible"] is True
        assert payload["all_parity"] is True
        assert payload["speedup"] == pytest.approx(report.speedup)

    def test_format_table(self):
        report = replay_trace(small_trace(num_batches=2), seed=0)
        text = format_replay_table(report)
        lines = text.splitlines()
        assert "replay: gg+ls" in lines[0]
        assert "speedup" in lines[1]
        assert len(lines) == 2 + 2 + 1  # header x2, 2 batches, summary
        assert "feasible: True" in lines[-1]

    def test_format_table_without_full_side(self):
        report = replay_trace(
            small_trace(num_batches=2), seed=0, compare_full=False
        )
        text = format_replay_table(report)
        assert "feasible: True" in text
        assert "speedup:" not in text.splitlines()[-1]


class TestReplayCLI:
    def test_replay_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "replay.json"
        code = main(
            [
                "replay",
                "--users", "40",
                "--events", "10",
                "--batches", "2",
                "--arrival-rate", "3",
                "--departure-rate", "3",
                "--rebid-rate", "4",
                "--check-parity",
                "--out", str(out),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "replay: gg+ls" in output
        assert "index parity (bit-identical): True" in output
        payload = json.loads(out.read_text())
        assert payload["all_parity"] is True
        assert len(payload["batches"]) == 2

    def test_replay_subcommand_sharded_parallel(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "replay.json"
        code = main(
            [
                "replay",
                "--users", "60",
                "--events", "10",
                "--batches", "2",
                "--arrival-rate", "3",
                "--departure-rate", "3",
                "--rebid-rate", "4",
                "--shards", "4",
                "--workers", "2",
                "--check-parity",
                "--out", str(out),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "index parity (bit-identical): True" in output
        payload = json.loads(out.read_text())
        assert payload["all_parity"] is True

    def test_parity_failure_exits_nonzero(self, monkeypatch, capsys):
        """--check-parity must fail the command when parity breaks, not
        just print False."""
        import repro.cli as cli_module
        from repro.cli import main
        from repro.experiments import BatchRecord, ReplayReport

        broken = ReplayReport(
            algorithm="gg+ls", initial_utility=1.0, initial_solve_seconds=0.0
        )
        broken.records.append(
            BatchRecord(
                batch=0,
                operations={},
                num_users=1,
                num_events=1,
                num_pairs=0,
                incremental_seconds=0.001,
                full_seconds=0.002,
                incremental_utility=1.0,
                full_utility=1.0,
                dropped_pairs=0,
                moves={},
                feasible=True,
                parity_mismatches=["SI"],
            )
        )
        monkeypatch.setattr(cli_module, "replay_trace", lambda *a, **k: broken)
        code = main(
            ["replay", "--users", "10", "--events", "4", "--batches", "1",
             "--check-parity"]
        )
        assert code == 1
        assert "index parity (bit-identical): False" in capsys.readouterr().out
