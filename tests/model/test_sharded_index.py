"""Unit tests for the sharded index and the shared indexing protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import SyntheticConfig, generate_synthetic
from repro.model import (
    IGEPAInstance,
    IndexCapacityError,
    InstanceIndex,
    ShardedInstanceIndex,
)
from repro.model.conflicts import MatrixConflict
from repro.model.entities import Event, User
from repro.model.index import DENSE_CELL_CAP, build_degrees
from repro.model.interest import TabulatedInterest
from repro.social.generators import empty_graph

CONFIG = SyntheticConfig(num_users=150, num_events=30)


@pytest.fixture()
def instance():
    return generate_synthetic(CONFIG, seed=1)


def test_shard_layout_covers_all_users(instance):
    index = ShardedInstanceIndex(instance, shard_size=40)
    assert index.shard_size == 40
    assert index.num_shards == 4
    bounds = [index.shard_bounds(s) for s in range(index.num_shards)]
    assert bounds[0] == (0, 40)
    assert bounds[-1] == (120, 150)
    assert index.shard_of(0) == 0
    assert index.shard_of(119) == 2
    assert index.touched_shards([0, 41, 149]) == [0, 1, 3]


def test_pair_accessors_match_dense(instance):
    dense = InstanceIndex(instance)
    sharded = ShardedInstanceIndex(instance, shard_size=7)
    rng = np.random.default_rng(0)
    upos = rng.integers(dense.num_users, size=200)
    vpos = rng.integers(dense.num_events, size=200)
    assert np.array_equal(
        dense.pair_bid_mask(upos, vpos), sharded.pair_bid_mask(upos, vpos)
    )
    assert np.array_equal(
        dense.pair_weights(upos, vpos), sharded.pair_weights(upos, vpos)
    )
    assert np.array_equal(dense.pair_si(upos, vpos), sharded.pair_si(upos, vpos))
    for u, v in zip(upos[:50].tolist(), vpos[:50].tolist()):
        assert dense.is_bid_pair(u, v) == sharded.is_bid_pair(u, v)
        assert dense.weight_at(u, v) == sharded.weight_at(u, v)
        assert dense.si_at(u, v) == sharded.si_at(u, v)
    for v in range(dense.num_events):
        assert np.array_equal(dense.weight_column(v), sharded.weight_column(v))
        assert np.array_equal(
            dense.event_bidder_weights(v), sharded.event_bidder_weights(v)
        )


def test_dense_index_refuses_beyond_cap():
    users = [User(user_id=0, capacity=1)]
    events = [Event(event_id=0, capacity=1)]
    instance = IGEPAInstance(
        events=events,
        users=users,
        conflict=MatrixConflict([]),
        interest=TabulatedInterest({}),
        social=empty_graph([0]),
    )
    # Fake the size check's inputs rather than allocating 10^7 objects.
    instance.users = users * (DENSE_CELL_CAP // len(events) + 1)
    with pytest.raises(IndexCapacityError):
        InstanceIndex(instance)


def test_configure_index_selects_implementation(instance):
    assert isinstance(instance.index, InstanceIndex)
    instance.configure_index(sharded=True, shard_size=13)
    index = instance.index
    assert isinstance(index, ShardedInstanceIndex)
    assert index.shard_size == 13
    instance.configure_index(sharded=False)
    assert isinstance(instance.index, InstanceIndex)


def test_sharded_index_has_no_dense_matrices(instance):
    index = ShardedInstanceIndex(instance, shard_size=10)
    assert not hasattr(index, "W")
    assert not hasattr(index, "SI")
    assert not hasattr(index, "bid_mask")


def test_assigned_totals_match_dense(instance):
    dense = InstanceIndex(instance)
    sharded = ShardedInstanceIndex(instance, shard_size=11)
    rng = np.random.default_rng(2)
    mask = np.zeros((dense.num_users, dense.num_events), dtype=bool)
    # Random subset of bid pairs only (the clean-arrangement contract).
    take = rng.random(dense.bid_indices.size) < 0.5
    mask[dense.bid_user_positions[take], dense.bid_indices[take]] = True
    import math

    assert math.fsum(dense.assigned_weight_total(mask)) == math.fsum(
        sharded.assigned_weight_total(mask)
    )
    assert math.fsum(dense.assigned_si_total(mask)) == math.fsum(
        sharded.assigned_si_total(mask)
    )


def test_build_degrees_matches_scalar_reference():
    config = SyntheticConfig(
        num_users=60, num_events=10, materialize_social_graph=True
    )
    instance = generate_synthetic(config, seed=3)
    degrees = build_degrees(instance)
    norm = instance.num_users - 1
    for i, user in enumerate(instance.users):
        expected = (
            instance.social.degree(user.user_id) / norm
            if instance.social.has_node(user.user_id)
            else 0.0
        )
        assert degrees[i] == expected


def test_build_degrees_override_branch():
    instance = generate_synthetic(CONFIG, seed=4)  # degree overrides by default
    assert instance.degrees_override is not None
    degrees = build_degrees(instance)
    for i, user in enumerate(instance.users):
        assert degrees[i] == instance.degrees_override.get(user.user_id, 0.0)


def test_empty_instance_sharded_index():
    instance = IGEPAInstance(
        events=[],
        users=[],
        conflict=MatrixConflict([]),
        interest=TabulatedInterest({}),
        social=empty_graph([]),
    )
    index = ShardedInstanceIndex(instance)
    assert index.num_shards == 1
    assert list(index.iter_shards())[0].num_users == 0
    assert index.pair_weights(np.empty(0, dtype=int), np.empty(0, dtype=int)).size == 0
