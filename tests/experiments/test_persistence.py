"""Unit tests for experiment result persistence."""

import json

import pytest

from repro.core import GGGreedy, RandomU
from repro.datagen import SyntheticConfig
from repro.experiments import run_sweep
from repro.experiments.persistence import (
    FORMAT_VERSION,
    load_stats,
    load_sweep,
    save_stats,
    save_sweep,
    stats_from_dict,
    stats_to_dict,
)
from repro.experiments.reporting import format_sweep_table
from repro.experiments.runner import AlgorithmStats, run_on_instance
from tests.util import random_instance


def _small_sweep():
    return run_sweep(
        "num_events",
        [4, 8],
        base_config=SyntheticConfig(num_events=8, num_users=20),
        algorithm_factory=lambda: [GGGreedy(), RandomU()],
        repetitions=2,
    )


class TestStatsRoundTrip:
    def test_field_preservation(self):
        stats = AlgorithmStats(
            "gg", utilities=[1.5, 2.5], runtimes=[0.01, 0.02], pair_counts=[3, 4]
        )
        restored = stats_from_dict(stats_to_dict(stats))
        assert restored.algorithm == "gg"
        assert restored.utilities == [1.5, 2.5]
        assert restored.mean_utility == stats.mean_utility
        assert restored.pair_counts == [3, 4]

    def test_fixed_instance_stats_file(self, tmp_path):
        instance = random_instance(seed=0)
        stats = run_on_instance(
            instance, algorithms=[GGGreedy(), RandomU()], repetitions=2
        )
        path = tmp_path / "table.json"
        save_stats(stats, path, label="test run")
        restored = load_stats(path)
        assert set(restored) == set(stats)
        for name in stats:
            assert restored[name].utilities == stats[name].utilities


class TestSweepRoundTrip:
    def test_sweep_file_round_trip(self, tmp_path):
        sweep = _small_sweep()
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        restored = load_sweep(path)
        assert restored.parameter == sweep.parameter
        assert restored.values == sweep.values
        assert restored.repetitions == sweep.repetitions
        for name in ("gg", "random-u"):
            assert restored.series(name) == sweep.series(name)

    def test_restored_sweep_renders_identically(self, tmp_path):
        sweep = _small_sweep()
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        restored = load_sweep(path)
        assert format_sweep_table(restored) == format_sweep_table(sweep)

    def test_file_is_plain_json(self, tmp_path):
        sweep = _small_sweep()
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert payload["kind"] == "sweep"


class TestVersionGuards:
    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "kind": "sweep"}))
        with pytest.raises(ValueError, match="version"):
            load_sweep(path)

    def test_kind_mismatch_rejected(self, tmp_path):
        sweep = _small_sweep()
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        with pytest.raises(ValueError, match="not a stats payload"):
            load_stats(path)


class TestReportEnvelope:
    def test_report_to_dict_envelope(self):
        from repro.experiments.persistence import report_to_dict

        payload = report_to_dict(
            "simulation",
            {"all_feasible": True},
            [{"tick": 0}],
            records_key="ticks",
        )
        assert payload["format_version"] == FORMAT_VERSION
        assert payload["kind"] == "simulation"
        assert payload["all_feasible"] is True
        assert payload["ticks"] == [{"tick": 0}]

    def test_replay_report_uses_envelope(self):
        """Regression for the shared-serialization satellite: replay used to
        hand-roll its dict without the version/kind envelope."""
        from repro.experiments.replay import ReplayReport

        payload = ReplayReport(
            algorithm="gg", initial_utility=1.0, initial_solve_seconds=0.0
        ).to_dict()
        assert payload["format_version"] == FORMAT_VERSION
        assert payload["kind"] == "replay"
        assert payload["batches"] == []
