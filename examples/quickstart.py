"""Quickstart: generate a synthetic EBSN workload and arrange participants.

Runs the paper's four algorithms on a (reduced-scale) Table I instance and
prints the utility comparison plus LP-packing diagnostics.

Run:  python examples/quickstart.py
"""

from repro import (
    GGGreedy,
    LPPacking,
    RandomU,
    RandomV,
    SyntheticConfig,
    generate_synthetic,
    lp_upper_bound,
)


def main() -> None:
    # A quarter-scale Table I instance (full scale: 200 events, 2000 users).
    config = SyntheticConfig(num_events=50, num_users=500)
    instance = generate_synthetic(config, seed=7)
    print("instance:", instance)
    for key, value in instance.statistics().items():
        print(f"  {key}: {value}")

    bound = lp_upper_bound(instance)
    print(f"\nbenchmark-LP upper bound on OPT: {bound:.2f}\n")

    algorithms = [
        LPPacking(alpha=1.0),  # the paper's empirical setting
        GGGreedy(),
        RandomU(),
        RandomV(),
    ]
    print(f"{'algorithm':<12} {'utility':>10} {'pairs':>7} {'vs LP*':>8} {'time':>9}")
    for algorithm in algorithms:
        result = algorithm.solve(instance, seed=0)
        assert result.arrangement.is_feasible()
        print(
            f"{result.algorithm:<12} {result.utility:>10.2f} "
            f"{result.num_pairs:>7} {result.utility / bound:>7.1%} "
            f"{result.runtime_seconds * 1e3:>7.1f}ms"
        )

    lp_result = LPPacking(alpha=1.0).solve(instance, seed=0)
    print("\nLP-packing diagnostics:")
    for key, value in sorted(lp_result.details.items()):
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
