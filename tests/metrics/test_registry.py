"""The metric registry: extractor dispatch, totality, directions."""

import math

import pytest

from repro.experiments.persistence import KIND_REGISTRY
from repro.metrics import METRICS, Metric, extract_metrics, metrics_for_kind, register_metric


def simulation_payload(**overrides):
    payload = {
        "format_version": 2,
        "kind": "simulation",
        "retention_curve": [[0, 1.0], [5, 0.9], [10, 0.95]],
        "final_retention": 0.95,
        "arrival_acceptance_rate": 0.8,
        "mean_tick_seconds": 0.012,
        "ticks": [{"repair_debt": 0.5}, {"repair_debt": 1.5}],
    }
    payload.update(overrides)
    return payload


class TestRegistryShape:
    def test_every_metric_kind_is_registered(self):
        # An extractor bound to a kind load_report would reject can never
        # fire — typo guard between the two registries.
        for metric in METRICS.values():
            for kind in metric.kinds:
                assert kind in KIND_REGISTRY, (metric.name, kind)

    def test_every_metric_has_direction_and_threshold(self):
        for metric in METRICS.values():
            assert metric.direction in ("up", "down")
            assert 0.0 < metric.max_relative_drop <= 1.0

    def test_headline_metrics_present(self):
        expected = {
            "retention_auc",
            "repair_debt_mean",
            "lp_pivots_per_resolve",
            "serve_p99_ms",
            "peak_rss_mb",
            "answered_per_sec",
        }
        assert expected <= set(METRICS)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_metric(
                Metric("retention_auc", "dupe", "ratio", "up", 0.1, {})
            )

    def test_metrics_for_kind(self):
        names = {m.name for m in metrics_for_kind("simulation")}
        assert "retention_auc" in names
        assert "serve_p99_ms" not in names


class TestExtraction:
    def test_simulation_payload_yields_expected_values(self):
        values = extract_metrics(simulation_payload())
        # Trapezoid area over [(0,1),(5,.9),(10,.95)] / span 10.
        assert values["retention_auc"] == pytest.approx(0.9375)
        assert values["final_retention"] == 0.95
        assert values["repair_debt_mean"] == pytest.approx(1.0)
        assert values["mean_tick_ms"] == pytest.approx(12.0)

    def test_missing_fields_are_omitted_not_errors(self):
        values = extract_metrics({"format_version": 2, "kind": "simulation"})
        assert values == {}

    def test_single_point_curve_degenerates_to_its_value(self):
        values = extract_metrics(
            simulation_payload(retention_curve=[[3, 0.87]])
        )
        assert values["retention_auc"] == pytest.approx(0.87)

    def test_non_finite_values_dropped(self):
        values = extract_metrics(
            simulation_payload(final_retention=math.nan, mean_tick_seconds=math.inf)
        )
        assert "final_retention" not in values
        assert "mean_tick_ms" not in values

    def test_unknown_kind_yields_nothing(self):
        assert extract_metrics({"kind": "mystery"}) == {}

    def test_bench_dynamic_reads_nested_defrag_on(self):
        payload = {
            "kind": "bench_dynamic",
            "acceptance_defrag_on": 0.75,
            "defrag_on": simulation_payload(),
        }
        values = extract_metrics(payload)
        assert values["retention_auc"] == pytest.approx(0.9375)
        assert values["arrival_acceptance"] == 0.75

    def test_bench_churn_largest_rung_pivots(self):
        payload = {
            "kind": "bench_churn",
            "largest_speedup": 9.0,
            "instances": [
                {
                    "num_users": 1000,
                    "lp_resolve": {
                        "batches": [
                            {"dual_pivots": 1, "primal_pivots": 1},
                        ]
                    },
                },
                {
                    "num_users": 4000,
                    "lp_resolve": {
                        "batches": [
                            {"dual_pivots": 4, "primal_pivots": 2},
                            {"dual_pivots": 2, "primal_pivots": 0},
                        ]
                    },
                },
            ],
        }
        values = extract_metrics(payload)
        # Largest rung only: (4+2 + 2+0) / 2.
        assert values["lp_pivots_per_resolve"] == pytest.approx(4.0)
        assert values["churn_speedup"] == 9.0

    def test_bench_shard_prefers_columnar_gate(self):
        base = {"kind": "bench_shard", "scale": {"peak_delta_mb": 60.0}}
        assert extract_metrics(base)["peak_rss_mb"] == 60.0
        with_columnar = dict(base, columnar={"peak_delta_mb": 900.0})
        assert extract_metrics(with_columnar)["peak_rss_mb"] == 900.0

    def test_serve_latency_converted_to_ms(self):
        payload = {
            "kind": "serve",
            "p99_latency": 0.25,
            "arrivals_per_second": 140.0,
            "final_utility": 123.0,
        }
        values = extract_metrics(payload)
        assert values["serve_p99_ms"] == pytest.approx(250.0)
        assert values["answered_per_sec"] == 140.0
        assert values["serve_final_utility"] == 123.0
