"""Sharded instance index: the user dimension split into bounded slabs.

The dense :class:`~repro.model.index.InstanceIndex` stores ``W``/``SI``/
``bid_mask`` as ``(|U|, |V|)`` matrices, which caps instances around
:data:`~repro.model.index.DENSE_CELL_CAP` (~10⁷) cells.  The LP (1)-(4) and
every arrangement move decompose by user, so the user dimension shards
cleanly with no loss of fidelity: :class:`ShardedInstanceIndex` partitions
user positions into contiguous shards of ``shard_size`` users and never
materializes a dense user-by-event matrix at all.

Storage:

* **shared event-side state** — ``conflict_matrix`` (and its float32 copy),
  ``event_capacity``, ``event_ids``/``event_pos`` and the bidder incidence
  are global, exactly as on the dense index;
* **per-pair state** lives in the CSR entry arrays (``bid_indices``,
  ``bid_si``, ``bid_weights``), ``O(bids)`` total;
* **per-shard dense slabs** (``shard.W``, ``shard.SI``, ``shard.bid_mask``)
  are materialized on demand from the CSR rows of the shard and not
  retained — each is at most ``shard_size × |V|`` cells (~10⁶ by default),
  so shard-major algorithm loops get vectorized dense inner loops at a
  bounded memory footprint.

The global coordinate map (``user_pos``/``event_pos`` and the position-based
accessors of :class:`~repro.model.index.BaseInstanceIndex`) is unchanged, so
existing position-based code runs on either index; the pair accessors
resolve through a sorted-key binary search over the CSR entries instead of
matrix lookups.  All values are bit-identical to the dense index
(``tests/integration/test_sharded_parity.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.model.index import BaseInstanceIndex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.model.instance import IGEPAInstance

#: Default per-shard dense-slab budget, in cells.  The default shard size is
#: chosen so one materialized ``shard_size × |V|`` slab stays under this.
DEFAULT_SHARD_CELLS = 1_000_000


def default_shard_size(num_users: int, num_events: int) -> int:
    """Users per shard so a dense slab stays under ~10⁶ cells."""
    size = DEFAULT_SHARD_CELLS // max(1, num_events)
    return max(1, min(size, max(1, num_users)))


class ShardedInstanceIndex(BaseInstanceIndex):
    """CSR-backed index over user shards (see module docstring).

    Args:
        instance: the instance to index.
        shard_size: users per shard; default keeps each dense slab under
            :data:`DEFAULT_SHARD_CELLS` cells.
    """

    PARITY_ARRAYS = BaseInstanceIndex.PARITY_ARRAYS

    def __init__(
        self, instance: "IGEPAInstance", shard_size: int | None = None
    ) -> None:
        self._build_primary(instance)
        self._shard_size = self._resolve_shard_size(shard_size)
        self.bid_indptr, self.bid_indices, self.bid_si = self._build_csr()
        self._finalize()

    def _resolve_shard_size(self, shard_size: int | None) -> int:
        if shard_size is None:
            return default_shard_size(self.num_users, self.num_events)
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        return int(shard_size)

    @classmethod
    def from_components(
        cls,
        instance: "IGEPAInstance",
        *,
        user_ids: np.ndarray,
        event_ids: np.ndarray,
        user_capacity: np.ndarray,
        event_capacity: np.ndarray,
        degrees: np.ndarray,
        conflict_matrix: np.ndarray,
        bid_indptr: np.ndarray,
        bid_indices: np.ndarray,
        bid_si: np.ndarray,
        shard_size: int | None = None,
    ) -> "ShardedInstanceIndex":
        """Assemble a sharded index from already-built primary arrays.

        The delta-maintenance constructor
        (:func:`repro.model.delta.apply_delta`): primary arrays are patched
        at the CSR-entry level — O(bids + delta), never O(cells) — and every
        derived array runs through the shared
        :meth:`~repro.model.index.BaseInstanceIndex._finalize`, so the
        patched index is bit-identical to a from-scratch build.
        """
        index = cls.__new__(cls)
        index.instance = instance
        index.user_ids = user_ids
        index.event_ids = event_ids
        index.user_pos = {int(u): i for i, u in enumerate(user_ids.tolist())}
        index.event_pos = {int(e): j for j, e in enumerate(event_ids.tolist())}
        index.user_capacity = user_capacity
        index.event_capacity = event_capacity
        index.degrees = degrees
        index.conflict_matrix = conflict_matrix
        index.bid_indptr = bid_indptr
        index.bid_indices = bid_indices
        index.bid_si = bid_si
        index._shard_size = index._resolve_shard_size(shard_size)
        index._finalize()
        return index

    @property
    def shard_size(self) -> int:
        return self._shard_size

    def __repr__(self) -> str:
        return (
            f"ShardedInstanceIndex(users={self.num_users}, "
            f"events={self.num_events}, bids={self.num_bids}, "
            f"shards={self.num_shards}x{self._shard_size})"
        )
