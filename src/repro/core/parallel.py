"""Shard-parallel arrangement repair: propose in workers, commit serially.

The user dimension decomposes the move search: whether an (add, upgrade)
move improves a given user depends only on that user's bids, loads and the
*event-side state* (attendance, conflicts) — not on any other user.  That
makes shards independent **between event-side syncs**:

1. **Propose (parallel)** — each worker process receives a compact payload
   for one shard (the shard's CSR slices, capacities, loads, assigned
   positions, an attendance snapshot and the packed conflict matrix) and
   scans its users for feasible add/upgrade moves against the snapshot,
   optimistically reserving seats within the shard.  This is the bulk of
   the per-batch CPU work and it runs shard-parallel via
   :class:`concurrent.futures.ProcessPoolExecutor`.
2. **Commit (serial, event-side sync)** — the main process applies the
   proposals in deterministic order (descending gain, ties by positions),
   re-checking every move against the live arrangement, so cross-shard
   races on the last seat of an event resolve to a feasible state.
3. **Event-side moves (serial)** — refill/evict scans run over the touched
   events through the existing local-search engine (they inspect global
   bidder pools, the event-side coupling the shards cannot see).

Passes repeat until no move lands.  The result is always feasible (every
commit is re-validated) and the utility never decreases (all moves have
positive gain); the search trajectory differs from the serial targeted
repair — the replay driver gates feasibility and wall-clock, not
bit-parity, for this path.

Payloads carry only NumPy arrays and small lists, so pickling stays in the
tens-of-kilobytes-per-shard range even at |U| = 50k.
"""

from __future__ import annotations

from concurrent.futures import Executor

import numpy as np

from repro.core.local_search import _MIN_GAIN, improve
from repro.model.arrangement import Arrangement
from repro.model.delta import DeltaResult
from repro.model.instance import IGEPAInstance


def _shard_payload(
    instance: IGEPAInstance,
    arrangement: Arrangement,
    start: int,
    stop: int,
    attendance: np.ndarray,
    conflict_bits: np.ndarray,
) -> dict:
    """Compact, picklable view of one shard's user-side search state.

    The shard is a contiguous user-position range, so every per-user array
    is a plain slice of the index's CSR arrays and the assigned positions
    come out of one ``np.nonzero`` over the shard's assignment rows — no
    per-user Python/numpy round trips on this serial path.
    """
    index = instance.index
    indptr = index.bid_indptr
    lo, hi = int(indptr[start]), int(indptr[stop])

    sub = arrangement.assignment_matrix[start:stop]
    rows, cols = np.nonzero(sub)
    weights = index.pair_weights(rows + start, cols)
    counts = np.bincount(rows, minlength=stop - start)
    offsets = np.zeros(stop - start + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return {
        # Raw assigned-pair arrays; the *worker* splits them into per-user
        # lists, keeping this serial path at pure array slicing.
        "assigned_cols": cols,
        "assigned_weights": weights,
        "assigned_offsets": offsets,
        "start": start,
        "indptr": indptr[start : stop + 1] - lo,
        "indices": index.bid_indices[lo:hi],
        "weights": index.bid_weights[lo:hi],
        "user_cap": index.user_capacity[start:stop],
        "load": arrangement.load_counts[start:stop].copy(),
        "attendance": attendance,
        "event_cap": index.event_capacity,
        "num_events": index.num_events,
        "conflict_bits": conflict_bits,
    }


def scan_shard(payload: dict) -> list[tuple[float, int, int, int]]:
    """Propose add/upgrade moves for one shard against a state snapshot.

    Runs in a worker process.  Returns ``(gain, upos, vpos, old_vpos)``
    tuples — ``old_vpos == -1`` marks an add.  Seats are reserved
    optimistically within the shard (coherent locally); the main process
    re-validates everything at commit time.
    """
    start = int(payload["start"])
    indptr = payload["indptr"].tolist()
    indices = payload["indices"].tolist()
    weights = payload["weights"].tolist()
    user_cap = payload["user_cap"].tolist()
    load = payload["load"].tolist()
    attendance = payload["attendance"].copy()
    event_cap = payload["event_cap"]
    num_events = int(payload["num_events"])
    conflict = np.unpackbits(
        payload["conflict_bits"], count=num_events * num_events
    ).reshape(num_events, num_events).astype(bool).tolist()
    pair_cols = payload["assigned_cols"].tolist()
    pair_weights = payload["assigned_weights"].tolist()
    pair_offsets = payload["assigned_offsets"].tolist()
    assigned = [
        pair_cols[pair_offsets[i] : pair_offsets[i + 1]]
        for i in range(len(pair_offsets) - 1)
    ]
    assigned_weights = [
        pair_weights[pair_offsets[i] : pair_offsets[i + 1]]
        for i in range(len(pair_offsets) - 1)
    ]

    proposals: list[tuple[float, int, int, int]] = []
    for k in range(len(indptr) - 1):
        upos = start + k
        row_lo, row_hi = indptr[k], indptr[k + 1]
        bids = indices[row_lo:row_hi]
        bid_weights = weights[row_lo:row_hi]
        mine = assigned[k]
        mine_weights = assigned_weights[k]

        # Add moves: first-fit over the bid list, as the serial scan does.
        for offset, vpos in enumerate(bids):
            if load[k] >= user_cap[k]:
                break
            weight = bid_weights[offset]
            if weight <= _MIN_GAIN or vpos in mine:
                continue
            if attendance[vpos] >= event_cap[vpos]:
                continue
            row = conflict[vpos]
            if any(row[p] for p in mine):
                continue
            proposals.append((weight, upos, vpos, -1))
            attendance[vpos] += 1
            load[k] += 1
            mine.append(vpos)
            mine_weights.append(weight)

        # Upgrade moves: best strict improvement per assigned event.
        if not mine or load[k] - 1 >= user_cap[k]:
            continue
        for slot in range(len(mine)):
            current = mine[slot]
            current_weight = mine_weights[slot]
            best = None
            best_gain = _MIN_GAIN
            others = [p for p in mine if p != current]
            for offset, candidate in enumerate(bids):
                gain = bid_weights[offset] - current_weight
                if gain <= best_gain:
                    continue
                if candidate in mine:
                    continue
                if attendance[candidate] >= event_cap[candidate]:
                    continue
                row = conflict[candidate]
                if any(row[p] for p in others):
                    continue
                best = candidate
                best_gain = gain
            if best is not None:
                proposals.append((best_gain, upos, best, current))
                attendance[current] -= 1
                attendance[best] += 1
                mine[slot] = best
                mine_weights[slot] = current_weight + best_gain
    return proposals


def _commit(
    instance: IGEPAInstance,
    arrangement: Arrangement,
    proposals: list[tuple[float, int, int, int]],
) -> tuple[int, int, set[int], set[int]]:
    """Apply proposals in deterministic order, re-validating each move.

    Returns (adds, upgrades, event positions touched, user positions
    touched) over the committed moves.
    """
    index = instance.index
    event_ids = index.event_ids
    user_ids = index.user_ids
    adds = 0
    upgrades = 0
    touched: set[int] = set()
    touched_users: set[int] = set()
    # Descending gain; ties resolve on positions so the commit order is
    # independent of shard arrival order.
    for gain, upos, vpos, old_vpos in sorted(
        proposals, key=lambda p: (-p[0], p[1], p[2], p[3])
    ):
        user_id = int(user_ids[upos])
        event_id = int(event_ids[vpos])
        if old_vpos < 0:
            if arrangement.can_add(event_id, user_id):
                arrangement.add(event_id, user_id, check=False)
                adds += 1
                touched.add(vpos)
                touched_users.add(upos)
            continue
        old_event_id = int(event_ids[old_vpos])
        if (old_event_id, user_id) not in arrangement:
            continue  # an earlier committed move already displaced it
        arrangement.remove(old_event_id, user_id)
        if arrangement.can_add(event_id, user_id):
            arrangement.add(event_id, user_id, check=False)
            upgrades += 1
            touched.add(vpos)
            touched.add(old_vpos)
            touched_users.add(upos)
        else:
            arrangement.add(old_event_id, user_id, check=False)  # roll back
    return adds, upgrades, touched, touched_users


def parallel_repair(
    result: DeltaResult,
    executor: Executor,
    *,
    max_passes: int = 20,
    full_scope: bool = False,
) -> dict:
    """Repair a carried-over arrangement with shard-parallel move proposals.

    Args:
        result: an :func:`~repro.model.delta.apply_delta` result whose
            ``arrangement`` is set.
        executor: where the per-shard proposal scans run (typically a
            :class:`~concurrent.futures.ProcessPoolExecutor`; any executor
            works, including a single-worker one — the baseline the shard
            bench measures speedup against).
        max_passes: cap on propose/commit/event-sync passes.
        full_scope: scan every shard instead of only the shards containing
            touched users.  The delta's touched shards are the default;
            full scope is the "defragmentation" setting.

    Returns:
        Move counts ``{"adds", "upgrades", "refills", "evictions",
        "passes", "tasks", ...}`` mirroring :func:`repro.core.repair.repair`.
    """
    if result.arrangement is None:
        raise ValueError("DeltaResult has no arrangement to repair")
    instance = result.instance
    arrangement = result.arrangement
    index = instance.index
    num_users = index.num_users

    touched_positions = [
        index.user_pos[user_id]
        for user_id in result.touched_users
        if user_id in index.user_pos
    ]
    event_positions = sorted(
        index.event_pos[event_id]
        for event_id in result.touched_events
        if event_id in index.event_pos
    )

    # Scan scope: whole shards (contiguous user ranges), so freed capacity
    # anywhere near the churn is rediscovered; one task per shard, the
    # executor schedules them across its workers.
    shard_size = index.shard_size
    if full_scope:
        scope_shards: list[int] = list(range(index.num_shards))
    else:
        scope_shards = index.touched_shards(touched_positions)
    ranges = [
        (s * shard_size, min((s + 1) * shard_size, num_users))
        for s in scope_shards
    ]
    conflict_bits = np.packbits(index.conflict_matrix.astype(np.uint8))

    totals = {
        "adds": 0,
        "refills": 0,
        "upgrades": 0,
        "evictions": 0,
        "passes": 0,
        "tasks": 0,
        "touched_users": len(touched_positions),
        "touched_events": len(event_positions),
        "dropped_pairs": len(result.dropped_pairs),
    }
    if not ranges and not event_positions:
        return totals

    # When the scan covers every shard, the user-side add proposals already
    # reach every (user, free seat) candidate the event-major refill scan
    # would — skip the (serial, per-bidder) refill and keep only the evict
    # exchange, which genuinely needs the global event-side view.
    refill = len(ranges) < index.num_shards

    shard_size_of = {start: (start, stop) for start, stop in ranges}
    payload_cache: dict[int, dict] = {}
    stale_shards: set[int] = set(shard_size_of)
    # Event-side sweep scope: the delta's touched events first, then only
    # the events changed since the previous sweep.
    event_scope: set[int] = set(event_positions)
    for _ in range(max_passes):
        attendance = arrangement.attendance_counts.copy()
        for start in stale_shards:
            lo, hi = shard_size_of[start]
            payload_cache[start] = _shard_payload(
                instance, arrangement, lo, hi, attendance, conflict_bits
            )
        stale_shards.clear()
        payloads = [payload_cache[start] for start, _stop in ranges]
        for payload in payloads:
            payload["attendance"] = attendance
        proposals: list[tuple[float, int, int, int]] = []
        for shard_proposals in executor.map(scan_shard, payloads):
            proposals.extend(shard_proposals)
        totals["tasks"] += len(payloads)

        adds, upgrades, commit_events, commit_users = _commit(
            instance, arrangement, proposals
        )
        totals["adds"] += adds
        totals["upgrades"] += upgrades
        totals["passes"] += 1
        event_scope |= commit_events
        stale_shards |= {
            (p // shard_size) * shard_size
            for p in commit_users
            if (p // shard_size) * shard_size in shard_size_of
        }
        if adds + upgrades:
            continue  # scan again before paying for the event-side sync

        # Event-side sync at scan convergence: refill freed seats from
        # global bidder pools (only when the scan scope was partial) and
        # run the evict exchange at full events — serial, through the
        # standard move engine, scoped to the events changed since the
        # last sweep.
        assigned_before = arrangement.assignment_matrix.copy()
        moves = improve(
            instance,
            arrangement,
            # One sweep per sync: evictions trickle one-per-event-per-pass,
            # and anything left lands in the next outer pass (the outer
            # loop re-enters whenever this sweep moved) or the next batch.
            max_passes=1,
            user_positions=[],
            event_positions=sorted(event_scope),
            refill_events=refill,
        )
        totals["refills"] += moves["refills"]
        totals["evictions"] += moves["evictions"]
        if moves["refills"] + moves["evictions"] == 0:
            break  # true fixpoint: nothing moved on either side
        # Exact staleness from the assignment diff (load deltas alone would
        # miss a user refilled at one event and evicted from another in the
        # same sweep): changed users invalidate their shards' cached
        # payloads, changed events re-enter the next sweep's scope.
        diff = arrangement.assignment_matrix != assigned_before
        changed_users = np.flatnonzero(diff.any(axis=1))
        stale_shards |= {
            (int(p) // shard_size) * shard_size
            for p in changed_users
            if (int(p) // shard_size) * shard_size in shard_size_of
        }
        event_scope = set(np.flatnonzero(diff.any(axis=0)).tolist())
    return totals
