"""Dual simplex: warm re-solves after RHS moves, without phase 1.

The incremental solver dispatches RHS-only patches to
:meth:`_RevisedCore.run_dual`: the pre-patch optimal basis is dual
feasible by construction, so restoring primal feasibility is a pure dual
pivot sequence — no phase-1 restart, no refactorization.  These tests pin
the dispatch (``mode == "rhs_dual"``), the optimum against a from-scratch
solve, and the dual loop's own contracts (zero pivots when the basis
stays feasible, a Farkas exit on unsatisfiable rows).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.solver.api import solve_lp
from repro.solver.patch import IncrementalLPSolver, LPPatch
from repro.solver.problem import LinearProgram, Sense
from repro.solver.result import SolveStatus
from repro.solver.revised_simplex import RevisedSimplexOptions, _RevisedCore
from repro.solver.standard_form import to_standard_form


def _packing_lp() -> LinearProgram:
    lp = LinearProgram(name="packing", maximize=True)
    x1 = lp.add_variable("x1", objective=3.0)
    x2 = lp.add_variable("x2", objective=2.0)
    x3 = lp.add_variable("x3", objective=1.0)
    lp.add_constraint({x1: 1.0, x2: 1.0}, Sense.LE, 4.0, name="r1")
    lp.add_constraint({x2: 1.0, x3: 1.0}, Sense.LE, 3.0, name="r2")
    lp.add_constraint({x1: 1.0, x3: 1.0}, Sense.LE, 5.0, name="r3")
    return lp


def test_rhs_tightening_rides_dual_path():
    lp = _packing_lp()
    solver = IncrementalLPSolver(lp)
    first = solver.solve()
    assert first.status is SolveStatus.OPTIMAL

    solver.apply_patch(LPPatch(set_rhs=(("r1", 1.0), ("r2", 1.0))))
    patched = solver.solve()
    assert patched.status is SolveStatus.OPTIMAL
    diagnostics = patched.diagnostics
    assert diagnostics["mode"] == "rhs_dual"
    assert diagnostics["dual_pivots"] >= 1
    assert diagnostics["primal_pivots"] == 0
    assert not diagnostics["phase1"]
    assert diagnostics["refactorizations"] == 0

    reference = solve_lp(lp, backend="revised-simplex")
    assert patched.objective_value == pytest.approx(
        reference.objective_value, abs=1e-9
    )


def test_rhs_loosening_stays_dual_and_matches():
    lp = _packing_lp()
    solver = IncrementalLPSolver(lp)
    assert solver.solve().status is SolveStatus.OPTIMAL

    solver.apply_patch(LPPatch(set_rhs=(("r1", 6.0), ("r2", 6.0), ("r3", 8.0))))
    patched = solver.solve()
    assert patched.status is SolveStatus.OPTIMAL
    assert patched.diagnostics["mode"] == "rhs_dual"
    assert not patched.diagnostics["phase1"]
    assert patched.diagnostics["refactorizations"] == 0
    reference = solve_lp(lp, backend="revised-simplex")
    assert patched.objective_value == pytest.approx(
        reference.objective_value, abs=1e-9
    )


def test_unchanged_rhs_reuses_basis_with_zero_pivots():
    # Re-asserting the active values is an RHS patch whose new b leaves the
    # optimal basis primal feasible: the dual loop must exit immediately.
    lp = _packing_lp()
    solver = IncrementalLPSolver(lp)
    first = solver.solve()
    assert first.status is SolveStatus.OPTIMAL

    solver.apply_patch(
        LPPatch(set_rhs=(("r1", 4.0), ("r2", 3.0), ("r3", 5.0)))
    )
    patched = solver.solve()
    assert patched.status is SolveStatus.OPTIMAL
    assert patched.diagnostics["mode"] == "rhs_dual"
    assert patched.diagnostics["dual_pivots"] == 0
    assert patched.objective_value == pytest.approx(
        first.objective_value, abs=1e-9
    )


def test_degenerate_rhs_collapse_terminates_optimal():
    # Collapsing every per-variable row to zero makes all the dual ratios
    # degenerate candidates; the loop must still terminate at the (all-zero)
    # optimum — the anti-cycling ratchet's job.
    lp = LinearProgram(name="deg", maximize=True)
    variables = [lp.add_variable(f"y{i}", objective=1.0) for i in range(3)]
    for i, v in enumerate(variables):
        lp.add_constraint({v: 1.0}, Sense.LE, 1.0, name=f"row{i}")
    lp.add_constraint(dict.fromkeys(variables, 1.0), Sense.LE, 3.0, name="total")
    solver = IncrementalLPSolver(lp)
    assert solver.solve().objective_value == pytest.approx(3.0)

    solver.apply_patch(
        LPPatch(set_rhs=tuple((f"row{i}", 0.0) for i in range(3)))
    )
    patched = solver.solve()
    assert patched.status is SolveStatus.OPTIMAL
    assert patched.diagnostics["mode"] == "rhs_dual"
    assert not patched.diagnostics["phase1"]
    assert patched.objective_value == pytest.approx(0.0, abs=1e-9)


def test_run_dual_returns_farkas_infeasible():
    # A row with only nonnegative coefficients and a negative rhs is a
    # Farkas certificate: pricing it finds no negative entry and the dual
    # loop must report INFEASIBLE instead of looping.
    lp = LinearProgram(name="infeasible", maximize=False)
    a = lp.add_variable("a", objective=1.0)
    b = lp.add_variable("b", objective=1.0)
    lp.add_constraint({a: 1.0, b: 1.0}, Sense.LE, 1.0, name="row")
    sf = to_standard_form(lp)
    core = _RevisedCore(sf.matrix(), sf.b.copy(), RevisedSimplexOptions())
    core.set_basis(sf.basis_hint, identity=True)  # slack basis: dual feasible
    core.b = np.array([-1.0])
    core.x_basic = core._ftran(core.b)
    status, pivots = core.run_dual(sf.c, sf.num_columns, 0, 100)
    assert status is SolveStatus.INFEASIBLE
    assert pivots == 0
