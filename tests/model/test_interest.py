"""Unit tests for interest functions."""

import numpy as np
import pytest

from repro.model import (
    CosineInterest,
    Event,
    JaccardInterest,
    ScaledDotInterest,
    TabulatedInterest,
    User,
    interest_from_dict,
)


def _event(attributes=(), categories=(), event_id=1):
    return Event(
        event_id=event_id, capacity=5, attributes=attributes, categories=categories
    )


def _user(attributes=(), categories=(), user_id=1):
    return User(
        user_id=user_id, capacity=3, attributes=attributes, categories=categories
    )


class TestCosineInterest:
    def test_identical_vectors_give_one(self):
        f = CosineInterest()
        assert f.interest(_event([1.0, 2.0]), _user([1.0, 2.0])) == pytest.approx(1.0)

    def test_orthogonal_vectors_give_zero(self):
        f = CosineInterest()
        assert f.interest(_event([1.0, 0.0]), _user([0.0, 1.0])) == pytest.approx(0.0)

    def test_negative_similarity_clipped_to_zero(self):
        f = CosineInterest()
        assert f.interest(_event([1.0]), _user([-1.0])) == 0.0

    def test_zero_norm_gives_zero(self):
        f = CosineInterest()
        assert f.interest(_event([0.0, 0.0]), _user([1.0, 1.0])) == 0.0

    def test_mismatched_shapes_give_zero(self):
        f = CosineInterest()
        assert f.interest(_event([1.0]), _user([1.0, 2.0])) == 0.0

    def test_empty_vectors_give_zero(self):
        f = CosineInterest()
        assert f.interest(_event(), _user()) == 0.0

    def test_range_on_random_vectors(self):
        rng = np.random.default_rng(0)
        f = CosineInterest()
        for _ in range(50):
            value = f.interest(
                _event(rng.normal(size=4)), _user(rng.normal(size=4))
            )
            assert 0.0 <= value <= 1.0


class TestJaccardInterest:
    def test_identical_sets_give_one(self):
        f = JaccardInterest()
        assert f.interest(
            _event(categories={"a", "b"}), _user(categories={"a", "b"})
        ) == pytest.approx(1.0)

    def test_disjoint_sets_give_zero(self):
        f = JaccardInterest()
        assert f.interest(
            _event(categories={"a"}), _user(categories={"b"})
        ) == pytest.approx(0.0)

    def test_partial_overlap(self):
        f = JaccardInterest()
        assert f.interest(
            _event(categories={"a", "b", "c"}), _user(categories={"b", "c", "d"})
        ) == pytest.approx(0.5)

    def test_both_empty_give_zero(self):
        f = JaccardInterest()
        assert f.interest(_event(), _user()) == 0.0


class TestScaledDotInterest:
    def test_topic_distributions(self):
        f = ScaledDotInterest()
        value = f.interest(_event([0.5, 0.5]), _user([1.0, 0.0]))
        assert value == pytest.approx(0.5)

    def test_clipped_above_one(self):
        f = ScaledDotInterest()
        assert f.interest(_event([2.0]), _user([3.0])) == 1.0

    def test_mismatched_shapes_give_zero(self):
        f = ScaledDotInterest()
        assert f.interest(_event([1.0]), _user([1.0, 1.0])) == 0.0


class TestTabulatedInterest:
    def test_lookup(self):
        f = TabulatedInterest({(1, 10): 0.7})
        assert f.interest(_event(event_id=1), _user(user_id=10)) == pytest.approx(0.7)

    def test_missing_pair_uses_default(self):
        f = TabulatedInterest({(1, 10): 0.7}, default=0.2)
        assert f.interest(_event(event_id=9), _user(user_id=9)) == pytest.approx(0.2)

    def test_out_of_range_value_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            TabulatedInterest({(1, 1): 1.5})

    def test_out_of_range_default_rejected(self):
        with pytest.raises(ValueError, match="default"):
            TabulatedInterest({}, default=-0.1)

    def test_len(self):
        assert len(TabulatedInterest({(1, 1): 0.5, (2, 2): 0.5})) == 2


class TestSerialization:
    @pytest.mark.parametrize(
        "function",
        [
            CosineInterest(),
            JaccardInterest(),
            ScaledDotInterest(),
            TabulatedInterest({(1, 2): 0.25, (3, 4): 0.75}, default=0.1),
        ],
        ids=["cosine", "jaccard", "dot", "tabulated"],
    )
    def test_round_trip(self, function):
        restored = interest_from_dict(function.to_dict())
        event = _event([0.6, 0.8], categories={"a"}, event_id=1)
        user = _user([0.6, 0.8], categories={"a", "b"}, user_id=2)
        assert restored.interest(event, user) == pytest.approx(
            function.interest(event, user)
        )

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown interest"):
            interest_from_dict({"kind": "psychic"})
